"""Deterministic random-number streams for simulation components.

Every stochastic model component (Ethernet backoff, workload access
patterns, background traffic, crash injection, ...) draws from its own
named stream so that adding randomness to one component never perturbs
another.  All streams derive deterministically from a single root seed,
making whole experiments reproducible from one integer.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of named, independently-seeded ``random.Random`` streams.

    >>> rngs = RngRegistry(seed=42)
    >>> backoff = rngs.stream("ethernet.backoff")
    >>> same = rngs.stream("ethernet.backoff")
    >>> backoff is same
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed is a stable hash of (root seed, name), so the
        same (seed, name) pair yields the same sequence across runs and
        across Python processes (``hash()`` would not, due to string-hash
        randomisation).
        """
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RngRegistry(seed=int.from_bytes(digest[:8], "big"))
