"""Observability: tracing, spans, metrics, telemetry, and health.

``repro.obs`` is the opt-in half of the observability layer.  The
zero-cost half — ``NullTracer``/``NULL_TRACER`` and
``NullSampler``/``NULL_SAMPLER`` — lives in the simulation kernel
(:mod:`repro.sim.core`) so that ``repro.sim`` never imports this
package; modules here import ``repro.sim`` freely.
"""

from .health import HealthMonitor, HealthSpec
from .metrics import MetricsRegistry, merge_snapshots
from .telemetry import LogHistogram, TelemetrySampler, TimeSeries
from .trace import (
    Span,
    Tracer,
    current_tracer,
    install_tracer,
    uninstall_tracer,
    validate_file,
    validate_jsonl,
    validate_record,
)

__all__ = [
    "MetricsRegistry",
    "merge_snapshots",
    "LogHistogram",
    "TimeSeries",
    "TelemetrySampler",
    "HealthMonitor",
    "HealthSpec",
    "Span",
    "Tracer",
    "current_tracer",
    "install_tracer",
    "uninstall_tracer",
    "validate_file",
    "validate_jsonl",
    "validate_record",
]
