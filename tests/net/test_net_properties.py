"""Property-based network tests: delivery exactness under random traffic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import EthernetCsmaCd, SwitchedNetwork, TokenRing
from repro.sim import RngRegistry, Simulator

N_HOSTS = 4


@st.composite
def traffic(draw):
    """Random (src, dst, nbytes, start_delay) message schedules."""
    return draw(
        st.lists(
            st.tuples(
                st.integers(0, N_HOSTS - 1),
                st.integers(0, N_HOSTS - 1),
                st.integers(1, 20000),
                st.floats(0, 0.05, allow_nan=False),
            ).filter(lambda t: t[0] != t[1]),
            min_size=1,
            max_size=25,
        )
    )


def build(kind, sim):
    if kind == "ethernet":
        net = EthernetCsmaCd(sim, rngs=RngRegistry(seed=4))
    elif kind == "switched":
        net = SwitchedNetwork(sim)
    else:
        net = TokenRing(sim)
    for i in range(N_HOSTS):
        net.attach(f"h{i}")
    return net


@pytest.mark.parametrize("kind", ["ethernet", "switched", "token-ring"])
@settings(max_examples=20, deadline=None)
@given(messages=traffic())
def test_every_message_delivered_exactly_once(kind, messages):
    sim = Simulator()
    net = build(kind, sim)
    delivered = []

    def sender(sim, net, index, src, dst, nbytes, delay):
        yield sim.timeout(delay)
        yield net.transfer(f"h{src}", f"h{dst}", nbytes)
        delivered.append(index)

    for index, (src, dst, nbytes, delay) in enumerate(messages):
        sim.process(sender(sim, net, index, src, dst, nbytes, delay))
    sim.run()
    assert sorted(delivered) == list(range(len(messages)))
    assert net.stats.counters["messages"] == len(messages)
    assert net.stats.counters["bytes"] == sum(m[2] for m in messages)


@pytest.mark.parametrize("kind", ["ethernet", "switched", "token-ring"])
@settings(max_examples=15, deadline=None)
@given(messages=traffic())
def test_partition_heal_preserves_every_message(kind, messages):
    """Partition mid-run, heal later: nothing is lost or duplicated."""
    sim = Simulator()
    net = build(kind, sim)
    delivered = []

    def sender(sim, net, index, src, dst, nbytes, delay):
        yield sim.timeout(delay)
        yield net.transfer(f"h{src}", f"h{dst}", nbytes)
        delivered.append(index)

    for index, (src, dst, nbytes, delay) in enumerate(messages):
        sim.process(sender(sim, net, index, src, dst, nbytes, delay))

    def chaos(sim, net):
        yield sim.timeout(0.01)
        net.partition({"h0", "h1"})
        yield sim.timeout(0.2)
        net.heal()

    sim.process(chaos(sim, net))
    sim.run()
    assert sorted(delivered) == list(range(len(messages)))
