"""Package-wide logging: the ``repro`` logger hierarchy.

Modules log through ``get_logger(__name__)`` so every message lands
under one ``repro.*`` tree.  By default nothing is configured — library
users see silence unless they attach handlers themselves, per stdlib
convention.  The CLI calls :func:`configure_logging`, which installs a
stderr handler and maps ``--verbose``/``--quiet`` onto levels.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "configure_logging"]

#: Root of the package's logger tree.
ROOT = "repro"


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    Pass ``__name__``; module paths already rooted at ``repro`` are used
    as-is, anything else (scripts, tests) is nested under ``repro.``.
    """
    if not name or name == ROOT:
        return logging.getLogger(ROOT)
    if name == "__main__" or name.startswith(f"{ROOT}."):
        return logging.getLogger(name if name != "__main__" else f"{ROOT}.main")
    return logging.getLogger(f"{ROOT}.{name}")


def configure_logging(verbose: int = 0, quiet: bool = False) -> logging.Logger:
    """Attach a stderr handler to the ``repro`` root and set its level.

    ``quiet`` wins: errors only.  Otherwise ``verbose`` counts up —
    0 = WARNING (default), 1 = INFO, 2+ = DEBUG.  Idempotent: calling
    again adjusts the level without stacking handlers.
    """
    logger = logging.getLogger(ROOT)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        logger.addHandler(handler)
    if quiet:
        level = logging.ERROR
    elif verbose >= 2:
        level = logging.DEBUG
    elif verbose == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    logger.setLevel(level)
    return logger
