"""Synthetic idle-memory trace: the paper's Figure 1.

Figure 1 profiles the unused memory of 16 workstations (800 MB total)
over one week (Feb 2-8 1995): free memory peaks above 700 MB at night and
over the weekend, dips during business hours, and never drops below
~300 MB.  We cannot replay the authors' lab, so this module generates a
trace with the same structure: a diurnal business-hours dip on weekdays,
flat highs at night and on weekends, plus bounded noise.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Tuple

from ..units import days, hours

__all__ = ["IdleMemoryTrace"]

_WEEKDAY_NAMES = [
    "Thursday",
    "Friday",
    "Saturday",
    "Sunday",
    "Monday",
    "Tuesday",
    "Wednesday",
]


class IdleMemoryTrace:
    """A week of cluster idle memory, sampled at any instant.

    Parameters mirror the paper's lab: 16 workstations, 800 MB total.
    The trace starts on a Thursday (as Figure 1 does).

    >>> trace = IdleMemoryTrace()
    >>> trace.free_mb(hours(3)) > 600          # Thursday 3am: mostly idle
    True
    """

    def __init__(
        self,
        n_workstations: int = 16,
        total_mb: float = 800.0,
        night_idle_fraction: float = 0.94,
        busy_idle_fraction: float = 0.52,
        floor_mb: float = 300.0,
        noise_mb: float = 25.0,
        seed: int = 1995,
    ):
        if n_workstations < 1 or total_mb <= 0:
            raise ValueError("need at least one workstation and positive memory")
        if not 0 <= busy_idle_fraction <= night_idle_fraction <= 1:
            raise ValueError("fractions must satisfy 0 <= busy <= night <= 1")
        self.n_workstations = n_workstations
        self.total_mb = total_mb
        self.night_idle_fraction = night_idle_fraction
        self.busy_idle_fraction = busy_idle_fraction
        self.floor_mb = floor_mb
        self.noise_mb = noise_mb
        self.seed = seed

    # ------------------------------------------------------------ sampling
    def _weekday_index(self, t: float) -> int:
        return int(t // days(1)) % 7

    def is_weekend(self, t: float) -> bool:
        """Saturday/Sunday (trace starts Thursday, per Figure 1)."""
        return self._weekday_index(t) in (2, 3)

    def weekday_name(self, t: float) -> str:
        """The weekday at ``t`` (the trace starts on Figure 1's Thursday)."""
        return _WEEKDAY_NAMES[self._weekday_index(t)]

    def _business_intensity(self, t: float) -> float:
        """0 (idle) .. 1 (peak office hours), smooth over the day."""
        if self.is_weekend(t):
            return 0.0
        hour = (t % days(1)) / hours(1)
        if hour < 8 or hour > 20:
            return 0.0
        # Two-humped working day: late morning and afternoon peaks, with
        # a small lunch dip — matching Figure 1's noon/afternoon peaks.
        morning = math.exp(-((hour - 11.0) ** 2) / 4.0)
        afternoon = math.exp(-((hour - 15.5) ** 2) / 5.0)
        return min(1.0, morning + afternoon)

    def free_mb(self, t: float) -> float:
        """Idle memory (MB) at ``t`` seconds into the week."""
        if t < 0:
            raise ValueError(f"negative time: {t}")
        intensity = self._business_intensity(t)
        idle_fraction = (
            self.night_idle_fraction
            - (self.night_idle_fraction - self.busy_idle_fraction) * intensity
        )
        base = self.total_mb * idle_fraction
        # Deterministic per-sample noise (same t -> same value).
        rng = random.Random(f"{self.seed}:{int(t // 60)}")
        noisy = base + rng.uniform(-self.noise_mb, self.noise_mb)
        return max(self.floor_mb, min(self.total_mb, noisy))

    def free_pages(self, t: float, page_size: int = 8192) -> int:
        """Idle memory at ``t`` expressed in pages."""
        return int(self.free_mb(t) * (1 << 20) / page_size)

    def series(
        self, step: float = hours(1), duration: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """(t, free_mb) samples across ``duration`` (default one week)."""
        if step <= 0:
            raise ValueError(f"step must be positive: {step}")
        duration = days(7) if duration is None else duration
        n = int(duration // step) + 1
        return [(i * step, self.free_mb(i * step)) for i in range(n)]

    def summary(self) -> dict:
        """Weekly aggregates Figure 1's caption quotes."""
        values = [v for _, v in self.series(step=hours(0.25))]
        return {
            "min_mb": min(values),
            "max_mb": max(values),
            "mean_mb": sum(values) / len(values),
            "total_mb": self.total_mb,
            "n_workstations": self.n_workstations,
        }
