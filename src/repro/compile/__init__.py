"""Reference-trace compilation: precomputed fault schedules.

The paper's pager only ever sees the *fault stream* (§4.3: thousands of
pageins/pageouts for an FFT that touches millions of pages), yet the
interpreted :class:`~repro.vm.machine.Machine` pays per-reference Python
for every resident hit.  This package pre-simulates the replacement
policy over a workload's reference stream in one tight pass and emits a
compact :class:`FaultSchedule` the machine replays in O(faults) —
bit-identically, because the schedule records the exact CPU-flush
amounts and fault decisions the interpreted path would make, so the
simulation-event sequence is literally unchanged (see DESIGN.md §12).
"""

from .schedule import SCHEDULE_FORMAT, FaultSchedule
from .compiler import compile_trace
from .effects import (
    EFFECTS_FORMAT,
    RunEffects,
    capture_effects,
    decompose_ptime,
    effects_bypass_reason,
    effects_cache_enabled,
    effects_key,
    restore_effects,
    validate_effects,
)
from .plan import (
    ReplayPlan,
    compile_enabled,
    fleet_bypass_reason,
    plan_fleet,
    plan_replay,
    plan_run,
    schedule_cache_enabled,
    set_compile_enabled,
)

__all__ = [
    "SCHEDULE_FORMAT",
    "EFFECTS_FORMAT",
    "FaultSchedule",
    "RunEffects",
    "ReplayPlan",
    "compile_trace",
    "capture_effects",
    "restore_effects",
    "validate_effects",
    "effects_bypass_reason",
    "effects_cache_enabled",
    "effects_key",
    "decompose_ptime",
    "plan_fleet",
    "fleet_bypass_reason",
    "plan_replay",
    "plan_run",
    "compile_enabled",
    "schedule_cache_enabled",
    "set_compile_enabled",
]
