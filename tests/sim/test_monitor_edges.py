"""Edge cases for the measurement helpers (tally merge, percentile
caching, nested utilisation, time-weighted averages)."""

import math

import pytest

from repro.sim.monitor import Tally, TimeWeighted, UtilizationTracker


# ----------------------------------------------------------- Tally.merge

def test_merge_matches_single_stream_exactly():
    a_values = [0.5, 1.5, 2.5, 10.0]
    b_values = [-3.0, 7.0, 0.0]
    a, b, single = Tally(), Tally(), Tally()
    for value in a_values:
        a.observe(value)
        single.observe(value)
    for value in b_values:
        b.observe(value)
        single.observe(value)
    assert a.merge(b) is a
    assert a.count == single.count
    assert a.total == pytest.approx(single.total, rel=1e-12)
    assert a.mean == pytest.approx(single.mean, rel=1e-12)
    assert a.variance == pytest.approx(single.variance, rel=1e-12)
    assert a.minimum == single.minimum
    assert a.maximum == single.maximum


def test_merge_into_empty_copies_other():
    a, b = Tally(), Tally()
    b.observe(4.0)
    b.observe(6.0)
    a.merge(b)
    assert (a.count, a.mean, a.minimum, a.maximum) == (2, 5.0, 4.0, 6.0)


def test_merge_empty_other_is_a_noop():
    a = Tally()
    a.observe(1.0)
    before = (a.count, a.mean, a._m2, a.minimum, a.maximum, a.total)
    a.merge(Tally())
    assert (a.count, a.mean, a._m2, a.minimum, a.maximum, a.total) == before


def test_merge_concatenates_kept_samples():
    a, b = Tally(keep_samples=True), Tally(keep_samples=True)
    a.observe(3.0)
    b.observe(1.0)
    b.observe(2.0)
    a.merge(b)
    assert sorted(a.samples) == [1.0, 2.0, 3.0]
    assert a.percentile(50) == 2.0


def test_merge_rejects_sample_loss():
    a = Tally(keep_samples=True)
    b = Tally()  # dropped its samples: merging would corrupt percentiles
    b.observe(1.0)
    with pytest.raises(ValueError, match="keep_samples"):
        a.merge(b)


# ----------------------------------------------------- Tally.percentile

def test_percentile_bounds_and_errors():
    tally = Tally(keep_samples=True)
    for value in [5.0, 1.0, 3.0]:
        tally.observe(value)
    assert tally.percentile(0) == 1.0
    assert tally.percentile(100) == 5.0
    with pytest.raises(ValueError, match="out of range"):
        tally.percentile(101)
    with pytest.raises(ValueError, match="out of range"):
        tally.percentile(-1)


def test_percentile_of_empty_is_nan():
    assert math.isnan(Tally(keep_samples=True).percentile(50))


def test_percentile_without_kept_samples_raises():
    tally = Tally()
    tally.observe(1.0)
    with pytest.raises(ValueError, match="keep_samples=False"):
        tally.percentile(50)


def test_percentile_reuses_sorted_cache_until_invalidated():
    """Regression: repeated percentile calls must not re-sort."""
    tally = Tally(keep_samples=True)
    for value in [9.0, 2.0, 7.0]:
        tally.observe(value)
    assert tally._sorted is None
    tally.percentile(50)
    cached = tally._sorted
    assert cached == [2.0, 7.0, 9.0]
    tally.percentile(95)
    assert tally._sorted is cached  # same list object: no re-sort
    tally.observe(1.0)
    assert tally._sorted is None  # new sample invalidates the cache
    assert tally.percentile(0) == 1.0


def test_numpy_sort_matches_sorted_exactly():
    """The numpy-backed percentile sort (used for > 32 float samples)
    must agree element-for-element with ``sorted`` and hand back native
    floats, so every downstream percentile is bit-identical."""
    import random

    from repro.sim.monitor import _sort_samples

    rng = random.Random(20260808)
    samples = [rng.uniform(-1e3, 1e3) for _ in range(500)]
    samples += [samples[7], samples[7], 0.0, -0.0, 1e-300, 1e300]
    fast = _sort_samples(samples)
    assert fast == sorted(samples)
    assert all(type(s) is float for s in fast)

    tally = Tally(keep_samples=True)
    for value in samples:
        tally.observe(value)
    reference = sorted(samples)
    n = len(reference)
    for q in (0, 1, 25, 50, 75, 95, 99, 100):
        rank = max(1, math.ceil(q / 100.0 * n))  # nearest-rank, as Tally
        assert tally.percentile(q) == reference[rank - 1]


def test_int_samples_keep_python_sort():
    """Integer samples must not round-trip through float64 (a large int
    would silently lose precision): the fallback path keeps them
    exact."""
    from repro.sim.monitor import _sort_samples

    big = 2**63 + 1  # not representable as float64
    samples = [big, 1, 3, 2] * 12  # length > 32: numpy-eligible size
    result = _sort_samples(samples)
    assert result == sorted(samples)
    assert result[-1] == big
    assert all(type(s) is int for s in result)


# --------------------------------------------------------- TimeWeighted

def test_time_weighted_rejects_time_going_backwards():
    tw = TimeWeighted(now=5.0)
    with pytest.raises(ValueError, match="backwards"):
        tw.record(4.0, 1.0)


def test_time_weighted_average_at_zero_span_is_current_level():
    tw = TimeWeighted(now=2.0, level=0.75)
    assert tw.average(2.0) == 0.75


def test_time_weighted_average_weights_levels_by_duration():
    tw = TimeWeighted(now=0.0, level=0.0)
    tw.record(1.0, 2.0)   # level 0 for 1s
    tw.record(3.0, 0.0)   # level 2 for 2s
    assert tw.average(4.0) == pytest.approx(4.0 / 4.0)


# --------------------------------------------------- UtilizationTracker

def test_nested_busy_intervals_count_once():
    tracker = UtilizationTracker(now=0.0)
    tracker.busy(1.0)
    tracker.busy(2.0)   # nested: still one busy interval
    tracker.idle(3.0)   # depth 1: still busy
    tracker.idle(4.0)   # depth 0: idle again
    assert tracker.utilization(10.0) == pytest.approx(3.0 / 10.0)


def test_idle_without_busy_raises():
    tracker = UtilizationTracker()
    with pytest.raises(ValueError, match="without matching busy"):
        tracker.idle(1.0)
    tracker.busy(1.0)
    tracker.idle(2.0)
    with pytest.raises(ValueError, match="without matching busy"):
        tracker.idle(3.0)


def test_utilization_mid_busy_interval_counts_elapsed_time():
    tracker = UtilizationTracker(now=0.0)
    tracker.busy(2.0)
    assert tracker.utilization(4.0) == pytest.approx(0.5)
