"""One-call construction of a complete remote-memory-paging testbed.

Every experiment needs the same assembly: a simulator, a network, a
client workstation, donor workstations running memory servers, a
reliability policy, the RMP, and a VM machine to drive it.
:func:`build_cluster` wires all of that, parameterised the way the
paper's experiments are ("4 servers plus a parity server, all devoting
10% overflow memory").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..cluster.registry import ServerRegistry
from ..cluster.workstation import Workstation
from ..config import (
    DEC_ALPHA_3000_300,
    DEC_RZ55,
    TCP_IP_1996,
    DiskSpec,
    EthernetSpec,
    MachineSpec,
    ProtocolSpec,
    SwitchedNetworkSpec,
)
from ..disk.backend import PartitionBackend
from ..disk.model import Disk
from ..errors import ConfigurationError
from ..net.base import Network
from ..net.ethernet import EthernetCsmaCd
from ..net.protocol import ProtocolStack, RetrySpec
from ..net.switched import SwitchedNetwork
from ..net.token_ring import TokenRing, TokenRingSpec
from ..obs.health import HealthMonitor, HealthSpec
from ..obs.metrics import MetricsRegistry
from ..obs.telemetry import LogHistogram, TelemetrySampler
from ..obs.trace import current_tracer
from ..pipeline import PipelineSpec
from ..sim import RngRegistry, Simulator
from ..vm.machine import Machine
from ..vm.pager import LocalDiskPager, Pager
from ..vm.replacement import ReplacementPolicy
from .client import RemoteMemoryPager
from .policies.base import ReliabilityPolicy
from .policies.erasure import ErasureCoding, parse_ec_policy
from .policies.mirroring import Mirroring
from .policies.none import NoReliability
from .policies.parity import BasicParity
from .policies.parity_logging import ParityLogging
from .policies.write_through import WriteThrough
from .server import MemoryServer

__all__ = ["Cluster", "build_cluster", "POLICY_NAMES"]

POLICY_NAMES = (
    "disk",
    "no-reliability",
    "mirroring",
    "parity",
    "parity-logging",
    "write-through",
)

#: Generous default server capacity: enough for any paper workload.
_DEFAULT_SERVER_CAPACITY = 4096
_SWAP_SLOTS = 8192


@dataclass
class Cluster:
    """Everything :func:`build_cluster` assembled, ready to run."""

    sim: Simulator
    network: Network
    stack: ProtocolStack
    client_host: Workstation
    machine: Machine
    pager: Pager
    policy: Optional[ReliabilityPolicy]
    servers: List[MemoryServer]
    parity_server: Optional[MemoryServer]
    registry: ServerRegistry
    local_disk: Disk
    server_hosts: List[Workstation] = field(default_factory=list)
    #: Every component's instruments behind dotted names (``pager.*``,
    #: ``server.<id>.*``, ``net.*``, ``policy.*``); snapshots ride in
    #: ``CompletionReport.meta["metrics"]``.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: The seeded stream registry the cluster was built with: fault
    #: injectors draw their dedicated ``faults.*`` streams from it so
    #: chaos never perturbs workload determinism.
    rngs: Optional[RngRegistry] = None
    #: Process count right after assembly — the effect-capsule planner
    #: compares it against ``sim.process_count`` to detect background
    #: activity the capsule could not reproduce.
    baseline_processes: Optional[int] = None
    #: The sim-clock telemetry sampler and its health monitor; both None
    #: unless the cluster was built with ``telemetry_interval > 0``.
    telemetry: Optional[TelemetrySampler] = None
    health: Optional[HealthMonitor] = None
    _effects_replayed: bool = field(default=False, repr=False)

    def run(self, workload, name: Optional[str] = None):
        """Run ``workload`` to completion; returns its CompletionReport.

        When the run is eligible (deterministic workload, batch-capable
        replacement policy, no speculative prefetching — see
        ``repro.compile.plan``), the reference stream is compiled to a
        fault schedule and replayed in O(faults); otherwise it executes
        interpretively.  When, additionally, a recorded *effect capsule*
        matches this exact cluster configuration (see
        ``repro.compile.effects``), the whole run is replayed in O(1)
        kernel events.  Every path produces bit-identical reports.
        """
        from ..compile import capture_effects, plan_run, restore_effects

        if self._effects_replayed:
            # A capsule replay restores observable state only — the
            # backing stores stay empty, so a second workload would
            # fault on pages that were never really paged out.
            raise ConfigurationError(
                "this cluster already served a run from an effect capsule; "
                "build a fresh cluster for another workload"
            )
        run_name = name or workload.name
        if self.telemetry is not None:
            # The kernel Periodic retires when the heap drains; re-arm
            # for this run phase so sampling spans the whole workload.
            self.telemetry.ensure_running()
        plan = plan_run(self, workload)
        if plan.schedule is None:
            return self._finish(
                self.machine.run_to_completion(workload.trace(), name=run_name)
            )
        if plan.effects is not None:
            effects = plan.effects
            self._effects_replayed = True
            return self._finish(self.machine.run_effects_to_completion(
                plan.schedule,
                effects,
                restore=lambda: restore_effects(self, effects),
                name=run_name,
            ))
        if plan.record_key is not None:
            fault_log: List[float] = []
            report = self.machine.run_schedule_to_completion(
                plan.schedule, name=run_name, fault_log=fault_log
            )
            plan.record_cache.put(
                plan.record_key, capture_effects(self, fault_log)
            )
            return self._finish(report)
        return self._finish(
            self.machine.run_schedule_to_completion(plan.schedule, name=run_name)
        )

    def _finish(self, report):
        """Close out telemetry for the run: final sample, health digest.

        The health summary rides in ``report.meta["health"]`` so it
        survives the runner's process pool and the result cache exactly
        like ``meta["metrics"]`` does.
        """
        if self.telemetry is not None:
            self.telemetry.finalize()
            if self.health is not None:
                report.meta["health"] = self.health.summary()
        return report

    def add_spare_server(self, capacity_pages: Optional[int] = None) -> MemoryServer:
        """Register an extra idle donor the pager can recruit (for
        migration targets and crash replacements)."""
        if capacity_pages is None:
            capacity_pages = (
                self.servers[0].capacity_pages if self.servers else _DEFAULT_SERVER_CAPACITY
            )
        index = len(self.server_hosts)
        spec = self.server_hosts[0].spec if self.server_hosts else self.client_host.spec
        host = Workstation(self.sim, f"spare-{index}", spec)
        self.network.attach(host.name)
        server = MemoryServer(
            host, self.stack, capacity_pages=capacity_pages, name=f"spare-{index}"
        )
        self.server_hosts.append(host)
        self.registry.register(server)
        return server


def build_cluster(
    policy: str = "no-reliability",
    n_servers: int = 2,
    seed: int = 0,
    machine_spec: MachineSpec = DEC_ALPHA_3000_300,
    server_spec: Optional[MachineSpec] = None,
    disk_spec: DiskSpec = DEC_RZ55,
    protocol_spec: ProtocolSpec = TCP_IP_1996,
    ethernet_spec: Optional[EthernetSpec] = None,
    switched_spec: Optional[SwitchedNetworkSpec] = None,
    token_ring_spec: Optional["TokenRingSpec"] = None,
    overflow_fraction: float = 0.0,
    server_capacity_pages: int = _DEFAULT_SERVER_CAPACITY,
    content_mode: bool = False,
    replacement: Optional[ReplacementPolicy] = None,
    init_time: float = 0.21,
    network_threshold: Optional[float] = None,
    retry_spec: Optional["RetrySpec"] = None,
    pipeline_window: int = 1,
    pipeline_prefetch: int = 0,
    pipeline_backlog: int = 0,
    compile_schedules: Optional[bool] = None,
    analytic_ethernet: Optional[bool] = None,
    analytic_switched: Optional[bool] = None,
    telemetry_interval: float = 0.0,
    telemetry_capacity: int = 512,
    health_warn_load: float = 0.70,
    health_crit_load: float = 0.90,
    health_warn_delay_ms: float = 20.0,
    health_crit_delay_ms: float = 100.0,
) -> Cluster:
    """Assemble a paper-style testbed.

    ``policy`` selects the paging configuration (the Fig 2 legend):

    * ``"disk"`` — the DISK baseline: requests go straight to the local
      RZ55, no remote pager involved;
    * ``"no-reliability"`` — ``n_servers`` plain memory servers;
    * ``"mirroring"`` — primary + mirror copies (needs >= 2 servers);
    * ``"parity"`` — basic in-place parity, ``n_servers`` + parity server;
    * ``"parity-logging"`` — the paper's policy, ``n_servers`` + parity
      server, all with ``overflow_fraction`` extra memory;
    * ``"write-through"`` — remote copy + parallel local-disk copy;
    * ``"ec-K-M"`` (e.g. ``"ec-4-2"``) — Reed–Solomon erasure coding:
      k data + m parity fragments per page on k+m distinct servers,
      tolerating m crashes at ``(k+m)/k`` overhead.

    ``switched_spec`` replaces the shared Ethernet with a full-duplex
    switched network (the Fig 4 "faster network" configurations).

    ``pipeline_window``/``pipeline_prefetch``/``pipeline_backlog``
    configure the PR 4 pipelined datapath (write-behind pageout queue,
    adaptive prefetcher); the defaults (1, 0, 0) keep the paper's
    synchronous datapath bit-identically.

    ``compile_schedules`` forces the trace-compilation fast path on
    (True) or off (False) for this cluster's machine; None follows the
    process default (on, unless ``--no-compile``/``REPRO_NO_COMPILE``).

    ``analytic_ethernet`` forces the uncontended-medium analytic service
    path of the shared Ethernet on (True) or off (False); None follows
    the process default (on, unless ``--no-analytic-ethernet`` /
    ``REPRO_NO_ANALYTIC_ETH``).  Ignored for switched/token-ring
    networks.  ``analytic_switched`` is the same switch for the
    full-duplex switched fabric's per-port-pair fast path (process
    default: on, unless ``--no-analytic-switched`` /
    ``REPRO_NO_ANALYTIC_SWITCHED``); ignored for other networks.

    ``telemetry_interval`` (simulated seconds) > 0 installs a
    :class:`~repro.obs.telemetry.TelemetrySampler` that records
    per-server utilisation, wire utilisation, queue depth/delay, the
    idle-memory pool, fault/retry rates and a per-fault latency
    histogram into ``telemetry_capacity``-sample ring buffers, plus a
    :class:`~repro.obs.health.HealthMonitor` with the given
    WARN_LOAD/WARN_DELAY-style thresholds.  Sampling pins the run to
    interpreted execution (``compile.bypass reason=telemetry``) so the
    series are identical across ``--jobs`` and cache replay.  All
    telemetry knobs are plain scalars on purpose: they travel through
    ``RunSpec`` overrides and participate in the result-cache
    fingerprint.
    """
    ec_shape = parse_ec_policy(policy)
    if policy not in POLICY_NAMES and ec_shape is None:
        raise ConfigurationError(
            f"unknown policy {policy!r}; choose from {POLICY_NAMES} "
            "or an erasure-coded 'ec-K-M' (e.g. 'ec-4-2')"
        )
    if n_servers < 1:
        raise ConfigurationError("need at least one server")
    if policy == "mirroring" and n_servers < 2:
        raise ConfigurationError("mirroring needs at least two servers")
    if ec_shape is not None:
        ec_k, ec_m = ec_shape
        if ec_k < 1 or ec_m < 1:
            raise ConfigurationError(
                f"erasure coding needs k >= 1 and m >= 1: {policy!r}"
            )
        if n_servers < ec_k + ec_m:
            raise ConfigurationError(
                f"{policy} needs at least {ec_k + ec_m} servers "
                f"(k + m fragments on distinct servers), got {n_servers}"
            )

    if switched_spec is not None and token_ring_spec is not None:
        raise ConfigurationError("choose one of switched_spec / token_ring_spec")
    sim = Simulator()
    rngs = RngRegistry(seed=seed)
    if switched_spec is not None:
        network: Network = SwitchedNetwork(
            sim, spec=switched_spec, analytic=analytic_switched
        )
    elif token_ring_spec is not None:
        network = TokenRing(sim, spec=token_ring_spec)
    else:
        network = EthernetCsmaCd(
            sim, spec=ethernet_spec, rngs=rngs, analytic=analytic_ethernet
        )
    stack = ProtocolStack(network, spec=protocol_spec)
    if retry_spec is not None:
        stack.retry = retry_spec
    registry = ServerRegistry()

    client_host = Workstation(sim, "client", machine_spec)
    network.attach(client_host.name)
    local_disk = Disk(sim, disk_spec)
    disk_backend = PartitionBackend(local_disk, machine_spec.page_size, _SWAP_SLOTS)

    spec = server_spec or machine_spec
    # Donor hosts are dedicated to serving here; give them headroom so a
    # server can claim the configured capacity (plus overflow and the
    # parity server's share).
    donor_spec = MachineSpec(
        name=f"{spec.name}-donor",
        ram_bytes=max(
            spec.ram_bytes,
            int((server_capacity_pages * (1 + overflow_fraction) + 1024)
                * spec.page_size) + spec.kernel_resident_bytes,
        ),
        kernel_resident_bytes=spec.kernel_resident_bytes,
        cpu_speed=spec.cpu_speed,
        page_size=spec.page_size,
    )

    def make_server(index: int, label: str) -> MemoryServer:
        host = Workstation(sim, f"{label}-{index}", donor_spec)
        network.attach(host.name)
        server = MemoryServer(
            host,
            stack,
            capacity_pages=server_capacity_pages,
            overflow_fraction=overflow_fraction,
            name=f"{label}-{index}",
        )
        server_hosts.append(host)
        return server

    server_hosts: List[Workstation] = []
    servers: List[MemoryServer] = []
    parity_server: Optional[MemoryServer] = None
    policy_obj: Optional[ReliabilityPolicy] = None
    page_size = machine_spec.page_size

    if policy == "disk":
        pager: Pager = LocalDiskPager(disk_backend)
    else:
        servers = [make_server(i, "server") for i in range(n_servers)]
        if policy in ("parity", "parity-logging"):
            parity_server = make_server(0, "parity")
        if policy == "no-reliability":
            policy_obj = NoReliability(
                client_host.name, stack, servers, page_size=page_size
            )
        elif policy == "mirroring":
            policy_obj = Mirroring(
                client_host.name, stack, servers, page_size=page_size
            )
        elif policy == "parity":
            policy_obj = BasicParity(
                client_host.name, stack, servers, parity_server, page_size=page_size
            )
        elif policy == "parity-logging":
            policy_obj = ParityLogging(
                client_host.name,
                stack,
                servers,
                parity_server,
                content_mode=content_mode,
                page_size=page_size,
            )
        elif policy == "write-through":
            wt_backend = PartitionBackend(local_disk, page_size, _SWAP_SLOTS)
            policy_obj = WriteThrough(
                client_host.name, stack, servers, wt_backend, page_size=page_size
            )
        elif ec_shape is not None:
            policy_obj = ErasureCoding(
                client_host.name, stack, servers,
                k=ec_shape[0], m=ec_shape[1], page_size=page_size,
            )
        pipeline_spec = PipelineSpec(
            window=pipeline_window,
            prefetch=pipeline_prefetch,
            backlog=pipeline_backlog,
        )
        pager = RemoteMemoryPager(
            policy_obj,
            disk_backend=disk_backend,
            registry=registry,
            network_threshold=network_threshold,
            pipeline=pipeline_spec if pipeline_spec.enabled else None,
        )

    machine = Machine(
        sim,
        machine_spec,
        pager,
        replacement=replacement,
        content_mode=content_mode,
        init_time=init_time,
        compile_schedules=compile_schedules,
        name="client",
    )

    # Unify every component's ad-hoc instruments behind dotted names so
    # one snapshot captures the whole cluster's telemetry.
    metrics = MetricsRegistry()
    metrics.attach("machine", machine.counters)
    metrics.attach("pager", pager.counters)
    if isinstance(pager, RemoteMemoryPager):
        metrics.attach("pager.recovery_time", pager.recovery_times)
        if pager.pipeline is not None:
            metrics.attach("pipeline", pager.pipeline.counters)
            metrics.attach("pipeline.queue_depth", pager.pipeline.queue_depth)
            metrics.attach("pipeline.queue_delay", pager.pipeline.queue_delay)
    if policy_obj is not None:
        metrics.attach("policy", policy_obj.counters)
    for server in servers + ([parity_server] if parity_server else []):
        metrics.attach(f"server.{server.name}", server.counters)
        metrics.gauge(f"server.{server.name}.cpu_utilization", server.cpu_utilization)
    metrics.attach("net", network.stats.counters)
    metrics.attach("net.message_latency", network.stats.message_latency)
    metrics.gauge("net.utilization", network.stats.utilization)
    metrics.attach("net.protocol", stack.counters)

    # A process-wide tracer (the CLI's --trace flag) attaches to every
    # new cluster; without one, sim.tracer stays the zero-cost no-op.
    tracer = current_tracer()
    if tracer is not None:
        sim.set_tracer(tracer)

    telemetry: Optional[TelemetrySampler] = None
    health: Optional[HealthMonitor] = None
    if telemetry_interval > 0.0:
        telemetry = TelemetrySampler(
            telemetry_interval, capacity=telemetry_capacity
        )
        sim.set_sampler(telemetry)
        all_servers = servers + ([parity_server] if parity_server else [])
        # Windowed per-server CPU utilisation: differentiate the
        # cumulative cpu_us counter (microseconds -> busy fraction).
        for server in all_servers:
            telemetry.add_probe(
                f"util.server.{server.name}",
                (lambda c=server.counters: c["cpu_us"]),
                mode="rate",
                scale=1e-6,
            )
        # Windowed wire utilisation (settles lazy analytic accounting).
        telemetry.add_probe(
            "util.wire", network.stats.busy_seconds, mode="rate"
        )
        # Windowed mean message latency, in milliseconds.
        latency = network.stats.message_latency
        telemetry.add_probe(
            "net.latency_ms",
            (lambda t=latency: (t.total, t.count)),
            mode="mean",
            scale=1e3,
        )
        # Pageout / write-behind queue depth and queueing delay.
        if isinstance(pager, RemoteMemoryPager) and pager.pipeline is not None:
            pipeline = pager.pipeline
            telemetry.add_probe("queue.depth", lambda p=pipeline: p.pending)
            delay = pipeline.queue_delay
            telemetry.add_probe(
                "queue.delay_ms",
                (lambda t=delay: (t.total, t.count)),
                mode="mean",
                scale=1e3,
            )
        else:
            telemetry.add_probe(
                "queue.depth", lambda m=machine: m.inflight_pageouts
            )
        # Idle-memory pool: free donated pages across every server.
        if all_servers:
            telemetry.add_probe(
                "pool.free_pages",
                lambda ss=tuple(all_servers): sum(s.free_pages for s in ss),
            )
        # Fault and retry pressure, per simulated second.
        telemetry.add_probe(
            "rate.faults", (lambda c=machine.counters: c["faults"]), mode="rate"
        )
        telemetry.add_probe(
            "rate.retries",
            (lambda c=stack.counters: c["rpc_retries"]),
            mode="rate",
        )
        for series_name, series in telemetry.series.items():
            metrics.attach(f"telemetry.{series_name}", series)
        metrics.attach("telemetry.fault_latency", telemetry.fault_latency)
        # Per-pagein latency histogram (fed by the pager's sampler hook;
        # pre-created so it lands in every snapshot, samples or not).
        pagein_hist = telemetry.extra.get("pager.pagein")
        if pagein_hist is None:
            pagein_hist = telemetry.extra["pager.pagein"] = LogHistogram(
                growth=telemetry.fault_latency.growth
            )
        metrics.attach("telemetry.pager.pagein", pagein_hist)
        health = HealthMonitor(
            telemetry,
            HealthSpec(
                warn_load=health_warn_load,
                crit_load=health_crit_load,
                warn_delay_ms=health_warn_delay_ms,
                crit_delay_ms=health_crit_delay_ms,
            ),
        )
        health.bind(sim)

    return Cluster(
        sim=sim,
        network=network,
        stack=stack,
        client_host=client_host,
        machine=machine,
        pager=pager,
        policy=policy_obj,
        servers=servers,
        parity_server=parity_server,
        registry=registry,
        local_disk=local_disk,
        server_hosts=server_hosts,
        metrics=metrics,
        rngs=rngs,
        # Stamped after assembly: any process spawned beyond this count
        # (background load, fault injectors) disqualifies capsule replay.
        baseline_processes=sim.process_count,
        telemetry=telemetry,
        health=health,
    )
