"""Ablations of the reproduction's own design choices.

DESIGN.md calls out three modelling decisions that shape the results;
each gets an ablation so their effect is measured, not asserted:

* **replacement policy** — exact LRU (our default, OSF/1-like) vs Clock
  vs FIFO.  Clock's ring order interacts pathologically with
  alternating-direction sweeps (it evicts exactly what the reverse pass
  needs next), inflating fault counts far beyond the paper's measured
  values — the reason LRU is the experiment default.
* **pageout window** — asynchronous write-back depth.  Window 1
  (synchronous pageouts) serialises every dirty eviction into the fault
  path; deeper windows overlap write-back with compute and let disk
  writes batch.
* **free batch** — how many frames the paging daemon reclaims per
  shortfall.  Batch 1 defeats disk write clustering (every sequential
  write misses its rotational window); batched eviction restores
  streaming, which is what makes the DISK baseline as fast as the paper
  measured.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.report import format_table
from ..runner import RunSpec, default_runner

__all__ = [
    "run_replacement_ablation",
    "run_pageout_window_ablation",
    "run_free_batch_ablation",
    "run_prefetch_ablation",
    "render_ablation",
]


def run_replacement_ablation(
    policies=("lru", "clock", "fifo"), workload: str = "gauss", runner=None
) -> Dict[str, Dict[str, float]]:
    """Run GAUSS under each replacement policy."""
    policies = list(policies)
    specs = [
        RunSpec.make(
            workload,
            "no-reliability",
            overrides={"replacement": name},
            label=f"{workload}/replacement={name}",
        )
        for name in policies
    ]
    results: Dict[str, Dict[str, float]] = {}
    for name, result in zip(policies, (runner or default_runner()).run(specs)):
        results[name] = {
            "etime": result.report.etime,
            "pageins": result.report.pageins,
            "pageouts": result.report.pageouts,
        }
    return results


def run_pageout_window_ablation(
    windows=(1, 4, 16), workload: str = "gauss", policy: str = "no-reliability",
    runner=None,
) -> Dict[int, Dict[str, float]]:
    """Sweep the asynchronous write-back window."""
    windows = list(windows)
    specs = [
        RunSpec.make(
            workload,
            policy,
            machine_attrs={"pageout_window": window},
            label=f"{workload}/window={window}",
        )
        for window in windows
    ]
    results: Dict[int, Dict[str, float]] = {}
    for window, result in zip(windows, (runner or default_runner()).run(specs)):
        results[window] = {
            "etime": result.report.etime,
            "pageouts": result.report.pageouts,
        }
    return results


def run_free_batch_ablation(
    batches=(1, 4, 16), workload: str = "gauss", policy: str = "disk", runner=None
) -> Dict[int, Dict[str, float]]:
    """Sweep the paging daemon reclaim batch size."""
    batches = list(batches)
    specs = [
        RunSpec.make(
            workload,
            policy,
            machine_attrs={"free_batch": batch},
            label=f"{workload}/batch={batch}",
        )
        for batch in batches
    ]
    results: Dict[int, Dict[str, float]] = {}
    for batch, result in zip(batches, (runner or default_runner()).run(specs)):
        results[batch] = {
            "etime": result.report.etime,
            "pageouts": result.report.pageouts,
        }
    return results


def render_ablation(results: Dict, title: str, key_label: str) -> str:
    """Generic one-key ablation table."""
    sample = next(iter(results.values()))
    metrics = list(sample)
    rows = []
    for key in results:
        row = [key] + [
            f"{results[key][m]:.1f}" if isinstance(results[key][m], float) else results[key][m]
            for m in metrics
        ]
        rows.append(row)
    return format_table([key_label] + metrics, rows, title=title)


def run_prefetch_ablation(
    depths=(0, 2, 8), policy: str = "no-reliability", runner=None
) -> Dict[int, Dict[str, float]]:
    """Sequential read-ahead depth vs completion time (streaming scan)."""
    depths = list(depths)
    specs = [
        RunSpec.make(
            "sequential-scan",
            policy,
            workload_kwargs={
                "n_pages": 3000, "passes": 3, "write": True, "cpu_per_page": 1e-3,
            },
            machine_attrs={"prefetch": depth},
            label=f"scan/prefetch={depth}",
        )
        for depth in depths
    ]
    results: Dict[int, Dict[str, float]] = {}
    for depth, result in zip(depths, (runner or default_runner()).run(specs)):
        results[depth] = {
            "etime": result.report.etime,
            "demand_faults": result.report.faults,
            "prefetched": result.report.counters.get("prefetched", 0),
        }
    return results
