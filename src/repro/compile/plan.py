"""Eligibility, caching, and dispatch for compiled replay.

:func:`plan_run` is the single integration point ``Cluster.run``
consults before executing a workload: it decides whether the run may
use the batch-replay fast path, fetches or compiles the fault
schedule, decides whether a recorded *effect capsule* (see
:mod:`repro.compile.effects`) can serve the whole run, and emits
``compile.*`` trace events so every decision is visible in a
``--trace`` recording.  :func:`plan_replay` is the schedule-only
subset, kept for callers that dispatch replay themselves.

Compilation is on by default but **strictly conservative** — it engages
only when the resident set is a pure function of the reference stream:

* the workload declares itself deterministic (every ``trace()`` call
  yields the same stream);
* the replacement policy supports the batch-step API (FIFO/LRU/Clock);
* no speculative fetch can perturb residency: both the machine-level
  read-ahead (``Machine.prefetch``) and the PR 4 adaptive prefetcher
  bypass to interpreted execution, with a ``compile.bypass`` event.

Anything that only acts *pager-side* — write-behind windows, chaos
fault injection, RPC retries, background load — cannot change which
references fault, so those runs stay compiled (and stay byte-identical;
``tests/compile`` pins the chaos campaigns).  The effect capsule is
stricter still (per-op fidelity matters there): every capsule decision
is reported as ``compile.vectorized`` (capsule replay) or
``compile.fallback`` (kernel replay, with the reason).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Optional

from .compiler import compile_trace
from .effects import (
    RunEffects,
    effects_bypass_reason,
    effects_cache_enabled,
    effects_key,
    validate_effects,
)
from .schedule import FaultSchedule

__all__ = [
    "ReplayPlan",
    "plan_run",
    "plan_replay",
    "plan_fleet",
    "fleet_bypass_reason",
    "compile_enabled",
    "set_compile_enabled",
    "schedule_cache_enabled",
]

_process_default: Optional[bool] = None


def set_compile_enabled(enabled: Optional[bool]) -> None:
    """Process-wide override: True/False force, None restores the default
    (on unless ``REPRO_NO_COMPILE`` is set in the environment)."""
    global _process_default
    _process_default = enabled


def compile_enabled() -> bool:
    """The process-wide default for trace compilation."""
    if _process_default is not None:
        return _process_default
    return not os.environ.get("REPRO_NO_COMPILE")


def schedule_cache_enabled() -> bool:
    """Whether compiled schedules may be cached on disk (the CLI's
    ``--no-cache`` clears this via ``REPRO_SCHEDULE_CACHE=0``)."""
    return os.environ.get("REPRO_SCHEDULE_CACHE", "1") != "0"


@dataclass
class ReplayPlan:
    """How ``Cluster.run`` should execute one workload.

    * ``schedule is None`` — interpreted execution.
    * ``schedule`` set, ``effects is None``, no ``record_key`` — plain
      per-fault kernel replay.
    * ``effects`` set — replay the effect capsule (O(1) kernel events).
    * ``record_key`` set — kernel replay, then record a capsule for the
      next identical run.
    """

    schedule: Optional[FaultSchedule] = None
    effects: Optional[RunEffects] = None
    record_cache: Any = None
    record_key: Any = None


def _bypass_reason(machine, pager, workload) -> Optional[str]:
    """Why this run must stay interpreted, or None when eligible."""
    if getattr(machine.sim.sampler, "enabled", False):
        # Telemetry sampling wants the real event-by-event timeline:
        # merged-chunk replay lumps utime between fault boundaries and
        # would distort mid-run samples, so sampled runs pin themselves
        # to interpreted execution (and thereby stay deterministic
        # across --jobs and cache replay).
        return "telemetry"
    if not getattr(workload, "deterministic", False):
        return "nondeterministic-workload"
    if getattr(machine, "prefetch", 0):
        return "machine-prefetch"
    pipeline = getattr(pager, "pipeline", None)
    if pipeline is not None and getattr(pipeline, "prefetcher", None) is not None:
        return "pipeline-prefetch"
    policy = machine.replacement
    if not getattr(policy, "supports_batch_touch", False):
        return f"replacement:{getattr(policy, 'name', type(policy).__name__)}"
    if machine.spec.user_frames < 1:
        # Let the interpreted path raise its configuration error.
        return "no-user-frames"
    return None


def _schedule_key(machine, workload, token) -> dict:
    """Everything that determines the compiled schedule's content."""
    spec = machine.spec
    return {
        "workload": list(token),
        "replacement": machine.replacement.name,
        "user_frames": spec.user_frames,
        "page_size": spec.page_size,
        "cpu_speed": spec.cpu_speed,
        "max_cpu_chunk": machine.max_cpu_chunk,
        "free_batch": machine.free_batch,
    }


def _freeze_key(key: dict) -> tuple:
    """A hashable token for in-memory schedule dedupe within one fleet."""
    return tuple(sorted((name, repr(value)) for name, value in key.items()))


def _plan_machine_schedule(machine, pager, workload, shared=None):
    """Schedule decision for one (machine, pager, workload) triple:
    (schedule, key) — key is None when the workload has no identity
    token.  Emits bypass/cache-hit/compiled.  ``shared`` is an optional
    in-memory pool (see :func:`plan_fleet`): identical clients compile
    once and replay the same schedule object — safe because replay
    *copies* the captured policy state into each machine
    (``Machine._restore_schedule_state``) and never mutates the
    schedule."""
    tracer = machine.sim.tracer

    enabled = machine.compile_schedules
    if enabled is None:
        enabled = compile_enabled()
    if not enabled:
        tracer.emit("compile", "bypass", reason="disabled")
        return None, None

    reason = _bypass_reason(machine, pager, workload)
    if reason is not None:
        tracer.emit("compile", "bypass", reason=reason)
        return None, None

    token = workload.schedule_token() if hasattr(workload, "schedule_token") else None
    key: Any = None
    cache = None
    frozen = None
    if token is not None:
        key = _schedule_key(machine, workload, token)
        if shared is not None:
            frozen = _freeze_key(key)
            schedule = shared.get(frozen)
            if schedule is not None:
                tracer.emit(
                    "compile", "fleet-shared",
                    faults=schedule.n_faults, refs=schedule.n_refs,
                )
                return schedule, key
        if schedule_cache_enabled():
            from ..runner.cache import ScheduleCache

            cache = ScheduleCache()
            schedule = cache.get(key)
            if schedule is not None:
                tracer.emit(
                    "compile", "cache-hit",
                    faults=schedule.n_faults, refs=schedule.n_refs,
                )
                if frozen is not None:
                    shared[frozen] = schedule
                return schedule, key

    started = perf_counter()
    schedule = compile_trace(
        workload.trace(),
        user_frames=machine.spec.user_frames,
        policy=type(machine.replacement)(),
        cpu_speed=machine.spec.cpu_speed,
        max_cpu_chunk=machine.max_cpu_chunk,
        free_batch=machine.free_batch,
    )
    wall_ms = (perf_counter() - started) * 1e3
    if cache is not None:
        schedule.meta = dict(key)
        cache.put(key, schedule)
    tracer.emit(
        "compile", "compiled",
        faults=schedule.n_faults, refs=schedule.n_refs,
        ops=schedule.n_ops, wall_ms=round(wall_ms, 3),
        cached=cache is not None,
    )
    if frozen is not None:
        shared[frozen] = schedule
    return schedule, key


def _plan_schedule(cluster, workload):
    """Single-cluster wrapper around :func:`_plan_machine_schedule`."""
    return _plan_machine_schedule(cluster.machine, cluster.pager, workload)


def fleet_bypass_reason(clients, network=None) -> Optional[str]:
    """Why a whole fleet must stay interpreted, or None when eligible.

    Per-client schedules are *reliability- and network-blind* (a fault
    sequence in CPU time), so N replays on one kernel reconcile shared
    contention exactly — **when** contention resolves without randomness
    and the clients are truly isolated (§6: "clients never share their
    swap spaces").  Two fleet-level couplings break that:

    * ``shared-ethernet`` — a collision medium resolves cross-client
      contention through per-station backoff RNG; the draw interleaving
      depends on kernel event ordering that merged-chunk replay does
      not reproduce.  Only the switched fabric (per-port full-duplex
      resources, no RNG) is replay-safe.
    * ``cross-client-coupling`` — a :class:`MemoryServer` instance (or
      parity server) serving two pagers couples their replacement state;
      schedules compiled in isolation would be wrong.
    """
    from ..net.switched import SwitchedNetwork

    if network is not None and not isinstance(network, SwitchedNetwork):
        return "shared-ethernet"
    owners: dict = {}
    for _, pager, _ in clients:
        policy = pager.policy
        servers = list(getattr(policy, "servers", ()))
        parity = getattr(policy, "parity_server", None)
        if parity is not None:
            servers.append(parity)
        for server in servers:
            owner = owners.setdefault(id(server), pager)
            if owner is not pager:
                return "cross-client-coupling"
    return None


def plan_fleet(clients, network=None):
    """Schedule decisions for N co-simulated clients.

    ``clients`` is a sequence of ``(machine, pager, workload)`` triples
    sharing one kernel; ``network`` is the fabric they page over.
    Returns a list of per-client :class:`FaultSchedule`\\ s (``None`` =
    interpret that client), aligned with ``clients``.  A fleet-level
    coupling (see :func:`fleet_bypass_reason`) pins *every* client to
    interpreted execution; otherwise each client is planned
    independently, and identical clients share one compiled schedule
    via an in-memory pool (compile once, replay N times)."""
    clients = list(clients)
    schedules: list = [None] * len(clients)
    if not clients:
        return schedules
    tracer = clients[0][0].sim.tracer
    reason = fleet_bypass_reason(clients, network)
    if reason is not None:
        tracer.emit("compile", "bypass", reason=reason, scope="fleet")
        return schedules
    shared: dict = {}
    for i, (machine, pager, workload) in enumerate(clients):
        schedules[i], _ = _plan_machine_schedule(
            machine, pager, workload, shared=shared
        )
    return schedules


def plan_replay(cluster, workload) -> Optional[FaultSchedule]:
    """Schedule-only decision (the PR 5 interface, unchanged).

    Returns a :class:`FaultSchedule` to replay, or None to execute the
    reference stream interpretively.
    """
    schedule, _ = _plan_schedule(cluster, workload)
    return schedule


def plan_run(cluster, workload) -> ReplayPlan:
    """Full decision for ``Cluster.run``: schedule plus effect capsule."""
    schedule, key = _plan_schedule(cluster, workload)
    if schedule is None:
        return ReplayPlan()
    tracer = cluster.machine.sim.tracer

    if key is None:
        reason: Optional[str] = "uncacheable-workload"
    elif not schedule_cache_enabled():
        reason = "cache-disabled"
    elif not effects_cache_enabled():
        reason = "effects-disabled"
    else:
        reason = effects_bypass_reason(cluster)
    if reason is not None:
        tracer.emit("compile", "fallback", reason=reason)
        return ReplayPlan(schedule=schedule)

    from ..runner.cache import EffectCache

    ecache = EffectCache()
    ekey = effects_key(cluster, key)
    effects = ecache.get(ekey)
    if effects is not None:
        if not validate_effects(cluster, effects):
            tracer.emit("compile", "fallback", reason="effects-mismatch")
            return ReplayPlan(schedule=schedule)
        tracer.emit(
            "compile", "vectorized",
            faults=schedule.n_faults, refs=schedule.n_refs,
            **{f"ptime_{k}": v for k, v in
               effects.meta.get("decomposition", {}).items()},
        )
        return ReplayPlan(schedule=schedule, effects=effects)
    tracer.emit("compile", "fallback", reason="effects-cold")
    return ReplayPlan(schedule=schedule, record_cache=ecache, record_key=ekey)
