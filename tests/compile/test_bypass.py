"""Eligibility gating: when compilation must stand down, visibly.

Speculative fetches perturb the resident set, so any prefetching run —
machine-level read-ahead or the PR 4 adaptive prefetcher — must execute
interpretively, announced by a ``compile.bypass`` trace event.
"""

import pytest

from repro.compile import plan_replay, set_compile_enabled
from repro.config import MachineSpec
from repro.core.builder import build_cluster
from repro.obs.trace import Tracer, install_tracer, uninstall_tracer
from repro.workloads import SequentialScan

_SMALL = MachineSpec(
    name="bypass-small",
    ram_bytes=2 * 1024 * 1024,
    kernel_resident_bytes=1 * 1024 * 1024,
    page_size=8192,
)


@pytest.fixture(autouse=True)
def _no_schedule_cache(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULE_CACHE", "0")


@pytest.fixture()
def tracer():
    tracer = Tracer()
    install_tracer(tracer)
    yield tracer
    uninstall_tracer()


def _compile_events(tracer):
    return [
        (record["event"], record.get("attrs", {}))
        for record in tracer.events
        if record["component"] == "compile"
    ]


def _workload():
    return SequentialScan(n_pages=300, passes=2, write=True)


def _cluster(**overrides):
    return build_cluster(
        policy="no-reliability", n_servers=2, seed=1, machine_spec=_SMALL, **overrides
    )


def test_eligible_run_emits_compiled_event_and_replay_span(tracer):
    cluster = _cluster()
    report = cluster.run(_workload())
    events = _compile_events(tracer)
    assert events and events[0][0] == "compiled"
    assert events[0][1]["faults"] == report.faults
    assert events[0][1]["refs"] == 300 * 2
    replay_spans = [s for s in tracer.spans if s.component == "compile"]
    assert len(replay_spans) == 1 and replay_spans[0].kind == "replay"


def test_machine_prefetch_bypasses_with_trace_event(tracer):
    cluster = _cluster()
    cluster.machine.prefetch = 4
    cluster.run(_workload())
    assert ("bypass", {"reason": "machine-prefetch"}) in _compile_events(tracer)
    assert not [s for s in tracer.spans if s.component == "compile"]


def test_pipeline_prefetcher_bypasses_with_trace_event(tracer):
    cluster = _cluster(pipeline_window=4, pipeline_prefetch=4)
    cluster.run(_workload())
    assert ("bypass", {"reason": "pipeline-prefetch"}) in _compile_events(tracer)


def test_write_behind_alone_stays_compiled(tracer):
    """Window > 1 with no prefetcher is pager-side only: still compiled."""
    cluster = _cluster(pipeline_window=4)
    cluster.run(_workload())
    assert _compile_events(tracer)[0][0] == "compiled"


def test_nondeterministic_workload_bypasses(tracer):
    workload = _workload()
    workload.deterministic = False
    _cluster().run(workload)
    assert ("bypass", {"reason": "nondeterministic-workload"}) in _compile_events(tracer)


def test_cluster_override_and_process_default(tracer):
    cluster = _cluster(compile_schedules=False)
    cluster.run(_workload())
    assert ("bypass", {"reason": "disabled"}) in _compile_events(tracer)

    set_compile_enabled(False)
    try:
        assert plan_replay(_cluster(), _workload()) is None
        # The per-machine override outranks the process default.
        forced = _cluster(compile_schedules=True)
        assert plan_replay(forced, _workload()) is not None
    finally:
        set_compile_enabled(None)


def test_no_compile_env_disables(tracer, monkeypatch):
    monkeypatch.setenv("REPRO_NO_COMPILE", "1")
    assert plan_replay(_cluster(), _workload()) is None


def test_custom_policy_without_batch_api_bypasses(tracer):
    from repro.vm.replacement import LruReplacement

    class CustomPolicy(LruReplacement):
        name = "custom"
        supports_batch_touch = False

    cluster = _cluster(replacement=CustomPolicy())
    cluster.run(_workload())
    assert ("bypass", {"reason": "replacement:custom"}) in _compile_events(tracer)
