"""Effect capsules: whole-run memoisation for vectorized replay.

A compiled fault schedule makes replay O(faults); an *effect capsule*
makes a repeat of the same run O(1) in kernel events.  The first
eligible kernel replay of a (cluster fingerprint, schedule) cell
records everything the run changes that any report, metric snapshot or
final-state check can observe:

* the final simulation clock (one ``Simulator.at`` event reconciles the
  replay with the kernel at that exact instant);
* the machine's ``utime``/``systime`` accumulators;
* every registry instrument (counters and tallies, restored
  field-for-field so Welford state and snapshots are bit-identical);
* the network wire-utilisation tracker and drop count (the two
  instruments that live outside the registry, read by gauges);
* the per-fault latencies, kept for the §4.3 array-reduced
  decomposition the ``compile.vectorized`` trace event reports.

Replay then restores all of it wholesale — plus the page-version bumps
and final machine state the schedule already carries — and returns the
same :class:`~repro.vm.machine.CompletionReport` byte-for-byte.

Eligibility is **strictly conservative** (see
:func:`effects_bypass_reason`): anything the capsule cannot reproduce
per-event — tracing spans, the pipelined datapath, a chaos-wrapped
network, background processes, a non-fresh cluster — falls back to the
per-fault kernel replay, with a ``compile.fallback`` event naming the
reason.  The capsule key (:func:`effects_key`) reads the *live* cluster
configuration at plan time, so post-build mutations of known knobs
(CPU load, retry specs, crashed servers) address different capsules.

One sharp edge: a capsule replay restores *reported* state only.  The
backing stores (memory servers, swap disk), placement maps and parity
state stay empty, so a replayed cluster cannot run a second workload
(``Cluster.run`` guards this with a clear error) and must not be
inspected below the report/metrics surface.  That is why capsules are
**opt-in**: export ``REPRO_EFFECT_CACHE=1`` (the compile benchmark and
its CI job do) to enable them for sweep-style consumers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..sim import Counter, NullTracer, Tally

__all__ = [
    "RunEffects",
    "EFFECTS_FORMAT",
    "capture_effects",
    "restore_effects",
    "validate_effects",
    "effects_bypass_reason",
    "effects_cache_enabled",
    "effects_key",
    "decompose_ptime",
]

#: Bump when the capsule layout changes incompatibly.
EFFECTS_FORMAT = 1

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


def effects_cache_enabled() -> bool:
    """Whether effect capsules may be recorded and replayed.

    **Opt-in** (``REPRO_EFFECT_CACHE=1``), unlike the schedule cache:
    a capsule replay restores every *reported* surface (CompletionReport,
    metric snapshots, gauges, machine state) but quarantines the cluster
    — backing stores, placement maps, and parity state stay empty, which
    is only acceptable for callers that consume reports and metrics
    (sweep drivers, benchmarks), not for experiments that inspect paging
    internals afterwards.
    """
    return os.environ.get("REPRO_EFFECT_CACHE") == "1"


@dataclass
class RunEffects:
    """Everything one recorded run changed, restorable wholesale."""

    final_now: float
    utime: float
    systime: float
    #: Dotted instrument name -> {"kind": "counter"|"tally", ...payload}.
    instruments: Dict[str, dict]
    #: Wire utilisation tracker internals (TimeWeighted fields + depth).
    wire: Dict[str, float]
    #: Network frame-drop count (outside the stats registry).
    drops: Optional[int]
    #: Per-fault service latencies, in fault order (§4.3 reductions).
    fault_elapsed: List[float]
    #: Protocol-stack CPU accounts: host name -> busy seconds.
    accounts: Dict[str, float] = field(default_factory=dict)
    #: Host memory state: name -> [native_pages, granted_pages].
    hosts: Dict[str, list] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-safe dict for the on-disk effect-capsule cache."""
        return {
            "format": EFFECTS_FORMAT,
            "final_now": self.final_now,
            "utime": self.utime,
            "systime": self.systime,
            "instruments": self.instruments,
            "wire": self.wire,
            "drops": self.drops,
            "fault_elapsed": self.fault_elapsed,
            "accounts": self.accounts,
            "hosts": self.hosts,
            "meta": self.meta,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "RunEffects":
        if data.get("format") != EFFECTS_FORMAT:
            raise ValueError(
                f"incompatible effects format {data.get('format')!r} "
                f"(expected {EFFECTS_FORMAT})"
            )
        return cls(
            final_now=data["final_now"],
            utime=data["utime"],
            systime=data["systime"],
            instruments=data["instruments"],
            wire=data["wire"],
            drops=data["drops"],
            fault_elapsed=data["fault_elapsed"],
            accounts=data.get("accounts", {}),
            hosts=data.get("hosts", {}),
            meta=data.get("meta", {}),
        )


# ------------------------------------------------------------------ capture
def _capture_tally(tally: Tally) -> dict:
    return {
        "kind": "tally",
        "count": tally.count,
        "total": tally.total,
        "mean": tally._mean,
        "m2": tally._m2,
        "min": tally.minimum,
        "max": tally.maximum,
        "samples": list(tally._samples) if tally._samples is not None else None,
    }


def _restore_tally(tally: Tally, payload: dict) -> None:
    tally.count = payload["count"]
    tally.total = payload["total"]
    tally._mean = payload["mean"]
    tally._m2 = payload["m2"]
    tally.minimum = payload["min"]
    tally.maximum = payload["max"]
    if payload["samples"] is not None:
        tally._samples = list(payload["samples"])
    tally._sorted = None


def capture_effects(cluster, fault_elapsed: List[float]) -> RunEffects:
    """Snapshot a just-completed recorded run into a capsule."""
    machine = cluster.machine
    instruments: Dict[str, dict] = {}
    for name, obj in cluster.metrics.instruments().items():
        if isinstance(obj, Counter):
            instruments[name] = {"kind": "counter", "counts": obj.as_dict()}
        elif isinstance(obj, Tally):
            instruments[name] = _capture_tally(obj)
        else:  # pragma: no cover - eligibility rejects opaque instruments
            raise TypeError(f"cannot capture instrument {name!r}: {type(obj)}")
    wire = cluster.network.stats.wire
    all_hosts = [cluster.client_host] + list(cluster.server_hosts)
    capsule = RunEffects(
        final_now=machine.sim.now,
        utime=machine._utime,
        systime=machine._systime,
        instruments=instruments,
        wire={
            "last_time": wire._tw._last_time,
            "level": wire._tw._level,
            "area": wire._tw._area,
            "start": wire._tw._start,
            "depth": wire._depth,
        },
        drops=getattr(cluster.network, "_drops", None),
        fault_elapsed=list(fault_elapsed),
        accounts={
            host: account.busy_seconds
            for host, account in cluster.stack._accounts.items()
        },
        hosts={
            host.name: [host._native_pages, host._granted_pages]
            for host in all_hosts
        },
    )
    capsule.meta["decomposition"] = decompose_ptime(capsule)
    return capsule


def restore_effects(cluster, effects: RunEffects) -> None:
    """Apply a capsule to a fresh cluster (instrument state only; the
    machine-side restore happens in ``Machine._execute_effects``)."""
    live = cluster.metrics.instruments()
    for name, payload in effects.instruments.items():
        obj = live[name]
        if payload["kind"] == "counter":
            obj._counts = dict(payload["counts"])
        else:
            _restore_tally(obj, payload)
    wire = cluster.network.stats.wire
    wire._tw._last_time = effects.wire["last_time"]
    wire._tw._level = effects.wire["level"]
    wire._tw._area = effects.wire["area"]
    wire._tw._start = effects.wire["start"]
    wire._depth = int(effects.wire["depth"])
    if effects.drops is not None:
        cluster.network._drops = effects.drops
    for host, busy in effects.accounts.items():
        cluster.stack.cpu_account(host).busy_seconds = busy
    by_name = {cluster.client_host.name: cluster.client_host}
    by_name.update({h.name: h for h in cluster.server_hosts})
    for name, (native, granted) in effects.hosts.items():
        host = by_name.get(name)
        if host is not None:
            host._native_pages = native
            host._granted_pages = granted


def validate_effects(cluster, effects: RunEffects) -> bool:
    """Structural check before committing to a capsule replay: the live
    registry must expose exactly the instruments the capsule restores,
    with matching kinds.  (A mismatch means the fingerprint missed a
    configuration difference — treat the capsule as a miss.)"""
    live = cluster.metrics.instruments()
    if set(live) != set(effects.instruments):
        return False
    for name, payload in effects.instruments.items():
        obj = live[name]
        if payload["kind"] == "counter" and not isinstance(obj, Counter):
            return False
        if payload["kind"] == "tally" and not isinstance(obj, Tally):
            return False
    if effects.drops is not None and not hasattr(cluster.network, "_drops"):
        return False
    return True


# --------------------------------------------------------------- eligibility
def effects_bypass_reason(cluster) -> Optional[str]:
    """Why this run must stay on per-fault kernel replay, or None."""
    if not effects_cache_enabled():
        return "effects-disabled"
    sim = cluster.machine.sim
    if not isinstance(sim.tracer, NullTracer):
        return "tracing"
    if getattr(cluster.pager, "pipeline", None) is not None:
        return "pipelining"
    if cluster.stack.network is not cluster.network:
        return "chaos-network"
    baseline = getattr(cluster, "baseline_processes", None)
    if baseline is None or sim.process_count != baseline:
        return "background-activity"
    if sim.now != 0.0:
        return "not-fresh"
    wire = cluster.network.stats.wire
    if wire._depth != 0 or wire._tw._area != 0.0 or wire._tw._level != 0.0:
        return "not-fresh"
    for name, obj in cluster.metrics.instruments().items():
        if isinstance(obj, Counter):
            if obj._counts:
                return "not-fresh"
        elif isinstance(obj, Tally):
            if obj.count:
                return "not-fresh"
        else:
            return f"opaque-instrument:{name}"
    return None


def effects_key(cluster, schedule_key: dict) -> dict:
    """Everything (beyond the schedule) that determines run effects.

    Read *live* from the cluster at plan time, so post-build mutation of
    any fingerprinted knob (host CPU load, retry spec, crashed servers,
    thresholds) addresses a different capsule.  Unknown mutations are
    the residual risk; the eligibility gates above exclude every
    dynamic actor (processes, chaos wraps, pipelines, tracers).
    """
    machine = cluster.machine
    stack = cluster.stack
    network = cluster.network

    def host_entry(host) -> list:
        return [
            host.name,
            repr(host.spec),
            host.cpu_load,
            host.native_pages,
            host.granted_pages,
            getattr(host, "reserve_pages", None),
        ]

    def server_entry(server) -> list:
        return [
            server.name,
            type(server).__name__,
            server.capacity_pages,
            server.overflow_fraction,
            bool(server._crashed),
        ]

    all_servers = list(cluster.servers)
    if cluster.parity_server is not None:
        all_servers.append(cluster.parity_server)
    return {
        "format": EFFECTS_FORMAT,
        "schedule": schedule_key,
        "seed": cluster.rngs.seed if cluster.rngs is not None else None,
        "policy": type(cluster.policy).__name__ if cluster.policy else "disk",
        "pager": type(cluster.pager).__name__,
        "network": [
            type(network).__name__,
            repr(getattr(network, "spec", None)),
            getattr(network, "analytic", None),
        ],
        "protocol": [repr(stack.spec), repr(stack.retry)],
        "disk": repr(cluster.local_disk.spec),
        "machine": [
            repr(machine.spec),
            machine.init_time,
            machine.max_cpu_chunk,
            machine.pageout_window,
            machine.free_batch,
            machine.prefetch,
            machine.content_mode,
        ],
        "network_threshold": getattr(cluster.pager, "network_threshold", None),
        "hosts": [host_entry(cluster.client_host)]
        + [host_entry(h) for h in cluster.server_hosts],
        "servers": [server_entry(s) for s in all_servers],
        "metric_names": cluster.metrics.names(),
    }


# ------------------------------------------------------------- decomposition
def decompose_ptime(effects: RunEffects) -> Dict[str, float]:
    """Array-reduced §4.3 view of the recorded fault latencies.

    ``fault_wait`` is the summed per-fault stall (the paper's ptime net
    of the end-of-run drain); the percentiles locate the distribution.
    Diagnostic only — nothing byte-critical consumes these sums.
    """
    if not effects.fault_elapsed:
        return {"fault_wait": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    if _np is not None:
        arr = _np.asarray(effects.fault_elapsed, dtype=_np.float64)
        return {
            "fault_wait": float(arr.sum()),
            "mean": float(arr.mean()),
            "p50": float(_np.percentile(arr, 50)),
            "p95": float(_np.percentile(arr, 95)),
            "max": float(arr.max()),
        }
    data = sorted(effects.fault_elapsed)  # pragma: no cover
    n = len(data)
    return {
        "fault_wait": sum(data),
        "mean": sum(data) / n,
        "p50": data[n // 2],
        "p95": data[min(n - 1, int(0.95 * n))],
        "max": data[-1],
    }
