"""Unit tests for configuration presets, units, and the error hierarchy."""

import pytest

from repro import errors
from repro.config import (
    DEC_ALPHA_3000_300,
    DEC_RZ55,
    ETHERNET_10MBPS,
    PAGE_SIZE,
    TCP_IP_1996,
    EthernetSpec,
    MachineSpec,
    ProtocolSpec,
    fast_network,
)
from repro.units import (
    KB,
    MB,
    days,
    hours,
    kilobytes,
    megabits_per_second,
    megabytes,
    microseconds,
    milliseconds,
    minutes,
    transfer_time,
)


# ------------------------------------------------------------------- units
def test_byte_multiples():
    assert KB == 1024
    assert MB == 1024 * 1024
    assert kilobytes(2) == 2048
    assert megabytes(1.5) == 1536 * 1024


def test_bandwidth_conversion():
    # 10 Mbit/s = 1.25 decimal MB/s.
    assert megabits_per_second(10) == 1_250_000


def test_time_helpers():
    assert milliseconds(1.6) == pytest.approx(0.0016)
    assert microseconds(51.2) == pytest.approx(51.2e-6)
    assert minutes(2) == 120
    assert hours(1) == 3600
    assert days(1) == 86400


def test_transfer_time():
    assert transfer_time(1_250_000, megabits_per_second(10)) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        transfer_time(10, 0)
    with pytest.raises(ValueError):
        transfer_time(-1, 100)


# ----------------------------------------------------------------- presets
def test_paper_machine_preset():
    spec = DEC_ALPHA_3000_300
    assert spec.ram_bytes == 32 * MB
    assert spec.page_size == PAGE_SIZE == 8192
    assert spec.total_frames == 4096
    assert 0 < spec.user_frames < spec.total_frames


def test_ethernet_preset_frame_time():
    # A full 1500 B frame on 10 Mbit/s: (1500+26)/1.25e6 ≈ 1.22 ms.
    assert ETHERNET_10MBPS.frame_time(1500) == pytest.approx(1526 / 1_250_000)


def test_rz55_preset():
    assert DEC_RZ55.avg_seek == pytest.approx(0.016)
    assert DEC_RZ55.sustained_bandwidth == DEC_RZ55.bandwidth / 2
    assert DEC_RZ55.rotation_time == pytest.approx(1 / 60)


def test_protocol_preset():
    assert TCP_IP_1996.per_page_cpu == pytest.approx(0.0016)


def test_machine_spec_validation():
    with pytest.raises(ValueError):
        MachineSpec(ram_bytes=0)
    with pytest.raises(ValueError):
        MachineSpec(kernel_resident_bytes=64 * MB)  # exceeds RAM
    with pytest.raises(ValueError):
        MachineSpec(cpu_speed=0)


def test_ethernet_spec_validation():
    with pytest.raises(ValueError):
        EthernetSpec(bandwidth=0)
    with pytest.raises(ValueError):
        EthernetSpec(mtu=0)


def test_protocol_spec_validation():
    with pytest.raises(ValueError):
        ProtocolSpec(per_page_cpu=-1)


def test_fast_network_scales_bandwidth():
    assert fast_network(10).bandwidth == megabits_per_second(100)


# ------------------------------------------------------------------ errors
def test_error_hierarchy():
    assert issubclass(errors.PagingError, errors.ReproError)
    assert issubclass(errors.PageNotFound, errors.PagingError)
    assert issubclass(errors.SwapSpaceExhausted, errors.PagingError)
    assert issubclass(errors.ServerCrashed, errors.PagingError)
    assert issubclass(errors.ServerUnavailable, errors.PagingError)
    assert issubclass(errors.RecoveryError, errors.ReproError)
    assert issubclass(errors.ConfigurationError, errors.ReproError)
    assert issubclass(errors.NetworkPartitioned, errors.ReproError)


def test_error_payloads():
    e = errors.PageNotFound(42, where="server-1")
    assert e.page_id == 42 and "server-1" in str(e)
    e = errors.ServerCrashed("s0")
    assert e.server_name == "s0"
    e = errors.ServerUnavailable("s1", reason="full")
    assert e.server_name == "s1" and e.reason == "full"


def test_catching_base_class_catches_all():
    for exc in (
        errors.PageNotFound(1),
        errors.SwapSpaceExhausted(),
        errors.ServerCrashed("x"),
        errors.RecoveryError(),
        errors.NetworkPartitioned(),
    ):
        with pytest.raises(errors.ReproError):
            raise exc
