"""Parallel experiment execution with content-addressed result caching.

The paper's evaluation is a matrix of independent deterministic
simulations; this package turns each cell into a picklable
:class:`RunSpec`, fans cells out over worker processes, and caches
completed reports on disk keyed by (spec, seed, package version,
result-determining source digest).  See DESIGN.md §"Experiment runner".
"""

from .cache import ResultCache, default_cache_dir, fingerprint
from .execute import execute_spec
from .registry import (
    register_extractor,
    register_hook,
    register_workload,
)
from .runner import ExperimentRunner, configure_default_runner, default_runner
from .spec import RunResult, RunSpec

__all__ = [
    "RunSpec",
    "RunResult",
    "ExperimentRunner",
    "ResultCache",
    "execute_spec",
    "fingerprint",
    "default_cache_dir",
    "default_runner",
    "configure_default_runner",
    "register_workload",
    "register_hook",
    "register_extractor",
]
