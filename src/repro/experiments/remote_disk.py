"""Remote memory vs remote disk paging (Comer & Griffioen's result).

The related-work claim we regenerate: remote *memory* paging is "20% to
100% faster than remote disk paging, depending on the disk access
pattern".  The access-pattern dependence comes from the far-end device:
DRAM doesn't care whether pageins arrive sequentially or randomly, the
platter very much does.  We sweep the access pattern from streaming to
random and measure the gap.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.report import format_table
from ..cluster.workstation import Workstation
from ..core.builder import build_cluster
from ..core.remote_disk import RemoteDiskPager, RemoteDiskServer
from ..vm.machine import Machine
from ..workloads import Gauss, SequentialScan, UniformRandom

__all__ = ["run_remote_disk", "render_remote_disk"]


def _remote_disk_cluster(n_servers: int = 2):
    """A cluster whose pager targets the servers' disks, not their DRAM."""
    base = build_cluster(policy="disk")  # reuse sim/network/client assembly
    sim, stack = base.sim, base.stack
    servers = []
    for i in range(n_servers):
        host = Workstation(sim, f"disk-donor-{i}", base.client_host.spec)
        stack.network.attach(host.name)
        servers.append(RemoteDiskServer(host, stack, name=f"disk-server-{i}"))
    pager = RemoteDiskPager(base.client_host.name, stack, servers)
    machine = Machine(sim, base.client_host.spec, pager, init_time=0.21)
    return sim, machine


_PATTERNS = {
    # Sequential re-reads: the remote disk streams, so the gap is small.
    "sequential": lambda: SequentialScan(n_pages=3000, passes=3, write=True,
                                         cpu_per_page=1e-3),
    # A real application's mix.
    "gauss": Gauss,
    # Random access: every remote-disk pagein pays a seek.
    "random": lambda: UniformRandom(n_pages=3000, n_refs=20000,
                                    write_fraction=0.5, cpu_per_page=1e-3, seed=9),
}


def run_remote_disk() -> Dict[str, Dict[str, float]]:
    """Remote memory vs remote disk across three access patterns."""
    results: Dict[str, Dict[str, float]] = {}
    for pattern, factory in _PATTERNS.items():
        memory_cluster = build_cluster(policy="no-reliability", n_servers=2)
        memory_report = memory_cluster.run(factory())
        sim, machine = _remote_disk_cluster(n_servers=2)
        disk_report = sim.run_until_complete(
            machine.run(factory().trace(), name=pattern)
        )
        results[pattern] = {
            "remote_memory": memory_report.etime,
            "remote_disk": disk_report.etime,
            "speedup": disk_report.etime / memory_report.etime - 1.0,
        }
    return results


def render_remote_disk(results: Dict[str, Dict[str, float]]) -> str:
    """Access-pattern sweep table for the §6 comparison."""
    rows = [
        [
            pattern,
            f"{r['remote_memory']:.1f}",
            f"{r['remote_disk']:.1f}",
            f"{r['speedup']:.0%}",
        ]
        for pattern, r in results.items()
    ]
    return format_table(
        ["access pattern", "remote memory (s)", "remote disk (s)", "memory faster by"],
        rows,
        title="Remote memory vs remote disk paging "
        "(Comer & Griffioen: 20%-100% depending on access pattern)",
    )
