"""Machine write-back machinery: windows, batching, in-flight chaining."""

import pytest

from repro.config import DEC_RZ55, PAGE_SIZE, MachineSpec
from repro.disk import Disk, PartitionBackend
from repro.sim import Simulator
from repro.units import megabytes
from repro.vm import LocalDiskPager, Machine, Pager


def small_spec(user_pages=4):
    kernel = megabytes(1)
    return MachineSpec(
        name="tiny",
        ram_bytes=kernel + user_pages * PAGE_SIZE,
        kernel_resident_bytes=kernel,
    )


class SlowPager(Pager):
    """Deterministic 10 ms pageouts / 5 ms pageins; records event order."""

    name = "slow"

    def __init__(self, sim):
        super().__init__()
        self.sim = sim
        self.log = []
        self.inflight = 0
        self.max_inflight = 0
        self._contents = {}

    def pageout(self, page_id, contents=None):
        self.inflight += 1
        self.max_inflight = max(self.max_inflight, self.inflight)
        self.log.append(("out-start", page_id, self.sim.now))
        yield self.sim.timeout(0.010)
        self._contents[page_id] = contents
        self.inflight -= 1
        self.counters.add("pageouts")
        self.counters.add("transfers")
        self.log.append(("out-end", page_id, self.sim.now))

    def pagein(self, page_id):
        if page_id not in self._contents:
            from repro.errors import PageNotFound

            raise PageNotFound(page_id)
        yield self.sim.timeout(0.005)
        self.counters.add("pageins")
        self.counters.add("transfers")
        self.log.append(("in", page_id, self.sim.now))
        return self._contents[page_id]


def test_pageout_window_bounds_inflight():
    sim = Simulator()
    pager = SlowPager(sim)
    machine = Machine(
        sim, small_spec(4), pager, init_time=0.0, pageout_window=2, free_batch=4
    )
    # Dirty 12 pages: 4-at-a-time eviction wants 4 concurrent pageouts,
    # but the window caps it at 2.
    trace = [(p, True, 0.0001) for p in range(12)]
    machine.run_to_completion(trace)
    assert pager.max_inflight == 2


def test_window_one_is_synchronous():
    sim = Simulator()
    pager = SlowPager(sim)
    machine = Machine(
        sim, small_spec(2), pager, init_time=0.0, pageout_window=1, free_batch=1
    )
    trace = [(p, True, 0.0001) for p in range(6)]
    machine.run_to_completion(trace)
    assert pager.max_inflight == 1
    # Pageouts never overlap: each ends before the next starts.
    ends = [t for kind, _, t in pager.log if kind == "out-end"]
    starts = [t for kind, _, t in pager.log if kind == "out-start"]
    for end, next_start in zip(ends, starts[1:]):
        assert next_start >= end


def test_fault_on_inflight_page_waits_for_writeback():
    """A fault on a page whose pageout is still in flight must see the
    written-back data, never a torn/missing page."""
    sim = Simulator()
    pager = SlowPager(sim)
    machine = Machine(
        sim, small_spec(2), pager, init_time=0.0, pageout_window=8, free_batch=1,
        content_mode=True,
    )
    # Dirty page 0, evict it (fault on 1, 2), then immediately re-touch 0.
    trace = [
        (0, True, 0.0001),
        (1, True, 0.0001),
        (2, True, 0.0001),  # evicts 0, async pageout starts
        (0, False, 0.0),  # immediate fault: must wait for the write-back
    ]
    machine.run_to_completion(trace)
    # The pagein of 0 happened after its pageout completed.
    out_end = next(t for kind, p, t in pager.log if kind == "out-end" and p == 0)
    in_time = next(t for kind, p, t in pager.log if kind == "in" and p == 0)
    assert in_time >= out_end


def test_drain_before_completion():
    """The run report is only produced after all write-backs land."""
    sim = Simulator()
    pager = SlowPager(sim)
    machine = Machine(
        sim, small_spec(2), pager, init_time=0.0, pageout_window=8, free_batch=1
    )
    trace = [(p, True, 0.0001) for p in range(8)]
    report = machine.run_to_completion(trace)
    last_out = max(t for kind, _, t in pager.log if kind == "out-end")
    assert report.etime >= last_out


def test_free_batch_lets_disk_writes_stream():
    """With reads interleaving writes, one-at-a-time eviction makes each
    swap write pay a rotation; batched eviction clusters them."""
    from repro.workloads import zigzag_passes

    def elapsed(batch):
        sim = Simulator()
        disk = Disk(sim, DEC_RZ55)
        pager = LocalDiskPager(PartitionBackend(disk, PAGE_SIZE, 4096))
        machine = Machine(
            sim, small_spec(64), pager, init_time=0.0, free_batch=batch
        )
        trace = list(zigzag_passes(0, 256, 3, 0.0001, write=True))
        return machine.run_to_completion(trace).etime

    assert elapsed(16) < 0.9 * elapsed(1)


def test_same_page_repeated_writeback_chain():
    """Two async pageouts of one page preserve write order (chaining)."""
    sim = Simulator()
    pager = SlowPager(sim)
    machine = Machine(
        sim, small_spec(2), pager, init_time=0.0, pageout_window=8, free_batch=1,
        content_mode=True,
    )
    trace = [
        (0, True, 0.0001),
        (1, True, 0.0001),
        (2, True, 0.0001),  # evicts 0 (v1 write-back)
        (0, True, 0.0),     # fault 0 back in, dirty it (v2)
        (3, True, 0.0001),  # evicts 2
        (4, True, 0.0001),  # evicts 0 again (v2 write-back)
        (0, False, 0.0),    # read back: must be v2
    ]
    machine.run_to_completion(trace)  # content verification would fail on v1
    out_ends = [t for kind, p, t in pager.log if kind == "out-end" and p == 0]
    assert len(out_ends) == 2
    assert out_ends[0] < out_ends[1]
    final_in = max(t for kind, p, t in pager.log if kind == "in" and p == 0)
    assert final_in >= out_ends[1]
