"""Analytic switched fast path == the per-event store-and-forward walk.

The switched network's uncontended path precomputes the uplink / switch
hop / downlink-drain boundaries and parks each transfer on one kernel
event; a second flow landing on a held port devirtualizes the hold back
into the ordinary resource walk mid-flight.  These tests pin the
contract: for any arrival pattern, every observable — completion times,
counters, wire utilisation, message-latency tally — is byte-identical
between ``analytic=True`` and ``analytic=False`` runs.  The model draws
no randomness on either path, so there is no RNG axis to check.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PAGE_SIZE, SwitchedNetworkSpec, fast_network
from repro.net import SwitchedNetwork
from repro.sim import Simulator

_SPEC = SwitchedNetworkSpec()


def _drive(analytic, senders, spec=None, bandwidths=None, chaos=None):
    """Run a sender schedule; return every observable as one digest.

    ``senders`` is a list of dicts: ``src``/``dst`` hosts, an ``offset``
    before the first message, and ``sizes`` sent back-to-back.
    ``bandwidths`` optionally overrides per-host link rates and
    ``chaos`` optionally describes a partition window
    ``(segment, cut_at, heal_at)``.
    """
    sim = Simulator()
    net = SwitchedNetwork(sim, spec=spec, analytic=analytic)
    hosts = sorted({h for s in senders for h in (s["src"], s["dst"])})
    for host in hosts:
        net.attach(host, bandwidth=(bandwidths or {}).get(host))
    done = []

    def sender(idx, plan):
        if plan["offset"]:
            yield sim.timeout(plan["offset"])
        for size in plan["sizes"]:
            yield net.transfer(plan["src"], plan["dst"], size)
            done.append((idx, sim.now))

    for idx, plan in enumerate(senders):
        sim.process(sender(idx, plan), name=f"sender-{idx}")
    if chaos is not None:
        segment, cut_at, heal_at = chaos

        def bridge_failure():
            yield sim.timeout(cut_at)
            net.partition(segment)
            yield sim.timeout(heal_at - cut_at)
            net.heal()

        sim.process(bridge_failure(), name="bridge")
    sim.run()
    return {
        "done": done,
        "counters": net.stats.counters.as_dict(),
        "utilization": net.stats.utilization(),
        "busy_seconds": net.stats.busy_seconds(),
        "latency": net.stats.message_latency.as_dict(),
        "now": sim.now,
    }


def _identical(senders, spec=None, bandwidths=None, chaos=None):
    fast = _drive(True, senders, spec=spec, bandwidths=bandwidths, chaos=chaos)
    slow = _drive(False, senders, spec=spec, bandwidths=bandwidths, chaos=chaos)
    assert fast == slow
    return fast


def _chain(spec, nbytes):
    """(t_wire_end, t_hop_end, t_end) for a transfer starting at t=0."""
    full, rest = divmod(nbytes, spec.mtu)
    frames = full + (1 if rest else 0)
    wire = (nbytes + frames * spec.frame_overhead) / spec.bandwidth
    last = nbytes % spec.mtu or spec.mtu
    drain = (min(last, nbytes) + spec.frame_overhead) / spec.bandwidth
    t_wire_end = wire
    t_hop_end = t_wire_end + spec.per_hop_latency
    t_end = t_hop_end + drain
    return t_wire_end, t_hop_end, t_end


# ------------------------------------------------------------ uncontended

def test_uncontended_stream_identical():
    digest = _identical(
        [{"src": "a", "dst": "b", "offset": 0.0,
          "sizes": [PAGE_SIZE, 1400, 100, PAGE_SIZE]}]
    )
    assert digest["counters"]["messages"] == 4


def test_disjoint_pairs_hold_concurrently():
    """Unlike the shared Ethernet's single hold, every disjoint port
    pair runs analytically at the same time — and still matches."""
    digest = _identical(
        [
            {"src": f"h{2 * i}", "dst": f"h{2 * i + 1}", "offset": 0.0,
             "sizes": [PAGE_SIZE, PAGE_SIZE]}
            for i in range(8)
        ]
    )
    assert digest["counters"]["messages"] == 16


def test_uncontended_run_spawns_no_transfer_processes():
    """An uncontended analytic transfer is one parked kernel event plus
    a completion callback — no ``xfer`` process at all."""
    def count_processes(analytic):
        sim = Simulator()
        net = SwitchedNetwork(sim, analytic=analytic)
        net.attach("a")
        net.attach("b")

        def sender():
            for _ in range(20):
                yield net.transfer("a", "b", PAGE_SIZE)

        sim.run_until_complete(sim.process(sender()))
        return sim.process_count

    assert count_processes(True) == 1        # just the sender
    assert count_processes(False) == 1 + 20  # sender + one walk per message


# -------------------------------------------------------- devirtualization

def _window_offsets(spec, nbytes):
    """One offset inside each chain window plus every exact boundary."""
    t_wire_end, t_hop_end, t_end = _chain(spec, nbytes)
    return [
        t_wire_end / 2,               # mid-uplink
        (t_wire_end + t_hop_end) / 2,  # in the switch hop
        (t_hop_end + t_end) / 2,      # draining the downlink
        t_wire_end, t_hop_end, t_end,  # exact boundaries
        t_end * 1.5,                  # after completion
    ]


_OFFSET_IDS = ("mid-wire", "mid-hop", "mid-drain",
               "at-wire-end", "at-hop-end", "at-end", "after-end")


@pytest.mark.parametrize("contention", ["tx", "rx", "both"])
@pytest.mark.parametrize(
    "offset", _window_offsets(_SPEC, PAGE_SIZE),
    ids=_OFFSET_IDS,
)
def test_second_flow_devirtualizes_identically(contention, offset):
    src = "a" if contention in ("tx", "both") else "c"
    dst = "b" if contention in ("rx", "both") else "d"
    digest = _identical(
        [
            {"src": "a", "dst": "b", "offset": 0.0, "sizes": [PAGE_SIZE]},
            {"src": src, "dst": dst, "offset": offset, "sizes": [1400]},
        ]
    )
    assert digest["counters"]["messages"] == 2


def test_zero_hop_latency_boundary_tie():
    """With ``per_hop_latency=0`` the wire-end and hop-end boundaries
    coincide; a flow landing exactly there exercises the tie rule."""
    spec = SwitchedNetworkSpec(per_hop_latency=0.0)
    t_wire_end, _, t_end = _chain(spec, PAGE_SIZE)
    for offset in (t_wire_end, t_wire_end / 2, t_end):
        for dst in ("b", "d"):
            _identical(
                [
                    {"src": "a", "dst": "b", "offset": 0.0,
                     "sizes": [PAGE_SIZE]},
                    {"src": "a", "dst": dst, "offset": offset,
                     "sizes": [1400]},
                ],
                spec=spec,
            )


# Dyadic spec: every boundary float is exact, so same-instant boundary
# ties between independent chains are constructed reliably rather than
# hoped for.  Chain for 8192 B: wire 2^-7, hop 2^-10, drain 2^-10; for
# 1024 B: wire = drain = 2^-10.
_DYADIC = SwitchedNetworkSpec(
    bandwidth=float(2 ** 20), mtu=1024, frame_overhead=0,
    per_hop_latency=2.0 ** -10,
)
_TICK = 2.0 ** -10


def test_devirtualized_resume_wins_sibling_boundary_tie():
    """Two equal-size transfers to one receiver start at the same
    instant; a third small flow devirtualizes the first one's hold
    mid-uplink.  The resumed chain shares its wire-end and hop-end
    boundaries with its sibling exactly, and — being the older chain —
    must still win the downlink FIFO at the hop-end tie, as it does
    event-driven.  (Found by an 8-client fleet campaign: the resume
    used to re-enter the heap at a fresh rank and lose the tie.)"""
    digest = _identical(
        [
            {"src": "a", "dst": "d", "offset": 0.0, "sizes": [8192]},
            {"src": "b", "dst": "d", "offset": 0.0, "sizes": [8192]},
            {"src": "c", "dst": "d", "offset": _TICK, "sizes": [1024]},
        ],
        spec=_DYADIC,
    )
    # c slips through while a is mid-wire; a (older) then beats b.
    assert digest["done"] == [
        (2, 4 * _TICK), (0, 10 * _TICK), (1, 11 * _TICK)
    ]


def test_older_resume_meets_newer_hold_at_its_hop_end():
    """An older devirtualized chain reaches the downlink at exactly a
    *newer* fast hold's hop-end boundary.  The newer hold has not yet
    acquired the port event-driven (its chain ranks later), so it must
    queue behind the older arrival — not be re-granted the port as if
    already draining.  (Found by the same fleet campaign: the phase
    verdict at an exact boundary hit used to ignore chain age.)"""
    digest = _identical(
        [
            {"src": "a", "dst": "d", "offset": 0.0, "sizes": [8192]},
            # e devirtualizes a mid-wire, drains, and gets out of the way.
            {"src": "e", "dst": "d", "offset": _TICK, "sizes": [1024]},
            # b starts exactly its own wire time before a's wire end, so
            # its fresh fast hold ties a's resumed chain on both the
            # wire-end and hop-end boundaries.
            {"src": "b", "dst": "d", "offset": 7 * _TICK, "sizes": [1024]},
        ],
        spec=_DYADIC,
    )
    assert digest["done"] == [
        (1, 4 * _TICK), (0, 10 * _TICK), (2, 11 * _TICK)
    ]


@settings(max_examples=60, deadline=None)
@given(
    offset=st.floats(min_value=0.0, max_value=0.0012, allow_nan=False),
    second_size=st.integers(min_value=1, max_value=2 * PAGE_SIZE),
    contention=st.sampled_from(["tx", "rx", "both"]),
)
def test_arrival_offset_sweep_identical(offset, second_size, contention):
    """Hypothesis sweep over the whole hold window (~0.8 ms for a page):
    wherever the second flow lands, devirtualization must reconstruct
    the exact store-and-forward state."""
    src = "a" if contention in ("tx", "both") else "c"
    dst = "b" if contention in ("rx", "both") else "d"
    _identical(
        [
            {"src": "a", "dst": "b", "offset": 0.0, "sizes": [PAGE_SIZE]},
            {"src": src, "dst": dst, "offset": offset,
             "sizes": [second_size]},
        ]
    )


def test_fan_in_to_one_receiver_identical():
    """Many senders funnelling into one downlink: holds form, devirt,
    and the drain serialisation must serialise identically."""
    digest = _identical(
        [
            {"src": f"s{i}", "dst": "sink", "offset": i * 0.0002,
             "sizes": [PAGE_SIZE, 1400]}
            for i in range(6)
        ]
    )
    assert digest["counters"]["messages"] == 12


def test_many_flows_random_schedule_identical():
    """A deeper soak: staggered bursts over overlapping port pairs,
    repeated devirtualization and re-acquired holds between bursts."""
    rng = random.Random(20260808)
    hosts = [f"h{i}" for i in range(5)]
    senders = []
    for i in range(8):
        src, dst = rng.sample(hosts, 2)
        senders.append({
            "src": src, "dst": dst,
            "offset": rng.uniform(0.0, 0.002),
            "sizes": [rng.randrange(1, PAGE_SIZE + 1) for _ in range(3)],
        })
    digest = _identical(senders)
    assert digest["counters"]["messages"] == 24


def test_back_to_back_holds_after_contention():
    """Contention drains, the fabric goes quiet: later messages must
    re-enter the fast path (and still match the per-event walk)."""
    _identical(
        [
            {"src": "a", "dst": "b", "offset": 0.0,
             "sizes": [1400, PAGE_SIZE]},
            {"src": "a", "dst": "c", "offset": 0.0, "sizes": [1400]},
            # Arrives long after the contenders drained: uncontended.
            {"src": "a", "dst": "b", "offset": 0.1, "sizes": [PAGE_SIZE]},
        ]
    )


def test_heterogeneous_bandwidths_identical():
    """Per-host link rates (§5 heterogeneous networks) flow into the
    precomputed boundaries: min(src, dst) on the wire, dst on drain."""
    _identical(
        [
            {"src": "a", "dst": "b", "offset": 0.0, "sizes": [PAGE_SIZE]},
            {"src": "c", "dst": "b", "offset": 0.0003, "sizes": [PAGE_SIZE]},
            {"src": "a", "dst": "c", "offset": 0.0005, "sizes": [1400]},
        ],
        bandwidths={"a": 12_500_000.0, "b": 1_250_000.0, "c": 6_250_000.0},
    )


def test_partition_window_identical():
    """Transfers stalled at a bridge failure (§2.2) resume on heal; the
    stall path must not corrupt or bypass the analytic bookkeeping."""
    digest = _identical(
        [
            {"src": "a", "dst": "b", "offset": 0.0, "sizes": [PAGE_SIZE]},
            {"src": "c", "dst": "d", "offset": 0.0004,
             "sizes": [PAGE_SIZE, 1400]},
            {"src": "a", "dst": "d", "offset": 0.0006, "sizes": [1400]},
        ],
        chaos=(("a", "b"), 0.0003, 0.0009),
    )
    assert digest["counters"]["partitions"] == 1


# ------------------------------------------------------------------ gating

def test_env_var_disables_fast_path(monkeypatch):
    monkeypatch.setenv("REPRO_NO_ANALYTIC_SWITCHED", "1")
    assert SwitchedNetwork(Simulator()).analytic is False
    monkeypatch.delenv("REPRO_NO_ANALYTIC_SWITCHED")
    assert SwitchedNetwork(Simulator()).analytic is True


def test_chaos_wrapper_pins_per_event():
    """A fault-injecting decorator disables the fast path outright,
    exactly as it does for the analytic Ethernet."""
    from repro.faults.network import UnreliableNetwork

    sim = Simulator()
    inner = SwitchedNetwork(sim)
    assert inner.analytic is True
    UnreliableNetwork(inner, rng=random.Random(1), drop_rate=0.1)
    assert inner.analytic is False

    benign = SwitchedNetwork(sim)
    UnreliableNetwork(benign, rng=random.Random(1))
    assert benign.analytic is True


def test_fast_network_scaling_unchanged():
    """The Figure-4 bandwidth sweep still sees ~linear latency scaling
    through the analytic path."""
    times = {}
    for factor in (1, 10):
        sim = Simulator()
        net = SwitchedNetwork(sim, spec=fast_network(factor), analytic=True)
        net.attach("a")
        net.attach("b")

        def driver():
            yield net.transfer("a", "b", PAGE_SIZE)
            return sim.now

        times[factor] = sim.run_until_complete(sim.process(driver()))
    ratio = times[1] / times[10]
    assert 7.0 < ratio <= 10.5


def test_cluster_ab_byte_identical(tmp_path, monkeypatch):
    """Full-cluster A/B on the analytic-switched axis: paging over the
    analytic fabric must produce the exact CompletionReport and metrics
    snapshot the per-event fabric does."""
    import dataclasses

    from repro.config import MachineSpec
    from repro.core.builder import build_cluster
    from repro.workloads import Gauss

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    spec = MachineSpec(
        name="analytic-switched-small",
        ram_bytes=2 * 1024 * 1024,
        kernel_resident_bytes=1 * 1024 * 1024,
        page_size=8192,
    )

    def run(analytic):
        cluster = build_cluster(
            policy="mirroring", n_servers=2, seed=7, machine_spec=spec,
            switched_spec=SwitchedNetworkSpec(),
            analytic_switched=analytic,
        )
        report = cluster.run(Gauss(n=400, passes=2))
        return dataclasses.asdict(report), cluster.metrics.snapshot()

    report_fast, metrics_fast = run(True)
    report_slow, metrics_slow = run(False)
    assert report_fast == report_slow
    assert metrics_fast == metrics_slow
