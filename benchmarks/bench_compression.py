"""Beyond the paper: page compression's network-speed crossover."""

from repro.experiments import render_compression, run_compression


def test_compression_crossover(benchmark, once):
    results = once(benchmark, run_compression)
    print("\n" + render_compression(results))
    slow = results["ethernet"]
    fast = results["ethernet_x10"]
    # On the wire-bound Ethernet, compression is a large win...
    assert slow[2.0] < 0.85 * slow[1.0]
    assert slow[4.0] < slow[2.0]
    # ...but on a 10x network the fixed CPU cost eats the savings: the
    # gain shrinks dramatically or inverts (the modern-systems trade-off).
    slow_gain = 1 - slow[2.0] / slow[1.0]
    fast_gain = 1 - fast[2.0] / fast[1.0]
    assert fast_gain < slow_gain / 2
