"""Figure 3: FFT completion vs input size, disk vs parity logging."""

from repro.experiments import render_fig3, run_fig3


def test_fig3_input_scaling(benchmark, once):
    results = once(benchmark, run_fig3)
    print("\n" + render_fig3(results))
    disk = {mb: r.etime for mb, r in results["disk"].items()}
    remote = {mb: r.etime for mb, r in results["parity-logging"].items()}
    sizes = sorted(disk)
    # Below the memory cliff both devices are irrelevant (no paging).
    assert results["disk"][sizes[0]].pageins == 0
    # The cliff: completion rises sharply once the working set exceeds
    # memory (paper: past 18 MB).
    assert disk[sizes[-1]] > 1.5 * disk[sizes[0]]
    # Remote memory softens the cliff at every paging size.
    for mb in sizes:
        if results["disk"][mb].pageins > 0:
            assert remote[mb] < disk[mb], f"remote must beat disk at {mb} MB"
    # Completion time is monotone in input size for both curves.
    for curve in (disk, remote):
        values = [curve[mb] for mb in sizes]
        assert values == sorted(values)
