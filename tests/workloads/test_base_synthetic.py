"""Unit and property tests for trace primitives and synthetic workloads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    HotCold,
    Region,
    SequentialScan,
    UniformRandom,
    ZipfAccess,
    sweep,
    zigzag_passes,
)
from repro.workloads.base import Layout


# -------------------------------------------------------------- primitives
def test_sweep_forward_order():
    refs = list(sweep(10, 4, 0.001))
    assert [p for p, _, _ in refs] == [10, 11, 12, 13]
    assert all(not w for _, w, _ in refs)
    assert all(c == 0.001 for _, _, c in refs)


def test_sweep_reverse_order():
    refs = list(sweep(10, 4, 0.0, reverse=True))
    assert [p for p, _, _ in refs] == [13, 12, 11, 10]


def test_sweep_write_flag():
    assert all(w for _, w, _ in sweep(0, 3, 0.0, write=True))


def test_sweep_negative_count_rejected():
    with pytest.raises(ValueError):
        list(sweep(0, -1, 0.0))


def test_zigzag_alternates_direction():
    refs = [p for p, _, _ in zigzag_passes(0, 3, 3, 0.0)]
    assert refs == [0, 1, 2, 2, 1, 0, 0, 1, 2]


def test_zigzag_first_reverse():
    refs = [p for p, _, _ in zigzag_passes(0, 3, 2, 0.0, first_reverse=True)]
    assert refs == [2, 1, 0, 0, 1, 2]


@settings(max_examples=50, deadline=None)
@given(
    start=st.integers(0, 100),
    n=st.integers(1, 50),
    passes=st.integers(1, 5),
)
def test_zigzag_touch_counts(start, n, passes):
    """Every page in the region is touched exactly `passes` times."""
    from collections import Counter

    counts = Counter(p for p, _, _ in zigzag_passes(start, n, passes, 0.0))
    assert set(counts) == set(range(start, start + n))
    assert all(c == passes for c in counts.values())


# ------------------------------------------------------------------ Region
def test_region_properties():
    r = Region("data", 100, 10)
    assert r.end_page == 110
    assert r.page(0) == 100
    assert r.page(9) == 109


def test_region_page_out_of_range():
    r = Region("data", 0, 5)
    with pytest.raises(IndexError):
        r.page(5)
    with pytest.raises(IndexError):
        r.page(-1)


def test_region_empty_rejected():
    with pytest.raises(ValueError):
        Region("x", 0, 0)


def test_layout_allocates_consecutively():
    layout = Layout(page_size=4096)
    a = layout.add("a", 4096 * 3)
    b = layout.add("b", 1)  # rounds up to one page
    assert a.start_page == 0 and a.n_pages == 3
    assert b.start_page == 3 and b.n_pages == 1
    assert layout.total_pages == 4


# -------------------------------------------------------------- synthetics
def test_sequential_scan_shape():
    wl = SequentialScan(n_pages=10, passes=2, write=True)
    refs = list(wl.trace())
    assert len(refs) == 20
    assert all(w for _, w, _ in refs)


def test_uniform_random_deterministic_by_seed():
    a = list(UniformRandom(50, 200, seed=1).trace())
    b = list(UniformRandom(50, 200, seed=1).trace())
    c = list(UniformRandom(50, 200, seed=2).trace())
    assert a == b
    assert a != c


def test_uniform_random_within_region():
    wl = UniformRandom(50, 500, seed=3)
    assert all(0 <= p < 50 for p, _, _ in wl.trace())


def test_uniform_random_write_fraction_extremes():
    all_reads = UniformRandom(10, 100, write_fraction=0.0, seed=0)
    assert not any(w for _, w, _ in all_reads.trace())
    all_writes = UniformRandom(10, 100, write_fraction=1.0, seed=0)
    assert all(w for _, w, _ in all_writes.trace())


def test_uniform_random_validation():
    with pytest.raises(ValueError):
        UniformRandom(10, 10, write_fraction=1.5)


def test_zipf_concentrates_on_low_ranks():
    from collections import Counter

    wl = ZipfAccess(n_pages=100, n_refs=5000, skew=1.2, seed=4)
    counts = Counter(p for p, _, _ in wl.trace())
    top_decile = sum(counts.get(p, 0) for p in range(10))
    assert top_decile > 0.5 * 5000  # the head dominates


def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfAccess(n_pages=10, n_refs=10, skew=0.0)


def test_hotcold_hot_dominates():
    wl = HotCold(hot_pages=10, cold_pages=90, n_refs=2000, hot_fraction=0.9, seed=5)
    hot_refs = sum(1 for p, _, _ in wl.trace() if p < 10)
    assert hot_refs > 1600


def test_hotcold_validation():
    with pytest.raises(ValueError):
        HotCold(10, 10, 10, hot_fraction=2.0)
