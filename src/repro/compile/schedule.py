"""The fault-schedule artifact: a compiled reference stream.

A schedule is a flat list of ops, in execution order:

* ``["c", amount]`` — flush ``amount`` simulated CPU seconds as one
  timeout.  These are the *exact* ``pending_cpu`` values the interpreted
  hot loop would flush (accumulated in the same float order, cut at the
  same ``max_cpu_chunk`` boundaries and fault points), so the replay's
  timeout sequence is bit-identical — run-length encoding of the
  resident-hit spans between faults.
* ``["b", [page_id, ...]]`` — version bumps for pages first-written
  during the preceding hit span (clean->dirty transitions).  Bumps only
  feed ``PageVersioner.contents`` reads, which happen at fault time, so
  applying them at the span boundary preserves every pageout payload.
* ``["f", page_id, is_write, needs_pagein, [victim_id, ...]]`` — one
  recorded page fault: the faulting page, whether the reference wrote,
  whether the page is on backing store (pagein) or fresh (zero-fill),
  and the *dirty* victims the batch eviction pages out, in eviction
  order.  Clean victims leave no trace at fault time (their page-table
  flags are part of ``final_ptes``).

``policy_state`` and ``final_ptes`` snapshot the replacement policy and
every touched page-table entry as interpreted execution would leave
them, so a replayed machine is indistinguishable after the run too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["FaultSchedule", "SCHEDULE_FORMAT"]

#: Bump when the op or artifact layout changes incompatibly.
SCHEDULE_FORMAT = 1


@dataclass
class FaultSchedule:
    """A compiled reference stream, ready for ``Machine.run_schedule``."""

    ops: List[list]
    n_refs: int
    n_faults: int
    policy_state: Any
    final_ptes: List[list]
    #: Provenance: the cache key fields the schedule was compiled under.
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (floats round-trip exactly via repr)."""
        return {
            "format": SCHEDULE_FORMAT,
            "ops": self.ops,
            "n_refs": self.n_refs,
            "n_faults": self.n_faults,
            "policy_state": self.policy_state,
            "final_ptes": self.final_ptes,
            "meta": self.meta,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "FaultSchedule":
        if data.get("format") != SCHEDULE_FORMAT:
            raise ValueError(
                f"incompatible schedule format {data.get('format')!r} "
                f"(expected {SCHEDULE_FORMAT})"
            )
        return cls(
            ops=data["ops"],
            n_refs=data["n_refs"],
            n_faults=data["n_faults"],
            policy_state=data["policy_state"],
            final_ptes=data["final_ptes"],
            meta=data.get("meta", {}),
        )
