"""PipelineSpec validation and derived properties."""

import pytest

from repro.pipeline import PipelineSpec


def test_defaults_are_the_synchronous_datapath():
    spec = PipelineSpec()
    assert spec.window == 1
    assert spec.prefetch == 0
    assert not spec.enabled
    assert not spec.write_behind


def test_window_enables_write_behind():
    spec = PipelineSpec(window=4)
    assert spec.enabled and spec.write_behind


def test_prefetch_alone_enables_without_write_behind():
    spec = PipelineSpec(prefetch=8)
    assert spec.enabled and not spec.write_behind


def test_default_backlog_scales_with_window():
    assert PipelineSpec(window=4).max_backlog == 32
    assert PipelineSpec(window=4, backlog=5).max_backlog == 5


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(window=0),
        dict(window=-1),
        dict(prefetch=-1),
        dict(backlog=-1),
        dict(cache_pages=0),
        dict(history=1),
    ],
)
def test_invalid_specs_rejected(kwargs):
    with pytest.raises(ValueError):
        PipelineSpec(**kwargs)
