"""Unit helpers.

All simulation code uses SI base units internally: **seconds** for time and
**bytes** for data.  Bandwidths are bytes/second.  These helpers exist so
that configuration reads like the paper ("10 Mbit/s Ethernet", "8 KB
pages", "16 ms average seek") while the models never juggle unit
conversions.
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "kilobytes",
    "megabytes",
    "gigabytes",
    "megabits_per_second",
    "milliseconds",
    "microseconds",
    "minutes",
    "hours",
    "days",
    "transfer_time",
]

#: Binary byte multiples (the paper's "8KB page" is 8192 bytes).
KB = 1024
MB = 1024 * KB
GB = 1024 * MB


def kilobytes(n: float) -> int:
    """``n`` KiB in bytes."""
    return int(n * KB)


def megabytes(n: float) -> int:
    """``n`` MiB in bytes."""
    return int(n * MB)


def gigabytes(n: float) -> int:
    """``n`` GiB in bytes."""
    return int(n * GB)


def megabits_per_second(n: float) -> float:
    """``n`` Mbit/s in bytes/second (decimal megabits, as networks quote)."""
    return n * 1_000_000 / 8


def milliseconds(n: float) -> float:
    """``n`` ms in seconds."""
    return n / 1e3


def microseconds(n: float) -> float:
    """``n`` µs in seconds."""
    return n / 1e6


def minutes(n: float) -> float:
    """``n`` minutes in seconds."""
    return n * 60.0


def hours(n: float) -> float:
    """``n`` hours in seconds."""
    return n * 3600.0


def days(n: float) -> float:
    """``n`` days in seconds."""
    return n * 86400.0


def transfer_time(nbytes: int, bandwidth: float) -> float:
    """Seconds to move ``nbytes`` at ``bandwidth`` bytes/second."""
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    if nbytes < 0:
        raise ValueError(f"negative transfer size: {nbytes}")
    return nbytes / bandwidth
