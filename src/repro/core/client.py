"""The Remote Memory Pager — the client-side block device driver (§3.1).

:class:`RemoteMemoryPager` implements the :class:`~repro.vm.Pager`
interface the VM machine pages against, and composes everything the
paper's driver does:

* forwards pageins/pageouts to the reliability policy's servers;
* falls back to the **local disk** when no server can absorb a page
  ("When no server can be found in order to satisfy the client's
  requests, paging to local disk is used");
* **migrates** pages away from servers that advise overload, and
  **re-replicates** disk-fallback pages to servers when memory frees up
  (§2.1);
* detects server **crashes** mid-request, runs the policy's recovery,
  and retries — the application never sees the failure;
* optionally applies the §5 *network-load threshold*: when recent
  transfer times degrade past a threshold, new pageouts are routed to
  the local disk until the network recovers.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..cluster.registry import ServerRegistry
from ..disk.backend import PartitionBackend
from ..errors import (
    PageCorrupted,
    PageNotFound,
    PagingError,
    RecoveryError,
    RequestTimeout,
    ServerCrashed,
    ServerUnavailable,
    SwapSpaceExhausted,
)
from ..log import get_logger
from ..pipeline import PagingPipeline, PipelineSpec
from ..sim import NULL_SPAN, Resource, Simulator, Tally
from ..vm.page import page_checksum
from ..vm.pager import Pager
from .policies.base import ReliabilityPolicy
from .server import MemoryServer

__all__ = ["RemoteMemoryPager"]

log = get_logger(__name__)

#: Sentinel for "the pipeline could not serve this pagein locally".
_MISS = object()


class RemoteMemoryPager(Pager):
    """The paper's RMP: policy-driven remote paging with disk fallback."""

    name = "rmp"

    def __init__(
        self,
        policy: ReliabilityPolicy,
        disk_backend: Optional[PartitionBackend] = None,
        registry: Optional[ServerRegistry] = None,
        network_threshold: Optional[float] = None,
        threshold_window: int = 16,
        pipeline: Optional[PipelineSpec] = None,
    ):
        super().__init__()
        self.policy = policy
        self.sim: Simulator = policy.sim
        self.disk_backend = disk_backend
        self.registry = registry
        self.network_threshold = network_threshold
        self.threshold_window = threshold_window
        #: The pipelined datapath (PR 4), or None for the paper's
        #: synchronous path.  A disabled spec (window=1, prefetch=0)
        #: also means None: the synchronous code below runs untouched,
        #: which is what makes the window=1 baseline bit-identical.
        self.pipeline: Optional[PagingPipeline] = (
            PagingPipeline(self, pipeline)
            if pipeline is not None and pipeline.enabled
            else None
        )
        self._pageout_queue = self.pipeline.queue if self.pipeline else None
        self._on_disk: Set[int] = set()
        self._disk_contents: Dict[int, Optional[bytes]] = {}
        self._recent_transfer_times: list = []
        self._disk_routed_streak = 0
        self._recovering = False
        self._recovery_done = None
        #: End-to-end integrity ledger: page_id -> CRC recorded at pageout
        #: (content mode only).  Verified on every pagein; a mismatch
        #: triggers the policy's scrub path (DESIGN.md "Fault model").
        self.checksums: Dict[int, int] = {}
        # Recovery verifies what it re-protects against this same ledger
        # (pages with no recorded checksum pass unchecked).
        policy.page_verifier = self._checksum_ok
        #: page_id -> previous checksum, present only while an overwrite
        #: is in flight: recovery interrupting that pageout may find the
        #: redundancy still holding the previous version legitimately.
        self._inflight_previous: Dict[int, int] = {}
        #: Pages whose pageout transmission is in flight *right now*.  A
        #: crash mid-transmission can leave the redundancy holding any
        #: prefix of the multi-transfer protocol (e.g. parity's member
        #: update without the parity fold), so recovery must not judge
        #: what it reconstructs for these pages — the client still holds
        #: the definitive bytes and retries the pageout after recovery.
        self._inflight_pageouts: set = set()
        #: Callbacks invoked with the crashed server when recovery starts
        #: (fault-injection hook: lets a chaos plan crash a second server
        #: *during* recovery, Hydra-style composed faults).
        self.recovery_watchers: list = []
        #: Servers retired by recovery, kept findable so a crash that
        #: cascades onto an already-retired name resolves cleanly.
        self._dead_servers: Dict[str, MemoryServer] = {}
        # "One dedicated paging daemon issues pagein and pageout requests"
        # (§3.1): pageouts are serialised through the daemon, so policy
        # state (round-robin order, open parity group) never interleaves.
        self._daemon = Resource(self.sim, capacity=1)
        self.recovery_times = Tally()
        if registry is not None:
            for server in policy.servers:
                registry.register(server)
            provider = getattr(policy, "replacement_provider", "missing")
            if provider is None:
                policy.replacement_provider = self._replacement_server

    # ----------------------------------------------------------- interface
    def pageout(self, page_id: int, contents: Optional[bytes] = None):
        pipe = self.pipeline
        if pipe is not None:
            if pipe.prefetcher is not None:
                # Any pageout supersedes whatever the prefetcher fetched.
                pipe.prefetcher.invalidate(page_id)
            if pipe.queue is not None:
                yield from self._pipelined_pageout(page_id, contents, pipe)
                return
        self.counters.add("pageouts")
        # The request span: phases follow the lifecycle enqueue (waiting
        # for the paging daemon) -> dispatch (policy chose placement) ->
        # per-server transfer/parity phases (marked inside the policy and
        # protocol stack) -> ack, or disk on fallback.
        span = self.sim.tracer.span("pageout", page_id)
        span.phase("enqueue")
        try:
            yield self._daemon.acquire()
            try:
                if contents is not None:
                    new = page_checksum(contents)
                    old = self.checksums.get(page_id)
                    if old is not None and old != new:
                        self._inflight_previous[page_id] = old
                    self.checksums[page_id] = new
                if self._network_degraded():
                    span.phase("disk")
                    yield from self._disk_pageout(page_id, contents)
                    span.end("disk-fallback", reason="network-degraded")
                    return
                start = self.sim.now
                span.phase("dispatch")
                try:
                    yield from self._policy_pageout(page_id, contents, span=span)
                except (ServerUnavailable, SwapSpaceExhausted):
                    # §2.1: no server has room — the disk absorbs the page.
                    span.phase("disk")
                    yield from self._disk_pageout(page_id, contents)
                    span.end("disk-fallback", reason="no-server-room")
                    return
                except RequestTimeout as timeout:
                    # The path (not the peer) failed: keep a definitive
                    # copy on the local disk.  Any half-finished remote
                    # placement is abandoned; the disk copy wins on the
                    # next pagein.
                    self.counters.add("timeout_fallback_pageouts")
                    self.sim.tracer.emit(
                        "pager", "pageout_timeout",
                        page_id=page_id, dst=timeout.dst,
                        attempts=timeout.attempts,
                    )
                    span.phase("disk")
                    yield from self._disk_pageout(page_id, contents)
                    span.end("disk-fallback", reason="request-timeout")
                    return
                span.phase("ack")
                self._observe_transfer(self.sim.now - start)
                self._on_disk.discard(page_id)
                self._disk_contents.pop(page_id, None)
                span.end("ok")
            finally:
                self._inflight_previous.pop(page_id, None)
                self._daemon.release()
        finally:
            span.end("error")  # no-op unless an exception escaped

    def _pipelined_pageout(self, page_id: int, contents, pipe):
        """Generator: write-behind pageout — commit to the queue, return.

        The ledger is updated *now* (the page is committed the moment the
        queue admits it); transmission, fallbacks, and recovery happen in
        the queue's drainer, which reuses the synchronous path's policy
        wrapper and disk fallbacks per entry (`PageoutQueue._transmit`).
        """
        self.counters.add("pageouts")
        if contents is not None:
            new = page_checksum(contents)
            old = self.checksums.get(page_id)
            if old is not None and old != new and page_id not in self._inflight_previous:
                # The redundancy legitimately holds the last *transmitted*
                # version until this entry settles (see _pageout_settled).
                self._inflight_previous[page_id] = old
            self.checksums[page_id] = new
        yield from pipe.queue.enqueue(page_id, contents)

    def _pageout_settled(self, page_id: int, contents) -> None:
        """Queue callback: one write-behind entry finished transmitting."""
        if self._pageout_queue is None:
            return
        if self._pageout_queue.lookup(page_id) is not None:
            # A newer version is still pending; the servers now hold the
            # version just transmitted — that is the checksum recovery
            # may legitimately encounter until the newer entry settles.
            if contents is not None:
                self._inflight_previous[page_id] = page_checksum(contents)
            return
        self._inflight_previous.pop(page_id, None)

    def pagein(self, page_id: int):
        self.counters.add("pageins")
        span = self.sim.tracer.span("pagein", page_id)
        start = self.sim.now
        try:
            pipe = self.pipeline
            if pipe is not None:
                contents = yield from self._pipelined_pagein(page_id, pipe, span)
                if contents is not _MISS:
                    span.end("ok")
                    self.sim.sampler.observe("pager.pagein", self.sim.now - start)
                    return contents
            if page_id in self._on_disk:
                span.phase("disk")
                contents = yield from self._disk_pagein(page_id)
                span.end("disk-fallback")
                self.sim.sampler.observe("pager.pagein", self.sim.now - start)
                return contents
            span.phase("dispatch")
            crashed_seen: Set[str] = set()
            try:
                while True:
                    try:
                        contents = yield from self.policy.pagein(page_id, span=span)
                        break
                    except ServerCrashed as crash:
                        # As in _policy_pageout: distinct crashes may
                        # surface one per retry; a repeating name means
                        # recovery cannot close the hole.
                        if crash.server_name in crashed_seen:
                            raise
                        crashed_seen.add(crash.server_name)
                        span.phase("recovery")
                        yield from self._handle_crash(crash)
                        span.phase("dispatch")
            except RequestTimeout as timeout:
                # Unlike a crash there is nothing to recover — the server
                # may be fine behind a lossy path.  Surface it; the VM (or
                # the campaign's invariant replay) retries later.
                self.counters.add("timeout_pageins")
                self.sim.tracer.emit(
                    "pager", "pagein_timeout",
                    page_id=page_id, dst=timeout.dst, attempts=timeout.attempts,
                )
                raise
            contents = yield from self._verified(page_id, contents, span=span)
            span.end("ok")
            # Per-pagein latency histogram (telemetry-gated: the default
            # NullSampler makes this a no-op) — the paper-scale spectrum
            # reads its percentiles per policy.
            self.sim.sampler.observe("pager.pagein", self.sim.now - start)
            return contents
        finally:
            span.end("error")

    def _pipelined_pagein(self, page_id: int, pipe, span):
        """Generator: try the local pipeline (write-back queue, prefetch
        cache) before any remote traffic; returns ``_MISS`` on a miss.

        Queue hits return the queued bytes directly — they are the
        newest committed version and never left the client, so there is
        nothing to verify.  Prefetch-cache hits were checksum-verified
        on arrival (`AdaptivePrefetcher._fetch`).
        """
        prefetcher = pipe.prefetcher
        if prefetcher is not None:
            # Feed the detector the true demand-fault stream, whatever
            # source ends up serving the fault.
            prefetcher.observe_fault(page_id)
        if pipe.queue is not None:
            entry = pipe.queue.lookup(page_id)
            if entry is not None:
                pipe.counters.add("writeback_hits")
                span.phase("writeback-hit")
                self.sim.tracer.emit("pipeline", "writeback_hit", page_id=page_id)
                return entry.contents
        if prefetcher is not None:
            waiter = prefetcher.inflight_event(page_id)
            if waiter is not None:
                # The predicted fault arrived before its prefetch landed:
                # ride the in-flight fetch instead of issuing a second one.
                span.phase("prefetch-wait")
                yield waiter
            hit, contents = prefetcher.take(page_id)
            if hit:
                pipe.counters.add("prefetch_hits")
                if waiter is not None:
                    pipe.counters.add("prefetch_late_hits")
                span.phase("prefetch-hit")
                self.sim.tracer.emit("pipeline", "prefetch_hit", page_id=page_id)
                return contents
        return _MISS

    def _checksum_ok(self, page_id: int, contents) -> bool:
        """Does ``contents`` match the pageout checksum for ``page_id``?

        True when no checksum was recorded (metadata mode, or the page
        never left through our pageout path).  Installed on the policy as
        ``page_verifier`` so recovery never re-protects rotted bytes.
        """
        expected = self.checksums.get(page_id)
        if expected is None:
            return True
        if page_id in self._inflight_pageouts:
            # Mid-pageout: the redundancy may hold any prefix of the
            # transfer protocol (a first placement may have reached the
            # data server but not the parity fold).  Whatever recovery
            # re-protects is overwritten by the post-recovery retry.
            return True
        actual = page_checksum(contents)
        return actual == expected or actual == self._inflight_previous.get(page_id)

    def _verified(self, page_id: int, contents, span=NULL_SPAN):
        """Generator: end-to-end checksum check + policy scrub on mismatch.

        Returns clean contents, possibly reconstructed from the policy's
        redundancy; raises :class:`~repro.errors.PageCorrupted` when no
        redundant copy can produce bytes matching the pageout checksum.
        """
        expected = self.checksums.get(page_id)
        if (
            contents is None  # metadata mode: nothing to verify
            or expected is None  # never left through our pageout path
            or page_checksum(contents) == expected
        ):
            return contents
        self.counters.add("corrupt_pageins")
        self.sim.tracer.emit(
            "pager", "corrupt_detected",
            page_id=page_id, policy=getattr(self.policy, "name", "unknown"),
        )
        span.phase("scrub")

        def verify(candidate: bytes) -> bool:
            return page_checksum(candidate) == expected

        while True:
            try:
                clean = yield from self.policy.scrub_page(page_id, verify, span=span)
            except ServerCrashed as crash:
                # The scrub tripped over an undetected crash in the page's
                # redundancy group: recover it, then scrub again.
                span.phase("recovery")
                yield from self._handle_crash(crash)
                span.phase("scrub")
                continue
            break
        if clean is None:
            self.counters.add("corrupt_unrepaired")
            raise PageCorrupted(page_id, getattr(self.policy, "name", "unknown"))
        self.counters.add("scrub_recoveries")
        self.sim.tracer.emit("pager", "scrub_recovered", page_id=page_id)
        return clean

    def release(self, page_id: int) -> None:
        if self.pipeline is not None:
            if self.pipeline.queue is not None:
                self.pipeline.queue.release(page_id)
            if self.pipeline.prefetcher is not None:
                self.pipeline.prefetcher.invalidate(page_id)
            self._inflight_previous.pop(page_id, None)
        self.policy.release(page_id)
        if page_id in self._on_disk and self.disk_backend is not None:
            self.disk_backend.release_page(page_id)
        self._on_disk.discard(page_id)
        self._disk_contents.pop(page_id, None)
        self.checksums.pop(page_id, None)

    @property
    def pending_drain(self) -> bool:
        """Does the machine's end-of-run barrier need to call drain()?"""
        return self.pipeline is not None

    def drain(self):
        """Generator: settle the write-behind queue, quiesce prefetching."""
        if self.pipeline is not None:
            yield from self.pipeline.drain()

    @property
    def transfers(self) -> int:
        """Network page transfers (the §4.3 extrapolation input)."""
        return self.policy.transfers

    @property
    def pages_on_local_disk(self) -> int:
        return len(self._on_disk)

    # ------------------------------------------------------ policy wrapper
    def _policy_pageout(self, page_id: int, contents, span=NULL_SPAN):
        self._inflight_pageouts.add(page_id)
        try:
            crashed_seen: Set[str] = set()
            while True:
                try:
                    yield from self.policy.pageout(page_id, contents, span=span)
                    return
                except ServerCrashed as crash:
                    # Multi-failure campaigns can surface a *different*
                    # crash on each retry (erasure placements span k+m
                    # servers); recover and retry until the same hole
                    # repeats — then the fault exceeds what recovery can
                    # fix and must escape.
                    if crash.server_name in crashed_seen:
                        raise
                    crashed_seen.add(crash.server_name)
                    span.phase("recovery")
                    yield from self._handle_crash(crash)
                    span.phase("dispatch")
        finally:
            self._inflight_pageouts.discard(page_id)

    def _handle_crash(self, crash: ServerCrashed):
        """Run the policy's recovery exactly once per crash event.

        Concurrent requests (async pageouts, the faulting pagein) may all
        trip over the same dead server; the first runs recovery and the
        rest wait for it, then retry their operation.

        Composed faults (Hydra-style): if *another* server dies while
        recovery is copying pages around, ``policy.recover`` surfaces a
        fresh :class:`ServerCrashed`.  The loop retires the first victim
        and restarts recovery for the second.  A name repeating within
        one cascade means recovery keeps tripping over the same hole —
        the fault exceeds the policy's tolerance and becomes a
        :class:`RecoveryError` instead of an infinite ping-pong.
        """
        if self._recovering:
            while self._recovering:
                yield self._recovery_done
            # The recovery we waited on may have *failed* (aborted on a
            # lossy path, exceeded the policy's tolerance).  If the
            # server that faulted us is still dead-and-active the hole
            # is still open: fall through and run recovery ourselves.
            if not self._still_dead(crash.server_name):
                return
        seen = set()
        self._recovering = True
        self._recovery_done = self.sim.event()
        try:
            while True:
                name = crash.server_name
                if name in seen:
                    raise RecoveryError(
                        f"cascading crashes exceed the policy's fault "
                        f"tolerance: {sorted(seen)} then {name!r} again"
                    )
                seen.add(name)
                crashed = self._find_crashed(name)
                if crashed is None:
                    raise RecoveryError(f"unknown crashed server {name!r}")
                started = self.sim.now
                self.sim.tracer.emit(
                    "pager", "recovery_start", server=crashed.name
                )
                log.info(
                    "server %s crashed at t=%.3f; recovering",
                    crashed.name, started,
                )
                for watcher in list(self.recovery_watchers):
                    watcher(crashed)
                try:
                    yield from self.policy.recover(crashed)
                except ServerCrashed as second:
                    # Another victim mid-recovery: retire the first (its
                    # pages are still being re-protected — the next pass
                    # finishes the job) and recover the new one.  Waiters
                    # stay parked: the overall recovery isn't done.
                    self._retire(crashed)
                    self.counters.add("cascaded_recoveries")
                    self.sim.tracer.emit(
                        "pager", "recovery_cascade",
                        first=crashed.name, then=second.server_name,
                    )
                    crash = second
                    continue
                self.recovery_times.observe(self.sim.now - started)
                self.counters.add("recoveries")
                self.sim.tracer.emit(
                    "pager", "recovery_done",
                    server=crashed.name, duration=self.sim.now - started,
                )
                log.info(
                    "recovered from %s crash in %.3f simulated seconds",
                    crashed.name, self.sim.now - started,
                )
                # The crashed workstation is gone: drop it from the
                # rotation so placement never aims at it again.
                self._retire(crashed)
                return
        finally:
            # Terminal either way — success or an escaping failure.
            # Waiters wake exactly once and re-check the server's state.
            self._recovering = False
            self._recovery_done.succeed()

    def _still_dead(self, name: str) -> bool:
        """Is ``name`` still in the active set yet not alive?

        True means a finished recovery pass did *not* resolve this
        crash (it failed before retiring the server); False means the
        server was retired/re-homed or was never this policy's problem.
        """
        for server in self.policy.servers:
            if server.name == name:
                return not server.is_alive
        parity = getattr(self.policy, "parity_server", None)
        if parity is not None and parity.name == name:
            return not parity.is_alive
        return False

    def _find_crashed(self, name: str) -> Optional[MemoryServer]:
        for server in self.policy.servers:
            if server.name == name:
                return server
        parity = getattr(self.policy, "parity_server", None)
        if parity is not None and parity.name == name:
            return parity
        return self._dead_servers.get(name)

    def _retire(self, crashed: MemoryServer) -> None:
        self._dead_servers[crashed.name] = crashed
        self.policy.servers = [s for s in self.policy.servers if s is not crashed]
        if self.registry is not None:
            self.registry.unregister(crashed.name)

    def _replacement_server(self) -> Optional[MemoryServer]:
        if self.registry is None:
            return None
        exclude = {s.name for s in self.policy.servers}
        parity = getattr(self.policy, "parity_server", None)
        if parity is not None:
            exclude.add(parity.name)
        return self.registry.best(exclude=exclude)

    # ------------------------------------------------------- disk fallback
    def _disk_pageout(self, page_id: int, contents):
        if self.disk_backend is None:
            raise SwapSpaceExhausted(
                "no server has free memory and no local-disk fallback is configured"
            )
        yield from self.disk_backend.write_page(page_id)
        self._on_disk.add(page_id)
        self._disk_contents[page_id] = contents
        self.counters.add("disk_fallback_pageouts")

    def _disk_pagein(self, page_id: int):
        yield from self.disk_backend.read_page(page_id)
        self.counters.add("disk_fallback_pageins")
        return self._disk_contents.get(page_id)

    # ------------------------------------------------- migration (§2.1)
    def migrate_from(self, server: MemoryServer, limit: Optional[int] = None):
        """Generator: move pages off an advising/overloaded server.

        Pages move *directly* from the loaded server to the best other
        server (§2.1's migration, one server-to-server transfer each),
        falling back through the client to the local disk when no server
        has room.  Returns the number moved.  Only placement-mapped
        policies (no-reliability, write-through) migrate page-by-page;
        redundant policies already tolerate losing the server and are
        rebalanced by their own recovery paths.
        """
        placement = getattr(self.policy, "_placement", None)
        if placement is None:
            return 0
        victims = [p for p, s in placement.items() if s is server]
        if limit is not None:
            victims = victims[:limit]
        moved = 0
        for page_id in victims:
            target = None
            if self.registry is not None:
                target = self.registry.best(exclude={server.name})
            if (
                target is not None
                and target in self.policy.servers
                and getattr(target, "is_alive", False)
            ):
                transferred = yield from server.transfer_to(target, [page_id])
                if transferred:
                    placement[page_id] = target
                    self.policy.counters.add("transfers")
                    moved += 1
                    continue
            # No server has room: bounce through the client to the disk.
            contents = yield from self.policy.pagein(page_id)
            yield from self._disk_pageout(page_id, contents)
            placement.pop(page_id, None)
            server.free([page_id])
            moved += 1
        self.counters.add("migrated_pages", moved)
        if moved:
            self.sim.tracer.emit("pager", "migration", server=server.name, moved=moved)
        return moved

    def start_housekeeping(
        self,
        interval: float = 10.0,
        migrate_batch: int = 64,
        replicate_batch: int = 64,
    ):
        """§2.1's periodic client maintenance, as a background process.

        "Whenever the client's local disk is used to store some of its
        paged out pages, the client periodically checks the memory load
        of all possible remote memory servers" — every ``interval``
        seconds, migrate pages off advising servers and replicate
        disk-fallback pages back to freed remote memory.
        """
        if interval <= 0:
            raise ValueError(f"housekeeping interval must be positive: {interval}")
        process = self.sim.process(
            self._housekeep(interval, migrate_batch, replicate_batch),
            name="rmp-housekeeping",
        )
        self._housekeeping = process
        return process

    def stop_housekeeping(self) -> None:
        """Cancel the background housekeeping process, if running."""
        process = getattr(self, "_housekeeping", None)
        if process is not None and process.is_alive:
            process.interrupt("housekeeping-stop")

    def _housekeep(self, interval: float, migrate_batch: int, replicate_batch: int):
        from ..sim import Interrupt

        try:
            while True:
                yield self.sim.timeout(interval)
                for server in list(self.policy.servers):
                    if server.is_alive and getattr(server, "advising", False):
                        yield from self.migrate_from(server, limit=migrate_batch)
                if self._on_disk:
                    yield from self.replicate_disk_pages_back(limit=replicate_batch)
        except Interrupt:
            return

    def replicate_disk_pages_back(self, limit: Optional[int] = None):
        """Generator: §2.1's re-replication of disk-fallback pages.

        "If a server having enough free memory is found, some of the
        pages stored at the local disk are replicated to this server."
        """
        candidates = list(self._on_disk)[:limit] if limit else list(self._on_disk)
        moved = 0
        for page_id in candidates:
            contents = yield from self._disk_pagein(page_id)
            try:
                yield from self._policy_pageout(page_id, contents)
            except (ServerUnavailable, SwapSpaceExhausted):
                break  # still no room; try again later
            self._on_disk.discard(page_id)
            self._disk_contents.pop(page_id, None)
            if self.disk_backend is not None:
                self.disk_backend.release_page(page_id)
            moved += 1
        self.counters.add("replicated_back", moved)
        if moved:
            self.sim.tracer.emit("pager", "replicated_back", moved=moved)
        return moved

    # ------------------------------------- network-load threshold (§5)
    def _observe_transfer(self, elapsed: float) -> None:
        if self.network_threshold is None:
            return
        self._recent_transfer_times.append(elapsed)
        if len(self._recent_transfer_times) > self.threshold_window:
            self._recent_transfer_times.pop(0)

    def _network_degraded(self) -> bool:
        """§5: route pageouts to disk when the network is congested.

        After ``2 * threshold_window`` consecutive disk-routed pageouts the
        measurement window is cleared, forcing a fresh probe of the
        network — so the pager returns to remote memory once congestion
        clears instead of sticking to the disk forever.
        """
        if self.network_threshold is None or self.disk_backend is None:
            return False
        window = self._recent_transfer_times
        if len(window) < self.threshold_window:
            return False
        degraded = sum(window) / len(window) > self.network_threshold
        if degraded:
            self._disk_routed_streak += 1
            if self._disk_routed_streak >= 2 * self.threshold_window:
                self._recent_transfer_times.clear()
                self._disk_routed_streak = 0
        else:
            self._disk_routed_streak = 0
        return degraded
