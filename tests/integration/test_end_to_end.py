"""End-to-end integration: workloads through the full stack.

These are the cross-module checks: VM -> RMP -> policy -> protocol ->
Ethernet -> server, with content verification and crash injection, all
in one simulation.
"""

import pytest

from repro.core import CrashInjector, build_cluster
from repro.errors import RecoveryError
from repro.workloads import Gauss, Mvec, SequentialScan

GAUSS_SMALL = dict(n=900)  # ~6.2 MB matrix: fast but still pages on a small machine


def small_machine_kwargs():
    from repro.config import MachineSpec
    from repro.units import megabytes

    return dict(
        machine_spec=MachineSpec(
            name="small",
            ram_bytes=megabytes(8),
            kernel_resident_bytes=megabytes(2),
        )
    )


def test_gauss_all_policies_complete_and_agree_on_fault_counts():
    """The paging device must not change *what* pages; only the timing."""
    fault_profiles = {}
    for policy in ("disk", "no-reliability", "mirroring", "parity-logging"):
        kwargs = dict(policy=policy, n_servers=4)
        if policy == "parity-logging":
            kwargs["overflow_fraction"] = 0.10
        cluster = build_cluster(**kwargs, **small_machine_kwargs())
        report = cluster.run(Gauss(**GAUSS_SMALL))
        fault_profiles[policy] = (report.pageins, report.pageouts, report.faults)
    assert len(set(fault_profiles.values())) == 1, fault_profiles


def test_content_mode_full_workload_roundtrip():
    """Every pagein across a whole paging workload verifies (content mode)."""
    cluster = build_cluster(
        policy="parity-logging",
        n_servers=4,
        overflow_fraction=0.25,
        content_mode=True,
        **small_machine_kwargs(),
    )
    report = cluster.run(Gauss(**GAUSS_SMALL))
    assert report.pageins > 100  # the machine verified each one


def test_crash_mid_workload_application_completes():
    cluster = build_cluster(
        policy="parity-logging",
        n_servers=4,
        overflow_fraction=0.25,
        content_mode=True,
        **small_machine_kwargs(),
    )
    injector = CrashInjector(cluster.sim)
    injector.crash_after_pageouts(cluster.servers[0], pageouts=15)
    report = cluster.run(Gauss(**GAUSS_SMALL))
    assert len(injector.crashes) == 1
    assert cluster.pager.counters["recoveries"] == 1
    assert report.etime > 0


def test_crash_under_no_reliability_kills_the_run():
    """The motivating failure: without redundancy, a server crash is fatal."""
    cluster = build_cluster(
        policy="no-reliability", n_servers=2, **small_machine_kwargs()
    )
    injector = CrashInjector(cluster.sim)
    injector.crash_after_pageouts(cluster.servers[0], pageouts=15)
    with pytest.raises(RecoveryError):
        cluster.run(Gauss(**GAUSS_SMALL))


def test_remote_beats_disk_for_paging_workload():
    def etime(policy):
        cluster = build_cluster(policy=policy, n_servers=2, **small_machine_kwargs())
        return cluster.run(Gauss(**GAUSS_SMALL)).etime

    assert etime("no-reliability") < etime("disk")


def test_non_paging_workload_is_policy_independent():
    """A workload that fits in memory must run identically everywhere."""
    times = set()
    for policy in ("disk", "no-reliability", "parity-logging"):
        kwargs = dict(policy=policy, n_servers=4)
        if policy == "parity-logging":
            kwargs["overflow_fraction"] = 0.10
        cluster = build_cluster(**kwargs)
        report = cluster.run(SequentialScan(n_pages=256, passes=3))
        assert report.pageins == 0
        times.add(round(report.etime, 6))
    assert len(times) == 1


def test_mvec_profile_pageouts_but_no_pageins():
    cluster = build_cluster(policy="no-reliability", n_servers=2)
    report = cluster.run(Mvec())
    assert report.pageouts > 1000
    assert report.pageins == 0


def test_etime_decomposition_consistent_across_stack():
    from repro.analysis import decompose

    cluster = build_cluster(policy="parity-logging", n_servers=4,
                            overflow_fraction=0.10, **small_machine_kwargs())
    report = cluster.run(Gauss(**GAUSS_SMALL))
    d = decompose(report)
    assert d.etime == pytest.approx(
        d.utime + d.systime + d.inittime + d.pptime + d.btime
    )
    assert d.page_transfers == cluster.policy.transfers


def test_server_memory_accounting_balances():
    cluster = build_cluster(
        policy="no-reliability", n_servers=2, content_mode=True,
        server_capacity_pages=128,
    )
    sim, pager = cluster.sim, cluster.pager

    def flow():
        from repro.vm import page_bytes

        for page_id in range(64):
            yield from pager.pageout(page_id, page_bytes(page_id, 1, 8192))

    sim.run_until_complete(sim.process(flow()))
    stored = sum(s.stored_pages for s in cluster.servers)
    assert stored == 64
    for server in cluster.servers:
        assert server.stored_pages + server.free_pages == server.capacity_pages
