"""Figure 4: FFT under faster-network alternatives (+ §4.3 validation).

Beyond the paper: we also *simulate* the 10x network directly and check
the paper's analytic extrapolation against the simulated result.
"""

from repro.experiments import render_fig4, run_fig4


def test_fig4_network_scaling(benchmark, once):
    results = once(benchmark, run_fig4)
    print("\n" + render_fig4(results))
    largest = max(results)
    row = results[largest]
    # Curve ordering at the paging end of the sweep:
    # all-memory < ethernet*10 < ethernet < disk.
    assert row["all_memory"] < row["ethernet_x10_predicted"]
    assert row["ethernet_x10_predicted"] < row["ethernet"]
    assert row["ethernet"] < row["disk"]
    # The paper's headline: paging overhead below ~17% on a 10x network.
    assert row["overhead_fraction_x10"] < 0.20
    # ETHERNET*10 performs "very close to ALL MEMORY" (paper).
    assert row["ethernet_x10_predicted"] < 1.25 * row["all_memory"]
    # Our addition: the analytic prediction tracks a directly simulated
    # 10x switched network within 15%.
    simulated = row["ethernet_x10_simulated"]
    predicted = row["ethernet_x10_predicted"]
    assert abs(simulated - predicted) / simulated < 0.15
