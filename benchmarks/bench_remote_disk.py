"""Remote memory vs remote disk paging (Comer & Griffioen, §6)."""

from repro.experiments import render_remote_disk, run_remote_disk


def test_remote_memory_vs_remote_disk(benchmark, once):
    results = once(benchmark, run_remote_disk)
    print("\n" + render_remote_disk(results))
    for pattern, r in results.items():
        # Remote memory always wins...
        assert r["remote_memory"] < r["remote_disk"], pattern
        # ...by an amount in Comer & Griffioen's 20%-100% band (we allow
        # a little slack above: our 1996 disk model is slower per random
        # access than their NFS server's).
        assert 0.20 <= r["speedup"] <= 1.20, f"{pattern}: {r['speedup']:.0%}"
    # The gap grows with access-pattern randomness.
    assert results["random"]["speedup"] > results["sequential"]["speedup"]
