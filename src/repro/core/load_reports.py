"""Periodic server load reports (§3.2).

"The server is also responsible ... for providing periodically
information to the client concerning the memory load of its host."

Rather than letting the client read server state as an oracle, a
:class:`LoadReporter` process on each server ships a small report
message over the network every ``interval`` seconds; the client's
:class:`ClusterView` holds the latest report per server.  The view is
therefore *stale by up to one interval* — exactly the real system's
information model, and the reason the paper's client reacts to explicit
"advise" notes rather than polling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..net.protocol import ProtocolStack
from ..sim import Interrupt, Process, Simulator
from .server import MemoryServer

__all__ = ["LoadReport", "ClusterView", "LoadReporter"]

#: Size of one load-report message on the wire.
REPORT_BYTES = 48


@dataclass(frozen=True)
class LoadReport:
    """One snapshot of a server's memory situation."""

    server_name: str
    free_pages: int
    stored_pages: int
    advising: bool
    sent_at: float


class ClusterView:
    """The client's (possibly stale) picture of every server's load."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._reports: Dict[str, LoadReport] = {}

    def update(self, report: LoadReport) -> None:
        """A fresh report arrived; replace the previous snapshot.

        Reports can overtake each other on a lossy wire (a dropped one
        is retransmitted long after its successors landed); a late
        redelivery must not roll the view's clock backwards.
        """
        current = self._reports.get(report.server_name)
        if current is not None and current.sent_at > report.sent_at:
            return
        self._reports[report.server_name] = report

    def report_for(self, server_name: str) -> Optional[LoadReport]:
        """The latest report from ``server_name``, or None."""
        return self._reports.get(server_name)

    def free_pages(self, server_name: str) -> Optional[int]:
        """Last reported free pages (None until the first report lands)."""
        report = self._reports.get(server_name)
        return report.free_pages if report else None

    def age(self, server_name: str) -> float:
        """Seconds since the last report from ``server_name``."""
        report = self._reports.get(server_name)
        return float("inf") if report is None else self.sim.now - report.sent_at

    def best_server_name(self, min_pages: int = 1) -> Optional[str]:
        """Most-free server by the *reported* (stale) picture."""
        usable = [
            r
            for r in self._reports.values()
            if not r.advising and r.free_pages >= min_pages
        ]
        if not usable:
            return None
        return max(usable, key=lambda r: r.free_pages).server_name


class LoadReporter:
    """The per-server reporting process."""

    def __init__(
        self,
        server: MemoryServer,
        client_host: str,
        view: ClusterView,
        interval: float = 5.0,
    ):
        if interval <= 0:
            raise ValueError(f"report interval must be positive: {interval}")
        self.server = server
        self.client_host = client_host
        self.view = view
        self.interval = interval
        self.stack: ProtocolStack = server.stack
        self.reports_sent = 0
        self.process: Process = server.sim.process(
            self._run(), name=f"load-report:{server.name}"
        )

    def _run(self):
        sim = self.server.sim
        try:
            while True:
                yield sim.timeout(self.interval)
                if not self.server.is_alive:
                    # A crashed workstation is silent — but keep the
                    # reporter alive so a rebooted (flapping) server
                    # resumes reporting and the watchdog can re-arm.
                    continue
                report = LoadReport(
                    server_name=self.server.name,
                    free_pages=self.server.free_pages,
                    stored_pages=self.server.stored_pages,
                    advising=self.server.advising,
                    sent_at=sim.now,
                )
                # Ship asynchronously: a heartbeat must never block the
                # next beat.  On a lossy wire a dropped report being
                # retransmitted would otherwise stall the reporter past
                # the watchdog's silence deadline — manufacturing the
                # very crash signal it exists to provide.
                sim.process(
                    self._ship(report),
                    name=f"load-report-ship:{self.server.name}",
                )
        except Interrupt:
            return

    def _ship(self, report: LoadReport):
        yield from self.stack.send(
            self.server.host.name, self.client_host, REPORT_BYTES
        )
        self.view.update(report)
        self.reports_sent += 1

    def stop(self) -> None:
        """Stop sending reports."""
        if self.process.is_alive:
            self.process.interrupt("reporter-stop")
