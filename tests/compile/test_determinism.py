"""Compiled replay is byte-identical to interpreted execution.

The acceptance bar for the trace compiler: for every experiment x
policy x application cell, `CompletionReport` — every field, every
counter, the full metrics snapshot — must match the interpreted path
*exactly* (float-for-float), and the chaos campaigns must stay CLEAN
and identical.  The schedule cache is disabled here so every compiled
run exercises the compiler itself; `test_schedule_cache.py` covers the
cached path.
"""

import dataclasses
import json

import pytest

from repro.config import MachineSpec
from repro.core.builder import build_cluster
from repro.faults import FaultPlan
from repro.runner import ExperimentRunner, RunSpec
from repro.vm.replacement import make_replacement
from repro.workloads import Fft, Gauss, HotCold, Mvec, Qsort

_SMALL = MachineSpec(
    name="compile-small",
    ram_bytes=2 * 1024 * 1024,
    kernel_resident_bytes=1 * 1024 * 1024,
    page_size=8192,
)

#: Shrunk paper applications: same page-level structure, test-sized.
_APPS = {
    "mvec": lambda: Mvec(n=500),
    "gauss": lambda: Gauss(n=400, passes=2),
    "qsort": lambda: Qsort(records=200_000),
    "fft": lambda: Fft(elements=40_000, passes=2),
    "hot-cold": lambda: HotCold(
        hot_pages=96, cold_pages=400, n_refs=6_000, hot_fraction=0.95, seed=11
    ),
}

_POLICIES = ("disk", "no-reliability", "mirroring", "parity-logging", "write-through")


@pytest.fixture(autouse=True)
def _no_schedule_cache(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULE_CACHE", "0")


def _run(policy, workload_factory, replacement="lru", compile_on=True, **overrides):
    cluster = build_cluster(
        policy=policy,
        n_servers=2,
        seed=7,
        machine_spec=_SMALL,
        content_mode=True,
        replacement=make_replacement(replacement),
        compile_schedules=compile_on,
        **overrides,
    )
    report = cluster.run(workload_factory())
    return dataclasses.asdict(report), cluster.metrics.snapshot(), cluster


def _identical(policy, workload_factory, replacement="lru", **overrides):
    compiled, metrics_c, cluster_c = _run(
        policy, workload_factory, replacement, True, **overrides
    )
    interpreted, metrics_i, cluster_i = _run(
        policy, workload_factory, replacement, False, **overrides
    )
    assert compiled == interpreted
    assert metrics_c == metrics_i
    # The replayed machine ends in the interpreted machine's exact state.
    assert cluster_c.machine.resident_count == cluster_i.machine.resident_count
    assert (
        cluster_c.machine.replacement.export_state()
        == cluster_i.machine.replacement.export_state()
    )
    assert len(cluster_c.machine.page_table) == len(cluster_i.machine.page_table)
    for page_id in range(len(cluster_i.machine.page_table)):
        pte_i = cluster_i.machine.page_table.get(page_id)
        if pte_i is None:
            continue
        pte_c = cluster_c.machine.page_table.get(page_id)
        assert (pte_c.resident, pte_c.dirty, pte_c.referenced, pte_c.on_backing_store) == (
            pte_i.resident, pte_i.dirty, pte_i.referenced, pte_i.on_backing_store
        ), f"page {page_id} state diverged"
    return compiled


@pytest.mark.parametrize("policy", _POLICIES)
def test_every_policy_byte_identical(policy):
    report = _identical(policy, _APPS["gauss"])
    assert report["faults"] > 0  # the cell actually paged


@pytest.mark.parametrize("app", sorted(_APPS))
def test_every_app_byte_identical(app):
    report = _identical("parity-logging", _APPS[app])
    assert report["faults"] > 0


@pytest.mark.parametrize("replacement", ("fifo", "lru", "clock"))
def test_every_replacement_byte_identical(replacement):
    _identical("no-reliability", _APPS["hot-cold"], replacement=replacement)


def test_write_behind_window_byte_identical():
    """The PR 4 write-behind queue (no prefetch) is pager-side only, so
    pipelined runs stay compiled — and stay identical."""
    _identical("parity-logging", _APPS["gauss"], pipeline_window=4)


def test_chaos_campaign_clean_and_identical():
    """PR 3 chaos (crash + loss + rot) under compiled replay: identical
    reports, identical fault traces, and the same CLEAN verdicts."""
    plan = FaultPlan.standard_campaign()

    def digest(compile_on):
        specs = [
            RunSpec.make(
                "sequential-scan",
                policy,
                workload_kwargs=dict(n_pages=400, passes=3, write=True),
                overrides=dict(
                    machine_spec=_SMALL,
                    content_mode=True,
                    seed=3,
                    n_servers=4,
                    server_capacity_pages=600,
                ),
                machine_attrs={"compile_schedules": compile_on},
                hook="chaos",
                hook_kwargs=plan.as_kwargs(),
                extract=("resilience",),
                label=f"{policy}/chaos",
            )
            for policy in ("parity-logging", "mirroring")
        ]
        results = ExperimentRunner(jobs=1, use_cache=False).run(specs)
        # report.meta carries provenance + the metrics snapshot but not
        # machine_attrs, so the two arms must serialise byte-identically.
        return [
            json.dumps(
                {
                    "report": dataclasses.asdict(r.report),
                    "fault_trace": r.extras["fault_trace"],
                    "verdict": r.extras["verdict"],
                },
                sort_keys=True,
                default=list,
            )
            for r in results
        ]

    compiled = digest(True)
    interpreted = digest(False)
    assert compiled == interpreted
    assert all(json.loads(cell)["verdict"] == "CLEAN" for cell in compiled)
