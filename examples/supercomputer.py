#!/usr/bin/env python3
"""Supercomputer memory donor: §5's single-big-host scenario.

"Connecting machines that have an enormous amount of memory (e.g. a
supercomputer) to a network of workstations also poses some problems.
When the supercomputer memory is idle, it may not always be easy to find
enough free remote workstation memory in order to be able to use
reliability policies.  In this case, a no reliability policy can be
used, since all remote memory will be provided by a single host."

This example contrasts three configurations for the same workload:

1. four small workstation donors with parity logging (the usual setup);
2. a single supercomputer donor, no-reliability (the §5 recommendation);
3. a single supercomputer donor *plus* a small workstation mirror —
   showing why mirroring onto a small host fails: the mirror runs out of
   memory and pages spill to the local disk.

Run:  python examples/supercomputer.py
"""

from repro import Gauss, MachineSpec, build_cluster
from repro.units import megabytes


SUPERCOMPUTER = MachineSpec(
    name="cray-ish",
    ram_bytes=megabytes(2048),
    kernel_resident_bytes=megabytes(64),
    cpu_speed=4.0,
)


def main() -> None:
    workload_factory = Gauss

    print("1. four workstation donors, parity logging (baseline):")
    cluster = build_cluster(
        policy="parity-logging", n_servers=4, overflow_fraction=0.10
    )
    report = cluster.run(workload_factory())
    print(f"   {report.summary()}")

    print("\n2. one supercomputer donor, no-reliability (§5's suggestion):")
    cluster = build_cluster(
        policy="no-reliability",
        n_servers=1,
        server_spec=SUPERCOMPUTER,
        server_capacity_pages=16384,  # 128 MB of donated memory
    )
    report = cluster.run(workload_factory())
    print(f"   {report.summary()}")
    server = cluster.servers[0]
    print(f"   {server.name} absorbed {server.stored_pages} pages "
          f"({server.stored_pages * 8 // 1024} MB) "
          f"with {server.free_pages} pages to spare")

    print("\n3. supercomputer + small workstation mirror (why §5 advises "
          "against reliability here):")
    cluster = build_cluster(
        policy="mirroring",
        n_servers=2,
        server_capacity_pages=512,  # the small mirror holds only 4 MB
    )
    report = cluster.run(workload_factory())
    print(f"   {report.summary()}")
    print(f"   pages that overflowed to the local disk: "
          f"{cluster.pager.pages_on_local_disk} "
          f"(the small mirror filled up)")


if __name__ == "__main__":
    main()
