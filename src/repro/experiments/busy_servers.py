"""§4.5: using busy workstations as servers.

Three scenarios on the server hosts: idle (baseline), an X+vi editing
session, and a CPU-bound while(1) loop.  The paper found completion
times within ~1 s for the editor case, within 7% for the CPU-bound case,
and server CPU utilisation always under 15%.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.report import format_table
from ..runner import RunSpec, default_runner

__all__ = ["run_busy_servers", "render_busy_servers"]

SCENARIOS = ("idle", "editor", "cpu-bound")


def run_busy_servers(
    apps=("fft", "gauss", "mvec", "qsort"),
    policy: str = "no-reliability",
    runner=None,
) -> Dict[str, Dict[str, object]]:
    """Returns reports keyed [app][scenario], plus server CPU stats.

    The server-load scenarios and the CPU-utilisation probe live in the
    runner registry (``busy-scenario`` hook / ``server-cpu`` extractor)
    so each app x scenario cell is an independent, parallelisable run.
    """
    apps = list(apps)
    specs = [
        RunSpec.make(
            app,
            policy,
            hook="busy-scenario",
            hook_kwargs={"scenario": scenario},
            extract=("server-cpu",),
            label=f"{app}/{scenario}",
        )
        for app in apps
        for scenario in SCENARIOS
    ]
    flat = iter((runner or default_runner()).run(specs))
    results: Dict[str, Dict[str, object]] = {}
    for app in apps:
        results[app] = {}
        for scenario in SCENARIOS:
            result = next(flat)
            results[app][scenario] = {
                "report": result.report,
                "server_cpu_utilizations": result.extras["server_cpu_utilizations"],
            }
    return results


def render_busy_servers(results: Dict[str, Dict[str, object]]) -> str:
    """Per-app, per-scenario table with the §4.5 comparisons."""
    rows = []
    for app, by_scenario in results.items():
        idle = by_scenario["idle"]["report"].etime
        for scenario in SCENARIOS:
            entry = by_scenario[scenario]
            etime = entry["report"].etime
            utils = entry["server_cpu_utilizations"]
            rows.append(
                [
                    app,
                    scenario,
                    f"{etime:.2f}",
                    f"{(etime - idle) / idle:+.1%}",
                    f"{max(utils):.1%}" if utils else "-",
                ]
            )
    return format_table(
        ["app", "server load", "etime (s)", "vs idle", "max server CPU"],
        rows,
        title="§4.5: busy workstations as servers (paper: editor within ~1 s, "
        "cpu-bound within 7%, server CPU < 15%)",
    )
