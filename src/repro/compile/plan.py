"""Eligibility, caching, and dispatch for compiled replay.

:func:`plan_replay` is the single integration point ``Cluster.run``
consults before executing a workload: it decides whether the run may use
the batch-replay fast path, fetches or compiles the fault schedule, and
emits ``compile.*`` trace events so every decision is visible in a
``--trace`` recording.

Compilation is on by default but **strictly conservative** — it engages
only when the resident set is a pure function of the reference stream:

* the workload declares itself deterministic (every ``trace()`` call
  yields the same stream);
* the replacement policy supports the batch-step API (FIFO/LRU/Clock);
* no speculative fetch can perturb residency: both the machine-level
  read-ahead (``Machine.prefetch``) and the PR 4 adaptive prefetcher
  bypass to interpreted execution, with a ``compile.bypass`` event.

Anything that only acts *pager-side* — write-behind windows, chaos
fault injection, RPC retries, background load — cannot change which
references fault, so those runs stay compiled (and stay byte-identical;
``tests/compile`` pins the chaos campaigns).
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Any, Optional

from .compiler import compile_trace
from .schedule import FaultSchedule

__all__ = [
    "plan_replay",
    "compile_enabled",
    "set_compile_enabled",
    "schedule_cache_enabled",
]

_process_default: Optional[bool] = None


def set_compile_enabled(enabled: Optional[bool]) -> None:
    """Process-wide override: True/False force, None restores the default
    (on unless ``REPRO_NO_COMPILE`` is set in the environment)."""
    global _process_default
    _process_default = enabled


def compile_enabled() -> bool:
    """The process-wide default for trace compilation."""
    if _process_default is not None:
        return _process_default
    return not os.environ.get("REPRO_NO_COMPILE")


def schedule_cache_enabled() -> bool:
    """Whether compiled schedules may be cached on disk (the CLI's
    ``--no-cache`` clears this via ``REPRO_SCHEDULE_CACHE=0``)."""
    return os.environ.get("REPRO_SCHEDULE_CACHE", "1") != "0"


def _bypass_reason(machine, pager, workload) -> Optional[str]:
    """Why this run must stay interpreted, or None when eligible."""
    if not getattr(workload, "deterministic", False):
        return "nondeterministic-workload"
    if getattr(machine, "prefetch", 0):
        return "machine-prefetch"
    pipeline = getattr(pager, "pipeline", None)
    if pipeline is not None and getattr(pipeline, "prefetcher", None) is not None:
        return "pipeline-prefetch"
    policy = machine.replacement
    if not getattr(policy, "supports_batch_touch", False):
        return f"replacement:{getattr(policy, 'name', type(policy).__name__)}"
    if machine.spec.user_frames < 1:
        # Let the interpreted path raise its configuration error.
        return "no-user-frames"
    return None


def _schedule_key(machine, workload, token) -> dict:
    """Everything that determines the compiled schedule's content."""
    spec = machine.spec
    return {
        "workload": list(token),
        "replacement": machine.replacement.name,
        "user_frames": spec.user_frames,
        "page_size": spec.page_size,
        "cpu_speed": spec.cpu_speed,
        "max_cpu_chunk": machine.max_cpu_chunk,
        "free_batch": machine.free_batch,
    }


def plan_replay(cluster, workload) -> Optional[FaultSchedule]:
    """Decide how ``cluster`` should run ``workload``.

    Returns a :class:`FaultSchedule` to replay, or None to execute the
    reference stream interpretively.
    """
    machine = cluster.machine
    tracer = machine.sim.tracer

    enabled = machine.compile_schedules
    if enabled is None:
        enabled = compile_enabled()
    if not enabled:
        tracer.emit("compile", "bypass", reason="disabled")
        return None

    reason = _bypass_reason(machine, cluster.pager, workload)
    if reason is not None:
        tracer.emit("compile", "bypass", reason=reason)
        return None

    token = workload.schedule_token() if hasattr(workload, "schedule_token") else None
    cache = None
    key: Any = None
    if token is not None and schedule_cache_enabled():
        from ..runner.cache import ScheduleCache

        cache = ScheduleCache()
        key = _schedule_key(machine, workload, token)
        schedule = cache.get(key)
        if schedule is not None:
            tracer.emit(
                "compile", "cache-hit",
                faults=schedule.n_faults, refs=schedule.n_refs,
            )
            return schedule

    started = perf_counter()
    schedule = compile_trace(
        workload.trace(),
        user_frames=machine.spec.user_frames,
        policy=type(machine.replacement)(),
        cpu_speed=machine.spec.cpu_speed,
        max_cpu_chunk=machine.max_cpu_chunk,
        free_batch=machine.free_batch,
    )
    wall_ms = (perf_counter() - started) * 1e3
    if cache is not None:
        schedule.meta = dict(key)
        cache.put(key, schedule)
    tracer.emit(
        "compile", "compiled",
        faults=schedule.n_faults, refs=schedule.n_refs,
        ops=len(schedule.ops), wall_ms=round(wall_ms, 3),
        cached=cache is not None,
    )
    return schedule
