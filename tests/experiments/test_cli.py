"""CLI tests: argument parsing and (cheap) end-to-end subcommands."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_subcommands():
    parser = build_parser()
    for command in (
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "breakdown",
        "latency",
        "busy",
        "loaded",
        "scaling",
        "netcmp",
        "hetero",
        "adaptive",
        "remotedisk",
        "multiclient",
        "diurnal",
        "compression",
        "resilience",
        "profile",
        "ablate",
        "all",
    ):
        args = parser.parse_args([command])
        assert args.command == command


def test_missing_subcommand_errors():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_bad_app_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig2", "--apps", "doom"])


def test_fig1_end_to_end(capsys):
    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "800" in out


def test_latency_end_to_end(capsys):
    assert main(["latency", "--transfers", "20"]) == 0
    out = capsys.readouterr().out
    assert "per page transfer" in out


def test_fig2_subset_end_to_end(capsys):
    assert main(["fig2", "--apps", "mvec", "--policies", "no-reliability", "disk"]) == 0
    out = capsys.readouterr().out
    assert "mvec" in out and "ranking matches" in out


def test_fig3_custom_sizes(capsys):
    assert main(["fig3", "--sizes", "17", "20"]) == 0
    out = capsys.readouterr().out
    assert "17.0" in out and "20.0" in out


def test_argument_defaults():
    parser = build_parser()
    args = parser.parse_args(["loaded"])
    assert args.loads == [0.0, 0.3, 0.6]
    args = parser.parse_args(["scaling", "--servers", "2", "4"])
    assert args.servers == [2, 4]


def test_profile_subcommand(capsys):
    assert main(["profile", "--apps", "mvec"]) == 0
    out = capsys.readouterr().out
    assert "mvec" in out and "pageouts" in out


def test_ablate_choice_validation():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["ablate", "--which", "nonsense"])
