"""§4.6's counterfactual: token ring vs Ethernet under load.

The paper argues the loaded-network collapse "is not inherent to remote
memory paging but rather to the CSMA/CD protocol employed by the
Ethernet ... it is still beneficial to use remote memory paging over
networks that employ other technologies (e.g. token ring)".  The authors
had no token ring to test on; we do.  Same 10 Mbit/s raw bandwidth, same
workload, same background offered load — only the MAC layer differs.
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..analysis.report import format_table
from ..net.token_ring import TokenRingSpec
from ..runner import RunSpec, default_runner
from ..units import megabits_per_second

__all__ = ["run_network_comparison", "render_network_comparison"]


def run_network_comparison(
    loads: Iterable[float] = (0.0, 0.4, 0.8),
    workload: str = "gauss",
    workload_kwargs=None,
    runner=None,
) -> Dict[str, Dict[float, float]]:
    """GAUSS completion time per MAC technology and background load."""
    loads = list(loads)
    ring_spec = TokenRingSpec(bandwidth=megabits_per_second(10))
    variants = [("ethernet", {}), ("token-ring", {"token_ring_spec": ring_spec})]
    specs = [
        RunSpec.make(
            workload,
            "no-reliability",
            workload_kwargs=workload_kwargs,
            overrides=overrides,
            hook="background-load",
            hook_kwargs={"total_load": load, "n_sources": 4},
            label=f"{workload}/{mac}/load={load:.0%}",
        )
        for load in loads
        for mac, overrides in variants
    ]
    flat = iter((runner or default_runner()).run(specs))
    results: Dict[str, Dict[float, float]] = {"ethernet": {}, "token-ring": {}}
    for load in loads:
        for mac, _ in variants:
            results[mac][load] = next(flat).report.etime
    return results


def render_network_comparison(results: Dict[str, Dict[float, float]]) -> str:
    """Side-by-side MAC-technology table."""
    loads = sorted(results["ethernet"])
    rows = []
    for load in loads:
        eth = results["ethernet"][load]
        ring = results["token-ring"][load]
        eth0 = results["ethernet"][loads[0]]
        ring0 = results["token-ring"][loads[0]]
        rows.append(
            [
                f"{load:.0%}",
                f"{eth:.1f} ({eth / eth0:.2f}x)",
                f"{ring:.1f} ({ring / ring0:.2f}x)",
            ]
        )
    return format_table(
        ["offered load", "ethernet etime (slowdown)", "token ring etime (slowdown)"],
        rows,
        title="§4.6 counterfactual: MAC layer under background load (GAUSS, "
        "both at 10 Mbit/s raw)",
    )
