"""Workload models: the paper's six applications plus synthetics."""

from .apps import (
    PAPER_WORKLOADS,
    Fft,
    Gauss,
    ImageFilter,
    KernelBuild,
    Mvec,
    Qsort,
)
from .base import Region, Workload, sweep, zigzag_passes
from .profile import WorkloadProfile, profile_workload, render_profiles
from .synthetic import HotCold, SequentialScan, UniformRandom, ZipfAccess
from .trace_io import RecordedWorkload, load_trace, save_trace

__all__ = [
    "Workload",
    "Region",
    "sweep",
    "zigzag_passes",
    "Mvec",
    "Gauss",
    "Qsort",
    "Fft",
    "ImageFilter",
    "KernelBuild",
    "PAPER_WORKLOADS",
    "SequentialScan",
    "UniformRandom",
    "ZipfAccess",
    "HotCold",
    "RecordedWorkload",
    "save_trace",
    "load_trace",
    "WorkloadProfile",
    "profile_workload",
    "render_profiles",
]
