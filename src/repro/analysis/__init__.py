"""Analysis: time decomposition, extrapolation, paper-data comparison."""

from .charts import ascii_chart
from .model import AnalyticModel, disk_page_time, ethernet_page_time
from .extrapolate import Decomposition, all_memory_bound, decompose, extrapolate
from .paper_data import (
    FFT_24MB_BREAKDOWN,
    FIG2_SECONDS,
    FIG3_INPUT_SIZES_MB,
    FIG5_SECONDS,
    LATENCY_MS,
    SPEEDUP_CLAIMS,
)
from .report import comparison_table, format_table, shape_check

__all__ = [
    "ascii_chart",
    "AnalyticModel",
    "ethernet_page_time",
    "disk_page_time",
    "Decomposition",
    "decompose",
    "extrapolate",
    "all_memory_bound",
    "comparison_table",
    "format_table",
    "shape_check",
    "FIG2_SECONDS",
    "FIG5_SECONDS",
    "FIG3_INPUT_SIZES_MB",
    "FFT_24MB_BREAKDOWN",
    "LATENCY_MS",
    "SPEEDUP_CLAIMS",
]
