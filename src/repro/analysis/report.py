"""Result tables: render measured-vs-paper comparisons as text.

Every experiment module uses these helpers so benchmark output reads like
the paper's figures: one row per (application, policy) with our measured
seconds next to the paper's.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["format_table", "comparison_table", "shape_check"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: Optional[str] = None
) -> str:
    """A plain fixed-width text table."""
    columns = [[str(h)] + [str(row[i]) for row in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def comparison_table(
    measured: Dict[str, Dict[str, float]],
    paper: Dict[str, Dict[str, float]],
    policies: Sequence[str],
    title: str = "measured vs paper (seconds)",
) -> str:
    """Rows per application, measured/paper column pairs per policy."""
    headers = ["app"] + [f"{p} (ours/paper)" for p in policies]
    rows: List[List[str]] = []
    for app, by_policy in measured.items():
        row = [app]
        for policy in policies:
            ours = by_policy.get(policy)
            ref = paper.get(app, {}).get(policy)
            ours_text = f"{ours:.2f}" if ours is not None else "-"
            ref_text = f"{ref:.2f}" if ref is not None else "-"
            row.append(f"{ours_text} / {ref_text}")
        rows.append(row)
    return format_table(headers, rows, title=title)


def shape_check(
    measured: Dict[str, float], paper: Dict[str, float]
) -> Dict[str, object]:
    """Compare the *shape* of one application's policy ranking.

    Returns the measured and paper orderings (fastest first), whether
    they agree, and the worst relative-gap discrepancy — the reproduction
    criterion DESIGN.md §4 sets out.
    """
    common = sorted(set(measured) & set(paper))
    ours_order = sorted(common, key=lambda p: measured[p])
    paper_order = sorted(common, key=lambda p: paper[p])
    gaps = {}
    base = ours_order[0] if ours_order else None
    for policy in common:
        if base is None or paper[base] == 0 or measured[base] == 0:
            continue
        ours_ratio = measured[policy] / measured[base]
        paper_ratio = paper[policy] / paper[base]
        gaps[policy] = abs(ours_ratio - paper_ratio) / paper_ratio
    return {
        "measured_order": ours_order,
        "paper_order": paper_order,
        "order_matches": ours_order == paper_order,
        "max_relative_gap_error": max(gaps.values()) if gaps else 0.0,
    }
