"""Transport-protocol layer: message exchange with CPU accounting.

The paper's latency decomposition (§4.3–4.4) splits each page transfer
into a *bandwidth-dependent* wire component (``btime``) and a fixed
*protocol-processing* CPU component (``pptime``, measured at 1.6 ms per
page for TCP/IP on the DEC Alpha).  This layer reproduces that split:

* it wraps a :class:`~repro.net.base.Network` and adds TCP/IP header bytes
  to every message;
* it charges the protocol CPU cost to the *initiating host's* CPU account
  and occupies simulated time for it (protocol processing is serial with
  the transfer on the 1996-era stack the paper measured);
* it exposes request/response helpers the pager and servers use.

The per-page CPU charge is attributed via :class:`CpuAccount` objects so
experiments can report server CPU utilisation (§4.5: "always less than
15%").
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import ProtocolSpec
from ..sim import NULL_SPAN, Counter, Event, Simulator
from .base import Network

__all__ = ["CpuAccount", "ProtocolStack"]


class CpuAccount:
    """Accumulates CPU seconds consumed by an activity on one host."""

    def __init__(self, host: str):
        self.host = host
        self.busy_seconds = 0.0

    def charge(self, seconds: float) -> None:
        """Add ``seconds`` of CPU work to this account."""
        if seconds < 0:
            raise ValueError(f"negative CPU charge: {seconds}")
        self.busy_seconds += seconds

    def utilization(self, elapsed: float) -> float:
        """Busy fraction over ``elapsed`` wall-clock (simulated) seconds."""
        if elapsed <= 0:
            return 0.0
        return self.busy_seconds / elapsed


class ProtocolStack:
    """TCP/IP-like transport over an underlying network.

    Parameters
    ----------
    network:
        The frame-moving substrate (Ethernet or switched).
    spec:
        Protocol costs; defaults to the paper's measured TCP/IP numbers.
    """

    def __init__(self, network: Network, spec: Optional[ProtocolSpec] = None):
        self.network = network
        self.sim: Simulator = network.sim
        self.spec = spec or ProtocolSpec()
        self.counters = Counter()
        self._accounts: Dict[str, CpuAccount] = {}

    # ------------------------------------------------------------------ CPU
    def cpu_account(self, host: str) -> CpuAccount:
        """The CPU account for ``host`` (created on first use)."""
        account = self._accounts.get(host)
        if account is None:
            account = CpuAccount(host)
            self._accounts[host] = account
        return account

    # ------------------------------------------------------------ transfers
    def _on_wire_bytes(self, payload: int) -> int:
        """Payload plus TCP/IP headers for each MTU-sized segment."""
        mtu_payload = max(1, self._segment_payload())
        segments = -(-payload // mtu_payload)  # ceil division
        return payload + segments * self.spec.header_bytes

    def _segment_payload(self) -> int:
        mtu = getattr(self.network.spec, "mtu", 1500)
        return mtu - self.spec.header_bytes

    def send(self, src: str, dst: str, payload: int, is_page: bool = False,
             span=NULL_SPAN, label: str = "transfer"):
        """Generator: move ``payload`` bytes from ``src`` to ``dst``.

        Charges protocol CPU on both endpoints when ``is_page`` is set
        (the paper's 1.6 ms covers the send+receive path of one page;
        we charge the time once — serially, on the sender's clock — and
        account half to each endpoint's CPU book-keeping).  With page
        compression configured (beyond-paper postscript), page payloads
        shrink by the compression ratio at extra CPU on each endpoint.

        ``span``/``label`` attribute the transfer's time to a request
        span's latency decomposition: the CPU part books under
        ``{label}.protocol`` (the paper's ``pptime``), the wire part
        under ``{label}.wire`` (``btime``).
        """
        if is_page:
            cpu = self.spec.per_page_cpu
            if self.spec.compression_ratio > 1.0:
                cpu += 2 * self.spec.compression_cpu  # compress + decompress
                payload = max(1, int(payload / self.spec.compression_ratio))
                self.counters.add("compressed_pages")
            self.cpu_account(src).charge(cpu / 2)
            self.cpu_account(dst).charge(cpu / 2)
            self.counters.add("page_transfers")
            span.phase(f"{label}.protocol")
            yield self.sim.timeout(cpu)
        self.counters.add("messages")
        span.phase(f"{label}.wire")
        yield self.network.transfer(src, dst, self._on_wire_bytes(payload))

    def request_response(
        self,
        src: str,
        dst: str,
        request_payload: int,
        response_payload: int,
        response_is_page: bool = False,
        span=NULL_SPAN,
        label: str = "transfer",
    ):
        """Generator: small request then a response (e.g. a pagein).

        Returns after the response arrives at ``src``.
        """
        yield from self.send(src, dst, request_payload, span=span, label=label)
        yield from self.send(
            dst, src, response_payload, is_page=response_is_page,
            span=span, label=label,
        )

    def send_page(self, src: str, dst: str, page_size: int,
                  span=NULL_SPAN, label: str = "transfer"):
        """Generator: one page pageout-style transfer (data + control)."""
        yield from self.send(
            src, dst, page_size + self.spec.request_bytes, is_page=True,
            span=span, label=label,
        )

    def fetch_page(self, src: str, dst: str, page_size: int,
                   span=NULL_SPAN, label: str = "transfer"):
        """Generator: one pagein-style transfer (request out, page back)."""
        yield from self.request_response(
            src,
            dst,
            request_payload=self.spec.request_bytes,
            response_payload=page_size,
            response_is_page=True,
            span=span,
            label=label,
        )
