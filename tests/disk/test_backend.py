"""Unit tests for swap-map allocation and the disk paging backends."""

import pytest

from repro.config import DEC_RZ55, PAGE_SIZE
from repro.errors import PageNotFound, SwapSpaceExhausted
from repro.sim import Simulator
from repro.disk import Disk, FileBackend, PartitionBackend, SwapMap


def drive(sim, generator):
    return sim.run_until_complete(sim.process(generator))


def wrap(gen):
    """Adapt a backend generator into a process body returning elapsed."""

    def body(sim, gen):
        yield from gen
        return sim.now

    return body


# ---------------------------------------------------------------- SwapMap
def test_swap_map_assign_is_stable():
    m = SwapMap(8)
    slot = m.assign(page_id=42)
    assert m.assign(page_id=42) == slot
    assert m.slot_of(42) == slot
    assert 42 in m


def test_swap_map_allocates_lowest_first():
    m = SwapMap(8)
    assert m.assign(1) == 0
    assert m.assign(2) == 1


def test_swap_map_reuses_freed_lowest():
    m = SwapMap(8)
    for pid in range(4):
        m.assign(pid)
    m.release(0)  # frees slot 0
    m.release(2)  # frees slot 2
    assert m.assign(99) == 0  # lowest free slot reused first
    assert m.assign(98) == 2


def test_swap_map_exhaustion():
    m = SwapMap(2)
    m.assign(1)
    m.assign(2)
    with pytest.raises(SwapSpaceExhausted):
        m.assign(3)


def test_swap_map_release_absent_is_noop():
    m = SwapMap(2)
    m.release(123)  # must not raise
    assert m.free == 2


def test_swap_map_counts():
    m = SwapMap(4)
    m.assign(1)
    assert m.used == 1
    assert m.free == 3


def test_swap_map_validation():
    with pytest.raises(ValueError):
        SwapMap(0)


# ------------------------------------------------------- PartitionBackend
def test_partition_write_then_read_roundtrip():
    sim = Simulator()
    disk = Disk(sim, DEC_RZ55)
    backend = PartitionBackend(disk, PAGE_SIZE, n_slots=128)

    def body(sim, backend):
        yield from backend.write_page(7)
        yield from backend.read_page(7)
        return sim.now

    elapsed = drive(sim, body(sim, backend))
    assert elapsed > 0
    assert backend.holds(7)
    assert disk.counters["writes"] == 1
    assert disk.counters["reads"] == 1


def test_partition_read_missing_page():
    sim = Simulator()
    disk = Disk(sim, DEC_RZ55)
    backend = PartitionBackend(disk, PAGE_SIZE, n_slots=8)

    def body(sim, backend):
        yield from backend.read_page(5)

    with pytest.raises(PageNotFound):
        drive(sim, body(sim, backend))


def test_partition_release_frees_slot():
    sim = Simulator()
    disk = Disk(sim, DEC_RZ55)
    backend = PartitionBackend(disk, PAGE_SIZE, n_slots=1)

    def write(backend, pid):
        def body(sim, backend):
            yield from backend.write_page(pid)

        return body(sim, backend)

    drive(sim, write(backend, 1))
    backend.release_page(1)
    drive(sim, write(backend, 2))  # would raise if slot 1 weren't freed
    assert backend.holds(2)
    assert not backend.holds(1)


def test_partition_area_centred_on_platter():
    sim = Simulator()
    disk = Disk(sim, DEC_RZ55)
    backend = PartitionBackend(disk, PAGE_SIZE, n_slots=128)
    area = 128 * PAGE_SIZE
    assert backend.base_offset == (DEC_RZ55.capacity_bytes - area) // 2


def test_partition_area_too_large_rejected():
    sim = Simulator()
    disk = Disk(sim, DEC_RZ55)
    too_many = DEC_RZ55.capacity_bytes // PAGE_SIZE + 1
    with pytest.raises(ValueError):
        PartitionBackend(disk, PAGE_SIZE, n_slots=too_many)


def test_partition_bad_base_offset_rejected():
    sim = Simulator()
    disk = Disk(sim, DEC_RZ55)
    with pytest.raises(ValueError):
        PartitionBackend(
            disk, PAGE_SIZE, n_slots=16, base_offset=DEC_RZ55.capacity_bytes
        )


# ------------------------------------------------------------ FileBackend
def test_file_backend_slower_than_partition():
    """The VFS path costs more CPU and scatters placement (paper §3.1)."""

    def total(backend_cls):
        sim = Simulator()
        disk = Disk(sim, DEC_RZ55)
        backend = backend_cls(disk, PAGE_SIZE, n_slots=512)

        def body(sim, backend):
            for pid in range(64):
                yield from backend.write_page(pid)
            for pid in range(64):
                yield from backend.read_page(pid)
            return sim.now

        return drive(sim, body(sim, backend))

    assert total(FileBackend) > total(PartitionBackend)


def test_file_backend_scatter_stays_in_area():
    sim = Simulator()
    disk = Disk(sim, DEC_RZ55)
    backend = FileBackend(disk, PAGE_SIZE, n_slots=64)
    lo = backend.base_offset
    hi = backend.base_offset + 64 * PAGE_SIZE
    for slot in range(64):
        assert lo <= backend._offset(slot) < hi
