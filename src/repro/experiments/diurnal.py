"""Diurnal capacity: running the pager at different times of the week.

Figure 1 is motivation — "for significant periods of time more than 700
Mbytes are unused ... rarely lower than 400 Mbytes" — but the paper never
closes the loop between the idle-memory profile and pager behaviour.
This experiment does: the donors' grantable memory at each start time
comes from the Figure 1 trace, and we measure how much of the workload's
paging lands in remote memory vs. spills to the local disk.

At 3am the cluster absorbs everything; at the Tuesday-noon trough some
pages overflow to the disk (and would be replicated back as memory
frees, §2.1).
"""

from __future__ import annotations

from typing import Dict

from ..analysis.report import format_table
from ..cluster.idle_trace import IdleMemoryTrace
from ..core.builder import build_cluster
from ..units import days, hours
from ..workloads import Mvec

__all__ = ["run_diurnal", "render_diurnal"]

#: (label, seconds into the Figure 1 week — which starts on a Thursday).
START_TIMES = [
    ("Thursday 3am", hours(3)),
    ("Thursday 11am", hours(11)),
    ("Saturday noon", days(2) + hours(12)),
    ("Monday 3pm", days(4) + hours(15.5)),
]


def run_diurnal(
    workload_factory=None,
    n_servers: int = 4,
    donatable_fraction: float = 0.05,
) -> Dict[str, Dict[str, float]]:
    """Run the workload with capacity drawn from the weekly idle trace.

    ``donatable_fraction``: share of the cluster's idle memory our four
    donors offer this one client (the rest belongs to other users and
    other clients).
    """
    workload_factory = workload_factory or (lambda: Mvec(n=2400))
    trace = IdleMemoryTrace()
    results: Dict[str, Dict[str, float]] = {}
    for label, t in START_TIMES:
        idle_pages = trace.free_pages(t)
        per_server = max(64, int(idle_pages * donatable_fraction / n_servers))
        cluster = build_cluster(
            policy="no-reliability",
            n_servers=n_servers,
            server_capacity_pages=per_server,
        )
        report = cluster.run(workload_factory())
        remote = sum(s.stored_pages for s in cluster.servers)
        results[label] = {
            "idle_mb": trace.free_mb(t),
            "capacity_pages": per_server * n_servers,
            "etime": report.etime,
            "remote_pages": remote,
            "disk_pages": cluster.pager.pages_on_local_disk,
        }
    return results


def render_diurnal(results: Dict[str, Dict[str, float]]) -> str:
    """Start-time sweep table."""
    rows = [
        [
            label,
            f"{r['idle_mb']:.0f}",
            r["capacity_pages"],
            f"{r['etime']:.1f}",
            r["remote_pages"],
            r["disk_pages"],
        ]
        for label, r in results.items()
    ]
    return format_table(
        ["start time", "cluster idle (MB)", "granted (pages)", "etime (s)",
         "pages remote", "pages on disk"],
        rows,
        title="Diurnal capacity: the Figure 1 trace driving donor grants "
        "(MVEC 2400, no-reliability)",
    )
