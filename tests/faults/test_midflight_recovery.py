"""Recovery racing the datapath: the two composed-fault windows the
heavy campaign exposed.

* A crash landing *inside* a first-placement pageout leaves the
  redundancy holding an arbitrary prefix of the multi-transfer protocol
  (parity: member stored, parity fold missing — or nothing at all).
  Recovery must not judge what it reconstructs for that page against the
  pageout checksum: the client still holds the definitive bytes and
  retries the pageout the moment recovery returns.

* A server that reboots after a flap is alive but *empty*.  A demand
  read of a page the placement still maps there must surface crash
  semantics (the copy is gone exactly as if the host were down), run or
  wait out recovery, and retry — not die on ``PageNotFound``.
"""

from repro.config import MachineSpec
from repro.core import build_cluster
from repro.faults import check_page_integrity
from repro.vm.page import page_bytes

SMALL = MachineSpec(
    name="midflight-small",
    ram_bytes=2 * 1024 * 1024,
    kernel_resident_bytes=1 * 1024 * 1024,
    page_size=8192,
)

BUILD = dict(
    machine_spec=SMALL,
    n_servers=4,
    content_mode=True,
    seed=3,
    server_capacity_pages=600,
)


def test_crash_inside_first_placement_pageout_recovers():
    cluster = build_cluster(policy="parity", **BUILD)
    pager = cluster.pager
    policy = pager.policy
    sim = cluster.sim
    size = SMALL.page_size

    def crash_soon(server, delay):
        yield sim.timeout(delay)
        server.crash()

    def driver():
        # Prime every slot group so parity pages exist and recovery has
        # real members to XOR (round-robin: pages 0..7 cover all four
        # servers twice).
        for pid in range(8):
            yield from pager.pageout(pid, page_bytes(pid, 1, size))
        # Page 100 is a *first* placement and round-robin puts it on the
        # same server as page 0.  Crash that server 4 ms into the
        # pageout: inside transfer 1, before the parity fold.
        victim, _ = policy._placement[0]
        sim.process(crash_soon(victim, 0.004), name="saboteur")
        yield from pager.pageout(100, page_bytes(100, 1, size))
        got = yield from pager.pagein(100)
        assert got == page_bytes(100, 1, size)

    sim.process(driver(), name="driver")
    sim.run()

    assert pager.counters["recoveries"] == 1
    # Nothing mid-flight anymore: the exemption closed with the pageout.
    assert not pager._inflight_pageouts
    report = check_page_integrity(cluster)
    assert report.clean, report.verdict


def test_reboot_amnesia_surfaces_as_crash_and_recovers():
    cluster = build_cluster(policy="parity", **BUILD)
    pager = cluster.pager
    policy = pager.policy
    sim = cluster.sim
    size = SMALL.page_size

    def driver():
        for pid in range(8):
            yield from pager.pageout(pid, page_bytes(pid, 1, size))
        # A flap nobody saw: down and back up, memory gone, still mapped.
        victim, _ = policy._placement[3]
        victim.crash()
        victim.restart()
        assert victim.is_alive and victim.stored_pages == 0
        got = yield from pager.pagein(3)
        assert got == page_bytes(3, 1, size)

    sim.process(driver(), name="driver")
    sim.run()

    assert pager.counters["recoveries"] == 1
    report = check_page_integrity(cluster)
    assert report.clean, report.verdict
