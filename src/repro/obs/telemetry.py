"""Time-series telemetry: sim-clock sampling into bounded ring buffers.

PR 2's observability reports end-of-run snapshots and per-request
spans; neither shows the queues *filling up* — the signal that predicts
the paper's §4.6 throughput collapse before it happens.  This module
adds the missing middle layer:

* :class:`LogHistogram` — an HDR-style log-bucketed latency histogram:
  exact counts in geometric buckets, so p50/p95/p99/p999 are recoverable
  to within one bucket (~9% with the default growth factor) without
  storing a single raw sample.
* :class:`TimeSeries` — a bounded ring buffer of ``(time, value)``
  samples with an eviction counter, JSON-safe and cheap to snapshot.
* :class:`TelemetrySampler` — the sim-clock-driven sampler: registered
  probes are read every ``interval`` simulated seconds (via the
  kernel's :meth:`~repro.sim.Simulator.every` periodic primitive) into
  per-probe series; listeners (the health monitor) see each sample as
  it lands.

Everything here is driven by the *simulated* clock, so sampled series
are bit-deterministic: the same run produces the same timelines
regardless of ``--jobs``, host speed, or cache replay.  With telemetry
off, ``sim.sampler`` stays the kernel's zero-cost
:class:`~repro.sim.NullSampler` and nothing in this module is touched.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..sim import Simulator
from ..sim.core import Periodic

__all__ = [
    "LogHistogram",
    "TimeSeries",
    "TelemetrySampler",
    "DEFAULT_GROWTH",
    "PERCENTILES",
]

#: Default geometric bucket growth: 2**(1/8) per bucket, i.e. eight
#: buckets per octave, ~9.05% relative resolution.  Any reported
#: percentile is within one bucket (one factor of ``growth``) of the
#: exact-sorted value.
DEFAULT_GROWTH = 2.0 ** 0.125

#: The quantiles every histogram exports in snapshots.
PERCENTILES = (50.0, 95.0, 99.0, 99.9)


def _pct_key(pct: float) -> str:
    """50.0 -> 'p50', 99.9 -> 'p999'."""
    return "p" + str(pct).rstrip("0").rstrip(".").replace(".", "")


class LogHistogram:
    """HDR-style log-bucketed histogram with exact bucket counts.

    A positive sample ``v`` lands in bucket ``floor(log(v, growth))``;
    non-positive samples are counted in a dedicated zero bucket.
    Percentiles use nearest-rank over the bucket counts and report the
    bucket's *upper* edge, so ``exact <= reported <= exact * growth`` —
    within one log-bucket by construction.  Merging sums bucket counts,
    so merged percentiles are exactly what one combined stream would
    have produced (to the same one-bucket resolution).
    """

    __slots__ = ("growth", "buckets", "zeros", "count", "_log_growth")

    def __init__(self, growth: float = DEFAULT_GROWTH):
        if growth <= 1.0:
            raise ValueError(f"histogram growth must exceed 1: {growth!r}")
        self.growth = growth
        self._log_growth = math.log(growth)
        self.buckets: Dict[int, int] = {}
        self.zeros = 0
        self.count = 0

    def observe(self, value: float) -> None:
        """Count one sample."""
        self.count += 1
        if value <= 0.0:
            self.zeros += 1
            return
        index = math.floor(math.log(value) / self._log_growth)
        buckets = self.buckets
        buckets[index] = buckets.get(index, 0) + 1

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile, reported at the bucket's upper edge.

        Returns 0.0 for an empty histogram (and for ranks that land in
        the zero bucket).
        """
        if self.count == 0:
            return 0.0
        if not 0.0 < pct <= 100.0:
            raise ValueError(f"percentile out of range (0, 100]: {pct!r}")
        rank = max(1, math.ceil(pct / 100.0 * self.count))
        if rank <= self.zeros:
            return 0.0
        seen = self.zeros
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return self.growth ** (index + 1)
        # Unreachable while counts are consistent; be safe anyway.
        return self.growth ** (max(self.buckets) + 1)  # pragma: no cover

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other``'s buckets into self (growth factors must match)."""
        if abs(other.growth - self.growth) > 1e-12:
            raise ValueError(
                f"cannot merge histograms with different growth factors: "
                f"{self.growth!r} vs {other.growth!r}"
            )
        self.count += other.count
        self.zeros += other.zeros
        buckets = self.buckets
        for index, n in other.buckets.items():
            buckets[index] = buckets.get(index, 0) + n
        return self

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe view: raw buckets plus derived percentiles."""
        out: Dict[str, Any] = {
            "count": self.count,
            "zeros": self.zeros,
            "growth": self.growth,
            "buckets": {str(index): self.buckets[index] for index in sorted(self.buckets)},
        }
        for pct in PERCENTILES:
            out[_pct_key(pct)] = self.percentile(pct) if self.count else 0.0
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "LogHistogram":
        """Rebuild from :meth:`as_dict` output (derived fields ignored)."""
        hist = cls(growth=float(payload.get("growth", DEFAULT_GROWTH)))
        hist.count = int(payload.get("count", 0))
        hist.zeros = int(payload.get("zeros", 0))
        hist.buckets = {
            int(index): int(n) for index, n in (payload.get("buckets") or {}).items()
        }
        return hist


class TimeSeries:
    """Bounded ring buffer of ``(time, value)`` samples.

    When full, recording evicts the oldest sample and bumps
    ``dropped`` — bounded memory is the contract that lets every run
    carry its timelines in ``CompletionReport.meta`` regardless of
    length.
    """

    __slots__ = ("capacity", "dropped", "_times", "_values")

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError(f"series capacity must be positive: {capacity!r}")
        self.capacity = capacity
        self.dropped = 0
        self._times: deque = deque(maxlen=capacity)
        self._values: deque = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._times)

    def record(self, t: float, value: float) -> None:
        """Append one sample, evicting the oldest when full."""
        if len(self._times) == self.capacity:
            self.dropped += 1
        self._times.append(t)
        self._values.append(value)

    def items(self) -> List[Tuple[float, float]]:
        """The retained samples, oldest first."""
        return list(zip(self._times, self._values))

    @property
    def times(self) -> List[float]:
        return list(self._times)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    @property
    def last(self) -> Optional[float]:
        """Most recent value, or None when empty."""
        return self._values[-1] if self._values else None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe view."""
        return {
            "capacity": self.capacity,
            "dropped": self.dropped,
            "times": list(self._times),
            "values": list(self._values),
        }


#: Probe modes: a ``gauge`` probe's callable returns the sampled value
#: directly; a ``rate`` probe's callable returns a cumulative quantity
#: and the sampler differentiates it (delta / elapsed sim seconds), so
#: monotone counters (busy-seconds, cpu-microseconds, retries) become
#: windowed utilisations and rates; a ``mean`` probe's callable returns
#: a ``(total, count)`` pair of cumulatives and the sampler reports the
#: window's ``dtotal / dcount`` (the mean of just the samples that
#: landed since the last tick; 0 when none did).
_PROBE_MODES = ("gauge", "rate", "mean")


class TelemetrySampler:
    """Sim-clock-driven sampler feeding bounded per-probe time series.

    Owners register probes with :meth:`add_probe`; each tick (every
    ``interval`` simulated seconds) reads every probe, records into its
    :class:`TimeSeries`, and hands the full sample to listeners (the
    health monitor).  The per-fault latency histogram is fed push-style
    by the machine's fault-service path via :meth:`observe_fault` —
    installed as ``sim.sampler`` it replaces the kernel's
    :class:`~repro.sim.NullSampler`, so ``enabled`` is True and the
    compile planner pins the run to interpreted execution
    (``compile.bypass reason=telemetry``): sampled series always come
    from the real event-by-event simulation.
    """

    enabled = True

    def __init__(
        self,
        interval: float,
        capacity: int = 512,
        growth: float = DEFAULT_GROWTH,
    ):
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive: {interval!r}")
        self.interval = interval
        self.capacity = capacity
        self.series: Dict[str, TimeSeries] = {}
        self.fault_latency = LogHistogram(growth=growth)
        self.extra: Dict[str, LogHistogram] = {}
        #: Called as ``listener(now, sample_dict)`` after every tick.
        self.listeners: List[Callable[[float, Dict[str, float]], None]] = []
        self.samples = 0
        self._probes: List[list] = []  # [name, fn, mode, scale, prev]
        self._sim: Optional[Simulator] = None
        self._periodic: Optional[Periodic] = None
        self._last_time: Optional[float] = None

    # -- wiring ---------------------------------------------------------------
    def bind(self, sim: Simulator) -> None:
        """Attach to ``sim``'s clock (called by ``Simulator.set_sampler``)."""
        self._sim = sim

    def add_probe(
        self,
        name: str,
        fn: Callable[[], float],
        mode: str = "gauge",
        scale: float = 1.0,
    ) -> TimeSeries:
        """Register ``fn`` to be read every tick into a new series.

        ``mode="gauge"`` records ``fn() * scale``; ``mode="rate"``
        treats ``fn()`` as a cumulative quantity and records
        ``delta * scale / elapsed`` per tick; ``mode="mean"`` treats
        ``fn()`` as a cumulative ``(total, count)`` pair and records the
        window's ``dtotal * scale / dcount``.  Cumulative modes baseline
        against the probe's value at registration time.  Returns the
        backing :class:`TimeSeries` so callers may also attach it to a
        metrics registry.
        """
        if mode not in _PROBE_MODES:
            raise ValueError(f"unknown probe mode {mode!r}; choose from {_PROBE_MODES}")
        if name in self.series:
            raise ValueError(f"probe already registered: {name}")
        series = TimeSeries(self.capacity)
        self.series[name] = series
        if mode == "rate":
            prev: Any = float(fn())
        elif mode == "mean":
            total, count = fn()
            prev = (float(total), float(count))
        else:
            prev = None
        self._probes.append([name, fn, mode, scale, prev])
        return series

    def observe_fault(self, elapsed: float) -> None:
        """Record one fault-service latency (seconds) into the histogram."""
        self.fault_latency.observe(elapsed)

    def observe(self, name: str, value: float) -> None:
        """Record into a named ad-hoc histogram (created on first use)."""
        hist = self.extra.get(name)
        if hist is None:
            hist = self.extra[name] = LogHistogram(growth=self.fault_latency.growth)
        hist.observe(value)

    # -- clock ----------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._periodic is not None and self._periodic.running

    def ensure_running(self) -> None:
        """(Re-)arm the periodic tick on the bound simulator.

        Idempotent; called at the start of every run phase because the
        kernel's :class:`~repro.sim.Periodic` retires itself rather than
        keep a drained heap alive.
        """
        sim = self._sim
        if sim is None:
            raise RuntimeError("sampler is not bound to a simulator")
        if self._periodic is None or not self._periodic.running:
            self._periodic = sim.every(self.interval, self._tick)

    def stop(self) -> None:
        """Cancel future ticks."""
        if self._periodic is not None:
            self._periodic.stop()

    def finalize(self) -> None:
        """Take one closing sample at the current instant and stop.

        Guarantees every series ends with the run's final state even
        when the run ends between ticks.
        """
        sim = self._sim
        if sim is not None and sim.now != self._last_time:
            self._tick(sim.now)
        self.stop()

    def _tick(self, now: float) -> None:
        last = self._last_time
        elapsed = now - last if last is not None else now if now > 0 else self.interval
        if elapsed <= 0:
            elapsed = self.interval
        self._last_time = now
        sample: Dict[str, float] = {}
        for probe in self._probes:
            name, fn, mode, scale, prev = probe
            if mode == "gauge":
                value = float(fn()) * scale
            elif mode == "rate":
                raw = float(fn())
                value = (raw - prev) * scale / elapsed
                probe[4] = raw
            else:  # mean
                total, count = fn()
                total = float(total)
                count = float(count)
                dcount = count - prev[1]
                value = (total - prev[0]) * scale / dcount if dcount > 0 else 0.0
                probe[4] = (total, count)
            self.series[name].record(now, value)
            sample[name] = value
        self.samples += 1
        for listener in self.listeners:
            listener(now, sample)
