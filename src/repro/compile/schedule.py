"""The fault-schedule artifact: a compiled reference stream.

Format 2 stores the schedule **columnar**, one array per op field,
instead of format 1's flat ``["c", ...]/["b", ...]/["f", ...]`` op
list.  Execution order is segment-major: segment ``i`` (one per fault,
plus a trailing tail segment) is

* ``seg_chunks[i]`` CPU-flush amounts taken in order from
  ``chunk_cpu`` — the *exact* ``pending_cpu`` values the interpreted
  hot loop would flush (accumulated in the same float order, cut at
  the same ``max_cpu_chunk`` boundaries and fault points);
* ``seg_bumps[i]`` page ids taken from ``bump_pages`` — version bumps
  for pages first-written during the hit span (clean->dirty
  transitions).  Bumps only feed ``PageVersioner.contents`` reads,
  which happen at fault time, so applying them at the span boundary
  preserves every pageout payload;
* for ``i < n_faults``, one recorded fault: ``fault_page[i]``,
  ``fault_flags[i]`` (bit 0 = the reference wrote, bit 1 = the page is
  on backing store, i.e. pagein rather than zero-fill) and
  ``victim_lens[i]`` *dirty* victims from ``victims``, in eviction
  order.  Clean victims leave no trace at fault time (their page-table
  flags are part of ``final_ptes``).

The columns are plain Python lists (JSON-trivial, and exactly what the
replay hot loop wants — no numpy scalars can leak into simulator
arithmetic); :meth:`arrays` materialises cached numpy views for the
reductions (§4.3 transfer/CPU terms, validation).  ``policy_state``
and ``final_ptes`` snapshot the replacement policy and every touched
page-table entry as interpreted execution would leave them, so a
replayed machine is indistinguishable after the run too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["FaultSchedule", "SCHEDULE_FORMAT"]

#: Bump when the op or artifact layout changes incompatibly.  The
#: schedule cache hashes this into every entry path, so a bump makes
#: stale entries silently miss (they are never deserialised).
SCHEDULE_FORMAT = 2

try:  # numpy backs the reductions; the replay path never requires it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


@dataclass
class FaultSchedule:
    """A compiled reference stream, ready for ``Machine.run_schedule``."""

    #: CPU-flush amounts (simulated seconds), all segments concatenated.
    chunk_cpu: List[float]
    #: Per-segment chunk counts; ``len(seg_chunks) == n_faults + 1``.
    seg_chunks: List[int]
    #: Per-segment version-bump counts (same length as ``seg_chunks``).
    seg_bumps: List[int]
    #: Bumped page ids, all segments concatenated.
    bump_pages: List[int]
    #: Faulting page per fault.
    fault_page: List[int]
    #: Fault flag bits per fault (bit 0 = write, bit 1 = pagein).
    fault_flags: List[int]
    #: Dirty-victim batch length per fault.
    victim_lens: List[int]
    #: Dirty victims, all faults concatenated, in eviction order.
    victims: List[int]
    n_refs: int
    n_faults: int
    policy_state: Any
    final_ptes: List[list]
    #: Provenance: the cache key fields the schedule was compiled under.
    meta: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------ views
    @property
    def n_ops(self) -> int:
        """Op count in the equivalent flat (format 1) encoding."""
        return (
            len(self.chunk_cpu)
            + self.n_faults
            + sum(1 for n in self.seg_bumps if n)
        )

    @property
    def ops(self) -> List[list]:
        """Flat format-1 op list, reconstructed on demand (diagnostics)."""
        ops: List[list] = []
        ci = bi = vi = 0
        n_faults = self.n_faults
        for s, (nc, nb) in enumerate(zip(self.seg_chunks, self.seg_bumps)):
            for j in range(ci, ci + nc):
                ops.append(["c", self.chunk_cpu[j]])
            ci += nc
            if nb:
                ops.append(["b", self.bump_pages[bi:bi + nb]])
                bi += nb
            if s < n_faults:
                nv = self.victim_lens[s]
                flags = self.fault_flags[s]
                ops.append([
                    "f", self.fault_page[s], flags & 1, (flags >> 1) & 1,
                    self.victims[vi:vi + nv],
                ])
                vi += nv
        return ops

    def arrays(self) -> Optional[Dict[str, Any]]:
        """Cached numpy views of the columns (None without numpy)."""
        if _np is None:
            return None
        cached = self.__dict__.get("_arrays")
        if cached is None:
            cached = self.__dict__["_arrays"] = {
                "chunk_cpu": _np.asarray(self.chunk_cpu, dtype=_np.float64),
                "seg_chunks": _np.asarray(self.seg_chunks, dtype=_np.int64),
                "seg_bumps": _np.asarray(self.seg_bumps, dtype=_np.int64),
                "fault_page": _np.asarray(self.fault_page, dtype=_np.int64),
                "fault_flags": _np.asarray(self.fault_flags, dtype=_np.uint8),
                "victim_lens": _np.asarray(self.victim_lens, dtype=_np.int64),
            }
        return cached

    def transfer_counts(self) -> Dict[str, int]:
        """Array-reduced transfer profile: pageins, pageouts, zero fills."""
        arrays = self.arrays()
        if arrays is not None:
            flags = arrays["fault_flags"]
            pageins = int(((flags & 2) != 0).sum())
            pageouts = int(arrays["victim_lens"].sum())
        else:  # pragma: no cover - numpy ships with the toolchain
            pageins = sum(1 for f in self.fault_flags if f & 2)
            pageouts = len(self.victims)
        return {
            "pageins": pageins,
            "pageouts": pageouts,
            "zero_fills": self.n_faults - pageins,
            "transfers": pageins + pageouts,
        }

    def total_cpu(self) -> float:
        """Array-reduced total user-CPU flush (diagnostic; the replay
        accumulates the same chunks sequentially for bit-exactness)."""
        arrays = self.arrays()
        if arrays is not None:
            return float(arrays["chunk_cpu"].sum())
        return sum(self.chunk_cpu)  # pragma: no cover

    # ---------------------------------------------------------- serialise
    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (floats round-trip exactly via repr)."""
        return {
            "format": SCHEDULE_FORMAT,
            "chunk_cpu": self.chunk_cpu,
            "seg_chunks": self.seg_chunks,
            "seg_bumps": self.seg_bumps,
            "bump_pages": self.bump_pages,
            "fault_page": self.fault_page,
            "fault_flags": self.fault_flags,
            "victim_lens": self.victim_lens,
            "victims": self.victims,
            "n_refs": self.n_refs,
            "n_faults": self.n_faults,
            "policy_state": self.policy_state,
            "final_ptes": self.final_ptes,
            "meta": self.meta,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "FaultSchedule":
        if data.get("format") != SCHEDULE_FORMAT:
            raise ValueError(
                f"incompatible schedule format {data.get('format')!r} "
                f"(expected {SCHEDULE_FORMAT})"
            )
        return cls(
            chunk_cpu=data["chunk_cpu"],
            seg_chunks=data["seg_chunks"],
            seg_bumps=data["seg_bumps"],
            bump_pages=data["bump_pages"],
            fault_page=data["fault_page"],
            fault_flags=data["fault_flags"],
            victim_lens=data["victim_lens"],
            victims=data["victims"],
            n_refs=data["n_refs"],
            n_faults=data["n_faults"],
            policy_state=data["policy_state"],
            final_ptes=data["final_ptes"],
            meta=data.get("meta", {}),
        )
