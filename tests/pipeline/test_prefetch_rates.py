"""Prefetcher behaviour across the predictability spectrum.

The acceptance criteria pin both ends: a sequential scan must prefetch
most of its pageins (hit rate > 50%); a uniform random stream must elect
no trend and therefore prefetch ~nothing (no wasted transfers).
"""

from repro.config import MachineSpec
from repro.core import build_cluster
from repro.workloads import SequentialScan, UniformRandom

_SMALL = MachineSpec(
    name="prefetch-small",
    ram_bytes=2 * 1024 * 1024,
    kernel_resident_bytes=1 * 1024 * 1024,
    page_size=8192,
)

_BUILD = dict(
    machine_spec=_SMALL,
    content_mode=True,
    seed=3,
    n_servers=4,
    server_capacity_pages=600,
)


def _run(workload, prefetch=8):
    cluster = build_cluster(
        policy="parity-logging", pipeline_prefetch=prefetch, **_BUILD
    )
    report = cluster.run(workload)
    snap = cluster.metrics.snapshot()
    return report, snap


def test_sequential_scan_mostly_prefetched():
    report, snap = _run(SequentialScan(n_pages=400, passes=3, write=True))
    pageins = snap["pager.pageins"]
    hits = snap["pipeline.prefetch_hits"]
    assert pageins > 0
    assert hits / pageins > 0.5  # acceptance floor; observed ~0.98
    # Speculation stayed disciplined: barely more fetches than hits.
    assert snap["pipeline.prefetch_issued"] <= pageins + 2 * 8


def test_uniform_random_prefetches_nothing():
    report, snap = _run(UniformRandom(n_pages=400, n_refs=1200, seed=7))
    pageins = snap["pager.pageins"]
    hits = snap.get("pipeline.prefetch_hits", 0)
    assert pageins > 0
    assert hits / pageins < 0.05  # observed exactly 0
    assert snap.get("pipeline.prefetch_issued", 0) <= 0.05 * pageins


def test_prefetch_cache_never_serves_superseded_version():
    """Every prefetch hit in a content-mode run is byte-verified by the
    machine; a cache serving stale bytes would abort the run."""
    cluster = build_cluster(
        policy="parity-logging", pipeline_window=4, pipeline_prefetch=8, **_BUILD
    )
    # Writes re-dirty pages continuously, racing pageouts against
    # prefetched reads of the same pages across three passes.
    report = cluster.run(SequentialScan(n_pages=400, passes=3, write=True))
    snap = cluster.metrics.snapshot()
    assert report.etime > 0
    assert snap["pipeline.prefetch_hits"] > 0
    # The drain barrier quiesced the cache: nothing left in flight.
    assert cluster.pager.pipeline.prefetcher.inflight_event(0) is None
    assert cluster.pager.pipeline.pending == 0
