"""Saturation rules: thresholds, burn-rate escalation, transitions."""

import pytest

from repro.obs.health import HealthMonitor, HealthSpec
from repro.obs.telemetry import TelemetrySampler


def _monitor(**spec_kwargs):
    sampler = TelemetrySampler(interval=1.0)
    monitor = HealthMonitor(sampler, HealthSpec(**spec_kwargs))
    return sampler, monitor


def test_load_rule_warn_and_clear_are_edge_triggered():
    _, monitor = _monitor()
    monitor.on_sample(1.0, {"util.wire": 0.5})
    monitor.on_sample(2.0, {"util.wire": 0.8})
    monitor.on_sample(3.0, {"util.wire": 0.8})  # no repeat event
    monitor.on_sample(4.0, {"util.wire": 0.3})
    severities = [(e["severity"], e["t"]) for e in monitor.events]
    assert severities == [("warn", 2.0), ("clear", 4.0)]
    assert monitor.status == "warn"  # worst level reached, not current
    assert monitor.first_warn_time == 2.0
    assert monitor.first_critical_time is None


def test_load_rule_critical_straight_through():
    _, monitor = _monitor()
    monitor.on_sample(5.0, {"util.server.s0": 0.95})
    assert [e["severity"] for e in monitor.events] == ["critical"]
    # Jumping straight past warn still stamps the first warning sign.
    assert monitor.first_warn_time == 5.0
    assert monitor.first_critical_time == 5.0
    assert monitor.status == "critical"


def test_delay_rule_matches_latency_and_delay_suffixes():
    _, monitor = _monitor()
    monitor.on_sample(1.0, {"net.latency_ms": 25.0, "queue.delay_ms": 150.0})
    by_series = {e["series"]: e for e in monitor.events}
    assert by_series["net.latency_ms"]["severity"] == "warn"
    assert by_series["net.latency_ms"]["rule"] == "delay"
    assert by_series["queue.delay_ms"]["severity"] == "critical"


def test_unruled_series_are_ignored():
    _, monitor = _monitor()
    monitor.on_sample(1.0, {"rate.faults": 1e9, "pool.free_pages": 0.0})
    assert monitor.events == []
    assert monitor.status == "ok"


def test_burn_rate_escalates_sustained_warn_to_critical():
    _, monitor = _monitor(burn_window=4, burn_fraction=0.75)
    for tick in range(4):
        monitor.on_sample(float(tick), {"util.wire": 0.8})  # warm, never critical
    severities = [e["severity"] for e in monitor.events]
    assert severities[0] == "warn"
    assert "critical" in severities
    burn = [e for e in monitor.events if e["severity"] == "critical"]
    assert burn[0]["rule"] == "burn-rate"
    # 3 of the last 4 samples above warn is exactly the 0.75 fraction.
    assert burn[0]["t"] == 3.0


def test_burn_rate_needs_full_window():
    _, monitor = _monitor(burn_window=8, burn_fraction=0.75)
    for tick in range(6):
        monitor.on_sample(float(tick), {"util.wire": 0.8})
    assert all(e["severity"] != "critical" for e in monitor.events)


def test_events_mirror_to_tracer():
    from repro.sim import Simulator

    class Recorder:
        def __init__(self):
            self.calls = []

        def emit(self, component, event, **attrs):
            self.calls.append((component, event, attrs))

    sampler, monitor = _monitor()
    sim = Simulator()
    sim.tracer = Recorder()
    monitor.bind(sim)
    monitor.on_sample(1.0, {"util.wire": 0.99})
    assert sim.tracer.calls
    component, event, attrs = sim.tracer.calls[0]
    assert component == "health"
    assert event == "critical"
    assert attrs["series"] == "util.wire"
    assert attrs["rule"] == "load"


def test_summary_is_json_safe_digest():
    import json

    sampler, monitor = _monitor()
    monitor.on_sample(1.0, {"util.wire": 0.75})
    summary = monitor.summary()
    assert summary["status"] == "warn"
    assert summary["first_warn_time"] == 1.0
    assert summary["first_critical_time"] is None
    assert summary["interval"] == 1.0
    assert summary["spec"]["warn_load"] == 0.70
    json.dumps(summary)  # must not raise


def test_monitor_registers_as_sampler_listener():
    sampler, monitor = _monitor()
    assert monitor.on_sample in sampler.listeners


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(warn_load=0.0),
        dict(warn_load=0.9, crit_load=0.8),
        dict(warn_delay_ms=0.0),
        dict(burn_window=0),
        dict(burn_fraction=1.5),
    ],
)
def test_spec_validation(kwargs):
    with pytest.raises(ValueError):
        HealthSpec(**kwargs)
