"""Pipelined paging datapath (PR 4, beyond-paper performance work).

Write-behind pageout queue with coalescing and clustered batch drain,
plus a Leap-style adaptive prefetcher — see DESIGN.md "Pipelined
datapath" for the model and its correctness argument.
"""

from .datapath import PagingPipeline
from .prefetch import AdaptivePrefetcher, majority_trend
from .queue import PageoutQueue
from .spec import PipelineSpec

__all__ = [
    "PagingPipeline",
    "PageoutQueue",
    "AdaptivePrefetcher",
    "PipelineSpec",
    "majority_trend",
]
