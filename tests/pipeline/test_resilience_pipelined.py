"""The chaos campaign with the pipeline engaged must still end CLEAN.

Reordered, coalesced, and prefetched transfers change *when* pages cross
the wire — they must not change whether every redundant policy can
produce every page, byte-perfect, after crashes, loss, and rot.
"""

from repro.experiments import run_resilience


def test_light_campaign_clean_with_pipeline():
    results = run_resilience(
        policies=("parity-logging", "mirroring"),
        levels=("clean", "light"),
        pipelined=True,
        pipeline_window=4,
        pipeline_prefetch=4,
    )
    for level, by_policy in results.items():
        for policy, cell in by_policy.items():
            assert cell["error"] is None, (level, policy, cell["error"])
            assert cell["extras"]["verdict"] == "CLEAN", (level, policy)
            integrity = cell["extras"]["integrity"]
            assert not integrity["lost"] and not integrity["corrupted"]
