"""Network substrate: shared Ethernet, switched networks, and transport."""

from .base import Message, Network, NetworkStats
from .ethernet import EthernetCsmaCd
from .protocol import CpuAccount, ProtocolStack
from .switched import SwitchedNetwork
from .token_ring import TokenRing, TokenRingSpec
from .traffic import PoissonTrafficSource, attach_background_load

__all__ = [
    "Message",
    "Network",
    "NetworkStats",
    "EthernetCsmaCd",
    "SwitchedNetwork",
    "TokenRing",
    "TokenRingSpec",
    "ProtocolStack",
    "CpuAccount",
    "PoissonTrafficSource",
    "attach_background_load",
]
