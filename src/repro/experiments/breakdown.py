"""§4.3's worked example: the FFT-24MB time decomposition.

The paper dissects one run — FFT with 24 MB of input under parity
logging (4 servers + parity) — into utime/systime/inittime/pptime/btime,
counts its transfers (2718 pageouts, 2055 pageins, 5452 page transfers),
and predicts an 83.459 s completion on a 10x network with paging overhead
under 17%.  This experiment reproduces the whole derivation.

The paper *models* pptime (transfers x 1.6 ms of protocol CPU) and
derives btime as the remainder; it never measures either directly.
:func:`run_observed_breakdown` does what the authors could not: it
re-runs the same cell with the tracer attached and *measures* each cost
term from per-request span phases — ``*.protocol`` segments are pptime,
``*.wire`` segments are btime, and the machine's fault/drain spans
partition ptime exactly.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.extrapolate import all_memory_bound, decompose
from ..analysis.paper_data import FFT_24MB_BREAKDOWN
from ..analysis.report import format_table
from ..runner import RunSpec, default_runner

__all__ = [
    "run_breakdown",
    "render_breakdown",
    "run_observed_breakdown",
    "render_observed_breakdown",
]


def run_breakdown(
    size_mb: float = 24.0, bandwidth_factor: float = 10.0, runner=None
) -> Dict[str, object]:
    """Run the FFT and derive the paper's full §4.3 decomposition."""
    spec = RunSpec.make(
        "fft", "parity-logging", workload_kwargs={"size_mb": size_mb}
    )
    report = (runner or default_runner()).run_one(spec).report
    decomposition = decompose(report)
    predicted = decomposition.predicted_etime(bandwidth_factor)
    cpu_floor = (
        decomposition.utime + decomposition.systime + decomposition.inittime
    )
    return {
        "report": report,
        "decomposition": decomposition,
        "predicted_etime_10x": predicted,
        "overhead_fraction_10x": 1.0 - cpu_floor / predicted,
        "all_memory": all_memory_bound(decomposition),
    }


def render_breakdown(results: Dict[str, object]) -> str:
    """Measured-vs-paper table for the §4.3 worked example."""
    d = results["decomposition"]
    r = results["report"]
    paper = FFT_24MB_BREAKDOWN
    rows = [
        ["etime (s)", f"{d.etime:.2f}", f"{paper['etime']:.2f}"],
        ["utime (s)", f"{d.utime:.2f}", f"{paper['utime']:.2f}"],
        ["systime (s)", f"{d.systime:.2f}", f"{paper['systime']:.2f}"],
        ["inittime (s)", f"{d.inittime:.2f}", f"{paper['inittime']:.2f}"],
        ["ptime (s)", f"{d.ptime:.2f}", f"{paper['ptime']:.2f}"],
        ["pageouts", r.pageouts, paper["pageouts"]],
        ["pageins", r.pageins, paper["pageins"]],
        ["page transfers", r.page_transfers, paper["page_transfers"]],
        ["pptime (s)", f"{d.pptime:.2f}", f"{paper['page_transfers'] * paper['pptime_per_page']:.2f}"],
        [
            "predicted etime @10x (s)",
            f"{results['predicted_etime_10x']:.2f}",
            f"{paper['predicted_etime_10x']:.2f}",
        ],
        [
            "paging overhead @10x",
            f"{results['overhead_fraction_10x']:.1%}",
            f"{paper['predicted_overhead_fraction_10x']:.1%}",
        ],
    ]
    return format_table(
        ["quantity", "ours", "paper"],
        rows,
        title="§4.3 breakdown: FFT 24 MB under parity logging",
    )


def run_observed_breakdown(size_mb: float = 24.0) -> Dict[str, object]:
    """Trace one FFT/parity-logging run and *measure* the §4.3 terms.

    Runs inline (a tracer cannot cross worker processes or ride the
    result cache) with a tracer attached, then aggregates span phases:

    * observed pptime — every ``*.protocol`` segment: CPU the client
      spends running the protocol stack, the term the paper models as
      transfers x 1.6 ms;
    * observed btime — every ``*.wire`` segment: time requests spend on
      the network, the term the paper derives as ``ptime - pptime``;
    * observed ptime — the machine's fault + drain spans, which
      partition the workload's paging stall time exactly.

    Reuses a process-wide tracer (the ``--trace`` flag) when one is
    installed so this run's spans also land in the trace file.
    """
    from ..core.builder import build_cluster
    from ..obs.trace import Tracer, current_tracer
    from ..runner.execute import build_meta
    from ..runner.registry import make_workload
    from .harness import PAPER_CONFIGS

    kwargs = dict(PAPER_CONFIGS["parity-logging"])
    cluster = build_cluster(**kwargs)
    tracer = current_tracer()
    if tracer is None:
        tracer = Tracer()
    cluster.sim.set_tracer(tracer)
    first_span = len(tracer.spans)
    tracer.begin_run(f"breakdown-observed/fft-{size_mb:g}mb")
    workload = make_workload("fft", {"size_mb": size_mb})
    report = cluster.run(workload)
    report.meta = build_meta(
        "parity-logging", kwargs.get("seed", 0), {"size_mb": size_mb}, workload.name
    )
    report.meta["metrics"] = cluster.metrics.snapshot()

    phase_totals: Dict[str, float] = {}
    machine_ptime = 0.0
    request_time = 0.0
    n_requests = 0
    for span in tracer.spans[first_span:]:
        if span.component == "machine":
            # Fault-service + drain spans: the wall-clock stalls that
            # define ptime.  Request phases go in the other bucket.
            machine_ptime += span.duration
            continue
        n_requests += 1
        request_time += span.duration
        for name, seconds in span.phases.items():
            phase_totals[name] = phase_totals.get(name, 0.0) + seconds
    observed_pptime = sum(
        v for k, v in phase_totals.items() if k.endswith(".protocol")
    )
    observed_btime = sum(v for k, v in phase_totals.items() if k.endswith(".wire"))
    return {
        "report": report,
        "decomposition": decompose(report),
        "phase_totals": phase_totals,
        "observed_pptime": observed_pptime,
        "observed_btime": observed_btime,
        "machine_ptime": machine_ptime,
        "request_time": request_time,
        "n_requests": n_requests,
    }


def render_observed_breakdown(results: Dict[str, object]) -> str:
    """Observed (traced) vs §4.3-model cost terms, side by side."""
    d = results["decomposition"]
    r = results["report"]
    phase_totals = dict(results["phase_totals"])
    rows = [
        ["ptime (s)", f"{results['machine_ptime']:.3f}", f"{d.ptime:.3f}",
         "machine fault+drain spans | etime - utime - systime - inittime"],
        ["pptime (s)", f"{results['observed_pptime']:.3f}", f"{d.pptime:.3f}",
         "sum of *.protocol span phases | transfers x 1.6 ms"],
        ["btime (s)", f"{results['observed_btime']:.3f}", f"{d.btime:.3f}",
         "sum of *.wire span phases | ptime - pptime"],
        ["page transfers", r.page_transfers, d.page_transfers, "traced run"],
    ]
    table = format_table(
        ["cost term", "observed", "§4.3 model", "measured | modelled as"],
        rows,
        title="Observed vs modelled §4.3 cost terms (traced run)",
    )
    lines = [table, ""]
    lines.append(
        f"request-time decomposition over {results['n_requests']} spans "
        f"({results['request_time']:.3f} s total):"
    )
    total = results["request_time"] or 1.0
    for name in sorted(phase_totals, key=phase_totals.get, reverse=True):
        seconds = phase_totals[name]
        lines.append(f"  {name:<20} {seconds:10.3f} s  {seconds / total:6.1%}")
    lines.append("")
    lines.append(
        "note: pageouts are asynchronous, so summed per-request wire time can\n"
        "exceed the wall-clock btime the model derives; machine stall spans\n"
        "(fault + drain) partition ptime exactly."
    )
    return "\n".join(lines)
