"""Figure 2: six applications under four paging configurations.

The paper's headline figure: completion time of MVEC, GAUSS, QSORT, FFT,
FILTER, and CC under NO RELIABILITY (2 servers), PARITY LOGGING (4+1,
10% overflow), MIRRORING (1+1), and DISK.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..analysis.paper_data import FIG2_SECONDS
from ..analysis.report import comparison_table, shape_check
from ..workloads import Fft, Gauss, ImageFilter, KernelBuild, Mvec, Qsort
from .harness import merged_metrics, run_suite

__all__ = ["FIG2_POLICIES", "WORKLOAD_FACTORIES", "run_fig2", "render_fig2"]

FIG2_POLICIES = ["no-reliability", "parity-logging", "mirroring", "disk"]

#: Kept for direct construction; run_fig2 itself goes through the
#: runner registry (the keys double as registry names) so the matrix
#: parallelises and caches.
WORKLOAD_FACTORIES = {
    "mvec": Mvec,
    "gauss": Gauss,
    "qsort": Qsort,
    "fft": Fft,
    "filter": ImageFilter,
    "cc": KernelBuild,
}


def run_fig2(
    apps: Optional[Iterable[str]] = None,
    policies: Optional[Iterable[str]] = None,
    runner=None,
) -> Dict[str, Dict[str, object]]:
    """Run the Figure 2 matrix; returns reports keyed [app][policy]."""
    apps = list(apps) if apps else list(WORKLOAD_FACTORIES)
    policies = list(policies) if policies else list(FIG2_POLICIES)
    for name in apps:
        if name not in WORKLOAD_FACTORIES:
            raise KeyError(name)
    return run_suite({name: name for name in apps}, policies, runner=runner)


def render_fig2(reports: Dict[str, Dict[str, object]]) -> str:
    """Measured-vs-paper table plus per-app shape checks."""
    measured = {
        app: {policy: report.etime for policy, report in by_policy.items()}
        for app, by_policy in reports.items()
    }
    policies = list(next(iter(reports.values())).keys())
    table = comparison_table(
        measured,
        FIG2_SECONDS,
        policies,
        title="Figure 2: application completion time (seconds)",
    )
    lines = [table, ""]
    for app, by_policy in measured.items():
        check = shape_check(by_policy, FIG2_SECONDS.get(app, {}))
        lines.append(
            f"{app}: ranking {'matches' if check['order_matches'] else 'DIFFERS'} "
            f"(ours {' < '.join(check['measured_order'])}); "
            f"max relative-gap error {check['max_relative_gap_error']:.0%}"
        )
    all_reports = [
        report for by_policy in reports.values() for report in by_policy.values()
    ]
    merged = merged_metrics(all_reports)
    if merged:
        latency = merged.get("net.message_latency.mean")
        latency_note = (
            f", mean message latency {latency * 1e3:.2f} ms" if latency else ""
        )
        lines.append("")
        lines.append(
            f"suite totals ({len(all_reports)} runs): "
            f"{merged.get('pager.pageouts', 0)} pageouts, "
            f"{merged.get('pager.pageins', 0)} pageins, "
            f"{merged.get('net.protocol.page_transfers', 0)} page transfers"
            f"{latency_note}"
        )
    return "\n".join(lines)
