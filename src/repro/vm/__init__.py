"""Virtual-memory substrate: page tables, replacement, and the machine."""

from .machine import CompletionReport, Machine
from .page import PageVersioner, page_bytes, xor_bytes, zero_page
from .pagetable import PageTable, PageTableEntry
from .pager import InstantPager, LocalDiskPager, Pager
from .replacement import (
    ClockReplacement,
    FifoReplacement,
    LruReplacement,
    ReplacementPolicy,
    make_replacement,
)

__all__ = [
    "Machine",
    "CompletionReport",
    "PageTable",
    "PageTableEntry",
    "Pager",
    "LocalDiskPager",
    "InstantPager",
    "ReplacementPolicy",
    "FifoReplacement",
    "LruReplacement",
    "ClockReplacement",
    "make_replacement",
    "PageVersioner",
    "page_bytes",
    "xor_bytes",
    "zero_page",
]
