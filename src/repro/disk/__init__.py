"""Disk substrate: service-time model, queue disciplines, and backends."""

from .backend import FileBackend, PartitionBackend, SwapMap
from .model import CLook, Disk, DiskRequest, FCFS

__all__ = [
    "Disk",
    "DiskRequest",
    "FCFS",
    "CLook",
    "SwapMap",
    "PartitionBackend",
    "FileBackend",
]
