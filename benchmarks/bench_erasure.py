"""PR 8 erasure-coding benchmark: redundancy spectrum + GF(256) codec.

Two measurements, one JSON summary (``BENCH_pr8.json``):

* **redundancy spectrum** — the full policy family over the identical
  fault-free workload: page-equivalent wire overhead, crashes
  tolerated, and completion time per policy.  Acceptance (``--check``)
  is the PR 8 headline: ec-4-2 ships strictly fewer page-equivalents
  than mirroring while tolerating at least two concurrent crashes
  (mirroring tolerates one).
* **codec throughput** — pure-python GF(256) Reed-Solomon encode and
  worst-case reconstruct (all parity positions substituted) over 8 KB
  pages, pages/second.  No absolute threshold — interpreter speed is
  host-dependent — but the record documents what the simulated
  ``encode_cpu_us`` constant stands in for.

Run as a script for the JSON record, ``--check`` to enforce the PR 8
acceptance claims (CI's bench-regression job does both)::

    PYTHONPATH=src python benchmarks/bench_erasure.py --out BENCH_pr8.json --check

or under pytest for a threshold-free smoke check.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from time import perf_counter

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for _path in (_HERE, _SRC):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.core.policies.gf256 import (  # noqa: E402
    ReedSolomon,
    join_fragments,
    split_page,
)
from repro.experiments.erasure import run_spectrum  # noqa: E402
from repro.vm.page import page_bytes  # noqa: E402

PAGE = 8192


# --------------------------------------------------------------------------
# Codec throughput.
# --------------------------------------------------------------------------

def measure_codec(k: int = 4, m: int = 2, pages: int = 64) -> dict:
    """Pages/second for encode and worst-case (all-parity) reconstruct."""
    rs = ReedSolomon(k, m)
    fragment_size = -(-PAGE // k)
    stripes = [
        split_page(page_bytes(page_id, 1, PAGE), k, fragment_size)
        for page_id in range(pages)
    ]
    start = perf_counter()
    parities = [rs.encode(data) for data in stripes]
    encode_seconds = perf_counter() - start

    # Worst case the shape supports: m data fragments lost, every parity
    # position substituted into the decode.
    survivors = [
        {k + j: parity[j] for j in range(m)} | {i: data[i] for i in range(k - m)}
        if m < k
        else {k + j: parity[j] for j in range(m)}
        for data, parity in zip(stripes, parities)
    ]
    start = perf_counter()
    decoded = [rs.data_from(avail) for avail in survivors]
    decode_seconds = perf_counter() - start

    for page_id, data in enumerate(decoded):
        assert join_fragments(data, PAGE) == page_bytes(page_id, 1, PAGE)
    return {
        "k": k,
        "m": m,
        "pages": pages,
        "encode_pages_per_sec": round(pages / encode_seconds, 1),
        "reconstruct_pages_per_sec": round(pages / decode_seconds, 1),
    }


# --------------------------------------------------------------------------
# Acceptance checks.
# --------------------------------------------------------------------------

def check_spectrum(spectrum: dict) -> list:
    """PR 8 acceptance claims; returns failure strings (empty = pass)."""
    failures = []
    ec = spectrum["ec-4-2"]
    mirror = spectrum["mirroring"]
    if not ec["transfers"] < mirror["transfers"]:
        failures.append(
            f"ec-4-2 page-equivalent transfers ({ec['transfers']}) not "
            f"below mirroring ({mirror['transfers']})"
        )
    if not (ec["crashes_tolerated"] or 0) >= 2:
        failures.append(
            f"ec-4-2 must tolerate >= 2 crashes, got {ec['crashes_tolerated']}"
        )
    if not (mirror["crashes_tolerated"] or 0) == 1:
        failures.append(
            f"mirroring tolerance changed: {mirror['crashes_tolerated']}"
        )
    return failures


def run_all() -> dict:
    spectrum = run_spectrum()
    return {
        "spectrum": {
            policy: {
                "transfers": cell["transfers"],
                "transfer_overhead": cell["transfer_overhead"],
                "crashes_tolerated": cell["crashes_tolerated"],
                "etime": round(cell["etime"], 4),
                "n_servers": cell["n_servers"],
            }
            for policy, cell in spectrum.items()
        },
        "codec": measure_codec(),
    }


# --------------------------------------------------------------------------
# pytest entry point (threshold-free smoke).
# --------------------------------------------------------------------------

def test_erasure_spectrum(benchmark, once):
    record = once(benchmark, run_all)
    print("\n" + json.dumps(record["spectrum"], indent=2))
    failures = check_spectrum(record["spectrum"])
    assert not failures, failures
    assert record["codec"]["encode_pages_per_sec"] > 0


# --------------------------------------------------------------------------
# Script entry point (JSON record + enforced checks).
# --------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="enforce the PR 8 acceptance claims")
    parser.add_argument("--out", default="-", metavar="PATH",
                        help="write the JSON record here ('-' = stdout)")
    args = parser.parse_args(argv)

    record = run_all()
    payload = json.dumps(record, indent=2, sort_keys=True)
    if args.out == "-":
        print(payload)
    else:
        with open(args.out, "w") as handle:
            handle.write(payload + "\n")
        print(f"wrote {args.out}")

    if args.check:
        failures = check_spectrum(record["spectrum"])
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("PR 8 acceptance claims hold: ec-4-2 beats mirroring on the "
              "wire while tolerating two concurrent crashes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
