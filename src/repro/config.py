"""Hardware and protocol presets matching the paper's testbed.

The paper's evaluation platform (§4): DEC Alpha 3000 model 300 clients and
servers with 32 MB of RAM, a 10 Mbit/s shared Ethernet, a DEC RZ55 local
swap disk (10 Mbit/s media rate, 16 ms average seek), 8 KB operating-system
pages, and a measured TCP/IP protocol-processing cost of 1.6 ms per page.

All constants live here (not scattered through the models) so that an
experiment can swap in a different machine or network by constructing a
different preset.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .units import MB, megabits_per_second, microseconds, milliseconds

__all__ = [
    "MachineSpec",
    "EthernetSpec",
    "SwitchedNetworkSpec",
    "DiskSpec",
    "ProtocolSpec",
    "PAGE_SIZE",
    "DEC_ALPHA_3000_300",
    "ETHERNET_10MBPS",
    "DEC_RZ55",
    "TCP_IP_1996",
    "fast_network",
]

#: Operating-system page size used throughout the paper (bytes).
PAGE_SIZE = 8192


@dataclass(frozen=True)
class MachineSpec:
    """A workstation model.

    ``cpu_speed`` scales workload compute cost: a workload calibrated for
    ``cpu_speed=1.0`` runs in half the user time on ``cpu_speed=2.0``.
    ``kernel_resident_bytes`` approximates the memory the OS and daemons pin,
    which is why a "32 MB" machine starts paging well before a 32 MB working
    set (the paper's FFT cliff sits near 18 MB of input on a 32 MB Alpha).
    """

    name: str = "workstation"
    ram_bytes: int = 32 * MB
    cpu_speed: float = 1.0
    kernel_resident_bytes: int = 13 * MB
    page_size: int = PAGE_SIZE
    #: CPU cost charged by the VM system per page fault (trap, driver entry,
    #: queueing) — the "systime" component of the paper's breakdown.
    fault_service_cpu: float = microseconds(500)

    def __post_init__(self) -> None:
        if self.ram_bytes <= 0 or self.page_size <= 0:
            raise ValueError("ram_bytes and page_size must be positive")
        if self.kernel_resident_bytes >= self.ram_bytes:
            raise ValueError("kernel resident share exceeds RAM")
        if self.cpu_speed <= 0:
            raise ValueError("cpu_speed must be positive")

    @property
    def total_frames(self) -> int:
        """Page frames in physical memory."""
        return self.ram_bytes // self.page_size

    @property
    def user_frames(self) -> int:
        """Frames available to the application after the kernel's share."""
        return (self.ram_bytes - self.kernel_resident_bytes) // self.page_size


@dataclass(frozen=True)
class EthernetSpec:
    """A shared-medium CSMA/CD Ethernet (IEEE 802.3 parameters)."""

    bandwidth: float = megabits_per_second(10)
    mtu: int = 1500
    frame_overhead: int = 26  # preamble+SFD(8) + header(14) + FCS(4)
    interframe_gap: float = microseconds(9.6)
    slot_time: float = microseconds(51.2)
    jam_time: float = microseconds(3.2)  # 32-bit jam at 10 Mbit/s
    max_backoff_exponent: int = 10
    max_attempts: int = 16

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.mtu <= 0:
            raise ValueError("bandwidth and mtu must be positive")

    def frame_time(self, payload: int) -> float:
        """Wire time of one frame carrying ``payload`` bytes."""
        return (payload + self.frame_overhead) / self.bandwidth


@dataclass(frozen=True)
class SwitchedNetworkSpec:
    """A full-duplex switched network (FDDI/ATM stand-in): no collisions."""

    bandwidth: float = megabits_per_second(100)
    mtu: int = 1500
    frame_overhead: int = 26
    per_hop_latency: float = microseconds(50)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.mtu <= 0:
            raise ValueError("bandwidth and mtu must be positive")


@dataclass(frozen=True)
class DiskSpec:
    """A magnetic disk modelled as seek + rotation + media transfer.

    ``bandwidth`` is the *burst* media rate the datasheet quotes;
    ``interleave`` models the sector interleaving common on drives and
    controllers of the era, which halves (interleave 2:1) the sustained
    multi-sector rate.  With the RZ55's quoted 10 Mbit/s burst rate and
    2:1 interleave, a streamed 8 KB page takes ~13 ms and a random-access
    page ~26 ms — blending to the paper's "about 17 ms" per page (§3.1)
    and to the swap-write throughput its §4.7 write-through comparison
    implies.
    """

    name: str = "disk"
    bandwidth: float = megabits_per_second(10)
    avg_seek: float = milliseconds(16)
    rpm: float = 3600.0
    track_bytes: int = 32 * 1024
    capacity_bytes: int = 300 * MB
    interleave: float = 2.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.rpm <= 0:
            raise ValueError("bandwidth and rpm must be positive")
        if self.interleave < 1:
            raise ValueError("interleave must be >= 1")

    @property
    def sustained_bandwidth(self) -> float:
        """Multi-sector transfer rate after interleaving (bytes/second)."""
        return self.bandwidth / self.interleave

    @property
    def rotation_time(self) -> float:
        """One full revolution, seconds."""
        return 60.0 / self.rpm

    @property
    def avg_rotational_latency(self) -> float:
        """Expected wait for the target sector: half a revolution."""
        return self.rotation_time / 2


@dataclass(frozen=True)
class ProtocolSpec:
    """Transport-protocol costs charged on the client CPU.

    ``per_page_cpu`` is the paper's measured 1.6 ms of TCP/IP processing
    per page transfer (§4.3); it is bandwidth-independent, which is exactly
    why the extrapolation model keeps it fixed while scaling ``btime``.

    ``compression_ratio``/``compression_cpu`` are a **beyond-the-paper**
    postscript: modern far-memory systems (Infiniswap-era) compress pages
    before shipping them.  A ratio of 2.0 halves the bytes on the wire at
    ``compression_cpu`` extra CPU per page each way; 1.0 (the default and
    the paper's configuration) disables it.

    ``batch_cpu_fraction`` models OSF/1-style pageout clustering (and the
    PR 4 write-behind queue): pages after the first in one clustered
    drain batch ride an already-open stream, so they skip the
    per-message syscall/connection share of the 1.6 ms and pay only this
    fraction of ``per_page_cpu``.  Only the drain path opts in (see
    :meth:`~repro.net.protocol.ProtocolStack.begin_cluster`); a fraction
    of 1.0 disables the amortisation.
    """

    name: str = "tcp/ip"
    per_page_cpu: float = milliseconds(1.6)
    header_bytes: int = 40  # TCP + IP headers per segment
    request_bytes: int = 64  # pagein request / control message size
    compression_ratio: float = 1.0
    compression_cpu: float = 0.0
    batch_cpu_fraction: float = 0.4

    def __post_init__(self) -> None:
        if self.per_page_cpu < 0:
            raise ValueError("per_page_cpu must be non-negative")
        if self.compression_ratio < 1.0:
            raise ValueError("compression_ratio must be >= 1.0")
        if self.compression_cpu < 0:
            raise ValueError("compression_cpu must be non-negative")
        if not 0.0 < self.batch_cpu_fraction <= 1.0:
            raise ValueError(
                f"batch_cpu_fraction must be in (0, 1]: {self.batch_cpu_fraction}"
            )


#: The paper's client/server workstation: DEC Alpha 3000 model 300, 32 MB.
DEC_ALPHA_3000_300 = MachineSpec(name="dec-alpha-3000/300")

#: The paper's interconnect: standard 10 Mbit/s Ethernet.
ETHERNET_10MBPS = EthernetSpec()

#: The paper's local swap disk: DEC RZ55 (10 Mbit/s, 16 ms average seek).
DEC_RZ55 = DiskSpec(name="dec-rz55")

#: The paper's measured TCP/IP protocol costs.
TCP_IP_1996 = ProtocolSpec()


def fast_network(factor: float) -> SwitchedNetworkSpec:
    """A switched network ``factor``× faster than the 10 Mbit/s Ethernet.

    Used by the Fig 4 experiments ("ETHERNET*10") to validate the paper's
    extrapolation model against a directly simulated faster network.
    """
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    return SwitchedNetworkSpec(bandwidth=megabits_per_second(10 * factor))


def scaled(spec: MachineSpec, ram_bytes: int) -> MachineSpec:
    """A copy of ``spec`` with a different RAM size."""
    return replace(spec, ram_bytes=ram_bytes)
