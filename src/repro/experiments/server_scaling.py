"""Server-count scaling for parity logging.

§4.1 claims: "As the number of the remote memory servers used increases,
the difference in performance between NO RELIABILITY and PARITY LOGGING
becomes lower" — because parity logging's per-pageout overhead is
exactly ``1/S`` of a transfer.  This experiment sweeps S and measures
both the transfer-count ratio (which must be exactly ``1 + 1/S`` on the
pageout side) and the end-to-end gap.
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..analysis.report import format_table
from ..runner import RunSpec, default_runner

__all__ = ["run_server_scaling", "render_server_scaling"]


def run_server_scaling(
    server_counts: Iterable[int] = (2, 4, 8),
    workload: str = "gauss",
    workload_kwargs=None,
    runner=None,
) -> Dict[int, Dict[str, float]]:
    """Sweep the server count; returns metrics keyed by S."""
    server_counts = list(server_counts)
    specs = []
    for s in server_counts:
        specs.append(
            RunSpec.make(
                workload,
                "no-reliability",
                workload_kwargs=workload_kwargs,
                overrides={"n_servers": s},
                label=f"{workload}/no-rel/S={s}",
            )
        )
        specs.append(
            RunSpec.make(
                workload,
                "parity-logging",
                workload_kwargs=workload_kwargs,
                overrides={"n_servers": s, "overflow_fraction": 0.10},
                label=f"{workload}/parity-log/S={s}",
            )
        )
    flat = iter((runner or default_runner()).run(specs))
    results: Dict[int, Dict[str, float]] = {}
    for s in server_counts:
        no_rel = next(flat).report
        logging = next(flat).report
        results[s] = {
            "no_reliability_etime": no_rel.etime,
            "parity_logging_etime": logging.etime,
            "gap_fraction": logging.etime / no_rel.etime - 1.0,
            "no_reliability_transfers": no_rel.page_transfers,
            "parity_logging_transfers": logging.page_transfers,
            "pageouts": logging.pageouts,
        }
    return results


def render_server_scaling(results: Dict[int, Dict[str, float]]) -> str:
    """Server-count sweep table with the 1/S check."""
    rows = []
    for s in sorted(results):
        r = results[s]
        extra = r["parity_logging_transfers"] - r["no_reliability_transfers"]
        per_pageout = extra / r["pageouts"] if r["pageouts"] else 0.0
        rows.append(
            [
                s,
                f"{r['no_reliability_etime']:.1f}",
                f"{r['parity_logging_etime']:.1f}",
                f"{r['gap_fraction']:.1%}",
                f"{per_pageout:.3f} (expect {1 / s:.3f})",
            ]
        )
    return format_table(
        ["servers", "no-rel (s)", "parity-log (s)", "gap", "extra transfers/pageout"],
        rows,
        title="§4.1: parity logging's gap to no-reliability shrinks with S",
    )
