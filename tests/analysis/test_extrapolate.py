"""Unit tests for the §4.3 decomposition/extrapolation model."""

import pytest

from repro.analysis import (
    FFT_24MB_BREAKDOWN,
    all_memory_bound,
    decompose,
    extrapolate,
)
from repro.analysis.extrapolate import Decomposition
from repro.vm import CompletionReport


def make_report(**overrides):
    values = dict(
        name="test",
        etime=130.76,
        utime=66.138,
        systime=3.133,
        inittime=0.21,
        pageins=2055,
        pageouts=2718,
        faults=5000,
        page_transfers=5452,
    )
    values.update(overrides)
    return CompletionReport(**values)


def test_decompose_reproduces_paper_arithmetic():
    """Feed the paper's own §4.3 numbers through our model: it must
    reproduce the paper's pptime, btime, and 10x prediction."""
    d = decompose(make_report(), per_page_protocol_cpu=0.0016)
    assert d.pptime == pytest.approx(8.7232)  # 5452 * 1.6 ms
    assert d.btime == pytest.approx(61.279 - 8.7232, abs=1e-3)
    predicted = d.predicted_etime(10.0)
    assert predicted == pytest.approx(FFT_24MB_BREAKDOWN["predicted_etime_10x"], abs=0.01)


def test_components_sum_to_etime():
    d = decompose(make_report())
    total = d.utime + d.systime + d.inittime + d.pptime + d.btime
    assert total == pytest.approx(d.etime)


def test_paging_overhead_fraction():
    d = decompose(make_report())
    assert d.paging_overhead_fraction == pytest.approx(61.279 / 130.76, abs=1e-3)


def test_infinite_bandwidth_leaves_protocol_cost():
    d = decompose(make_report())
    limit = d.predicted_etime(1e12)
    assert limit == pytest.approx(d.utime + d.systime + d.inittime + d.pptime, abs=1e-3)


def test_all_memory_bound():
    d = decompose(make_report())
    assert all_memory_bound(d) == pytest.approx(66.138 + 3.133 + 0.21)


def test_extrapolate_monotone_in_bandwidth():
    d = decompose(make_report())
    times = [extrapolate(d, x) for x in (1, 2, 5, 10, 100)]
    assert times == sorted(times, reverse=True)


def test_factor_one_is_identity():
    d = decompose(make_report())
    assert d.predicted_etime(1.0) == pytest.approx(d.etime)


def test_pptime_capped_at_ptime():
    """A run with huge protocol cost cannot have negative btime."""
    d = decompose(make_report(), per_page_protocol_cpu=1.0)
    assert d.btime == 0.0
    assert d.pptime <= d.ptime + 1e-9


def test_validation():
    d = decompose(make_report())
    with pytest.raises(ValueError):
        d.predicted_etime(0)
    with pytest.raises(ValueError):
        decompose(make_report(), per_page_protocol_cpu=-1)


def test_summary_text():
    d = decompose(make_report())
    text = d.summary()
    assert "utime" in text and "btime" in text and "transfers" in text
