#!/usr/bin/env python3
"""Quickstart: page a memory-hungry application to remote memory.

Builds the paper's testbed twice — once paging to the local DEC RZ55
disk, once paging to remote workstation memory over a 10 Mbit/s Ethernet
with the parity-logging reliability policy — and runs the same Gaussian
elimination on both.

Run:  python examples/quickstart.py
"""

from repro import build_cluster, Gauss


def main() -> None:
    workload = Gauss()  # the paper's 1700x1700 double-precision matrix
    print(f"workload: {workload.name}, "
          f"{workload.footprint_bytes / (1 << 20):.1f} MB working set "
          f"on a 32 MB DEC Alpha 3000/300\n")

    # Baseline: the OSF/1 kernel pages straight to the local swap disk.
    disk = build_cluster(policy="disk")
    disk_report = disk.run(workload)
    print(f"DISK            {disk_report.summary()}")

    # The paper's pager: 4 remote memory servers + a parity server,
    # each devoting 10% overflow memory, over the shared Ethernet.
    remote = build_cluster(
        policy="parity-logging", n_servers=4, overflow_fraction=0.10
    )
    remote_report = remote.run(workload)
    print(f"PARITY LOGGING  {remote_report.summary()}")

    speedup = disk_report.etime / remote_report.etime - 1.0
    print(
        f"\nremote memory paging (with single-crash reliability!) ran "
        f"{speedup:.0%} faster than the local disk"
    )
    print(
        f"remote memory consumed: {remote.policy.memory_overhead_factor:.2f}x "
        f"pages stored; transfers: {remote_report.page_transfers}"
    )


if __name__ == "__main__":
    main()
