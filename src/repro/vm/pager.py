"""The block-device pager interface and the local-disk pager.

The paper's client is "a block device driver ... that handles all pagein
and pageout requests" (§3).  The VM machine issues exactly two operations
against this interface; everything behind it — local disk, remote memory,
any reliability policy — is interchangeable, which is the paper's central
software-architecture point (the OSF/1 kernel "is not even aware" what
the paging device is).

Contract
--------
Both operations are generators (simulation processes):

* ``pageout(page_id, contents)`` completes when the page is safely on the
  backing store (whatever the policy means by "safe").
* ``pagein(page_id)`` completes when the page is back in memory and
  returns its contents (bytes in content mode, None in metadata mode).

``transfers`` counts backing-store page movements — the quantity the
paper's extrapolation model multiplies by the per-page protocol cost.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..disk.backend import PartitionBackend
from ..errors import PageNotFound
from ..sim import Counter, Simulator

__all__ = ["Pager", "LocalDiskPager"]


class Pager:
    """Abstract paging device."""

    name = "abstract"

    def __init__(self) -> None:
        self.counters = Counter()

    @property
    def pageouts(self) -> int:
        return self.counters["pageouts"]

    @property
    def pageins(self) -> int:
        return self.counters["pageins"]

    @property
    def transfers(self) -> int:
        """Page-sized movements to/from backing stores (network or disk)."""
        return self.counters["transfers"]

    def pageout(self, page_id: int, contents: Optional[bytes] = None):
        """Generator: persist one page."""
        raise NotImplementedError

    def pagein(self, page_id: int):
        """Generator: retrieve one page; returns its contents (or None)."""
        raise NotImplementedError

    def release(self, page_id: int) -> None:
        """The page is dead (process exit); backing copies may be freed."""

    @property
    def pending_drain(self) -> bool:
        """Does this pager buffer work the end-of-run barrier must settle?

        False for every synchronous pager; the pipelined remote pager
        (write-behind queue, prefetch cache) overrides it.
        """
        return False

    def drain(self):
        """Generator: settle any buffered/asynchronous work (no-op here)."""
        return
        yield  # pragma: no cover - makes this a generator


class InstantPager(Pager):
    """A zero-cost backing store: every operation completes immediately.

    Isolates a workload's *fault profile* (pageins, pageouts, zero
    fills) from any device timing — the tool behind workload calibration
    and ``python -m repro profile``.  Contents round-trip faithfully, so
    it also works in content mode.
    """

    name = "instant"

    def __init__(self, sim: Simulator):
        super().__init__()
        self.sim = sim
        self._contents: Dict[int, Optional[bytes]] = {}

    def pageout(self, page_id: int, contents: Optional[bytes] = None):
        self._contents[page_id] = contents
        self.counters.add("pageouts")
        self.counters.add("transfers")
        return
        yield  # pragma: no cover - makes this a generator

    def pagein(self, page_id: int):
        if page_id not in self._contents:
            raise PageNotFound(page_id, where="instant pager")
        self.counters.add("pageins")
        self.counters.add("transfers")
        return self._contents[page_id]
        yield  # pragma: no cover - makes this a generator

    def release(self, page_id: int) -> None:
        self._contents.pop(page_id, None)


class LocalDiskPager(Pager):
    """The paper's DISK baseline: pages go to the local swap disk.

    In the DISK experiments "the page transfer requests go directly from
    the DEC OSF/1 kernel to the disk driver" (§4.1) — so this pager adds
    no protocol cost, just the disk backend's service time.
    """

    name = "disk"

    def __init__(self, backend: PartitionBackend):
        super().__init__()
        self.backend = backend
        self.sim: Simulator = backend.sim
        self._contents: Dict[int, Optional[bytes]] = {}

    def pageout(self, page_id: int, contents: Optional[bytes] = None):
        span = self.sim.tracer.span("pageout", page_id, component="disk")
        span.phase("disk")
        yield from self.backend.write_page(page_id)
        self._contents[page_id] = contents
        self.counters.add("pageouts")
        self.counters.add("transfers")
        span.end("ok")

    def pagein(self, page_id: int):
        if not self.backend.holds(page_id):
            raise PageNotFound(page_id, where="local swap disk")
        span = self.sim.tracer.span("pagein", page_id, component="disk")
        span.phase("disk")
        yield from self.backend.read_page(page_id)
        self.counters.add("pageins")
        self.counters.add("transfers")
        span.end("ok")
        return self._contents.get(page_id)

    def release(self, page_id: int) -> None:
        self.backend.release_page(page_id)
        self._contents.pop(page_id, None)
