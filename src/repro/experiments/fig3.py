"""Figure 3: FFT completion time vs input size, disk vs parity logging.

"As soon as the working set size exceeds 18 MBytes, the paging starts,
and the completion time of the application rises sharply."  Remote
memory (parity logging) softens the cliff substantially.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..analysis.charts import ascii_chart
from ..analysis.paper_data import FIG3_INPUT_SIZES_MB
from ..analysis.report import format_table
from ..runner import RunSpec, default_runner

__all__ = ["run_fig3", "render_fig3"]


def run_fig3(
    sizes_mb: Optional[Iterable[float]] = None,
    policies: Iterable[str] = ("disk", "parity-logging"),
    runner=None,
) -> Dict[str, Dict[float, object]]:
    """FFT input-size sweep; returns reports keyed [policy][size_mb]."""
    sizes = list(sizes_mb) if sizes_mb else list(FIG3_INPUT_SIZES_MB)
    policies = list(policies)
    specs = [
        RunSpec.make(
            "fft",
            policy,
            workload_kwargs={"size_mb": mb},
            label=f"fft-{mb}MB/{policy}",
        )
        for policy in policies
        for mb in sizes
    ]
    flat = iter((runner or default_runner()).run(specs))
    return {policy: {mb: next(flat).report for mb in sizes} for policy in policies}


def render_fig3(results: Dict[str, Dict[float, object]]) -> str:
    """Figure 3 table plus an ASCII rendering of the cliff."""
    policies = list(results)
    sizes = sorted(next(iter(results.values())).keys())
    rows: List[List[str]] = []
    for mb in sizes:
        row = [f"{mb:.1f}"]
        for policy in policies:
            report = results[policy][mb]
            row.append(f"{report.etime:.1f}s (in={report.pageins}, out={report.pageouts})")
        rows.append(row)
    table = format_table(
        ["input (MB)"] + policies,
        rows,
        title="Figure 3: FFT completion vs input size",
    )
    chart = ascii_chart(
        {
            policy: [(mb, results[policy][mb].etime) for mb in sizes]
            for policy in policies
        },
        width=48,
        height=12,
        x_label="input (MB)",
        y_label="completion (s)",
    )
    return table + "\n\n" + chart
