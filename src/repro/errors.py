"""Exception hierarchy for the remote-memory-pager reproduction.

Every package-specific error derives from :class:`ReproError` so callers
can catch the library's failures without catching programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "PagingError",
    "PageNotFound",
    "SwapSpaceExhausted",
    "ServerCrashed",
    "ServerUnavailable",
    "RequestTimeout",
    "PageCorrupted",
    "RecoveryError",
    "NetworkPartitioned",
]


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """An experiment or model was configured inconsistently."""


class PagingError(ReproError):
    """Base class for paging-path failures."""


class PageNotFound(PagingError):
    """A pagein asked for a page the backing store does not hold."""

    def __init__(self, page_id: int, where: str = "backing store"):
        super().__init__(f"page {page_id} not found in {where}")
        self.page_id = page_id
        self.where = where


class SwapSpaceExhausted(PagingError):
    """No server (and no disk fallback) could absorb a pageout."""


class ServerCrashed(PagingError):
    """An operation hit a server that has crashed."""

    def __init__(self, server_name: str):
        super().__init__(f"memory server {server_name!r} has crashed")
        self.server_name = server_name


class ServerUnavailable(PagingError):
    """A server declined a request (out of memory / under native load)."""

    def __init__(self, server_name: str, reason: str = "out of memory"):
        super().__init__(f"memory server {server_name!r} unavailable: {reason}")
        self.server_name = server_name
        self.reason = reason


class RequestTimeout(PagingError):
    """An RPC exhausted its retry budget without an acknowledgement.

    Distinct from :class:`ServerCrashed`: a timeout says nothing about
    the peer's state — the server may be alive behind a lossy or
    partitioned link — so the caller must not run crash recovery, only
    fail over (pageouts fall back to the local disk; pageins surface
    the timeout to be retried once the network recovers).
    """

    def __init__(self, dst: str, attempts: int = 1):
        super().__init__(
            f"request to {dst!r} timed out after {attempts} attempt(s)"
        )
        self.dst = dst
        self.attempts = attempts


class PageCorrupted(PagingError):
    """A pagein returned bytes whose checksum does not match the pageout's,
    and the active policy had no redundant copy to repair from."""

    def __init__(self, page_id: int, policy: str = "unknown"):
        super().__init__(
            f"page {page_id} failed its end-to-end checksum and policy "
            f"{policy!r} could not reconstruct a clean copy"
        )
        self.page_id = page_id
        self.policy = policy


class RecoveryError(ReproError):
    """Crash recovery could not reconstruct the lost pages."""


class NetworkPartitioned(ReproError):
    """The client is cut off from its servers (paper §2.2: it blocks)."""
