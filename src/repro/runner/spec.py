"""Picklable descriptions of individual experiment runs.

A :class:`RunSpec` is the unit of work the parallel runner ships to a
worker process: everything needed to rebuild a cluster and replay one
workload, expressed as plain data (registry names and sorted key/value
tuples) so it pickles cheaply and fingerprints canonically.  The few
experiment ingredients that are not plain data — workload constructors,
cluster hooks, post-run metric extraction — are referenced *by name*
and resolved against :mod:`repro.runner.registry` inside the worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..vm.machine import CompletionReport

__all__ = ["RunSpec", "RunResult"]


def _freeze(mapping: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    """Canonicalise a kwargs mapping into a sorted, hashable tuple."""
    if not mapping:
        return ()
    return tuple(sorted(mapping.items()))


@dataclass(frozen=True)
class RunSpec:
    """One cell of an experiment matrix, as plain picklable data.

    Fields referencing behaviour do so by registry name:

    * ``workload`` — key in :data:`repro.runner.registry.WORKLOADS`;
      ``workload_kwargs`` are passed to the factory (``size_mb`` routes
      through ``from_megabytes`` for workloads that support it).
    * ``policy`` — a :data:`repro.experiments.harness.PAPER_CONFIGS`
      name (or any :func:`build_cluster` policy).
    * ``overrides`` — extra :func:`build_cluster` keyword arguments; a
      string ``replacement`` is resolved via ``make_replacement``.
    * ``machine_attrs`` — attributes set on ``cluster.machine`` after
      assembly (``pageout_window``, ``free_batch``, ``prefetch``, …).
    * ``hook`` / ``hook_kwargs`` — a registered cluster hook, applied
      between assembly and the workload run.
    * ``extract`` — registered extractors producing the run's ``extras``
      dict from the finished cluster (network stats, server CPU, …).

    ``label`` is display-only and never contributes to the cache
    fingerprint.
    """

    workload: str
    policy: str
    workload_kwargs: Tuple[Tuple[str, Any], ...] = ()
    overrides: Tuple[Tuple[str, Any], ...] = ()
    machine_attrs: Tuple[Tuple[str, Any], ...] = ()
    seed: int = 0
    hook: Optional[str] = None
    hook_kwargs: Tuple[Tuple[str, Any], ...] = ()
    extract: Tuple[str, ...] = ()
    label: Optional[str] = field(default=None, compare=False)

    @classmethod
    def make(
        cls,
        workload: str,
        policy: str,
        *,
        workload_kwargs: Optional[Mapping[str, Any]] = None,
        overrides: Optional[Mapping[str, Any]] = None,
        machine_attrs: Optional[Mapping[str, Any]] = None,
        seed: int = 0,
        hook: Optional[str] = None,
        hook_kwargs: Optional[Mapping[str, Any]] = None,
        extract: Tuple[str, ...] = (),
        label: Optional[str] = None,
    ) -> "RunSpec":
        """Build a spec from plain dicts (sorted into canonical tuples)."""
        return cls(
            workload=workload,
            policy=policy,
            workload_kwargs=_freeze(workload_kwargs),
            overrides=_freeze(overrides),
            machine_attrs=_freeze(machine_attrs),
            seed=seed,
            hook=hook,
            hook_kwargs=_freeze(hook_kwargs),
            extract=tuple(extract),
            label=label,
        )

    def identity(self) -> str:
        """Canonical identity string (the cache fingerprint's raw input).

        Deterministic across processes: built only from reprs of plain
        values and frozen dataclasses, never from object ids.
        """
        return repr(
            (
                self.workload,
                self.policy,
                self.workload_kwargs,
                self.overrides,
                self.machine_attrs,
                self.seed,
                self.hook,
                self.hook_kwargs,
                self.extract,
            )
        )

    def describe(self) -> Dict[str, Any]:
        """Human-readable dict (stored alongside cached results)."""
        return {
            "workload": self.workload,
            "policy": self.policy,
            "workload_kwargs": dict(self.workload_kwargs),
            "overrides": {k: repr(v) for k, v in self.overrides},
            "machine_attrs": dict(self.machine_attrs),
            "seed": self.seed,
            "hook": self.hook,
            "hook_kwargs": dict(self.hook_kwargs),
            "extract": list(self.extract),
        }


@dataclass
class RunResult:
    """A completed run: the report plus any extractor output.

    ``cached`` records whether the result came from the on-disk cache;
    it is excluded from equality so a cache hit compares equal to the
    cold run that produced it.
    """

    spec: RunSpec
    report: CompletionReport
    extras: Dict[str, Any] = field(default_factory=dict)
    cached: bool = field(default=False, compare=False)
