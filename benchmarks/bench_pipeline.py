"""PR 4 pipelined-datapath benchmark: A/B against frozen baselines.

Three measurements, one JSON summary (``BENCH_pr4.json``):

* **content fast path A/B** — the content-mode hot loop (regenerate a
  page payload, compare it to its expected bytes, checksum it) with the
  :mod:`repro.vm.page` memo caches ON vs OFF.  The caches return shared
  immutable objects, so the equality compare short-circuits on identity
  and the CRC is computed once per version; acceptance requires >= 1.3x.
* **pipeline A/B** — the fig2 GAUSS/parity-logging cell synchronous
  (window 1, literally the paper's datapath) vs pipelined (window 8):
  wall-clock, plus the modeled paging cost (measured protocol CPU +
  modeled wire time) whose delta is the experiment's headline.
* **kernel guard** — the events/sec microbenchmark from
  :mod:`bench_kernel`, A/B against the in-tree frozen seed and PR-1
  kernels on the *same* machine in the *same* run — the < 3% regression
  budget stays meaningful on any host, unlike comparing absolute rates
  across machines.

Run as a script for the JSON record, ``--check`` to enforce the PR 4
acceptance thresholds (CI's bench-regression job does both)::

    PYTHONPATH=src python benchmarks/bench_pipeline.py --out BENCH_pr4.json --check

or under pytest for a threshold-free smoke check.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from time import perf_counter

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for _path in (_HERE, _SRC):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from bench_kernel import measure_kernels  # noqa: E402

#: PR 4 acceptance thresholds, enforced by ``--check``.
CONTENT_SPEEDUP_FLOOR = 1.3
KERNEL_REGRESSION_BUDGET = 0.03


# --------------------------------------------------------------------------
# Content fast path A/B.
# --------------------------------------------------------------------------

def _content_hot_loop(
    page_size: int, pages: int, passes: int, touches: int
) -> float:
    """Seconds for the content-mode hot loop.

    One (page, version) payload is materialised several times per
    transfer in a real run — pageout generation + checksum, the server's
    store, the pagein verify against expected bytes, the parity fold,
    the end-of-run integrity replay — so each pair here is touched
    ``touches`` times: regenerate, compare against expected, checksum.
    """
    from repro.vm.page import page_bytes, page_checksum

    start = perf_counter()
    for version in range(1, passes + 1):
        for page_id in range(pages):
            for _ in range(touches):
                contents = page_bytes(page_id, version, page_size)
                expected = page_bytes(page_id, version, page_size)
                assert contents == expected
                page_checksum(contents)
    return perf_counter() - start


def measure_content_ab(
    page_size: int = 8192, pages: int = 400, passes: int = 12,
    touches: int = 3, repeats: int = 3,
) -> dict:
    from repro.vm.page import set_fastpath

    accesses = pages * passes * touches
    previous = set_fastpath(True)
    try:
        fast = min(
            _content_hot_loop(page_size, pages, passes, touches)
            for _ in range(repeats)
        )
        set_fastpath(False)
        slow = min(
            _content_hot_loop(page_size, pages, passes, touches)
            for _ in range(repeats)
        )
    finally:
        set_fastpath(previous)
    return {
        "page_size": page_size,
        "touches_per_version": touches,
        "accesses": accesses,
        "fast_seconds": round(fast, 4),
        "slow_seconds": round(slow, 4),
        "speedup": round(slow / fast, 2),
    }


# --------------------------------------------------------------------------
# Pipelined vs frozen synchronous datapath.
# --------------------------------------------------------------------------

def _run_cell(window: int) -> dict:
    from repro.experiments.pipelining import modeled_paging_cost
    from repro.runner import ExperimentRunner, RunSpec

    overrides = {"pipeline_window": window} if window > 1 else {}
    spec = RunSpec.make(
        "gauss", "parity-logging", overrides=overrides,
        label=f"bench/window={window}",
    )
    runner = ExperimentRunner(jobs=1, use_cache=False)
    start = perf_counter()
    result = runner.run([spec])[0]
    wall = perf_counter() - start
    report = result.report
    cost = modeled_paging_cost(report)
    return {
        "window": window,
        "wall_seconds": round(wall, 3),
        "etime": round(report.etime, 4),
        "ptime": round(report.ptime, 4),
        "pptime": round(cost["pptime"], 4),
        "btime": round(cost["btime"], 4),
        "paging_cost": round(cost["paging_cost"], 4),
    }


def measure_pipeline_ab(window: int = 8) -> dict:
    sync = _run_cell(1)
    pipelined = _run_cell(window)
    return {
        "app": "gauss",
        "policy": "parity-logging",
        "sync": sync,
        "pipelined": pipelined,
        # The headline: how much modeled paging time the window bought.
        "modeled_ptime_delta": round(sync["ptime"] - pipelined["ptime"], 4),
        "paging_cost_delta": round(
            sync["paging_cost"] - pipelined["paging_cost"], 4
        ),
    }


# --------------------------------------------------------------------------
# Assembly + threshold check.
# --------------------------------------------------------------------------

def run_benchmarks(
    n_events: int = 200_000, repeats: int = 3, window: int = 8,
    content_passes: int = 12,
) -> dict:
    return {
        "kernel": measure_kernels(n_events, repeats),
        "content_ab": measure_content_ab(passes=content_passes, repeats=repeats),
        "pipeline_ab": measure_pipeline_ab(window=window),
    }


def check(summary: dict) -> list:
    """The PR 4 acceptance thresholds; returns a list of failures."""
    failures = []
    content = summary["content_ab"]
    if content["speedup"] < CONTENT_SPEEDUP_FLOOR:
        failures.append(
            f"content fast path {content['speedup']:.2f}x < "
            f"{CONTENT_SPEEDUP_FLOOR}x floor"
        )
    for path_name, path in summary["kernel"].items():
        overhead = path["tracer_overhead_vs_pr1"]
        if overhead >= KERNEL_REGRESSION_BUDGET:
            failures.append(
                f"kernel {path_name}: {overhead:.2%} slower than the frozen "
                f"PR-1 kernel (budget {KERNEL_REGRESSION_BUDGET:.0%})"
            )
    ab = summary["pipeline_ab"]
    if ab["paging_cost_delta"] <= 0:
        failures.append(
            "pipelined window did not reduce the modeled paging cost "
            f"(delta {ab['paging_cost_delta']})"
        )
    return failures


# --------------------------------------------------------------------------
# pytest smoke checks (tiny sizes; correctness thresholds only).
# --------------------------------------------------------------------------

def test_content_fastpath_speedup(benchmark, once):
    results = once(benchmark, measure_content_ab, passes=6, repeats=3)
    print("\n" + json.dumps(results, indent=2))
    assert results["speedup"] >= CONTENT_SPEEDUP_FLOOR


def test_pipeline_ab_reduces_paging_cost(benchmark, once):
    results = once(benchmark, measure_pipeline_ab, window=8)
    print("\n" + json.dumps(results, indent=2))
    assert results["paging_cost_delta"] > 0
    assert results["pipelined"]["pptime"] < results["sync"]["pptime"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=200_000,
                        help="kernel microbenchmark chain length")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats (default 3)")
    parser.add_argument("--window", type=int, default=8,
                        help="pipelined window for the A/B (default 8)")
    parser.add_argument("--content-passes", type=int, default=12,
                        help="verify-loop passes in the content A/B")
    parser.add_argument("--check", action="store_true",
                        help="enforce the PR 4 acceptance thresholds")
    parser.add_argument("--out", default="-", metavar="PATH",
                        help="write JSON here ('-' = stdout)")
    args = parser.parse_args(argv)

    summary = run_benchmarks(
        n_events=args.events, repeats=args.repeats, window=args.window,
        content_passes=args.content_passes,
    )
    text = json.dumps(summary, indent=2, sort_keys=True)
    if args.out == "-":
        print(text)
    else:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")

    if args.check:
        failures = check(summary)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("all PR 4 benchmark thresholds met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
