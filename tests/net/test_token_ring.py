"""Unit tests for the token-ring network model."""

import pytest

from repro.config import PAGE_SIZE
from repro.net import TokenRing, TokenRingSpec
from repro.sim import RngRegistry, Simulator
from repro.net.traffic import attach_background_load
from repro.units import megabits_per_second


def make_ring(sim, hosts=("a", "b"), spec=None):
    ring = TokenRing(sim, spec=spec)
    for host in hosts:
        ring.attach(host)
    return ring


def run_transfer(sim, net, src, dst, nbytes):
    def driver(sim, net):
        yield net.transfer(src, dst, nbytes)
        return sim.now

    return sim.run_until_complete(sim.process(driver(sim, net)))


def test_spec_validation():
    with pytest.raises(ValueError):
        TokenRingSpec(bandwidth=0)
    with pytest.raises(ValueError):
        TokenRingSpec(token_pass_time=-1)


def test_single_message_delivery():
    sim = Simulator()
    ring = make_ring(sim)
    elapsed = run_transfer(sim, ring, "a", "b", 4000)
    spec = ring.spec
    assert elapsed == pytest.approx(spec.token_pass_time + spec.frame_time(4000))


def test_page_fragments_at_larger_mtu():
    sim = Simulator()
    ring = make_ring(sim)
    run_transfer(sim, ring, "a", "b", PAGE_SIZE)
    # 8192 = 2 * 4096 -> 2 frames at the token ring's 4 KB MTU.
    assert ring.stats.counters["frames"] == 2


def test_unknown_hosts_rejected():
    sim = Simulator()
    ring = make_ring(sim, hosts=("a",))
    with pytest.raises(KeyError):
        ring.transfer("a", "ghost", 10)
    with pytest.raises(KeyError):
        ring.transfer("ghost", "a", 10)


def test_no_collisions_ever():
    sim = Simulator()
    hosts = [f"h{i}" for i in range(8)]
    ring = make_ring(sim, hosts=hosts)

    def sender(sim, ring, src, dst):
        for _ in range(10):
            yield ring.transfer(src, dst, 1400)

    for i in range(0, 8, 2):
        sim.process(sender(sim, ring, hosts[i], hosts[i + 1]))
    sim.run()
    assert ring.stats.counters["messages"] == 40
    assert ring.stats.counters["collisions"] == 0


def test_round_robin_fairness():
    """Two contending stations finish interleaved, not one-then-other."""
    sim = Simulator()
    ring = make_ring(sim, hosts=("a", "b", "c", "d"))
    finish = {}

    def sender(sim, ring, src, dst, tag):
        for i in range(10):
            yield ring.transfer(src, dst, 4000)
        finish[tag] = sim.now

    sim.process(sender(sim, ring, "a", "b", "first"))
    sim.process(sender(sim, ring, "c", "d", "second"))
    sim.run()
    # Fair round robin: both finish within one frame time of each other.
    spread = abs(finish["first"] - finish["second"])
    assert spread <= 2 * ring.spec.frame_time(4000)


def test_goodput_stays_high_under_contention():
    """The §4.6 contrast: token passing degrades gracefully where
    CSMA/CD collapses."""
    sim = Simulator()
    spec = TokenRingSpec(bandwidth=megabits_per_second(10))
    hosts = [f"h{i}" for i in range(10)]
    ring = make_ring(sim, hosts=hosts, spec=spec)
    per_sender = 30

    def sender(sim, ring, src, dst):
        for _ in range(per_sender):
            yield ring.transfer(src, dst, 1400)

    procs = [
        sim.process(sender(sim, ring, hosts[2 * i], hosts[2 * i + 1]))
        for i in range(5)
    ]
    for p in procs:
        sim.run_until_complete(p)
    goodput = 5 * per_sender * 1400 / sim.now
    assert goodput > 0.75 * spec.bandwidth


def test_background_traffic_compatible():
    sim = Simulator()
    spec = TokenRingSpec(bandwidth=megabits_per_second(10))
    ring = make_ring(sim, spec=spec)
    sources = attach_background_load(ring, total_load=0.3, n_sources=2)
    run_transfer(sim, ring, "a", "b", PAGE_SIZE)
    sim.run(until=0.5)
    assert sum(s.sent for s in sources) > 0
