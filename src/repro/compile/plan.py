"""Eligibility, caching, and dispatch for compiled replay.

:func:`plan_run` is the single integration point ``Cluster.run``
consults before executing a workload: it decides whether the run may
use the batch-replay fast path, fetches or compiles the fault
schedule, decides whether a recorded *effect capsule* (see
:mod:`repro.compile.effects`) can serve the whole run, and emits
``compile.*`` trace events so every decision is visible in a
``--trace`` recording.  :func:`plan_replay` is the schedule-only
subset, kept for callers that dispatch replay themselves.

Compilation is on by default but **strictly conservative** — it engages
only when the resident set is a pure function of the reference stream:

* the workload declares itself deterministic (every ``trace()`` call
  yields the same stream);
* the replacement policy supports the batch-step API (FIFO/LRU/Clock);
* no speculative fetch can perturb residency: both the machine-level
  read-ahead (``Machine.prefetch``) and the PR 4 adaptive prefetcher
  bypass to interpreted execution, with a ``compile.bypass`` event.

Anything that only acts *pager-side* — write-behind windows, chaos
fault injection, RPC retries, background load — cannot change which
references fault, so those runs stay compiled (and stay byte-identical;
``tests/compile`` pins the chaos campaigns).  The effect capsule is
stricter still (per-op fidelity matters there): every capsule decision
is reported as ``compile.vectorized`` (capsule replay) or
``compile.fallback`` (kernel replay, with the reason).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Optional

from .compiler import compile_trace
from .effects import (
    RunEffects,
    effects_bypass_reason,
    effects_cache_enabled,
    effects_key,
    validate_effects,
)
from .schedule import FaultSchedule

__all__ = [
    "ReplayPlan",
    "plan_run",
    "plan_replay",
    "compile_enabled",
    "set_compile_enabled",
    "schedule_cache_enabled",
]

_process_default: Optional[bool] = None


def set_compile_enabled(enabled: Optional[bool]) -> None:
    """Process-wide override: True/False force, None restores the default
    (on unless ``REPRO_NO_COMPILE`` is set in the environment)."""
    global _process_default
    _process_default = enabled


def compile_enabled() -> bool:
    """The process-wide default for trace compilation."""
    if _process_default is not None:
        return _process_default
    return not os.environ.get("REPRO_NO_COMPILE")


def schedule_cache_enabled() -> bool:
    """Whether compiled schedules may be cached on disk (the CLI's
    ``--no-cache`` clears this via ``REPRO_SCHEDULE_CACHE=0``)."""
    return os.environ.get("REPRO_SCHEDULE_CACHE", "1") != "0"


@dataclass
class ReplayPlan:
    """How ``Cluster.run`` should execute one workload.

    * ``schedule is None`` — interpreted execution.
    * ``schedule`` set, ``effects is None``, no ``record_key`` — plain
      per-fault kernel replay.
    * ``effects`` set — replay the effect capsule (O(1) kernel events).
    * ``record_key`` set — kernel replay, then record a capsule for the
      next identical run.
    """

    schedule: Optional[FaultSchedule] = None
    effects: Optional[RunEffects] = None
    record_cache: Any = None
    record_key: Any = None


def _bypass_reason(machine, pager, workload) -> Optional[str]:
    """Why this run must stay interpreted, or None when eligible."""
    if getattr(machine.sim.sampler, "enabled", False):
        # Telemetry sampling wants the real event-by-event timeline:
        # merged-chunk replay lumps utime between fault boundaries and
        # would distort mid-run samples, so sampled runs pin themselves
        # to interpreted execution (and thereby stay deterministic
        # across --jobs and cache replay).
        return "telemetry"
    if not getattr(workload, "deterministic", False):
        return "nondeterministic-workload"
    if getattr(machine, "prefetch", 0):
        return "machine-prefetch"
    pipeline = getattr(pager, "pipeline", None)
    if pipeline is not None and getattr(pipeline, "prefetcher", None) is not None:
        return "pipeline-prefetch"
    policy = machine.replacement
    if not getattr(policy, "supports_batch_touch", False):
        return f"replacement:{getattr(policy, 'name', type(policy).__name__)}"
    if machine.spec.user_frames < 1:
        # Let the interpreted path raise its configuration error.
        return "no-user-frames"
    return None


def _schedule_key(machine, workload, token) -> dict:
    """Everything that determines the compiled schedule's content."""
    spec = machine.spec
    return {
        "workload": list(token),
        "replacement": machine.replacement.name,
        "user_frames": spec.user_frames,
        "page_size": spec.page_size,
        "cpu_speed": spec.cpu_speed,
        "max_cpu_chunk": machine.max_cpu_chunk,
        "free_batch": machine.free_batch,
    }


def _plan_schedule(cluster, workload):
    """Shared schedule decision: (schedule, key) — key is None when the
    workload has no identity token.  Emits bypass/cache-hit/compiled."""
    machine = cluster.machine
    tracer = machine.sim.tracer

    enabled = machine.compile_schedules
    if enabled is None:
        enabled = compile_enabled()
    if not enabled:
        tracer.emit("compile", "bypass", reason="disabled")
        return None, None

    reason = _bypass_reason(machine, cluster.pager, workload)
    if reason is not None:
        tracer.emit("compile", "bypass", reason=reason)
        return None, None

    token = workload.schedule_token() if hasattr(workload, "schedule_token") else None
    key: Any = None
    cache = None
    if token is not None:
        key = _schedule_key(machine, workload, token)
        if schedule_cache_enabled():
            from ..runner.cache import ScheduleCache

            cache = ScheduleCache()
            schedule = cache.get(key)
            if schedule is not None:
                tracer.emit(
                    "compile", "cache-hit",
                    faults=schedule.n_faults, refs=schedule.n_refs,
                )
                return schedule, key

    started = perf_counter()
    schedule = compile_trace(
        workload.trace(),
        user_frames=machine.spec.user_frames,
        policy=type(machine.replacement)(),
        cpu_speed=machine.spec.cpu_speed,
        max_cpu_chunk=machine.max_cpu_chunk,
        free_batch=machine.free_batch,
    )
    wall_ms = (perf_counter() - started) * 1e3
    if cache is not None:
        schedule.meta = dict(key)
        cache.put(key, schedule)
    tracer.emit(
        "compile", "compiled",
        faults=schedule.n_faults, refs=schedule.n_refs,
        ops=schedule.n_ops, wall_ms=round(wall_ms, 3),
        cached=cache is not None,
    )
    return schedule, key


def plan_replay(cluster, workload) -> Optional[FaultSchedule]:
    """Schedule-only decision (the PR 5 interface, unchanged).

    Returns a :class:`FaultSchedule` to replay, or None to execute the
    reference stream interpretively.
    """
    schedule, _ = _plan_schedule(cluster, workload)
    return schedule


def plan_run(cluster, workload) -> ReplayPlan:
    """Full decision for ``Cluster.run``: schedule plus effect capsule."""
    schedule, key = _plan_schedule(cluster, workload)
    if schedule is None:
        return ReplayPlan()
    tracer = cluster.machine.sim.tracer

    if key is None:
        reason: Optional[str] = "uncacheable-workload"
    elif not schedule_cache_enabled():
        reason = "cache-disabled"
    elif not effects_cache_enabled():
        reason = "effects-disabled"
    else:
        reason = effects_bypass_reason(cluster)
    if reason is not None:
        tracer.emit("compile", "fallback", reason=reason)
        return ReplayPlan(schedule=schedule)

    from ..runner.cache import EffectCache

    ecache = EffectCache()
    ekey = effects_key(cluster, key)
    effects = ecache.get(ekey)
    if effects is not None:
        if not validate_effects(cluster, effects):
            tracer.emit("compile", "fallback", reason="effects-mismatch")
            return ReplayPlan(schedule=schedule)
        tracer.emit(
            "compile", "vectorized",
            faults=schedule.n_faults, refs=schedule.n_refs,
            **{f"ptime_{k}": v for k, v in
               effects.meta.get("decomposition", {}).items()},
        )
        return ReplayPlan(schedule=schedule, effects=effects)
    tracer.emit("compile", "fallback", reason="effects-cold")
    return ReplayPlan(schedule=schedule, record_cache=ecache, record_key=ekey)
