"""Trace-file analysis: span-latency histograms and slowest requests.

Backs the ``repro trace-summary`` CLI command.  Loads a JSONL trace
written by :meth:`repro.obs.trace.Tracer.write_jsonl`, groups completed
spans by kind, folds per-kind latencies into
:class:`~repro.sim.monitor.Tally` objects (merged across runs with
:meth:`Tally.merge` when one trace file holds a whole suite), and
renders an ASCII latency histogram plus the top-N slowest requests with
their phase decompositions.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.monitor import Tally

from .trace import validate_record

__all__ = ["load_trace", "summarize", "render_summary", "TraceSummary"]

#: Components whose point events mark an injected fault or its detection
#: (chaos harness, RPC retry machinery, partitions, the watchdog).  The
#: summary keeps their events on a timeline so latency spikes in the
#: slowest-request table can be attributed to what was going wrong on
#: the wire at that moment.
_FAULT_COMPONENTS = frozenset({"faults", "net.rpc", "net", "watchdog", "recovery"})


def load_trace(path: str, validate: bool = True) -> List[Dict[str, Any]]:
    """Parse (and by default validate) every record in a JSONL trace."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if validate:
                try:
                    validate_record(record)
                except ValueError as exc:
                    raise ValueError(f"{path}:{lineno}: {exc}") from None
            records.append(record)
    return records


class TraceSummary:
    """Aggregated view of one trace file."""

    def __init__(self) -> None:
        self.header: Optional[Dict[str, Any]] = None
        self.event_counts: Dict[str, int] = {}
        #: kind -> latency tally (keep_samples, for percentiles/histogram)
        self.latency: Dict[str, Tally] = {}
        #: kind -> phase name -> accumulated seconds across all spans
        self.phase_totals: Dict[str, Dict[str, float]] = {}
        #: Completed span records, for the slowest-request table.
        self.spans: List[Dict[str, Any]] = []
        #: Fault-ish events (see _FAULT_COMPONENTS), in timestamp order.
        self.fault_events: List[Dict[str, Any]] = []
        #: ``compile.*`` planner events (bypass/compiled/cache-hit/
        #: fallback/vectorized), in order — which fast path served each
        #: run, and why the faster tiers were skipped when they were.
        self.compile_events: List[Dict[str, Any]] = []
        #: ``health.*`` saturation transitions (warn/critical/clear)
        #: from the telemetry health monitor, in timestamp order.
        self.health_events: List[Dict[str, Any]] = []
        self.open_spans = 0
        self.runs: List[str] = []

    def faults_during(self, start: float, end: float) -> List[Dict[str, Any]]:
        """Fault events whose timestamp falls inside ``[start, end]``."""
        return [e for e in self.fault_events if start <= e["ts"] <= end]


def summarize(records: List[Dict[str, Any]]) -> TraceSummary:
    """Aggregate parsed trace records into a :class:`TraceSummary`."""
    summary = TraceSummary()
    for record in records:
        kind = record.get("type")
        if kind == "header":
            summary.header = record
        elif kind == "event":
            key = f"{record['component']}.{record['event']}"
            summary.event_counts[key] = summary.event_counts.get(key, 0) + 1
            if record["event"] == "run" and record["component"] == "tracer":
                label = (record.get("attrs") or {}).get("label")
                if label:
                    summary.runs.append(label)
            if record["component"] in _FAULT_COMPONENTS:
                summary.fault_events.append(record)
            elif record["component"] == "compile":
                summary.compile_events.append(record)
            elif record["component"] == "health":
                summary.health_events.append(record)
        elif kind == "span":
            if record["end"] is None:
                summary.open_spans += 1
                continue
            span_kind = record["kind"]
            tally = summary.latency.get(span_kind)
            if tally is None:
                tally = summary.latency[span_kind] = Tally(keep_samples=True)
            tally.observe(record["end"] - record["start"])
            totals = summary.phase_totals.setdefault(span_kind, {})
            for phase, seconds in record["phases"].items():
                totals[phase] = totals.get(phase, 0.0) + seconds
            summary.spans.append(record)
    return summary


def merge_latency(summaries: List[TraceSummary]) -> Dict[str, Tally]:
    """Fold per-file latency tallies together (exact, via Tally.merge)."""
    merged: Dict[str, Tally] = {}
    for summary in summaries:
        for kind, tally in summary.latency.items():
            if kind in merged:
                merged[kind].merge(tally)
            else:
                merged[kind] = Tally(keep_samples=True).merge(tally)
    return merged


def _fault_label(event: Dict[str, Any]) -> str:
    return f"{event['component']}.{event['event']}"


def _attribution(events: List[Dict[str, Any]]) -> str:
    """Compact ``3x faults.drop, 1x faults.crash`` summary of events."""
    counts: Dict[str, int] = {}
    for event in events:
        key = _fault_label(event)
        counts[key] = counts.get(key, 0) + 1
    return ", ".join(
        f"{count}x {key}" if count > 1 else key
        for key, count in sorted(counts.items(), key=lambda item: -item[1])
    )


#: Timeline rows shown before eliding; steady-state loss alone can
#: contribute hundreds of drop events.
_TIMELINE_LIMIT = 20

#: Per-packet noise (and its RPC echoes) — shown after scheduled
#: campaign events like ``crash`` or ``corrupt_burst`` when the
#: timeline elides.
_NOISE_EVENTS = frozenset(
    {"drop", "duplicate", "delay", "corrupt", "retry", "timeout"}
)

_HIST_WIDTH = 40
_HIST_BINS = 12


def _histogram(samples: List[float], bins: int = _HIST_BINS) -> List[str]:
    """Fixed-width ASCII histogram of latencies (milliseconds)."""
    if not samples:
        return []
    low = min(samples)
    high = max(samples)
    if high <= low:
        return [f"  {low * 1e3:10.3f} ms  | {'#' * _HIST_WIDTH} {len(samples)}"]
    width = (high - low) / bins
    counts = [0] * bins
    for value in samples:
        index = min(int((value - low) / width), bins - 1)
        counts[index] += 1
    peak = max(counts)
    lines = []
    for index, count in enumerate(counts):
        lo = (low + index * width) * 1e3
        hi = (low + (index + 1) * width) * 1e3
        bar = "#" * max(1 if count else 0, round(count / peak * _HIST_WIDTH))
        lines.append(f"  {lo:10.3f}-{hi:10.3f} ms | {bar:<{_HIST_WIDTH}} {count}")
    return lines


def render_summary(summary: TraceSummary, top: int = 10) -> str:
    """Human-readable report: per-kind stats, histograms, slowest spans."""
    lines: List[str] = []
    if summary.header is not None:
        lines.append(
            f"trace: {summary.header['events']} events, "
            f"{summary.header['spans']} spans "
            f"(schema v{summary.header['schema']})"
        )
    if summary.runs:
        lines.append(f"runs: {', '.join(summary.runs)}")
    if summary.open_spans:
        lines.append(f"warning: {summary.open_spans} span(s) never ended")
    if summary.compile_events:
        lines.append("")
        lines.append("compile fast path:")
        # One line per decision kind; fallbacks and bypasses break down
        # by reason so a sweep that silently lost its capsule replays is
        # visible at a glance.
        by_kind: Dict[str, int] = {}
        reasons: Dict[str, Dict[str, int]] = {}
        for event in summary.compile_events:
            kind = event["event"]
            by_kind[kind] = by_kind.get(kind, 0) + 1
            reason = (event.get("attrs") or {}).get("reason")
            if reason:
                bucket = reasons.setdefault(kind, {})
                bucket[reason] = bucket.get(reason, 0) + 1
        for kind in sorted(by_kind):
            line = f"  {kind}: {by_kind[kind]}"
            if kind in reasons:
                detail = ", ".join(
                    f"{reason}={count}"
                    for reason, count in sorted(
                        reasons[kind].items(), key=lambda item: -item[1]
                    )
                )
                line += f"  ({detail})"
            lines.append(line)
    if summary.health_events:
        lines.append("")
        worst = "ok"
        for event in summary.health_events:
            if event["event"] == "critical":
                worst = "critical"
            elif event["event"] == "warn" and worst != "critical":
                worst = "warn"
        lines.append(
            f"health timeline ({len(summary.health_events)} transitions, "
            f"worst={worst}):"
        )
        for event in summary.health_events[:_TIMELINE_LIMIT]:
            attrs = event.get("attrs") or {}
            lines.append(
                f"  @{event['ts']:10.6f}s {event['event']:<8} "
                f"{attrs.get('series', '?')} ({attrs.get('rule', '?')}): "
                f"{attrs.get('value', 0):.4g} vs {attrs.get('threshold', 0):.4g}"
            )
        if len(summary.health_events) > _TIMELINE_LIMIT:
            rest = summary.health_events[_TIMELINE_LIMIT:]
            lines.append(f"  ... {len(rest)} more ({_attribution(rest)})")
    if summary.fault_events:
        lines.append("")
        lines.append(f"fault timeline ({len(summary.fault_events)} events):")
        # Scheduled campaign events first, then steady-state noise: the
        # timeline elides, and a drop storm must not crowd out the crash.
        ordered = sorted(
            summary.fault_events,
            key=lambda e: (e["event"] in _NOISE_EVENTS, e["ts"]),
        )
        for event in ordered[:_TIMELINE_LIMIT]:
            attrs = event.get("attrs") or {}
            detail = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            lines.append(
                f"  @{event['ts']:10.6f}s {_fault_label(event)}"
                + (f"  {detail}" if detail else "")
            )
        if len(ordered) > _TIMELINE_LIMIT:
            rest = ordered[_TIMELINE_LIMIT:]
            lines.append(
                f"  ... {len(rest)} more ({_attribution(rest)})"
            )
    for kind in sorted(summary.latency):
        tally = summary.latency[kind]
        lines.append("")
        lines.append(
            f"== {kind} ==  n={tally.count}  "
            f"mean={tally.mean * 1e3:.3f}ms  "
            f"p50={tally.percentile(50) * 1e3:.3f}ms  "
            f"p95={tally.percentile(95) * 1e3:.3f}ms  "
            f"max={tally.maximum * 1e3:.3f}ms"
        )
        totals = summary.phase_totals.get(kind, {})
        grand = sum(totals.values())
        if grand > 0:
            decomposition = "  ".join(
                f"{phase}={seconds / grand * 100:.1f}%"
                for phase, seconds in sorted(
                    totals.items(), key=lambda item: -item[1]
                )
            )
            lines.append(f"  phases: {decomposition}")
        lines.extend(_histogram(tally.samples))
    slowest = sorted(
        summary.spans, key=lambda s: s["end"] - s["start"], reverse=True
    )[:top]
    if slowest:
        lines.append("")
        lines.append(f"slowest {len(slowest)} request(s):")
        for span in slowest:
            duration = (span["end"] - span["start"]) * 1e3
            phases = "  ".join(
                f"{phase}={seconds * 1e3:.3f}ms"
                for phase, seconds in sorted(
                    span["phases"].items(), key=lambda item: -item[1]
                )
            )
            page = "" if span["page_id"] is None else f" page={span['page_id']}"
            lines.append(
                f"  {span['kind']}#{span['id']}{page} "
                f"@{span['start']:.6f}s {duration:.3f}ms [{span['status']}]"
            )
            if phases:
                lines.append(f"      {phases}")
            overlapping = summary.faults_during(span["start"], span["end"])
            if overlapping:
                lines.append(
                    f"      faults during span: {_attribution(overlapping)}"
                )
    if summary.event_counts:
        lines.append("")
        lines.append("events:")
        for key in sorted(summary.event_counts):
            lines.append(f"  {key}: {summary.event_counts[key]}")
    return "\n".join(lines)
