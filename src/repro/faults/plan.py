"""Fault campaigns: composable, deterministic schedules of injected faults.

A :class:`FaultPlan` is a frozen, plain-data description of a campaign:
steady-state unreliability rates (drop/corrupt/duplicate/delay) plus a
tuple of timed events.  Being plain data it is picklable and hashable,
so it travels through the parallel runner's :class:`RunSpec` machinery
unchanged — identical plan + seed produces the identical fault event
trace whether the run is serial, in a worker process, or replayed from
cache (the acceptance criterion of ISSUE 3).

A :class:`ChaosController` binds one plan to one built cluster: it wraps
the network in an :class:`~repro.faults.network.UnreliableNetwork`,
installs the RPC :class:`~repro.net.protocol.RetrySpec`, and schedules a
simulation process per event.  Every injected fault is appended to
``fault_log`` and mirrored to the tracer (component ``faults``) so
``trace-summary`` can attribute latency spikes to them.

Event vocabulary (each a plain tuple; times in simulated seconds)::

    ("crash",  at, target)                    kill a server for good
    ("flap",   at, target, down_for)          crash, then reboot empty
    ("partition", at, duration, n_cut)        cut first n_cut server hosts
    ("loss_burst", at, duration, rate)        raise drop_rate for a window
    ("corrupt_burst", at, target, n_pages)    at-rest bit-rot on a server
    ("crash_during_recovery", at, target, second)   Hydra-style compose
    ("crash_group", at, (t1, t2, ...))        correlated kill: all at once

``target``/``second`` are data-server indices or the string
``"parity"``.  A ``crash_during_recovery`` event crashes ``target`` at
``at`` and arms a recovery watcher that kills ``second`` the moment the
pager starts recovering ``target``.  A ``crash_group`` kills every
target at the same instant with no yield in between — the rack/power-
domain correlated failure that erasure-coded placement groups are built
to bound — and is logged as *one* ``crash_group`` fault entry.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from ..core.load_reports import ClusterView, LoadReporter
from ..core.watchdog import Watchdog
from ..net.protocol import RetrySpec
from .integrity import CorruptionInjector
from .network import UnreliableNetwork

__all__ = ["FaultPlan", "ChaosController"]

_EVENT_KINDS = (
    "crash",
    "flap",
    "partition",
    "loss_burst",
    "corrupt_burst",
    "crash_during_recovery",
    "crash_group",
)


@dataclass(frozen=True)
class FaultPlan:
    """Plain-data description of one fault campaign."""

    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    max_extra_delay: float = 2e-3
    #: Install an RPC retry policy (required whenever drops are possible).
    retry: bool = True
    #: Generous relative to a ~6.5 ms page transfer: the timeout must
    #: exceed worst-case *queueing* during a recovery flood, or spurious
    #: timeouts retransmit into the congestion and melt the campaign.
    rpc_timeout: float = 1.0
    rpc_attempts: int = 8
    #: When set, run per-server load reporters at this interval and a
    #: watchdog that declares silent servers crashed — so recovery runs
    #: *proactively* instead of waiting for a request to trip over the
    #: corpse.  Without it a crash can stay undetected long enough for a
    #: later fault (e.g. a corrupt burst) to land in the same parity
    #: group: a double fault no single-redundancy policy can repair.
    watchdog_interval: Optional[float] = None
    watchdog_suspect_after: float = 3.0
    events: Tuple[tuple, ...] = ()

    def __post_init__(self) -> None:
        for event in self.events:
            if not event or event[0] not in _EVENT_KINDS:
                raise ValueError(f"unknown fault event: {event!r}")
            if len(event) < 2 or event[1] < 0:
                raise ValueError(f"fault event needs a time >= 0: {event!r}")
            if event[0] == "crash_group":
                if len(event) != 3 or not isinstance(event[2], tuple) or not event[2]:
                    raise ValueError(
                        "crash_group needs a non-empty tuple of targets: "
                        f"{event!r}"
                    )
        if (self.drop_rate > 0 or self._has_loss_burst()) and not self.retry:
            raise ValueError(
                "message drops without an RPC retry policy would deadlock "
                "the sender; enable retry or remove the drops"
            )

    def _has_loss_burst(self) -> bool:
        return any(e[0] == "loss_burst" for e in self.events)

    @property
    def needs_network_wrapper(self) -> bool:
        return (
            self.drop_rate > 0
            or self.corrupt_rate > 0
            or self.duplicate_rate > 0
            or self.delay_rate > 0
            or self._has_loss_burst()
        )

    # ------------------------------------------------- runner plumbing
    def as_kwargs(self) -> dict:
        """Plain-data kwargs for the runner's ``chaos`` hook."""
        return {
            "drop_rate": self.drop_rate,
            "corrupt_rate": self.corrupt_rate,
            "duplicate_rate": self.duplicate_rate,
            "delay_rate": self.delay_rate,
            "max_extra_delay": self.max_extra_delay,
            "retry": self.retry,
            "rpc_timeout": self.rpc_timeout,
            "rpc_attempts": self.rpc_attempts,
            "watchdog_interval": self.watchdog_interval,
            "watchdog_suspect_after": self.watchdog_suspect_after,
            "events": tuple(tuple(e) for e in self.events),
        }

    @classmethod
    def from_kwargs(cls, kwargs: dict) -> "FaultPlan":
        data = dict(kwargs)
        # Events may arrive as lists-of-lists after a JSON round trip;
        # crash_group carries a nested target sequence that must come
        # back as a tuple too (the plan must stay hashable plain data).
        data["events"] = tuple(
            tuple(tuple(part) if isinstance(part, list) else part for part in e)
            for e in data.get("events", ())
        )
        return cls(**data)

    @classmethod
    def standard_campaign(
        cls,
        loss_rate: float = 0.01,
        crash_at: float = 5.0,
        crash_target=0,
        corrupt_at: float = 14.0,
        corrupt_target=1,
        corrupt_pages: int = 4,
        **overrides,
    ) -> "FaultPlan":
        """The acceptance-criteria campaign: one server crash + steady
        message loss + one at-rest corruption burst.

        The burst lands well after the crash: recovery moves every lost
        page over a ~1 MB/s wire, so it *occupies a window*, and rot
        inside that window would put two faults in one redundancy group
        — unrecoverable for any single-redundancy policy (the checker
        reports it loudly, but it is not the scenario this campaign
        certifies)."""
        plan = cls(
            drop_rate=loss_rate,
            watchdog_interval=0.5,
            events=(
                ("crash", crash_at, crash_target),
                ("corrupt_burst", corrupt_at, corrupt_target, corrupt_pages),
            ),
        )
        return replace(plan, **overrides) if overrides else plan

    @classmethod
    def correlated_campaign(
        cls,
        loss_rate: float = 0.01,
        group_targets=(0, 4),
        group_at: float = 5.0,
        cascade_at: float = 14.0,
        cascade_target=1,
        cascade_second=5,
        flap_at: float = 42.0,
        flap_target=2,
        flap_down_for: float = 4.0,
        corrupt_at: float = 65.0,
        corrupt_target=3,
        corrupt_pages: int = 4,
        **overrides,
    ) -> "FaultPlan":
        """The multi-failure campaign erasure coding exists to survive.

        Composes, in order: a *correlated* crash_group (two servers at
        the same instant — rack-style), a crash-during-recovery cascade
        (Hydra's composed fault), an amnesiac flap, and a rot burst
        last.  Default targets assume >= 6 servers.  Run with EC pools
        sized ``max(2 * (k + m), 8)`` so placement groups carry rebuild
        slack beyond the stripe width: ec-2-1 over 8 servers forms
        groups {0..3} and {4..7} — the (0, 4) pair costs each group one
        fragment (<= m = 1) and rebuilds stay in-group — while ec-4-2
        over 12 servers forms groups of 6 and the pair lands in one
        group, costing 2 <= m = 2 fragments.  Single-redundancy
        policies (mirroring, parity) see a concurrent double fault and
        are expected LOSSY.

        The default times encode the survivability contract: only the
        crash_group is deliberately concurrent; every later fault waits
        for the previous one's re-protection to drain.  Recoveries are
        single-flight in the pager, so the cascade pair (crash at 14,
        second victim killed the instant recovery starts) re-protects
        serially until ~39 simulated seconds — the flap lands after
        that, and the rot burst lands after the flap's own recovery,
        because a rotted survivor inside a still-degraded group is two
        faults in one equation (`RecoveryError` by design).
        """
        plan = cls(
            drop_rate=loss_rate,
            watchdog_interval=0.5,
            events=(
                ("crash_group", group_at, tuple(group_targets)),
                ("crash_during_recovery", cascade_at, cascade_target, cascade_second),
                ("flap", flap_at, flap_target, flap_down_for),
                ("corrupt_burst", corrupt_at, corrupt_target, corrupt_pages),
            ),
        )
        return replace(plan, **overrides) if overrides else plan


class ChaosController:
    """Applies one :class:`FaultPlan` to one built cluster."""

    def __init__(self, cluster, plan: FaultPlan):
        self.cluster = cluster
        self.plan = plan
        self.sim = cluster.sim
        if cluster.rngs is None:
            raise ValueError(
                "cluster was built without an RngRegistry; chaos needs the "
                "dedicated faults.* streams for deterministic schedules"
            )
        #: (time, kind, detail) triples, in injection order.
        self.fault_log: List[tuple] = []
        self.network: Optional[UnreliableNetwork] = None
        if plan.needs_network_wrapper:
            self.network = UnreliableNetwork(
                cluster.network,
                rng=cluster.rngs.stream("faults.network"),
                drop_rate=plan.drop_rate,
                corrupt_rate=plan.corrupt_rate,
                duplicate_rate=plan.duplicate_rate,
                delay_rate=plan.delay_rate,
                max_extra_delay=plan.max_extra_delay,
            )
            # Pure reference swap: every component reaches the network
            # through the protocol stack.
            cluster.stack.network = self.network
            cluster.network = self.network
            cluster.metrics.attach("faults.network", self.network.counters)
        if plan.retry:
            cluster.stack.retry = RetrySpec(
                timeout=plan.rpc_timeout, max_attempts=plan.rpc_attempts
            )
        self.corruptor = CorruptionInjector(cluster.rngs.stream("faults.corruption"))
        self.view = None
        self.reporters: List[LoadReporter] = []
        self.watchdog: Optional[Watchdog] = None
        if plan.watchdog_interval is not None and cluster.policy is not None:
            self.view = ClusterView(self.sim)
            client_name = cluster.client_host.name
            watched = list(cluster.servers)
            if cluster.parity_server is not None:
                watched.append(cluster.parity_server)
            self.reporters = [
                LoadReporter(s, client_name, self.view, interval=plan.watchdog_interval)
                for s in watched
            ]
            self.watchdog = Watchdog(
                cluster.pager,
                self.view,
                report_interval=plan.watchdog_interval,
                suspect_after=plan.watchdog_suspect_after,
            )
        for index, event in enumerate(plan.events):
            self.sim.process(
                self._run_event(event), name=f"fault:{event[0]}:{index}"
            )

    # --------------------------------------------------------------- log
    def _log(self, kind: str, **detail) -> None:
        self.fault_log.append((self.sim.now, kind, detail))
        self.sim.tracer.emit("faults", kind, **detail)

    def fault_trace(self) -> list:
        """The injected-fault timeline as JSON-stable plain data."""
        return [
            [round(t, 9), kind, sorted(detail.items())]
            for t, kind, detail in self.fault_log
        ]

    # ------------------------------------------------------------ events
    def _resolve(self, target):
        if target == "parity":
            server = self.cluster.parity_server
            if server is None:
                raise ValueError("plan targets 'parity' but the policy has none")
            return server
        return self.cluster.servers[target]

    def _run_event(self, event: tuple):
        kind, at = event[0], event[1]
        if at > self.sim.now:
            yield self.sim.timeout(at - self.sim.now)
        if kind == "crash":
            yield from self._crash(self._resolve(event[2]))
        elif kind == "flap":
            yield from self._flap(self._resolve(event[2]), event[3])
        elif kind == "partition":
            yield from self._partition(event[2], event[3])
        elif kind == "loss_burst":
            yield from self._loss_burst(event[2], event[3])
        elif kind == "corrupt_burst":
            self._corrupt_burst(self._resolve(event[2]), event[3])
        elif kind == "crash_during_recovery":
            yield from self._crash_during_recovery(
                self._resolve(event[2]), self._resolve(event[3])
            )
        elif kind == "crash_group":
            self._crash_group([self._resolve(t) for t in event[2]])

    def _crash(self, server):
        if server.is_alive:
            server.crash()
            self._log("crash", server=server.name)
        return
        yield  # pragma: no cover - keeps this a generator

    def _crash_group(self, servers) -> None:
        """Correlated kill: every target dies at the same instant.

        No simulation yield between the crashes, so recovery cannot
        start until all of them are down — the scenario a single-
        redundancy policy cannot survive when two victims share a
        redundancy group, and exactly what erasure-coded placement
        groups bound the blast radius of.
        """
        victims = [s for s in servers if s.is_alive]
        for server in victims:
            server.crash()
        if victims:
            self._log("crash_group", servers=sorted(s.name for s in victims))

    def _flap(self, server, down_for: float):
        if not server.is_alive:
            return
        server.crash()
        self._log("flap_down", server=server.name, down_for=down_for)
        yield self.sim.timeout(down_for)
        server.restart()
        # A rebooted workstation re-announces itself in the common file
        # (§2.1); its pages are gone but its memory is donatable again.
        self.cluster.registry.register(server)
        self._log("flap_up", server=server.name)

    def _partition(self, duration: float, n_cut: int):
        hosts = [h.name for h in self.cluster.server_hosts[:n_cut]]
        if not hosts:
            return
        self._log("partition", hosts=hosts, duration=duration)
        network = self.network or self.cluster.network
        if self.network is not None:
            yield from self.network.partition_for(set(hosts), duration)
        else:
            network.partition(set(hosts))
            yield self.sim.timeout(duration)
            network.heal()
        self._log("heal", hosts=hosts)

    def _loss_burst(self, duration: float, rate: float):
        if self.network is None:
            raise ValueError("loss_burst needs the unreliable-network wrapper")
        previous = self.network.drop_rate
        self.network.drop_rate = rate
        self._log("loss_burst_start", rate=rate, duration=duration)
        yield self.sim.timeout(duration)
        self.network.drop_rate = previous
        self._log("loss_burst_end", rate=previous)

    def _corrupt_burst(self, server, n_pages: int):
        if not server.is_alive:
            return
        count = self.corruptor.corrupt_stored(server, n_pages)
        self._log(
            "corrupt_burst", server=server.name, requested=n_pages, rotted=count
        )

    def _crash_during_recovery(self, first, second):
        pager = self.cluster.pager
        fired = []

        def on_recovery(crashed) -> None:
            if fired or crashed is not first or not second.is_alive:
                return
            fired.append(True)
            second.crash()
            self._log("crash", server=second.name, during="recovery")

        watchers = getattr(pager, "recovery_watchers", None)
        if watchers is None:
            raise ValueError(
                "crash_during_recovery needs a pager with recovery_watchers"
            )
        watchers.append(on_recovery)
        yield from self._crash(first)
