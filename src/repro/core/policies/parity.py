"""Basic PARITY: RAID-style fixed parity groups (§2.2).

Page ``(i, j)`` is the j-th page on server ``i``; parity page ``j`` is
the XOR of the j-th page of every server.  A pageout updates parity *in
place*:

1. the client sends the new page to its server, which XORs old and new;
2. the server forwards that delta to the parity server, which folds it
   into the old parity.

Memory overhead is only ``1 + 1/S``, but every pageout costs **two** page
transfers — the shortcoming the paper's parity *logging* removes.
"""

from __future__ import annotations

from functools import reduce
from typing import Dict, Optional, Tuple

from ...errors import PageNotFound, RecoveryError, ServerCrashed, ServerUnavailable
from ...sim import NULL_SPAN
from ...vm.page import xor_bytes
from ..server import MemoryServer
from .base import ReliabilityPolicy

__all__ = ["BasicParity"]


class BasicParity(ReliabilityPolicy):
    """Fixed-placement parity over S data servers + one parity server."""

    name = "parity"

    def __init__(self, client_host, stack, servers, parity_server: MemoryServer, **kwargs):
        super().__init__(client_host, stack, servers, **kwargs)
        self.parity_server = parity_server
        #: page_id -> (server, slot)
        self._placement: Dict[int, Tuple[MemoryServer, int]] = {}
        self._slots: Dict[str, int] = {s.name: 0 for s in self.servers}
        self._next = 0

    @property
    def memory_overhead_factor(self) -> float:
        return 1.0 + 1.0 / len(self.servers)

    def _parity_key(self, slot: int) -> Tuple[str, int]:
        return ("parity", slot)

    def _place(self, page_id: int) -> Tuple[MemoryServer, int]:
        placed = self._placement.get(page_id)
        if placed is not None:
            return placed
        candidates = [s for s in self._live_servers() if s.free_pages > 0]
        if not candidates:
            raise ServerUnavailable("any", reason="all parity-group servers full")
        server = candidates[self._next % len(candidates)]
        self._next += 1
        slot = self._slots[server.name]
        self._slots[server.name] = slot + 1
        placed = (server, slot)
        self._placement[page_id] = placed
        return placed

    def pageout(self, page_id: int, contents: Optional[bytes], span=NULL_SPAN):
        server, slot = self._place(page_id)
        self._require_live(server)
        key = (page_id, slot)
        first_time = not server.holds(key)
        # Transfer 1: client -> data server.
        yield from self.stack.send_page(
            self.client_host, server.host.name, self.page_size, span=span
        )
        self.counters.add("transfers")
        span.phase("server")
        if first_time:
            yield from server.store(key, contents)
            delta = contents  # old contents were (implicitly) zero
        else:
            delta = yield from server.xor_update(key, contents)
        # Transfer 2: data server -> parity server (the in-place update's
        # extra cost; the client must keep the page until this lands).
        yield from self.stack.send_page(
            server.host.name, self.parity_server.host.name, self.page_size,
            span=span, label="parity",
        )
        self.counters.add("transfers")
        self.counters.add("parity_transfers")
        span.phase("server")
        yield from self.parity_server.xor_into(self._parity_key(slot), delta)
        self.counters.add("pageouts")

    def pagein(self, page_id: int, span=NULL_SPAN):
        placed = self._placement.get(page_id)
        if placed is None:
            raise PageNotFound(page_id, where=self.name)
        server, slot = placed
        self._require_live(server)
        contents = yield from self._fetch_page(server, (page_id, slot), span=span)
        self.counters.add("pageins")
        return contents

    def holds(self, page_id: int) -> bool:
        placed = self._placement.get(page_id)
        if placed is None:
            return False
        server, slot = placed
        return server.is_alive and server.holds((page_id, slot))

    def release(self, page_id: int) -> None:
        # The parity contribution stays (removing it would cost a
        # transfer); the slot is simply retired with its page.
        placed = self._placement.pop(page_id, None)
        if placed is not None:
            server, slot = placed
            server.free([(page_id, slot)])

    def scrub_page(self, page_id: int, verify, span=NULL_SPAN):
        """Repair at-rest bit-rot by reconstructing from the parity group.

        XORs every *other* same-slot page with the group's parity — the
        same math as crash recovery, applied to one page — verifies the
        result against the pageout checksum, and re-stores the clean
        bytes over the rotted copy.
        """
        placed = self._placement.get(page_id)
        if placed is None:
            return None
        server, slot = placed
        if not (server.is_alive and self.parity_server.is_alive):
            return None
        pieces = []
        for (pid, (srv, sl)) in list(self._placement.items()):
            if sl != slot or pid == page_id:
                continue
            if not srv.is_alive:
                # An undetected crash in the group: surface it so the
                # pager recovers (re-homing the member), then retries
                # this scrub against the repaired group.
                raise ServerCrashed(srv.name)
            piece = yield from self._fetch_page(
                srv, (pid, sl), span=span, label="scrub"
            )
            pieces.append(piece)
        parity = yield from self._fetch_page(
            self.parity_server, self._parity_key(slot), span=span, label="scrub"
        )
        pieces.append(parity)
        contents = self._xor_all(pieces)
        if contents is None or not verify(contents):
            return None
        yield from self._send_page(
            server, (page_id, slot), contents, span=span, label="scrub"
        )
        self.counters.add("scrub_repairs")
        return contents

    def recover(self, crashed: MemoryServer):
        """Rebuild every lost page: XOR its parity group (§2.2)."""
        lost = [
            (page_id, slot)
            for page_id, (server, slot) in self._placement.items()
            if server is crashed
        ]
        survivors = [s for s in self._live_servers() if s is not crashed]
        if not self.parity_server.is_alive:
            raise RecoveryError("parity server crashed too (double failure)")
        restored = 0
        for page_id, slot in lost:
            pieces = []
            # Fetch every same-slot page from the surviving servers.  A
            # same-slot page on a *second* dead server means this parity
            # group has lost two members; silently reconstructing without
            # its contribution would XOR garbage into the rebuilt page,
            # so surface the second crash — the client's cascade handler
            # either recovers it first or reports the double failure.
            for (pid, (srv, sl)) in list(self._placement.items()):
                if sl != slot or srv is crashed:
                    continue
                if not srv.is_alive:
                    raise ServerCrashed(srv.name)
                piece = yield from self._fetch_page(srv, (pid, sl))
                pieces.append(piece)
            parity = yield from self._fetch_page(
                self.parity_server, self._parity_key(slot)
            )
            pieces.append(parity)
            contents = self._xor_all(pieces)
            self._recovery_verify(page_id, contents)
            # Re-home the page as a fresh pageout on a surviving server.
            target = max(
                (s for s in survivors if s.free_pages > 0),
                key=lambda s: s.free_pages,
                default=None,
            )
            if target is None:
                raise RecoveryError("no surviving server with free memory")
            new_slot = self._slots[target.name]
            self._slots[target.name] = new_slot + 1
            self._placement[page_id] = (target, new_slot)
            yield from self._send_page(target, (page_id, new_slot), contents)
            yield from self.stack.send_page(
                target.host.name, self.parity_server.host.name, self.page_size
            )
            self.counters.add("transfers")
            yield from self.parity_server.xor_into(self._parity_key(new_slot), contents)
            # Cancel the lost page's contribution to its old parity group.
            yield from self.stack.send_page(
                self.client_host, self.parity_server.host.name, self.page_size
            )
            self.counters.add("transfers")
            yield from self.parity_server.xor_into(self._parity_key(slot), contents)
            restored += 1
        self.counters.add("recovered_pages", restored)
        return restored

    @staticmethod
    def _xor_all(pieces) -> Optional[bytes]:
        real = [p for p in pieces if p is not None]
        if not real:
            return None  # metadata mode
        return reduce(xor_bytes, real)
