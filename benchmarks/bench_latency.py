"""§4.4: per-page transfer latency on an idle Ethernet."""

from repro.experiments import render_latency, run_latency


def test_latency_microbenchmark(benchmark, once):
    results = once(benchmark, run_latency)
    print("\n" + render_latency(results))
    # Paper: 11.24 ms per transfer (1.6 protocol + 9.64 wire); ours lacks
    # some real-stack overheads, so accept the 8.5-13 ms band.
    assert 8.5 < results["per_transfer_ms"] < 13.0
    assert results["protocol_ms"] == 1.6
    assert 6.5 < results["wire_ms"] < 11.5
    # Far below the 45 ms/4 KB of prior work the paper contrasts with.
    assert results["per_transfer_ms"] < 45.0 / 2
