"""Discrete-event simulation kernel used by every substrate model."""

from .core import (
    NULL_SAMPLER,
    NULL_SPAN,
    NULL_TRACER,
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    NullSampler,
    NullSpan,
    NullTracer,
    Periodic,
    Process,
    SimulationError,
    Simulator,
    StopSimulation,
    Timeout,
)
from .monitor import Counter, Tally, TimeWeighted, UtilizationTracker
from .resources import Container, Resource, Store
from .rng import RngRegistry

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Periodic",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "StopSimulation",
    "NullSpan",
    "NullTracer",
    "NullSampler",
    "NULL_SPAN",
    "NULL_TRACER",
    "NULL_SAMPLER",
    "Resource",
    "Store",
    "Container",
    "RngRegistry",
    "Counter",
    "Tally",
    "TimeWeighted",
    "UtilizationTracker",
]
