"""Trace summarisation and the ``repro trace-summary`` command."""

import pytest

from repro.obs.summary import load_trace, merge_latency, render_summary, summarize
from repro.obs.trace import Tracer


class Clock:
    def __init__(self):
        self.now = 0.0


def _write_sample_trace(path):
    clock = Clock()
    tracer = Tracer()
    tracer.bind(clock)
    tracer.begin_run("cell-a")
    for index in range(4):
        span = tracer.span("pageout", page_id=index)
        clock.now += 0.001
        span.phase("transfer.wire")
        clock.now += 0.002 + index * 0.001
        span.end("ok")
    tracer.emit("server", "crash", name="server-0")
    tracer.span("pagein", page_id=99)  # never ended
    tracer.write_jsonl(str(path))
    return tracer


def test_summarize_counts_and_latency(tmp_path):
    path = tmp_path / "t.jsonl"
    _write_sample_trace(path)
    summary = summarize(load_trace(str(path)))
    assert summary.header["spans"] == 5
    assert summary.runs == ["cell-a"]
    assert summary.open_spans == 1
    assert summary.event_counts["server.crash"] == 1
    tally = summary.latency["pageout"]
    assert tally.count == 4
    assert tally.minimum == pytest.approx(0.003)
    assert tally.maximum == pytest.approx(0.006)
    assert summary.phase_totals["pageout"]["transfer.wire"] == pytest.approx(
        0.002 + 0.003 + 0.004 + 0.005
    )


def test_load_trace_validation_failure_names_the_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "bogus"}\n')
    with pytest.raises(ValueError, match="bad.jsonl:1"):
        load_trace(str(path))


def test_render_summary_mentions_everything(tmp_path):
    path = tmp_path / "t.jsonl"
    _write_sample_trace(path)
    text = render_summary(summarize(load_trace(str(path))), top=2)
    assert "== pageout ==" in text
    assert "n=4" in text
    assert "slowest 2 request(s):" in text
    assert "transfer.wire" in text
    assert "warning: 1 span(s) never ended" in text
    assert "server.crash: 1" in text


def test_merge_latency_is_exact(tmp_path):
    a = summarize(load_trace(str(_path_with_trace(tmp_path, "a.jsonl"))))
    b = summarize(load_trace(str(_path_with_trace(tmp_path, "b.jsonl"))))
    merged = merge_latency([a, b])
    assert merged["pageout"].count == a.latency["pageout"].count * 2
    # Merging must not mutate the per-file tallies.
    assert a.latency["pageout"].count == 4


def _path_with_trace(tmp_path, name):
    path = tmp_path / name
    _write_sample_trace(path)
    return path


def test_trace_summary_cli(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "t.jsonl"
    _write_sample_trace(path)
    assert main(["trace-summary", str(path), "--top", "1"]) == 0
    out = capsys.readouterr().out
    assert "== pageout ==" in out
    assert "slowest 1 request(s):" in out


def _write_faulted_trace(path):
    clock = Clock()
    tracer = Tracer()
    tracer.bind(clock)
    # A fast span, untouched by faults.
    span = tracer.span("pageout", page_id=1)
    clock.now += 0.002
    span.end("ok")
    # A crash and a retry storm land inside the slow span.
    slow = tracer.span("pageout", page_id=2)
    clock.now += 0.001
    tracer.emit("faults", "crash", server="server-0")
    tracer.emit("faults", "drop", src="client", dst="server-0")
    tracer.emit("net.rpc", "timeout", src="client", dst="server-0", attempt=1)
    clock.now += 0.5
    slow.end("ok")
    clock.now += 0.001  # strictly after the span: bounds are inclusive
    tracer.emit("faults", "drop", src="client", dst="server-1")
    tracer.write_jsonl(str(path))


def test_fault_events_collected_and_attributed(tmp_path):
    path = tmp_path / "faulted.jsonl"
    _write_faulted_trace(path)
    summary = summarize(load_trace(str(path)))
    assert len(summary.fault_events) == 4
    slow = max(summary.spans, key=lambda s: s["end"] - s["start"])
    inside = summary.faults_during(slow["start"], slow["end"])
    assert [e["event"] for e in inside] == ["crash", "drop", "timeout"]
    fast = min(summary.spans, key=lambda s: s["end"] - s["start"])
    assert summary.faults_during(fast["start"], fast["end"]) == []


def test_render_summary_shows_fault_timeline_and_span_attribution(tmp_path):
    path = tmp_path / "faulted.jsonl"
    _write_faulted_trace(path)
    text = render_summary(summarize(load_trace(str(path))), top=1)
    assert "fault timeline (4 events):" in text
    # Scheduled campaign events outrank per-packet noise in the listing.
    assert text.index("faults.crash") < text.index("faults.drop")
    assert "faults during span: faults.crash, faults.drop, net.rpc.timeout" in text


def test_unfaulted_trace_renders_no_fault_sections(tmp_path):
    path = tmp_path / "t.jsonl"
    _write_sample_trace(path)
    text = render_summary(summarize(load_trace(str(path))))
    assert "fault timeline" not in text
    assert "faults during span" not in text
