"""Ablations of the reproduction's own design choices.

DESIGN.md calls out three modelling decisions that shape the results;
each gets an ablation so their effect is measured, not asserted:

* **replacement policy** — exact LRU (our default, OSF/1-like) vs Clock
  vs FIFO.  Clock's ring order interacts pathologically with
  alternating-direction sweeps (it evicts exactly what the reverse pass
  needs next), inflating fault counts far beyond the paper's measured
  values — the reason LRU is the experiment default.
* **pageout window** — asynchronous write-back depth.  Window 1
  (synchronous pageouts) serialises every dirty eviction into the fault
  path; deeper windows overlap write-back with compute and let disk
  writes batch.
* **free batch** — how many frames the paging daemon reclaims per
  shortfall.  Batch 1 defeats disk write clustering (every sequential
  write misses its rotational window); batched eviction restores
  streaming, which is what makes the DISK baseline as fast as the paper
  measured.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.report import format_table
from ..core.builder import build_cluster
from ..vm.replacement import make_replacement
from ..workloads import Gauss

__all__ = [
    "run_replacement_ablation",
    "run_pageout_window_ablation",
    "run_free_batch_ablation",
    "run_prefetch_ablation",
    "render_ablation",
]


def run_replacement_ablation(
    policies=("lru", "clock", "fifo"), workload_factory=Gauss
) -> Dict[str, Dict[str, float]]:
    """Run GAUSS under each replacement policy."""
    results: Dict[str, Dict[str, float]] = {}
    for name in policies:
        cluster = build_cluster(
            policy="no-reliability", n_servers=2, replacement=make_replacement(name)
        )
        report = cluster.run(workload_factory())
        results[name] = {
            "etime": report.etime,
            "pageins": report.pageins,
            "pageouts": report.pageouts,
        }
    return results


def run_pageout_window_ablation(
    windows=(1, 4, 16), workload_factory=Gauss, policy: str = "no-reliability"
) -> Dict[int, Dict[str, float]]:
    """Sweep the asynchronous write-back window."""
    results: Dict[int, Dict[str, float]] = {}
    for window in windows:
        cluster = build_cluster(policy=policy, n_servers=2)
        cluster.machine.pageout_window = window
        report = cluster.run(workload_factory())
        results[window] = {"etime": report.etime, "pageouts": report.pageouts}
    return results


def run_free_batch_ablation(
    batches=(1, 4, 16), workload_factory=Gauss, policy: str = "disk"
) -> Dict[int, Dict[str, float]]:
    """Sweep the paging daemon reclaim batch size."""
    results: Dict[int, Dict[str, float]] = {}
    for batch in batches:
        cluster = build_cluster(policy=policy)
        cluster.machine.free_batch = batch
        report = cluster.run(workload_factory())
        results[batch] = {"etime": report.etime, "pageouts": report.pageouts}
    return results


def render_ablation(results: Dict, title: str, key_label: str) -> str:
    """Generic one-key ablation table."""
    sample = next(iter(results.values()))
    metrics = list(sample)
    rows = []
    for key in results:
        row = [key] + [
            f"{results[key][m]:.1f}" if isinstance(results[key][m], float) else results[key][m]
            for m in metrics
        ]
        rows.append(row)
    return format_table([key_label] + metrics, rows, title=title)


def run_prefetch_ablation(
    depths=(0, 2, 8), policy: str = "no-reliability"
) -> Dict[int, Dict[str, float]]:
    """Sequential read-ahead depth vs completion time (streaming scan)."""
    from ..workloads import SequentialScan

    results: Dict[int, Dict[str, float]] = {}
    for depth in depths:
        cluster = build_cluster(policy=policy, n_servers=2)
        cluster.machine.prefetch = depth
        report = cluster.run(
            SequentialScan(n_pages=3000, passes=3, write=True, cpu_per_page=1e-3)
        )
        results[depth] = {
            "etime": report.etime,
            "demand_faults": report.faults,
            "prefetched": cluster.machine.counters["prefetched"],
        }
    return results
