"""Effect capsules: O(1) replay of a recorded run — opt-in and guarded.

With ``REPRO_EFFECT_CACHE=1`` the first eligible run of a (cluster
fingerprint, schedule) cell records everything it changed; an identical
later run replays the capsule in one kernel event.  These tests pin the
contract: byte-identical reports, metrics and final machine state on
replay; a hard error on reusing the quarantined cluster; conservative
fallbacks (with the right reasons) whenever fidelity would be lost; and
silent cache misses on any format or fingerprint change.
"""

import dataclasses
import json

import pytest

from repro.config import MachineSpec
from repro.core.builder import build_cluster
from repro.errors import ConfigurationError
from repro.obs.trace import Tracer, install_tracer, uninstall_tracer
from repro.sim import NullTracer
from repro.workloads import Gauss

_SMALL = MachineSpec(
    name="effects-small",
    ram_bytes=2 * 1024 * 1024,
    kernel_resident_bytes=1 * 1024 * 1024,
    page_size=8192,
)


@pytest.fixture(autouse=True)
def _capsules_on(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_EFFECT_CACHE", "1")
    monkeypatch.delenv("REPRO_SCHEDULE_CACHE", raising=False)


class _SpyTracer(NullTracer):
    """Records ``compile.*`` emissions without disqualifying the capsule
    tier (the eligibility gate checks ``isinstance(..., NullTracer)``:
    a real tracer needs per-event spans a capsule replay cannot fake,
    but this spy only listens to the planner's own decision events)."""

    def __init__(self):
        self.events = []

    def emit(self, component, event, **attrs):
        if component == "compile":
            self.events.append((event, attrs))


def _run(policy="mirroring", spy=None, **overrides):
    cluster = build_cluster(
        policy=policy, n_servers=2, seed=5, machine_spec=_SMALL, **overrides
    )
    if spy is not None:
        cluster.machine.sim.tracer = spy
    report = cluster.run(Gauss(n=300, passes=2))
    return cluster, report


def test_capsule_replay_is_byte_identical():
    cold_spy, warm_spy = _SpyTracer(), _SpyTracer()
    cold_cluster, cold_report = _run(spy=cold_spy)
    warm_cluster, warm_report = _run(spy=warm_spy)
    assert dataclasses.asdict(cold_report) == dataclasses.asdict(warm_report)
    assert cold_cluster.metrics.snapshot() == warm_cluster.metrics.snapshot()
    # Final machine state is restored too (schedule-carried PTEs/policy).
    assert (
        warm_cluster.machine.replacement.export_state()
        == cold_cluster.machine.replacement.export_state()
    )
    assert warm_cluster.machine.sim.now == cold_cluster.machine.sim.now
    # Decision trail: cold run recorded, warm run replayed the capsule.
    assert [e for e, _ in cold_spy.events] == ["compiled", "fallback"]
    assert cold_spy.events[1][1]["reason"] == "effects-cold"
    assert [e for e, _ in warm_spy.events] == ["cache-hit", "vectorized"]
    # The vectorized event carries the §4.3 array-reduced decomposition.
    attrs = warm_spy.events[1][1]
    assert attrs["ptime_fault_wait"] > 0.0
    assert attrs["ptime_p95"] >= attrs["ptime_p50"] > 0.0


def test_replayed_cluster_refuses_a_second_run():
    """Capsule replay restores *reported* state only — backing stores
    stay empty — so the cluster is quarantined afterwards."""
    _run()  # record
    cluster, _ = _run()  # replay
    with pytest.raises(ConfigurationError, match="effect capsule"):
        cluster.run(Gauss(n=300, passes=2))


def test_live_tracer_falls_back_to_kernel_replay():
    """A real tracer needs the per-event spans, so capsules stand down
    — and both runs still agree byte-for-byte."""
    tracer = Tracer()
    install_tracer(tracer)
    try:
        _, first = _run()
        _, second = _run()
    finally:
        uninstall_tracer()
    assert dataclasses.asdict(first) == dataclasses.asdict(second)
    reasons = [
        (r.get("attrs") or {}).get("reason")
        for r in tracer.events
        if r["component"] == "compile" and r["event"] == "fallback"
    ]
    assert reasons == ["tracing", "tracing"]


def test_pipelining_falls_back():
    spy = _SpyTracer()
    _run(spy=spy, pipeline_window=4)
    assert ("fallback", {"reason": "pipelining"}) in [
        (e, a) for e, a in spy.events if e == "fallback"
    ]


def test_post_build_mutation_addresses_a_different_capsule():
    """The capsule key reads the *live* cluster: mutating a
    fingerprinted knob after build must miss the recorded capsule."""
    _run()  # record the unmutated cell
    spy = _SpyTracer()
    cluster = build_cluster(
        policy="mirroring", n_servers=2, seed=5, machine_spec=_SMALL
    )
    cluster.machine.sim.tracer = spy
    cluster.server_hosts[0].add_cpu_load(0.5)
    cluster.run(Gauss(n=300, passes=2))
    fallbacks = [a["reason"] for e, a in spy.events if e == "fallback"]
    assert fallbacks == ["effects-cold"]  # miss -> records a new capsule


def test_structural_mismatch_treated_as_miss(tmp_path):
    """A capsule whose instrument set no longer matches the live
    registry (fingerprint gap) is rejected before replay."""
    _run()  # record
    capsules = list((tmp_path / "effects").glob("*.json"))
    assert len(capsules) == 1
    data = json.loads(capsules[0].read_text())
    dropped = sorted(data["instruments"])[0]
    del data["instruments"][dropped]
    capsules[0].write_text(json.dumps(data))

    spy = _SpyTracer()
    _run(spy=spy)
    fallbacks = [a["reason"] for e, a in spy.events if e == "fallback"]
    assert fallbacks == ["effects-mismatch"]


def test_stale_effects_format_misses_silently(tmp_path, monkeypatch):
    """A format bump re-addresses every entry path: stale capsules are
    never even deserialised."""
    from repro.compile import effects as effects_mod

    _run()  # record under the current format
    spy = _SpyTracer()
    monkeypatch.setattr(effects_mod, "EFFECTS_FORMAT", 9999)
    _, _ = _run(spy=spy)
    fallbacks = [a["reason"] for e, a in spy.events if e == "fallback"]
    assert fallbacks == ["effects-cold"]  # silent miss, fresh recording
