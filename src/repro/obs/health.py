"""Saturation early-warning on top of the telemetry sampler.

The paper's §4.6 shows throughput collapsing once the Ethernet and the
servers saturate.  The health monitor watches the sampled series as the
run progresses and raises ``health.warn`` / ``health.critical`` *before*
the collapse point, in the style of the gateway-tier queue-delay
warnings ROADMAP item 4 describes (WARN_LOAD / WARN_DELAY thresholds):

* **load rules** — any series named ``util.*`` (per-server CPU, wire
  busy fraction; values in [0, 1]) is checked against
  ``warn_load`` / ``crit_load``;
* **delay rules** — any series named ``*.delay_ms`` or ``*.latency_ms``
  (queueing delay, message latency) is checked against
  ``warn_delay_ms`` / ``crit_delay_ms``;
* **burn rate** — a series that has spent at least ``burn_fraction`` of
  the last ``burn_window`` samples above its warn threshold escalates
  to critical even if no single sample crossed the critical line:
  sustained pressure is what actually precedes the knee.

Transitions are edge-triggered: one event when a series enters warn,
one when it escalates to critical, one ``clear`` when it drops back.
Events are appended to ``HealthMonitor.events`` (JSON-safe, rides in
``CompletionReport.meta["health"]``) and mirrored to the simulator's
tracer under component ``health`` so traced runs get a health timeline
in ``trace-summary``.  Everything keys off the simulated clock, so
verdicts are bit-deterministic across ``--jobs`` and cache replay.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

from .telemetry import TelemetrySampler

__all__ = ["HealthSpec", "HealthMonitor"]

_LEVELS = {"ok": 0, "warn": 1, "critical": 2}


@dataclass(frozen=True)
class HealthSpec:
    """Thresholds for the saturation rules (all sim-side quantities)."""

    #: Utilisation fraction that triggers warn / critical on ``util.*``.
    warn_load: float = 0.70
    crit_load: float = 0.90
    #: Delay in milliseconds that triggers warn / critical on
    #: ``*.delay_ms`` / ``*.latency_ms`` series.
    warn_delay_ms: float = 20.0
    crit_delay_ms: float = 100.0
    #: Burn rate: escalate to critical when at least ``burn_fraction``
    #: of the last ``burn_window`` samples sat above warn.
    burn_window: int = 8
    burn_fraction: float = 0.75

    def __post_init__(self) -> None:
        if not 0.0 < self.warn_load <= self.crit_load:
            raise ValueError("need 0 < warn_load <= crit_load")
        if not 0.0 < self.warn_delay_ms <= self.crit_delay_ms:
            raise ValueError("need 0 < warn_delay_ms <= crit_delay_ms")
        if self.burn_window < 1:
            raise ValueError("burn_window must be at least 1")
        if not 0.0 < self.burn_fraction <= 1.0:
            raise ValueError("burn_fraction must be in (0, 1]")


class HealthMonitor:
    """Evaluates :class:`HealthSpec` rules on every telemetry sample."""

    def __init__(self, sampler: TelemetrySampler, spec: Optional[HealthSpec] = None):
        self.sampler = sampler
        self.spec = spec or HealthSpec()
        self.events: List[Dict[str, Any]] = []
        self.first_warn_time: Optional[float] = None
        self.first_critical_time: Optional[float] = None
        self._states: Dict[str, str] = {}
        self._history: Dict[str, deque] = {}
        self._sim = None
        sampler.listeners.append(self.on_sample)

    def bind(self, sim) -> None:
        """Attach the simulator whose tracer mirrors health events."""
        self._sim = sim

    # -- rule plumbing --------------------------------------------------------
    def _thresholds(self, name: str) -> Optional[tuple]:
        spec = self.spec
        if name.startswith("util."):
            return spec.warn_load, spec.crit_load
        if name.endswith(".delay_ms") or name.endswith(".latency_ms"):
            return spec.warn_delay_ms, spec.crit_delay_ms
        return None

    def on_sample(self, now: float, sample: Dict[str, float]) -> None:
        """Sampler listener: classify every rule-bearing series."""
        spec = self.spec
        for name, value in sample.items():
            thresholds = self._thresholds(name)
            if thresholds is None:
                continue
            warn_at, crit_at = thresholds
            level = (
                "critical" if value >= crit_at
                else "warn" if value >= warn_at
                else "ok"
            )
            rule = "load" if name.startswith("util.") else "delay"
            history = self._history.get(name)
            if history is None:
                history = self._history[name] = deque(maxlen=spec.burn_window)
            history.append(1 if value >= warn_at else 0)
            if (
                level == "warn"
                and len(history) == spec.burn_window
                and sum(history) >= spec.burn_fraction * spec.burn_window
            ):
                level = "critical"
                rule = "burn-rate"
            self._transition(now, name, rule, level, value, warn_at, crit_at)

    def _transition(
        self,
        now: float,
        name: str,
        rule: str,
        level: str,
        value: float,
        warn_at: float,
        crit_at: float,
    ) -> None:
        previous = self._states.get(name, "ok")
        if level == previous:
            return
        self._states[name] = level
        rising = _LEVELS[level] > _LEVELS[previous]
        severity = level if rising else "clear"
        threshold = crit_at if level == "critical" else warn_at
        event = {
            "t": now,
            "severity": severity,
            "rule": rule,
            "series": name,
            "value": value,
            "threshold": threshold,
        }
        self.events.append(event)
        if severity == "warn" and self.first_warn_time is None:
            self.first_warn_time = now
        if severity == "critical":
            if self.first_critical_time is None:
                self.first_critical_time = now
            if self.first_warn_time is None:
                # Jumping straight past warn still counts as the first
                # warning sign.
                self.first_warn_time = now
        if self._sim is not None:
            self._sim.tracer.emit(
                "health",
                severity,
                rule=rule,
                series=name,
                value=value,
                threshold=threshold,
            )

    # -- reporting ------------------------------------------------------------
    @property
    def status(self) -> str:
        """Worst level reached over the whole run."""
        if self.first_critical_time is not None:
            return "critical"
        if self.first_warn_time is not None:
            return "warn"
        return "ok"

    def summary(self) -> Dict[str, Any]:
        """JSON-safe digest for ``CompletionReport.meta["health"]``."""
        return {
            "status": self.status,
            "first_warn_time": self.first_warn_time,
            "first_critical_time": self.first_critical_time,
            "samples": self.sampler.samples,
            "interval": self.sampler.interval,
            "events": list(self.events),
            "spec": asdict(self.spec),
        }
