"""Unit tests for the six paper application workload models."""

import pytest

from repro.workloads import (
    PAPER_WORKLOADS,
    Fft,
    Gauss,
    ImageFilter,
    KernelBuild,
    Mvec,
    Qsort,
)

ALL_APPS = [Mvec, Gauss, Qsort, Fft, ImageFilter, KernelBuild]


@pytest.mark.parametrize("cls", ALL_APPS)
def test_trace_refs_are_wellformed(cls):
    wl = cls()
    n = 0
    for page, is_write, cpu in wl.trace():
        assert 0 <= page < wl.footprint_pages
        assert isinstance(is_write, bool)
        assert cpu >= 0.0
        n += 1
        if n > 50_000:
            break
    assert n > 0


@pytest.mark.parametrize("cls", ALL_APPS)
def test_trace_is_deterministic(cls):
    a = list(cls().trace())
    b = list(cls().trace())
    assert a == b


@pytest.mark.parametrize("cls", ALL_APPS)
def test_trace_touches_every_page(cls):
    wl = cls()
    touched = {page for page, _, _ in wl.trace()}
    assert touched == set(range(wl.footprint_pages))


def test_paper_suite_contains_six_apps():
    suite = PAPER_WORKLOADS()
    assert [wl.name for wl in suite] == [
        "mvec",
        "gauss",
        "qsort",
        "fft",
        "filter",
        "cc",
    ]


def test_mvec_is_write_only_single_touch():
    wl = Mvec(n=200)
    seen_matrix = set()
    for page, is_write, _ in wl.trace():
        assert is_write
        if wl.matrix.start_page <= page < wl.matrix.end_page:
            assert page not in seen_matrix, "matrix pages must not be revisited"
            seen_matrix.add(page)
    assert len(seen_matrix) == wl.matrix.n_pages


def test_mvec_footprint_matches_matrix_size():
    wl = Mvec(n=1024)  # 1024^2 * 8 = 8 MB exactly
    assert wl.matrix.n_pages == 1024 * 1024 * 8 // 8192


def test_gauss_pass_count_scales_touches():
    short = sum(1 for _ in Gauss(n=400, passes=2).trace())
    long = sum(1 for _ in Gauss(n=400, passes=4).trace())
    assert long > short
    matrix_pages = Gauss(n=400).matrix.n_pages
    assert short == matrix_pages * 3  # init + 2 passes


def test_qsort_recursion_terminates_and_covers():
    wl = Qsort(records=200_000)
    refs = list(wl.trace())
    pages = {p for p, _, _ in refs}
    assert pages == set(range(wl.array.n_pages))


def test_qsort_partition_converges_from_both_ends():
    wl = Qsort(records=200_000)
    first = list(wl._partition(0, 10, 0.0))
    order = [p for p, _, _ in first]
    assert order == [0, 9, 1, 8, 2, 7, 3, 6, 4, 5]


def test_fft_from_megabytes_footprint():
    for mb in (17, 18.5, 20, 21.6, 23.2, 24):
        wl = Fft.from_megabytes(mb)
        assert wl.footprint_bytes / (1 << 20) == pytest.approx(mb, abs=0.2)


def test_fft_default_is_700k_elements_24mb_working_set():
    wl = Fft()
    assert wl.elements == 700_000
    # The paper's §4.3 run measured a ~24 MB FFT working set.
    assert 22 < wl.footprint_bytes / (1 << 20) < 25


def test_fft_passes_alternate_arrays():
    wl = Fft(elements=20_000, passes=2)
    refs = list(wl.trace())
    writes = {p for p, w, _ in refs if w}
    # Both arrays get written (src on init + pass 2, dst on pass 1).
    assert any(wl.src.start_page <= p < wl.src.end_page for p in writes)
    assert any(wl.dst.start_page <= p < wl.dst.end_page for p in writes)


def test_filter_three_regions_and_two_passes():
    wl = ImageFilter(image_bytes=1 << 20)
    assert wl.image.n_pages == wl.temp.n_pages == wl.output.n_pages
    refs = list(wl.trace())
    temp_touches = sum(
        1 for p, _, _ in refs if wl.temp.start_page <= p < wl.temp.end_page
    )
    # Temp is written in pass 1 and read in pass 2: two touches per page.
    assert temp_touches == 2 * wl.temp.n_pages


def test_kernel_build_link_rereads_objects():
    wl = KernelBuild(units=5, object_pages=4, scratch_pages=8, compiler_pages=8)
    refs = list(wl.trace())
    obj0 = wl.objects[0]
    touches = [i for i, (p, _, _) in enumerate(refs) if p == obj0.start_page]
    # Written at compile time, then read twice at link time.
    assert len(touches) == 3


def test_validation_errors():
    with pytest.raises(ValueError):
        Mvec(n=0)
    with pytest.raises(ValueError):
        Gauss(n=0)
    with pytest.raises(ValueError):
        Gauss(passes=0)
    with pytest.raises(ValueError):
        Qsort(records=0)
    with pytest.raises(ValueError):
        Fft(elements=0)
    with pytest.raises(ValueError):
        ImageFilter(image_bytes=0)
    with pytest.raises(ValueError):
        KernelBuild(units=0)
