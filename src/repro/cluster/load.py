"""Native-load generators for the busy-server experiments (§4.5).

The paper ran three server-load scenarios:

1. idle servers (the baseline for every other experiment);
2. an X-window session plus a continuously-used ``vi`` editor — light
   memory demand, negligible CPU;
3. a CPU-bound ``while(1)`` loop — full CPU demand, no memory demand.

It found app completion times within ~1 s for case 2 and within 7% for
case 3, and server CPU utilisation always under 15%.  These generators
reproduce those loads on a :class:`~repro.cluster.Workstation`.
"""

from __future__ import annotations

import random
from typing import Optional

from ..sim import Interrupt, Process, Simulator
from ..units import megabytes
from .workstation import Workstation

__all__ = ["EditorSession", "CpuBoundLoop", "MemorySurge"]


class EditorSession:
    """X + vi, continuously used: small, slowly fluctuating memory demand."""

    def __init__(
        self,
        workstation: Workstation,
        base_mb: float = 6.0,
        fluctuation_mb: float = 2.0,
        keystroke_interval: float = 0.4,
        rng: Optional[random.Random] = None,
    ):
        self.workstation = workstation
        self.base_pages = megabytes(base_mb) // workstation.spec.page_size
        self.fluctuation_pages = megabytes(fluctuation_mb) // workstation.spec.page_size
        self.keystroke_interval = keystroke_interval
        self.rng = rng or random.Random(7)
        self._baseline = workstation.native_pages
        self.process: Process = workstation.sim.process(
            self._run(), name=f"editor:{workstation.name}"
        )

    def _run(self):
        ws = self.workstation
        sim: Simulator = ws.sim
        ws.set_native_pages(self._baseline + self.base_pages)
        try:
            while True:
                # Editing bursts grow/shrink buffers a little.
                yield sim.timeout(self.rng.uniform(5, 30))
                delta = self.rng.randint(0, self.fluctuation_pages)
                ws.set_native_pages(self._baseline + self.base_pages + delta)
        except Interrupt:
            ws.set_native_pages(self._baseline)

    def stop(self) -> None:
        """End the editing session and release its memory."""
        if self.process.is_alive:
            self.process.interrupt("editor-stop")


class CpuBoundLoop:
    """The §4.5 ``while(1)`` loop: saturates the CPU, touches no memory.

    Because the memory server is I/O-bound, Unix scheduling keeps serving
    it promptly; the loop inflates the server's CPU service time by
    ``slowdown_factor`` (default 0.5 → 1.5x), which — at well under a
    millisecond of CPU per page — stays within the paper's 7% envelope.
    """

    def __init__(self, workstation: Workstation, slowdown_factor: float = 0.5):
        if slowdown_factor < 0:
            raise ValueError(f"negative slowdown: {slowdown_factor}")
        self.workstation = workstation
        self.slowdown_factor = slowdown_factor
        self._active = True
        workstation.add_cpu_load(slowdown_factor)

    def stop(self) -> None:
        """Kill the loop and remove its CPU load (idempotent)."""
        if self._active:
            self.workstation.remove_cpu_load(self.slowdown_factor)
            self._active = False


class MemorySurge:
    """A scripted native-memory spike (drives the §2.1 migration path).

    At ``at_time`` the host's native demand jumps by ``surge_mb`` and
    stays there for ``duration`` — squeezing donated memory and forcing
    the resident server to shed pages and advise its clients.
    """

    def __init__(
        self,
        workstation: Workstation,
        surge_mb: float,
        at_time: float,
        duration: Optional[float] = None,
    ):
        if at_time < workstation.sim.now:
            raise ValueError("surge scheduled in the past")
        self.workstation = workstation
        self.surge_pages = megabytes(surge_mb) // workstation.spec.page_size
        self.at_time = at_time
        self.duration = duration
        self.process: Process = workstation.sim.process(
            self._run(), name=f"surge:{workstation.name}"
        )

    def _run(self):
        ws = self.workstation
        sim = ws.sim
        yield sim.timeout(self.at_time - sim.now)
        before = ws.native_pages
        ws.set_native_pages(min(ws.total_pages, before + self.surge_pages))
        if self.duration is not None:
            yield sim.timeout(self.duration)
            ws.set_native_pages(before)
