"""Recovery-cost ablation (§2.2's three design criteria).

The paper weighs runtime overhead, memory overhead, and crash-recovery
overhead across its policies.  This bench crashes one of the servers
mid-workload under each reliable policy and reports all three costs.
"""

from repro.analysis import format_table
from repro.core import CrashInjector, build_cluster
from repro.vm import page_bytes

PAGE = 8192
N_PAGES = 96


def _run_policy(policy):
    kwargs = dict(n_servers=4, content_mode=True, server_capacity_pages=512)
    if policy == "parity-logging":
        kwargs["overflow_fraction"] = 0.10
    cluster = build_cluster(policy=policy, **kwargs)
    pager = cluster.pager
    sim = cluster.sim
    # Captured pre-crash: recovery shrinks the server set, which would
    # otherwise inflate the reported 1 + 1/S factor.
    memory_overhead = cluster.policy.memory_overhead_factor

    def flow():
        for page_id in range(N_PAGES):
            yield from pager.pageout(page_id, page_bytes(page_id, 1, PAGE))
        runtime = sim.now
        cluster.servers[0].crash()
        # First pagein detects the crash and triggers recovery.
        for page_id in range(N_PAGES):
            got = yield from pager.pagein(page_id)
            assert got == page_bytes(page_id, 1, PAGE)
        return runtime

    runtime = sim.run_until_complete(sim.process(flow()))
    return {
        "runtime_s": runtime,
        "recovery_s": pager.recovery_times.mean,
        "memory_overhead": memory_overhead,
        "transfers": cluster.policy.transfers,
    }


def test_recovery_cost_ablation(benchmark, once):
    def run_all():
        return {
            policy: _run_policy(policy)
            for policy in ("mirroring", "parity", "parity-logging", "write-through")
        }

    results = once(benchmark, run_all)
    rows = [
        [
            policy,
            f"{r['runtime_s']:.2f}",
            f"{r['recovery_s']:.2f}",
            f"{r['memory_overhead']:.2f}x",
        ]
        for policy, r in results.items()
    ]
    print(
        "\n"
        + format_table(
            ["policy", "pageout runtime (s)", "recovery (s)", "remote memory"],
            rows,
            title="Recovery ablation: 96 pages, one server crash",
        )
    )
    # §2.2's trade-off matrix, as measured:
    # mirroring: fastest recovery, highest memory overhead.
    assert results["mirroring"]["recovery_s"] < results["parity"]["recovery_s"]
    assert results["mirroring"]["recovery_s"] < results["parity-logging"]["recovery_s"]
    assert results["mirroring"]["memory_overhead"] == 2.0
    # parity logging: lowest runtime overhead of the parity schemes.
    assert results["parity-logging"]["runtime_s"] < results["parity"]["runtime_s"]
    assert results["parity-logging"]["runtime_s"] < results["mirroring"]["runtime_s"]
    # parity schemes: only 1 + 1/S memory overhead.
    assert results["parity-logging"]["memory_overhead"] == 1.25
