"""Fleet-scale benchmark: 64-client campaigns, every fast path A/B'd.

Three PR 10 measurements, one JSON summary (``BENCH_pr10.json``):

* **fleet A/B** — 64 paging clients × 8 donor workstations on the
  switched fabric, each running a reference-dense paging workload (hot
  set sized to memory, long cold tail — the shape where per-reference
  interpretation and per-event port walks dominate, i.e. exactly what
  the analytic fabric and multi-machine compiled replay eliminate).
  Fast leg: analytic switched + compiled fleet replay.  Slow leg:
  event-driven per-port simulation, interpreted execution.  Acceptance
  requires >= 5x wall-clock and byte-identical per-client reports *and*
  cluster scoreboard metrics (throughput, fairness, makespan, wire
  utilization) across all four (analytic x compiled) axis combinations.
* **telemetry identity** — a 16-client campaign with the sampler on
  (which pins interpreted execution), analytic fabric on vs off: the
  scoreboard *including the pooled p50/p95/p99 pagein-latency
  histogram* must match byte-for-byte.
* **runner fan-out** — the campaign-runner overhead cuts measured
  directly: the same uncached spec batch through a fresh
  ``ExperimentRunner`` (pays pool fork + import) vs a warm one (reuses
  the persistent pool).  Recorded as ``reuse_ratio`` history, never
  gated — absolute pool spin-up cost tracks host load.

Run as a script for the JSON record, ``--check`` to enforce the
acceptance thresholds (CI's bench-regression job does both)::

    PYTHONPATH=src python benchmarks/bench_fleet.py --out BENCH_pr10.json --check

or under pytest for a smaller-sized smoke check.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from time import perf_counter

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for _path in (_HERE, _SRC):
    if _path not in sys.path:
        sys.path.insert(0, _path)

#: PR 10 acceptance threshold, enforced by ``--check``.
FLEET_SPEEDUP_FLOOR = 5.0

#: Paper-scale fleet shape.
N_CLIENTS = 64
N_DONORS = 8

#: Reference-dense per-client workload (same shape as bench_compile):
#: the hot set fits the 128 user frames, the cold tail faults steadily.
def _workload(n_refs: int) -> tuple:
    return (
        "hot-cold",
        {
            "hot_pages": 120, "cold_pages": 4096, "n_refs": n_refs,
            "hot_fraction": 0.9995, "cpu_per_page": 1e-4, "seed": 42,
        },
    )


def _machine_spec():
    from repro.config import MachineSpec

    # 2 MB RAM / 1 MB kernel / 8 KB pages -> 128 user frames per client.
    return MachineSpec(
        name="fleet-bench",
        ram_bytes=2 * 1024 * 1024,
        kernel_resident_bytes=1 * 1024 * 1024,
        page_size=8192,
    )


def _leg(
    analytic: bool,
    compiled: bool,
    n_clients: int,
    n_refs: int,
    telemetry_interval: float = 0.0,
) -> dict:
    """One fleet campaign; returns wall time plus the full scoreboard."""
    from repro.experiments.fleet import run_fleet

    start = perf_counter()
    results = run_fleet(
        workload=_workload(n_refs),
        n_clients=n_clients,
        n_donors=N_DONORS,
        machine_spec=_machine_spec(),
        telemetry_interval=telemetry_interval,
        analytic=analytic,
        compile_schedules=compiled,
    )
    wall = perf_counter() - start
    return {"wall": wall, "results": results}


def _comparable(results: dict) -> dict:
    """A scoreboard with the execution-mode counter masked out."""
    return dict(results, compiled_clients=0)


def measure_fleet_ab(
    n_clients: int = N_CLIENTS, n_refs: int = 150_000, repeats: int = 3
) -> dict:
    """Analytic+compiled fleet vs event-driven interpreted, all axes."""
    previous = os.environ.get("REPRO_SCHEDULE_CACHE")
    os.environ["REPRO_SCHEDULE_CACHE"] = "0"  # measure compile honestly
    try:
        fast_runs = [
            _leg(True, True, n_clients, n_refs) for _ in range(repeats)
        ]
        slow_runs = [
            _leg(False, False, n_clients, n_refs) for _ in range(repeats)
        ]
        # The two cross axes, once each (identity, not timing).
        analytic_only = _leg(True, False, n_clients, n_refs)
        compiled_only = _leg(False, True, n_clients, n_refs)
    finally:
        if previous is None:
            os.environ.pop("REPRO_SCHEDULE_CACHE", None)
        else:
            os.environ["REPRO_SCHEDULE_CACHE"] = previous

    slow = slow_runs[0]["results"]
    others = [run["results"] for run in fast_runs] + [
        analytic_only["results"], compiled_only["results"],
    ] + [run["results"] for run in slow_runs[1:]]
    identical_reports = all(r["clients"] == slow["clients"] for r in others)
    identical_metrics = all(
        _comparable(r) == _comparable(slow) for r in others
    )
    fast_wall = min(run["wall"] for run in fast_runs)
    slow_wall = min(run["wall"] for run in slow_runs)
    fast = fast_runs[0]["results"]
    return {
        "workload": "hot-cold",
        "n_clients": n_clients,
        "n_donors": N_DONORS,
        "n_refs": n_refs,
        "compiled_clients": fast["compiled_clients"],
        "pageins_per_client": fast["clients"][0]["pageins"],
        "cluster_throughput": round(slow["cluster_throughput"], 1),
        "jain_fairness": round(slow["jain_fairness"], 4),
        "makespan": round(slow["makespan"], 4),
        "fast_seconds": round(fast_wall, 4),
        "slow_seconds": round(slow_wall, 4),
        "identical_reports": identical_reports,
        "identical_metrics": identical_metrics,
        "speedup": round(slow_wall / fast_wall, 2),
    }


def measure_telemetry_identity(
    n_clients: int = 16, n_refs: int = 60_000
) -> dict:
    """Sampler on (pins interpreted), analytic fabric on vs off: the
    pooled latency histogram must not notice the fast path."""
    analytic = _leg(True, None, n_clients, n_refs, telemetry_interval=1.0)
    event = _leg(False, None, n_clients, n_refs, telemetry_interval=1.0)
    latency = analytic["results"].get("pagein_latency") or {}
    return {
        "n_clients": n_clients,
        "n_refs": n_refs,
        "compiled_clients": analytic["results"]["compiled_clients"],
        "pagein_samples": latency.get("count", 0),
        "p99_ms": latency.get("p99_ms"),
        "identical": analytic["results"] == event["results"],
    }


def measure_runner_fanout(jobs: int = 4, cells: int = 8) -> dict:
    """Fresh-pool vs warm-pool wall clock for one uncached spec batch.

    History only (host-load sensitive): the ratio shows what the
    persistent pool saves a campaign that calls ``run()`` per figure.
    """
    from repro.runner import ExperimentRunner, RunSpec

    specs = [
        RunSpec.make("mvec", "no-reliability", workload_kwargs={"n": 600 + i})
        for i in range(cells)
    ]
    fresh_runner = ExperimentRunner(jobs=jobs)
    start = perf_counter()
    fresh_runner.run(specs)
    fresh = perf_counter() - start
    # Same runner, same batch: the pool (and its imports) already exist.
    start = perf_counter()
    fresh_runner.run(specs)
    warm = perf_counter() - start
    fresh_runner.close()
    return {
        "jobs": jobs,
        "cells": cells,
        "fresh_seconds": round(fresh, 4),
        "warm_seconds": round(warm, 4),
        "reuse_ratio": round(fresh / warm, 2) if warm > 0 else None,
    }


# --------------------------------------------------------------------------
# Assembly + threshold check.
# --------------------------------------------------------------------------

def run_benchmarks(
    n_clients: int = N_CLIENTS, n_refs: int = 150_000, repeats: int = 3
) -> dict:
    return {
        "fleet_ab": measure_fleet_ab(
            n_clients=n_clients, n_refs=n_refs, repeats=repeats
        ),
        "telemetry_identity": measure_telemetry_identity(),
        "runner_fanout": measure_runner_fanout(),
    }


def check(summary: dict) -> list:
    """The PR 10 acceptance thresholds; returns a list of failures."""
    failures = []
    ab = summary["fleet_ab"]
    if ab["speedup"] < FLEET_SPEEDUP_FLOOR:
        failures.append(
            f"fleet A/B {ab['speedup']:.2f}x < {FLEET_SPEEDUP_FLOOR}x floor"
        )
    if not ab["identical_reports"]:
        failures.append("fleet per-client reports diverged across axes")
    if not ab["identical_metrics"]:
        failures.append("fleet scoreboard metrics diverged across axes")
    if ab["compiled_clients"] != ab["n_clients"]:
        failures.append(
            f"only {ab['compiled_clients']}/{ab['n_clients']} clients "
            "replayed compiled schedules"
        )
    telemetry = summary["telemetry_identity"]
    if not telemetry["identical"]:
        failures.append("telemetry scoreboard diverged across the analytic axis")
    if telemetry["pagein_samples"] <= 0:
        failures.append("telemetry leg collected no pagein latency samples")
    return failures


# --------------------------------------------------------------------------
# pytest smoke checks (smaller fleet; the speedup floor still holds).
# --------------------------------------------------------------------------

def test_fleet_ab_fast_and_identical(benchmark, once):
    results = once(
        benchmark, measure_fleet_ab, n_clients=16, n_refs=60_000, repeats=2
    )
    print("\n" + json.dumps(results, indent=2))
    assert results["identical_reports"]
    assert results["identical_metrics"]
    assert results["compiled_clients"] == 16
    assert results["speedup"] >= FLEET_SPEEDUP_FLOOR


def test_telemetry_scoreboard_identical(benchmark, once):
    results = once(
        benchmark, measure_telemetry_identity, n_clients=8, n_refs=40_000
    )
    print("\n" + json.dumps(results, indent=2))
    assert results["identical"]
    assert results["pagein_samples"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=N_CLIENTS,
                        help="fleet size for the A/B (default 64)")
    parser.add_argument("--refs", type=int, default=150_000,
                        help="per-client reference-stream length")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats (default 3)")
    parser.add_argument("--check", action="store_true",
                        help="enforce the acceptance thresholds")
    parser.add_argument("--out", default="-", metavar="PATH",
                        help="write JSON here ('-' = stdout)")
    args = parser.parse_args(argv)

    summary = run_benchmarks(
        n_clients=args.clients, n_refs=args.refs, repeats=args.repeats
    )
    text = json.dumps(summary, indent=2, sort_keys=True)
    if args.out == "-":
        print(text)
    else:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")

    if args.check:
        failures = check(summary)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("all PR 10 benchmark thresholds met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
