"""A shared-medium CSMA/CD Ethernet model (frame level).

This is the paper's interconnect: a single 10 Mbit/s coaxial segment shared
by every workstation.  The model captures the three behaviours the
evaluation depends on:

1. **Idle-network page latency** — an 8 KB page fragments into six frames;
   each pays wire time, an interframe gap, and one contention slot, giving
   the ~8–9 ms/page the paper measures (§3.1, §4.4).
2. **Serialisation** — only one station transmits at a time, so concurrent
   transfers (mirroring's two copies, background traffic) queue.
3. **Collision collapse** (§4.6) — when several stations contend, frames
   collide; binary exponential backoff resolves them at the cost of
   dramatically reduced effective bandwidth.

Mechanics: a station that wants to transmit carrier-senses, waits for the
interframe gap, and *begins*.  All stations that begin within one
contention slot of each other collide: the channel carries a jam, everyone
backs off a random number of slots (binary exponential, capped), and
retries.  A sole beginner wins the channel for its frame time.  This is
the standard abstract CSMA/CD model (Tanenbaum §3, which the paper cites
for the collapse behaviour).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..config import EthernetSpec
from ..sim import Event, RngRegistry, Simulator, Store
from .base import Message, Network

__all__ = ["EthernetCsmaCd"]

#: Channel states.
_IDLE = "idle"
_CONTEND = "contend"
_BUSY = "busy"
_JAM = "jam"


class _Station:
    """Per-host transmit queue and its sender process."""

    def __init__(self, net: "EthernetCsmaCd", host: str):
        self.net = net
        self.host = host
        self.queue: Store = Store(net.sim)
        self.rng: random.Random = net.rngs.stream(f"ethernet.{host}")
        self.process = net.sim.process(self._run(), name=f"eth-station:{host}")

    def _run(self):
        net = self.net
        while True:
            message: Message = yield self.queue.get()
            # §2.2: a partition stalls the sender; nothing is dropped.
            yield from net._await_reachable(message.src, message.dst)
            for payload in net._fragments(message.nbytes):
                yield from net._send_frame(self, payload)
            net._deliver(message)


class EthernetCsmaCd(Network):
    """Single shared segment with CSMA/CD arbitration.

    ``transfer`` enqueues a message on the source station; the station
    sends the message's frames back-to-back (re-contending for the channel
    per frame, as real Ethernet does).
    """

    def __init__(
        self,
        sim: Simulator,
        spec: Optional[EthernetSpec] = None,
        rngs: Optional[RngRegistry] = None,
    ):
        super().__init__(sim)
        self.spec = spec or EthernetSpec()
        self.rngs = rngs or RngRegistry(seed=0)
        self._state = _IDLE
        self._contenders: List[tuple] = []  # (station, frame_time, event)
        self._idle_waiters: List[Event] = []
        self._pending_events: Dict[int, Event] = {}
        self._drops = 0

    # ------------------------------------------------------------- interface
    def transfer(self, src: str, dst: str, nbytes: int) -> Event:
        message = Message(src=src, dst=dst, nbytes=nbytes, enqueued_at=self.sim.now)
        self._require(dst)  # destination must exist (else packets vanish)
        station: _Station = self._require(src)
        done = self.sim.event()
        self._pending_events[message.msg_id] = done
        station.queue.put(message)
        return done

    @property
    def collisions(self) -> int:
        """Total collision events observed since construction."""
        return self.stats.counters["collisions"]

    @property
    def drops(self) -> int:
        """Frames abandoned after the attempt limit (sender retries later)."""
        return self._drops

    # -------------------------------------------------------------- internals
    def _make_station(self, host: str) -> _Station:
        return _Station(self, host)

    def _fragments(self, nbytes: int) -> List[int]:
        """Split a message into MTU-sized frame payloads."""
        mtu = self.spec.mtu
        full, rest = divmod(nbytes, mtu)
        sizes = [mtu] * full
        if rest:
            sizes.append(rest)
        return sizes

    def _deliver(self, message: Message) -> None:
        self.stats.delivered(message)
        event = self._pending_events.pop(message.msg_id, None)
        if event is not None and not event.triggered:
            event.succeed(message)

    # -- CSMA/CD state machine ---------------------------------------------
    def _send_frame(self, station: _Station, payload: int):
        """Generator: contend for the channel and transmit one frame.

        Follows 802.3: carrier sense, interframe gap, transmit; on
        collision, jam and back off ``r`` slots with ``r`` uniform in
        ``[0, 2^min(attempts, 10))``; after ``max_attempts`` the frame is
        counted as dropped and retried from a fresh backoff state (the
        paging layer cannot afford to lose frames; real TCP would
        retransmit with the same net effect).
        """
        spec = self.spec
        frame_time = spec.frame_time(payload)
        attempts = 0
        while True:
            # Carrier sense: wait for an idle channel.
            while self._state not in (_IDLE, _CONTEND):
                waiter = self.sim.event()
                self._idle_waiters.append(waiter)
                yield waiter
            # Interframe gap, then check the channel is still free.
            yield self.sim.timeout(spec.interframe_gap)
            if self._state not in (_IDLE, _CONTEND):
                continue
            outcome = yield self._begin(station, frame_time)
            if outcome == "won":
                return
            # Collision: binary exponential backoff.
            attempts += 1
            self.stats.counters.add("station_collisions")
            if attempts >= spec.max_attempts:
                self._drops += 1
                attempts = 0  # excessive collisions: restart backoff state
            exponent = min(attempts, spec.max_backoff_exponent)
            slots = station.rng.randrange(0, 2**exponent)
            yield self.sim.timeout(spec.jam_time + slots * spec.slot_time)

    def _begin(self, station: _Station, frame_time: float) -> Event:
        """Register a transmission attempt in the current contention slot."""
        outcome = self.sim.event()
        if self._state == _IDLE:
            self._state = _CONTEND
            self._contenders = [(station, frame_time, outcome)]
            self.stats.wire.busy(self.sim.now)
            self.sim.process(self._resolve(), name="eth-resolve")
        elif self._state == _CONTEND:
            self._contenders.append((station, frame_time, outcome))
        else:  # pragma: no cover - guarded by the caller's carrier sense
            outcome.succeed("collision")
        return outcome

    def _resolve(self):
        """After one contention slot, pick a winner or declare a collision."""
        spec = self.spec
        yield self.sim.timeout(spec.slot_time)
        contenders, self._contenders = self._contenders, []
        if len(contenders) == 1:
            _, frame_time, outcome = contenders[0]
            self._state = _BUSY
            yield self.sim.timeout(frame_time)
            outcome.succeed("won")
            self.stats.counters.add("frames")
        else:
            self._state = _JAM
            self.stats.counters.add("collisions")
            yield self.sim.timeout(spec.jam_time)
            for _, _, outcome in contenders:
                outcome.succeed("collision")
        self._state = _IDLE
        self.stats.wire.idle(self.sim.now)
        waiters, self._idle_waiters = self._idle_waiters, []
        for waiter in waiters:
            waiter.succeed()
