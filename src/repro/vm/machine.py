"""The client workstation's virtual-memory system.

:class:`Machine` replays a workload's page-reference trace against a
fixed-size resident set, faulting through a pluggable :class:`Pager` —
this is the reproduction's stand-in for the DEC OSF/1 kernel paging
against the paper's block-device driver.

Performance note (DESIGN.md §5): references to resident pages are the
overwhelmingly common case, so they are handled without touching the
event loop — CPU time just accumulates and is flushed as one timeout at
the next fault (or in ``max_cpu_chunk`` slices, so that concurrently
simulated machines and background load interleave realistically).

Accounting follows the paper's §4.3 decomposition:

* ``utime`` — the workload's own CPU time (scaled by machine speed);
* ``systime`` — kernel fault-service CPU;
* ``inittime`` — program load/startup;
* everything else observed in ``etime`` is page-transfer time (``ptime``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

from ..config import MachineSpec
from ..errors import PagingError
from ..sim import Counter, Process, Simulator
from .page import PageVersioner
from .pagetable import PageTable
from .replacement import LruReplacement, ReplacementPolicy
from .pager import Pager

__all__ = ["Machine", "CompletionReport"]

#: A trace step: (page_id, is_write, cpu_seconds_before_this_reference).
Ref = Tuple[int, bool, float]


@dataclass
class CompletionReport:
    """Timing breakdown of one workload run (the paper's §4.3 terms)."""

    name: str
    etime: float = 0.0
    utime: float = 0.0
    systime: float = 0.0
    inittime: float = 0.0
    pageins: int = 0
    pageouts: int = 0
    faults: int = 0
    zero_fills: int = 0
    page_transfers: int = 0
    counters: dict = field(default_factory=dict)
    #: Provenance: root seed, policy name, resolved configuration
    #: overrides, workload name — populated by the experiment harness so
    #: cached and parallel-computed reports are self-describing.
    meta: dict = field(default_factory=dict)

    @property
    def ptime(self) -> float:
        """Page-transfer time: elapsed minus CPU and startup components."""
        return max(0.0, self.etime - self.utime - self.systime - self.inittime)

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"{self.name}: etime={self.etime:.2f}s utime={self.utime:.2f}s "
            f"systime={self.systime:.2f}s init={self.inittime:.2f}s "
            f"ptime={self.ptime:.2f}s faults={self.faults} "
            f"(in={self.pageins}, out={self.pageouts}, "
            f"zero={self.zero_fills}, transfers={self.page_transfers})"
        )


class Machine:
    """A workstation running one paging workload.

    Parameters
    ----------
    sim:
        The simulation kernel.
    spec:
        Hardware description (RAM size, CPU speed, fault-service cost).
    pager:
        The paging device (local disk or remote memory pager).
    replacement:
        Victim-selection policy; defaults to exact LRU.  OSF/1's global
        replacement approximates LRU well for the era's workloads; the
        Clock approximation is available for ablation but interacts
        pathologically with alternating-direction sweeps (its ring order
        evicts exactly the pages a reverse sweep needs next), inflating
        fault counts ~5x beyond what the paper measured.
    content_mode:
        When True, pages carry real bytes and every pagein is verified
        against the last paged-out version (end-to-end integrity check).
    init_time:
        Program startup cost (the paper's ``inittime``; 0.21 s for FFT).
    max_cpu_chunk:
        Longest single stretch of simulated compute between event-loop
        visits; keeps co-simulated activity interleaved.
    pageout_window:
        Maximum pageouts in flight.  Evicted dirty pages are written back
        *asynchronously* (the OSF/1 pageout daemon clusters swap writes;
        §4.7's "writes are performed in large chunks" depends on this);
        the faulting process only blocks when the window is full.  Set to
        1 for fully synchronous pageouts.
    free_batch:
        When the free-frame pool is empty, the paging daemon evicts this
        many frames at once (OSF/1's free-page target).  Batching is what
        lets consecutive dirty writebacks land adjacently in the disk
        queue and stream at media rate instead of paying a rotation each.
    prefetch:
        Sequential read-ahead depth (0 = off, the default).  When the
        fault stream shows a run of consecutive pages, the next
        ``prefetch`` backing-store pages are fetched asynchronously so a
        streaming workload overlaps pagein latency with compute.  A fault
        on a page whose prefetch is still in flight waits for it rather
        than fetching twice.
    compile_schedules:
        Trace-compilation override (see ``repro.compile``): True forces
        the batch-replay path where eligible, False forces interpreted
        execution, None (default) follows the process-wide setting.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: MachineSpec,
        pager: Pager,
        replacement: Optional[ReplacementPolicy] = None,
        content_mode: bool = False,
        init_time: float = 0.21,
        max_cpu_chunk: float = 0.25,
        pageout_window: int = 16,
        free_batch: int = 16,
        prefetch: int = 0,
        compile_schedules: Optional[bool] = None,
        name: str = "client",
    ):
        if init_time < 0 or max_cpu_chunk <= 0:
            raise ValueError("init_time must be >= 0 and max_cpu_chunk > 0")
        if pageout_window < 1 or free_batch < 1:
            raise ValueError("pageout_window and free_batch must be >= 1")
        if prefetch < 0:
            raise ValueError("prefetch must be >= 0")
        self.sim = sim
        self.spec = spec
        self.pager = pager
        self.replacement = replacement if replacement is not None else LruReplacement()
        self.page_table = PageTable()
        self.versioner = PageVersioner(spec.page_size, content_mode=content_mode)
        self.content_mode = content_mode
        self.init_time = init_time
        self.max_cpu_chunk = max_cpu_chunk
        self.name = name
        self.counters = Counter()
        self.pageout_window = pageout_window
        self.free_batch = free_batch
        self.prefetch = prefetch
        #: Tri-state trace-compilation override consulted by the compile
        #: planner at Cluster.run time: True/False force, None defers to
        #: the process-wide default (on unless REPRO_NO_COMPILE is set).
        self.compile_schedules = compile_schedules
        self._utime = 0.0
        self._systime = 0.0
        self._inflight_slots = 0
        self._inflight_by_page: dict = {}
        self._inflight_tokens: dict = {}
        self._window_waiters: list = []
        self._prefetching: dict = {}
        self._last_fault_page: Optional[int] = None
        self._sequential_run = 0
        self._seq_dir = 0

    # ------------------------------------------------------------ interface
    def run(self, trace: Iterable[Ref], name: str = "workload") -> Process:
        """Start executing ``trace``; returns the process (fires with a
        :class:`CompletionReport`)."""
        return self.sim.process(self._execute(trace, name), name=f"run:{name}")

    def run_to_completion(self, trace: Iterable[Ref], name: str = "workload") -> CompletionReport:
        """Convenience: run ``trace`` and drive the simulator to its end."""
        return self.sim.run_until_complete(self.run(trace, name))

    def run_schedule(
        self, schedule, name: str = "workload", fault_log: Optional[list] = None
    ) -> Process:
        """Start replaying a compiled fault schedule (see ``repro.compile``).

        The replay path issues *exactly* the simulation-event sequence of
        :meth:`run` on the schedule's source trace — the same CPU-flush
        timeouts, the same fault-service charges, pageouts, and pageins,
        in the same order — so every report field, counter, metric, and
        downstream RNG draw is bit-identical.  What it skips is the
        per-reference Python between those events (page-table lookups and
        replacement-policy touches for resident hits), making sim work
        O(faults) instead of O(references).
        """
        return self.sim.process(
            self._execute_schedule(schedule, name, fault_log), name=f"run:{name}"
        )

    def run_plan(self, workload, schedule=None, name: Optional[str] = None) -> Process:
        """Dispatch one fleet client: replay ``schedule`` when the
        planner produced one, else interpret ``workload``'s trace.

        This is the per-client arm of multi-machine replay (see
        :func:`repro.compile.plan_fleet`): N machines on one kernel each
        replay their own reliability-blind schedule as interleaved
        merged-chunk segments, reconciling only where they actually
        meet — the shared fabric's port resources and the donor servers
        — because fault service still drives the real pager datapath.
        """
        label = name if name is not None else getattr(workload, "name", "workload")
        if schedule is not None:
            return self.run_schedule(schedule, name=label)
        return self.run(workload.trace(), name=label)

    def run_schedule_to_completion(
        self, schedule, name: str = "workload", fault_log: Optional[list] = None
    ) -> CompletionReport:
        """Convenience: replay ``schedule`` and drive the simulator."""
        return self.sim.run_until_complete(
            self.run_schedule(schedule, name, fault_log)
        )

    def run_effects(self, schedule, effects, restore=None, name: str = "workload") -> Process:
        """Replay a recorded effect capsule (see ``repro.compile.effects``):
        one kernel event at the recorded final clock, plus a wholesale
        state restore — observable results byte-identical to the kernel
        replay that recorded it.  ``restore`` is called (if given) after
        the machine-side restore to apply cluster-side instrument state."""
        return self.sim.process(
            self._execute_effects(schedule, effects, restore, name),
            name=f"run:{name}",
        )

    def run_effects_to_completion(
        self, schedule, effects, restore=None, name: str = "workload"
    ) -> CompletionReport:
        """Convenience: replay ``effects`` and drive the simulator."""
        return self.sim.run_until_complete(
            self.run_effects(schedule, effects, restore, name)
        )

    @property
    def resident_count(self) -> int:
        return len(self.replacement)

    @property
    def inflight_pageouts(self) -> int:
        """Asynchronous pageouts currently occupying window slots — the
        synchronous datapath's write-behind depth, probed by telemetry."""
        return self._inflight_slots

    # ------------------------------------------------------------ internals
    def _execute(self, trace: Iterable[Ref], name: str):
        spec = self.spec
        user_frames = spec.user_frames
        if user_frames < 1:
            raise PagingError(f"machine {self.name!r} has no user frames")
        page_table = self.page_table
        policy = self.replacement
        versioner = self.versioner
        speed = spec.cpu_speed
        max_chunk = self.max_cpu_chunk
        start = self.sim.now

        yield self.sim.timeout(self.init_time)

        # Resident-hit touches are buffered and applied as one batch
        # before every simulation yield (and before every eviction
        # decision), so nothing that runs while this process is parked —
        # read-ahead inserts, concurrent machines — can observe or
        # interleave with a half-applied touch sequence.  The net policy
        # state is exactly that of per-reference touching; this is the
        # same batch-step API the trace compiler replays off-line.
        batch_touch = getattr(policy, "supports_batch_touch", False)
        touches: list = []
        touch_append = touches.append

        pending_cpu = 0.0
        for page_id, is_write, cpu in trace:
            pending_cpu += cpu / speed
            pte = page_table.entry(page_id)
            if pte.resident:
                pte.referenced = True
                if is_write and not pte.dirty:
                    pte.dirty = True
                    versioner.bump(page_id)
                if batch_touch:
                    touch_append(page_id)
                else:
                    policy.touch(page_id, is_write)
                if pending_cpu >= max_chunk:
                    if touches:
                        policy.touch_batch(touches)
                        touches.clear()
                    self._utime += pending_cpu
                    yield self.sim.timeout(pending_cpu)
                    pending_cpu = 0.0
                continue

            # Page fault: flush accumulated compute, then service it.
            if touches:
                policy.touch_batch(touches)
                touches.clear()
            if pending_cpu > 0.0:
                self._utime += pending_cpu
                yield self.sim.timeout(pending_cpu)
                pending_cpu = 0.0
            yield from self._service_fault(pte, is_write, user_frames)

        if touches:
            policy.touch_batch(touches)
            touches.clear()
        if pending_cpu > 0.0:
            self._utime += pending_cpu
            yield self.sim.timeout(pending_cpu)

        yield from self._drain_tail()
        return self._report(name, start)

    def _execute_schedule(self, schedule, name: str, fault_log: Optional[list] = None):
        spec = self.spec
        if spec.user_frames < 1:
            raise PagingError(f"machine {self.name!r} has no user frames")
        sim = self.sim
        start = sim.now
        replay_span = sim.tracer.span("replay", component="compile")

        yield sim.timeout(self.init_time)

        timeout = sim.timeout
        bump = self.versioner.bump
        chunk_cpu = schedule.chunk_cpu
        seg_bumps = schedule.seg_bumps
        bump_pages = schedule.bump_pages
        fault_page = schedule.fault_page
        fault_flags = schedule.fault_flags
        victim_lens = schedule.victim_lens
        victims = schedule.victims
        n_faults = schedule.n_faults
        ci = bi = vi = 0
        for s, nc in enumerate(schedule.seg_chunks):
            if nc == 1:
                amount = chunk_cpu[ci]
                ci += 1
                self._utime += amount
                yield timeout(amount)
            elif nc:
                # Merge the segment's hit-span flushes into ONE kernel
                # event at the final wake instant.  The instant must be
                # the exact float the interpreted loop's chained
                # timeouts reach, so it accumulates chunk-by-chunk in
                # the same order/association — never via np.cumsum,
                # whose pairwise association differs in the last ulp.
                at = sim.now
                for j in range(ci, ci + nc):
                    amount = chunk_cpu[j]
                    self._utime += amount
                    at += amount
                ci += nc
                yield sim.at(at)
            nb = seg_bumps[s]
            if nb:
                # Version bumps from first writes in the hit span.
                for page_id in bump_pages[bi:bi + nb]:
                    bump(page_id)
                bi += nb
            if s < n_faults:
                flags = fault_flags[s]
                nv = victim_lens[s]
                before = sim.now
                yield from self._service_fault_compiled(
                    fault_page[s], flags & 1, flags & 2, victims[vi:vi + nv]
                )
                vi += nv
                if fault_log is not None:
                    fault_log.append(sim.now - before)

        self._restore_schedule_state(schedule)
        yield from self._drain_tail()
        replay_span.end("ok", faults=schedule.n_faults, refs=schedule.n_refs)
        return self._report(name, start)

    def _execute_effects(self, schedule, effects, restore, name: str):
        sim = self.sim
        start = sim.now
        # One triggered event at the recorded final clock stands in for
        # the entire run's event sequence.
        yield sim.at(effects.final_now)

        # Replay every page-version bump (hit-span first-writes, then the
        # fault's own write) so the versioner's final state matches the
        # recorded run — order within the run is irrelevant to the final
        # version counts, but segment order is kept for clarity.
        bump = self.versioner.bump
        bump_pages = schedule.bump_pages
        fault_page = schedule.fault_page
        fault_flags = schedule.fault_flags
        n_faults = schedule.n_faults
        bi = 0
        for s, nb in enumerate(schedule.seg_bumps):
            for page_id in bump_pages[bi:bi + nb]:
                bump(page_id)
            bi += nb
            if s < n_faults and fault_flags[s] & 1:
                bump(fault_page[s])

        self._restore_schedule_state(schedule)
        self._utime = effects.utime
        self._systime = effects.systime
        if restore is not None:
            restore()
        return self._report(name, start)

    def _service_fault_compiled(self, page_id: int, is_write, needs_pagein, pageouts):
        """Replay one recorded fault: identical event sequence to
        :meth:`_service_fault`, with eviction decisions precomputed."""
        fault_start = self.sim.now
        self.counters.add("faults")
        fault_cpu = self.spec.fault_service_cpu / self.spec.cpu_speed
        self._systime += fault_cpu
        yield self.sim.timeout(fault_cpu)

        span = self.sim.tracer.span("fault", page_id, component="machine")
        span.phase("evict")

        for victim_id in pageouts:
            contents = self.versioner.contents(victim_id)
            yield from self._start_pageout(victim_id, contents, span)
            self.counters.add("pageouts")

        inflight = self._inflight_by_page.get(page_id)
        if inflight is not None:
            span.phase("writeback_wait")
            yield inflight

        if needs_pagein:
            span.phase("pagein")
            contents = yield from self.pager.pagein(page_id)
            self.counters.add("pageins")
            if self.content_mode:
                self._verify(page_id, contents)
        else:
            self.counters.add("zero_fills")
        span.end("ok")

        if is_write:
            self.versioner.bump(page_id)
        # Same hook as the interpreted path: with telemetry off this is
        # the kernel's no-op NullSampler.
        self.sim.sampler.observe_fault(self.sim.now - fault_start)

    def _restore_schedule_state(self, schedule) -> None:
        """Leave the machine exactly as interpreted execution would have:
        the replacement policy's internal order and every touched page's
        table entry (the replay skips their per-reference upkeep)."""
        self.replacement.restore_state(schedule.policy_state)
        page_table = self.page_table
        for page_id, resident, dirty, referenced, on_backing_store in schedule.final_ptes:
            pte = page_table.entry(page_id)
            pte.resident = bool(resident)
            pte.dirty = bool(dirty)
            pte.referenced = bool(referenced)
            pte.on_backing_store = bool(on_backing_store)

    def _drain_tail(self):
        """Drain outstanding asynchronous pageouts before declaring done —
        both the machine's in-flight pageout processes and anything the
        pager itself buffers (the PR 4 write-behind queue / prefetch
        cache settle behind Pager.drain())."""
        if self._inflight_by_page or self.pager.pending_drain:
            span = self.sim.tracer.span("drain", component="machine")
            span.phase("drain")
            while self._inflight_by_page:
                yield self.sim.any_of(list(self._inflight_by_page.values()))
            yield from self.pager.drain()
            span.end("ok")

    def _service_fault(self, pte, is_write: bool, user_frames: int):
        """Fault path: evict if full (async pageout of a dirty victim),
        then page in."""
        fault_start = self.sim.now
        self.counters.add("faults")
        fault_cpu = self.spec.fault_service_cpu / self.spec.cpu_speed
        self._systime += fault_cpu
        yield self.sim.timeout(fault_cpu)

        # The fault span opens AFTER the fault-service CPU charge, so it
        # covers exactly the time the machine stalls on the paging device
        # (neither utime nor systime).  The machine runs one sequential
        # reference stream, so the fault spans plus the end-of-run drain
        # span partition the run's measured paging time (ptime) exactly.
        span = self.sim.tracer.span("fault", pte.page_id, component="machine")
        span.phase("evict")

        policy = self.replacement
        page_table = self.page_table
        if len(policy) >= user_frames:
            # Free-page pool empty: the paging daemon evicts a batch so
            # dirty writebacks cluster in the device queue.
            batch = min(self.free_batch, len(policy))
            for _ in range(batch):
                victim_id = policy.evict()
                victim = page_table.entry(victim_id)
                victim.resident = False
                if victim.dirty:
                    victim.dirty = False
                    victim.on_backing_store = True
                    contents = self.versioner.contents(victim_id)
                    yield from self._start_pageout(victim_id, contents, span)
                    self.counters.add("pageouts")

        # A fault on a page whose pageout is still in flight must wait for
        # the write-back to land (the backing store does not hold it yet).
        inflight = self._inflight_by_page.get(pte.page_id)
        if inflight is not None:
            span.phase("writeback_wait")
            yield inflight

        prefetching = self._prefetching.get(pte.page_id)
        if prefetching is not None:
            # A read-ahead already has this page on the way; its arrival
            # (not this fault) makes the page resident.
            span.phase("pagein")
            yield prefetching
            self.counters.add("prefetch_hits")
        elif pte.on_backing_store:
            span.phase("pagein")
            contents = yield from self.pager.pagein(pte.page_id)
            self.counters.add("pageins")
            if self.content_mode:
                self._verify(pte.page_id, contents)
        else:
            # First touch: zero-filled, no backing-store traffic.
            self.counters.add("zero_fills")
        span.end("ok")

        if self.prefetch:
            self._note_fault_for_prefetch(pte.page_id, user_frames)

        if not pte.resident:
            pte.resident = True
            pte.dirty = False
            policy.insert(pte.page_id)
        pte.referenced = True
        if is_write and not pte.dirty:
            pte.dirty = True
            self.versioner.bump(pte.page_id)
        # Per-fault service latency for the telemetry histogram; the
        # kernel's NullSampler makes this free when telemetry is off.
        self.sim.sampler.observe_fault(self.sim.now - fault_start)

    def _start_pageout(self, page_id: int, contents, span=None):
        """Launch an asynchronous pageout, respecting the in-flight window.

        Generator: blocks only while the window is full.  Within-page
        ordering is preserved by chaining: a new pageout of a page whose
        previous pageout is still in flight waits for it first.
        """
        if span is not None and self._inflight_slots >= self.pageout_window:
            span.phase("window_wait")
        while self._inflight_slots >= self.pageout_window:
            waiter = self.sim.event()
            self._window_waiters.append(waiter)
            yield waiter
        if span is not None:
            span.phase("evict")
        previous = self._inflight_by_page.get(page_id)
        token = object()
        self._inflight_tokens[page_id] = token
        self._inflight_slots += 1
        done = self.sim.process(
            self._do_pageout(page_id, contents, previous, token),
            name=f"pageout:{page_id}",
        )
        self._inflight_by_page[page_id] = done

    def _do_pageout(self, page_id: int, contents, previous, token):
        if previous is not None and not previous.processed:
            yield previous
        try:
            yield from self.pager.pageout(page_id, contents)
        finally:
            self._inflight_slots -= 1
            if self._inflight_tokens.get(page_id) is token:
                del self._inflight_tokens[page_id]
                del self._inflight_by_page[page_id]
            if self._window_waiters:
                self._window_waiters.pop(0).succeed()

    # ------------------------------------------------------- read-ahead
    def _note_fault_for_prefetch(self, page_id: int, user_frames: int) -> None:
        """Detect sequential fault runs (either direction) and launch
        asynchronous read-ahead of the next ``prefetch`` pages."""
        if self._last_fault_page is not None:
            step = page_id - self._last_fault_page
        else:
            step = 0
        if step in (1, -1) and step == self._seq_dir:
            self._sequential_run += 1
        elif step in (1, -1):
            self._seq_dir = step
            self._sequential_run = 1
        else:
            self._sequential_run = 0
        self._last_fault_page = page_id
        if self._sequential_run < 2:
            return
        direction = self._seq_dir
        for offset in range(1, self.prefetch + 1):
            target = page_id + direction * offset
            pte = self.page_table.get(target)
            if pte is None or pte.resident or not pte.on_backing_store:
                continue
            if target in self._prefetching or target in self._inflight_by_page:
                continue
            if len(self.replacement) + len(self._prefetching) >= user_frames:
                break  # no frame headroom: read-ahead would thrash
            self._prefetching[target] = self.sim.process(
                self._prefetch_one(target), name=f"prefetch:{target}"
            )

    def _prefetch_one(self, page_id: int):
        try:
            contents = yield from self.pager.pagein(page_id)
            self.counters.add("pageins")
            self.counters.add("prefetched")
            if self.content_mode:
                self._verify(page_id, contents)
            pte = self.page_table.entry(page_id)
            if not pte.resident and len(self.replacement) < self.spec.user_frames:
                pte.resident = True
                pte.dirty = False
                pte.referenced = False
                self.replacement.insert(page_id)
            # else: no room by arrival time — drop the copy; a real fault
            # will fetch it again (pte.on_backing_store is still set).
        finally:
            del self._prefetching[page_id]

    def _verify(self, page_id: int, contents: Optional[bytes]) -> None:
        expected = self.versioner.contents(page_id)
        if contents != expected:
            raise PagingError(
                f"pagein of page {page_id} returned corrupt contents "
                f"(version {self.versioner.version_of(page_id)})"
            )

    def _report(self, name: str, start: float) -> CompletionReport:
        return CompletionReport(
            name=name,
            etime=self.sim.now - start,
            utime=self._utime,
            systime=self._systime,
            inittime=self.init_time,
            pageins=self.counters["pageins"],
            pageouts=self.counters["pageouts"],
            faults=self.counters["faults"],
            zero_fills=self.counters["zero_fills"],
            page_transfers=self.pager.transfers,
            counters=self.counters.as_dict(),
        )
