"""Scaled-down tests of the extension experiments (full runs are
benchmarks)."""

import pytest

from repro.experiments import (
    run_adaptive,
    run_heterogeneous,
    run_network_comparison,
    run_server_scaling,
)
from repro.workloads import Mvec

#: ~23 MB: pages, but quickly.
SMALL_MVEC = {"n": 1700}


def small_mvec():
    return Mvec(**SMALL_MVEC)


def test_server_scaling_transfer_arithmetic():
    results = run_server_scaling(
        server_counts=(2, 4), workload="mvec", workload_kwargs=SMALL_MVEC
    )
    for s, r in results.items():
        extra = r["parity_logging_transfers"] - r["no_reliability_transfers"]
        assert abs(extra / r["pageouts"] - 1.0 / s) < 0.02


def test_network_comparison_idle_parity():
    """With no background load both MACs complete the workload."""
    results = run_network_comparison(
        loads=(0.0,), workload="mvec", workload_kwargs=SMALL_MVEC
    )
    assert results["ethernet"][0.0] > 0
    assert results["token-ring"][0.0] > 0


def test_heterogeneous_prefers_fast_links():
    results = run_heterogeneous(workload_factory=small_mvec)
    assert results["bandwidth-aware"]["fast_share"] >= 0.99
    assert results["round-robin"]["fast_share"] < 0.75


def test_adaptive_routes_to_disk_under_heavy_load():
    results = run_adaptive(
        background_load=0.8, workload="mvec", workload_kwargs=SMALL_MVEC
    )
    assert results["adaptive"]["disk_routed"] > 0
    assert results["fixed-network"]["disk_routed"] == 0
