"""The trace compiler: one tight pre-pass over a reference stream.

:func:`compile_trace` replicates, decision for decision, what
``Machine._execute`` would do with the same stream — the float-exact
``pending_cpu`` accumulation and its ``max_cpu_chunk`` flush boundaries,
the buffered ``touch_batch`` application before every eviction decision,
the ``free_batch`` eviction loop, dirty/backing-store tracking — but
with no simulator, no page-table objects, and no pager: just the
replacement policy and per-page state bits.  The output schedule is
therefore a faithful run-length encoding of the interpreted execution
(``tests/compile`` pins byte-identical reports across every policy and
application).

The compiler must be handed a *fresh* policy instance of the same class
the machine will run (it consumes it: evictions mutate its state); the
policy's final order is exported into the schedule so the replayed
machine can restore it.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..vm.replacement import ReplacementPolicy
from .schedule import FaultSchedule

__all__ = ["compile_trace"]

#: A trace step, as in ``repro.vm.machine``.
Ref = Tuple[int, bool, float]

# Per-page state bits during compilation (indices into the state list).
_RESIDENT, _DIRTY, _REFERENCED, _ON_BACKING = 0, 1, 2, 3


def compile_trace(
    trace: Iterable[Ref],
    *,
    user_frames: int,
    policy: ReplacementPolicy,
    cpu_speed: float,
    max_cpu_chunk: float,
    free_batch: int,
) -> FaultSchedule:
    """Pre-simulate replacement over ``trace``; emit the fault schedule."""
    if user_frames < 1:
        raise ValueError("user_frames must be >= 1")
    if not getattr(policy, "supports_batch_touch", False):
        raise ValueError(
            f"policy {policy.name!r} does not support the batch-step API"
        )
    if len(policy) != 0:
        raise ValueError("compile_trace needs a fresh (empty) policy instance")

    # Columnar schedule under construction (format 2, see schedule.py):
    # segment-major arrays instead of a flat op list.
    chunk_cpu: list = []
    seg_chunks: list = []
    seg_bumps: list = []
    bump_pages: list = []
    fault_page: list = []
    fault_flags: list = []
    victim_lens: list = []
    all_victims: list = []

    states: dict = {}
    touches: list = []
    touch_append = touches.append
    bumps: list = []
    pending_cpu = 0.0
    cur_chunks = 0
    n_refs = 0
    n_faults = 0

    for page_id, is_write, cpu in trace:
        n_refs += 1
        pending_cpu += cpu / cpu_speed
        st = states.get(page_id)
        if st is None:
            st = states[page_id] = [False, False, False, False]
        if st[_RESIDENT]:
            st[_REFERENCED] = True
            if is_write and not st[_DIRTY]:
                st[_DIRTY] = True
                bumps.append(page_id)
            touch_append(page_id)
            if pending_cpu >= max_cpu_chunk:
                if touches:
                    policy.touch_batch(touches)
                    touches.clear()
                chunk_cpu.append(pending_cpu)
                cur_chunks += 1
                pending_cpu = 0.0
            continue

        # Page fault: close the hit span (segment), then record the
        # decisions the interpreted fault path would make.
        if touches:
            policy.touch_batch(touches)
            touches.clear()
        if pending_cpu > 0.0:
            chunk_cpu.append(pending_cpu)
            cur_chunks += 1
            pending_cpu = 0.0
        seg_chunks.append(cur_chunks)
        cur_chunks = 0
        seg_bumps.append(len(bumps))
        bump_pages.extend(bumps)
        bumps.clear()

        victims: list = []
        if len(policy) >= user_frames:
            batch = min(free_batch, len(policy))
            for _ in range(batch):
                victim_id = policy.evict()
                vst = states[victim_id]
                vst[_RESIDENT] = False
                if vst[_DIRTY]:
                    vst[_DIRTY] = False
                    vst[_ON_BACKING] = True
                    victims.append(victim_id)

        fault_page.append(page_id)
        fault_flags.append((1 if is_write else 0) | (2 if st[_ON_BACKING] else 0))
        victim_lens.append(len(victims))
        all_victims.extend(victims)
        n_faults += 1
        st[_RESIDENT] = True
        st[_DIRTY] = bool(is_write)
        st[_REFERENCED] = True
        policy.insert(page_id)

    if touches:
        policy.touch_batch(touches)
        touches.clear()
    if pending_cpu > 0.0:
        chunk_cpu.append(pending_cpu)
        cur_chunks += 1
    seg_chunks.append(cur_chunks)  # tail segment after the last fault
    seg_bumps.append(len(bumps))
    bump_pages.extend(bumps)

    final_ptes = [
        [page_id, st[_RESIDENT], st[_DIRTY], st[_REFERENCED], st[_ON_BACKING]]
        for page_id, st in states.items()
    ]
    return FaultSchedule(
        chunk_cpu=chunk_cpu,
        seg_chunks=seg_chunks,
        seg_bumps=seg_bumps,
        bump_pages=bump_pages,
        fault_page=fault_page,
        fault_flags=fault_flags,
        victim_lens=victim_lens,
        victims=all_victims,
        n_refs=n_refs,
        n_faults=n_faults,
        policy_state=policy.export_state(),
        final_ptes=final_ptes,
    )
