"""Multiple paging clients sharing the cluster.

§3.2: "Each client is served by a new instance of the server which uses
portion of the local workstation's main memory to store the client's
pages" — and §6 stresses that, unlike file systems, "clients never share
their swap spaces".  This experiment runs clients concurrently:

* each client gets its *own* server instances on the shared donor
  workstations (separate memory grants, fully isolated swap spaces);
* all compete for one shared fabric — the paper's Ethernet segment by
  default, or the switched full-duplex network via ``network=``.

The interesting measurement is the contention cost: how much slower N
simultaneous paging applications run than each would alone.  The
topology is the N=small special case of :mod:`repro.experiments.fleet`
(same builder, same per-client isolation); the fleet experiment is
where the same shape scales to paper-rack client counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.report import format_table
from ..config import SwitchedNetworkSpec
from ..vm.machine import Machine
from ..workloads import Gauss, Qsort
from .fleet import build_fleet

__all__ = ["build_multi_client", "run_multi_client", "render_multi_client"]


def build_multi_client(
    n_clients: int = 2,
    n_donors: int = 2,
    capacity_per_client: int = 2048,
    seed: int = 0,
    network: str = "ethernet",
    switched_spec: Optional[SwitchedNetworkSpec] = None,
):
    """A shared-fabric cluster with per-client server instances.

    Returns ``(sim, machines, network)`` — the historical shape.  The
    assembly itself delegates to :func:`repro.experiments.fleet.build_fleet`
    with zero start stagger: this experiment *wants* the §6 worst case
    of perfectly synchronized clients fighting for the wire.
    """
    fleet = build_fleet(
        n_clients=n_clients,
        n_donors=n_donors,
        capacity_per_client=capacity_per_client,
        seed=seed,
        network=network,
        switched_spec=switched_spec,
        stagger=0.0,
    )
    machines: List[Machine] = fleet.machines
    return fleet.sim, machines, fleet.network


def run_multi_client(
    workload_factories=(Gauss, Qsort),
    n_donors: int = 2,
    capacity_per_client: int = 2048,
    network: str = "ethernet",
) -> Dict[str, object]:
    """Solo vs concurrent completion times, one client per workload."""
    solo_times = []
    for factory in workload_factories:
        sim, machines, _ = build_multi_client(
            n_clients=1,
            n_donors=n_donors,
            capacity_per_client=capacity_per_client,
            network=network,
        )
        report = sim.run_until_complete(
            machines[0].run(factory().trace(), name=factory().name)
        )
        solo_times.append(report.etime)

    sim, machines, fabric = build_multi_client(
        n_clients=len(workload_factories),
        n_donors=n_donors,
        capacity_per_client=capacity_per_client,
        network=network,
    )
    processes = [
        machine.run(factory().trace(), name=factory().name)
        for machine, factory in zip(machines, workload_factories)
    ]
    reports = [sim.run_until_complete(p) for p in processes]
    return {
        "names": [factory().name for factory in workload_factories],
        "network": network,
        "solo": solo_times,
        "concurrent": [r.etime for r in reports],
        "slowdowns": [
            c / s for c, s in zip((r.etime for r in reports), solo_times)
        ],
        # Collisions only exist on the shared Ethernet; the switched
        # fabric contends at ports instead.
        "collisions": getattr(fabric, "collisions", 0),
        "wire_utilization": fabric.stats.utilization(),
    }


def render_multi_client(results: Dict[str, object]) -> str:
    """Solo-vs-concurrent table with wire statistics."""
    rows = [
        [name, f"{solo:.1f}", f"{concurrent:.1f}", f"{slowdown:.2f}x"]
        for name, solo, concurrent, slowdown in zip(
            results["names"],
            results["solo"],
            results["concurrent"],
            results["slowdowns"],
        )
    ]
    fabric = results.get("network", "ethernet")
    table = format_table(
        ["client workload", "solo (s)", "concurrent (s)", "slowdown"],
        rows,
        title=(
            f"{len(rows)} clients sharing one {fabric} fabric "
            "and donor pool"
        ),
    )
    return (
        table
        + f"\ncollisions: {results['collisions']}, "
        f"wire busy: {results['wire_utilization']:.0%}"
    )
