"""Multi-machine compiled replay == interpreted fleet, byte-identically.

N clients on the switched fabric each replay an independently compiled,
reliability-blind fault schedule; the kernel reconciles them wherever
they actually meet (donor servers, fabric ports).  These tests pin the
contract: every per-client report field matches interpreted execution
exactly, identical clients share one compiled schedule, and fleet-level
couplings (shared Ethernet, shared server instances) bypass with traced
reasons.
"""

import dataclasses

import pytest

from repro.compile import fleet_bypass_reason, plan_fleet
from repro.config import MachineSpec
from repro.experiments.fleet import build_fleet, run_fleet
from repro.obs.trace import Tracer, install_tracer, uninstall_tracer
from repro.runner.registry import make_workload

_SMALL = MachineSpec(
    name="fleet-small",
    ram_bytes=2 * 1024 * 1024,
    kernel_resident_bytes=1 * 1024 * 1024,
    page_size=8192,
)

_WORKLOAD = ("sequential-scan", {"n_pages": 400, "passes": 3, "write": True})


@pytest.fixture(autouse=True)
def _no_schedule_cache(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULE_CACHE", "0")


@pytest.fixture()
def tracer():
    tracer = Tracer()
    install_tracer(tracer)
    yield tracer
    uninstall_tracer()


def _compile_events(tracer):
    return [
        (record["event"], record.get("attrs", {}))
        for record in tracer.events
        if record["component"] == "compile"
    ]


def _run(compile_schedules, n_clients=3, **kwargs):
    results = run_fleet(
        workload=_WORKLOAD,
        n_clients=n_clients,
        n_donors=2,
        machine_spec=_SMALL,
        compile_schedules=compile_schedules,
        **kwargs,
    )
    return results


def _fleet_reports(compile_schedules, **kwargs):
    """(results, reports-as-dicts) for one fleet run."""
    from repro.experiments import fleet as fleet_mod

    captured = {}
    original = fleet_mod.build_fleet

    def capture(*args, **kw):
        built = original(*args, **kw)
        captured["fleet"] = built
        return built

    fleet_mod.build_fleet = capture
    try:
        results = _run(compile_schedules, **kwargs)
    finally:
        fleet_mod.build_fleet = original
    reports = [dataclasses.asdict(r) for r in captured["fleet"].reports]
    return results, reports


def test_fleet_compiled_matches_interpreted_byte_identically():
    fast, fast_reports = _fleet_reports(True)
    slow, slow_reports = _fleet_reports(False)
    assert fast["compiled_clients"] == 3
    assert slow["compiled_clients"] == 0
    assert fast_reports == slow_reports
    # The scoreboard derives from the reports, so it matches too.
    assert fast == dict(slow, compiled_clients=3)


def test_fleet_compiled_matches_on_ethernet_fabric_bypass(tracer):
    """Shared Ethernet pins the whole fleet interpreted — and says so."""
    results = _run(True, network="ethernet", n_clients=2)
    assert results["compiled_clients"] == 0
    assert (
        "bypass", {"reason": "shared-ethernet", "scope": "fleet"}
    ) in _compile_events(tracer)


def test_identical_clients_share_one_compiled_schedule(tracer):
    fleet = build_fleet(n_clients=3, n_donors=2, machine_spec=_SMALL)
    clients = [
        (machine, pager, make_workload(_WORKLOAD[0], dict(_WORKLOAD[1])))
        for machine, pager in zip(fleet.machines, fleet.pagers)
    ]
    schedules = plan_fleet(clients, network=fleet.network)
    assert all(s is not None for s in schedules)
    # One compile, then shared objects — replay copies policy state, so
    # sharing is safe.
    assert schedules[0] is schedules[1] is schedules[2]
    events = _compile_events(tracer)
    assert [e for e, _ in events].count("compiled") == 1
    assert [e for e, _ in events].count("fleet-shared") == 2


def test_cross_client_server_sharing_bypasses(tracer):
    fleet = build_fleet(n_clients=2, n_donors=2, machine_spec=_SMALL)
    # Violate §6 on purpose: point client 1 at client 0's servers.
    fleet.pagers[1].policy.servers = fleet.pagers[0].policy.servers
    clients = [
        (machine, pager, make_workload(_WORKLOAD[0], dict(_WORKLOAD[1])))
        for machine, pager in zip(fleet.machines, fleet.pagers)
    ]
    assert fleet_bypass_reason(clients, fleet.network) == "cross-client-coupling"
    schedules = plan_fleet(clients, network=fleet.network)
    assert schedules == [None, None]
    assert (
        "bypass", {"reason": "cross-client-coupling", "scope": "fleet"}
    ) in _compile_events(tracer)


def test_telemetry_pins_fleet_interpreted():
    """Sampling wants the real event timeline: every client bypasses
    (reason=telemetry), and the scoreboard still matches the compiled
    run on every derived metric."""
    fast, fast_reports = _fleet_reports(True)
    slow, slow_reports = _fleet_reports(None, telemetry_interval=1.0)
    assert slow["compiled_clients"] == 0
    assert "pagein_latency" in slow and slow["pagein_latency"]["count"] > 0
    assert fast_reports == slow_reports


def test_staggered_starts_are_part_of_both_paths():
    """The deterministic client stagger lands in init_time, so compiled
    and interpreted fleets agree on every completion time — but clients
    do not finish at identical instants."""
    _, reports = _fleet_reports(True)
    inits = [r["inittime"] for r in reports]
    assert len(set(inits)) == len(inits)
