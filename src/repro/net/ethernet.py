"""A shared-medium CSMA/CD Ethernet model (frame level).

This is the paper's interconnect: a single 10 Mbit/s coaxial segment shared
by every workstation.  The model captures the three behaviours the
evaluation depends on:

1. **Idle-network page latency** — an 8 KB page fragments into six frames;
   each pays wire time, an interframe gap, and one contention slot, giving
   the ~8–9 ms/page the paper measures (§3.1, §4.4).
2. **Serialisation** — only one station transmits at a time, so concurrent
   transfers (mirroring's two copies, background traffic) queue.
3. **Collision collapse** (§4.6) — when several stations contend, frames
   collide; binary exponential backoff resolves them at the cost of
   dramatically reduced effective bandwidth.

Mechanics: a station that wants to transmit carrier-senses, waits for the
interframe gap, and *begins*.  All stations that begin within one
contention slot of each other collide: the channel carries a jam, everyone
backs off a random number of slots (binary exponential, capped), and
retries.  A sole beginner wins the channel for its frame time.  This is
the standard abstract CSMA/CD model (Tanenbaum §3, which the paper cites
for the collapse behaviour).

**Analytic fast path.**  On an *uncontended* medium the frame-level walk
is pure arithmetic: no collision can occur, so no backoff RNG is drawn,
and every boundary of every frame — gap end, transmit start, transmit
end — is a deterministic float chain.  When a message starts with the
channel idle and no other sender active, the model computes all of those
boundaries up front (in exactly the float order the chained frame-level
timeouts would produce), schedules ONE completion event at the last
frame's end, and parks the sender on it — a *fast hold*.  Wire-
utilisation marks and frame counters are applied lazily, settled
whenever someone reads utilisation or the hold ends.  If a second sender
shows up mid-hold, the hold is **devirtualized**: the exact frame-level
state at that instant (idle-in-gap / contending / transmitting) is
reconstructed from the precomputed boundaries and both senders continue
under the ordinary CSMA/CD machinery, collisions and all.  Results are
byte-identical to frame-level execution; ``--no-analytic-ethernet``
(or ``REPRO_NO_ANALYTIC_ETH=1``) forces the frame-level walk for A/B
checks, and chaos wrappers disable the fast path outright.
"""

from __future__ import annotations

import os
import random
from typing import Dict, List, Optional

from ..config import EthernetSpec
from ..sim import Event, RngRegistry, Simulator, Store
from .base import Message, Network

__all__ = ["EthernetCsmaCd"]

#: Channel states.
_IDLE = "idle"
_CONTEND = "contend"
_BUSY = "busy"
_JAM = "jam"
_FAST = "fast"  # analytic hold in progress (uncontended, precomputed)


class _Station:
    """Per-host transmit queue and its sender process."""

    def __init__(self, net: "EthernetCsmaCd", host: str):
        self.net = net
        self.host = host
        self.queue: Store = Store(net.sim)
        self.rng: random.Random = net.rngs.stream(f"ethernet.{host}")
        self.process = net.sim.process(self._run(), name=f"eth-station:{host}")

    def _run(self):
        net = self.net
        while True:
            message: Message = yield self.queue.get()
            net._active_sends += 1
            try:
                # §2.2: a partition stalls the sender; nothing is dropped.
                yield from net._await_reachable(message.src, message.dst)
                payloads = net._fragments(message.nbytes)
                k = 0
                hold = net._try_fast_hold(self, payloads)
                if hold is not None:
                    # Park on the hold.  It resolves either to
                    # ("done", n) — all frames sent analytically — or,
                    # after a devirtualization, to a precise resume
                    # point: ("frame", k, oc) continues frame k from
                    # its in-progress contention outcome ``oc``;
                    # ("resume", k) retries frame k from carrier sense.
                    resume = yield hold.outcome
                    if resume[0] == "done":
                        k = len(payloads)
                    else:
                        k = resume[1]
                        if resume[0] == "frame":
                            yield from net._send_frame(
                                self, payloads[k], first_outcome=resume[2]
                            )
                            k += 1
                while k < len(payloads):
                    yield from net._send_frame(self, payloads[k])
                    k += 1
                net._deliver(message)
            finally:
                net._active_sends -= 1


class _FastHold:
    """Precomputed frame boundaries for one analytically-served message.

    ``begins[k]``/``starts[k]``/``ends[k]`` are the gap end, transmit
    start, and transmit end of frame ``k`` — the exact instants the
    frame-level walk would reach (same float accumulation order).
    ``flushed``/``busy_open`` track how much of the wire accounting has
    been settled (it is applied lazily, on reads and at the end).
    """

    __slots__ = (
        "station", "begins", "starts", "ends", "frame_times",
        "outcome", "flushed", "busy_open", "active",
    )

    def __init__(self, station, begins, starts, ends, frame_times, outcome):
        self.station = station
        self.begins = begins
        self.starts = starts
        self.ends = ends
        self.frame_times = frame_times
        self.outcome = outcome
        self.flushed = 0
        self.busy_open = False
        self.active = True


def _analytic_default() -> bool:
    return not os.environ.get("REPRO_NO_ANALYTIC_ETH")


class EthernetCsmaCd(Network):
    """Single shared segment with CSMA/CD arbitration.

    ``transfer`` enqueues a message on the source station; the station
    sends the message's frames back-to-back (re-contending for the channel
    per frame, as real Ethernet does).  When the medium is uncontended the
    whole message is served analytically (see the module docstring);
    ``analytic=False`` pins the frame-level walk.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: Optional[EthernetSpec] = None,
        rngs: Optional[RngRegistry] = None,
        analytic: Optional[bool] = None,
    ):
        super().__init__(sim)
        self.spec = spec or EthernetSpec()
        self.rngs = rngs or RngRegistry(seed=0)
        self.analytic = _analytic_default() if analytic is None else bool(analytic)
        self._state = _IDLE
        self._contenders: List[tuple] = []  # (station, frame_time, event)
        self._idle_waiters: List[Event] = []
        self._pending_events: Dict[int, Event] = {}
        self._drops = 0
        self._active_sends = 0
        self._fast_hold: Optional[_FastHold] = None
        # Settle lazy hold accounting before anyone reads utilisation.
        self.stats._pre_read = self._flush_fast_hold

    # ------------------------------------------------------------- interface
    def transfer(self, src: str, dst: str, nbytes: int) -> Event:
        message = Message(src=src, dst=dst, nbytes=nbytes, enqueued_at=self.sim.now)
        self._require(dst)  # destination must exist (else packets vanish)
        station: _Station = self._require(src)
        done = self.sim.event()
        self._pending_events[message.msg_id] = done
        station.queue.put(message)
        return done

    @property
    def collisions(self) -> int:
        """Total collision events observed since construction."""
        return self.stats.counters["collisions"]

    @property
    def drops(self) -> int:
        """Frames abandoned after the attempt limit (sender retries later)."""
        return self._drops

    # -------------------------------------------------------------- internals
    def _make_station(self, host: str) -> _Station:
        return _Station(self, host)

    def _fragments(self, nbytes: int) -> List[int]:
        """Split a message into MTU-sized frame payloads."""
        mtu = self.spec.mtu
        full, rest = divmod(nbytes, mtu)
        sizes = [mtu] * full
        if rest:
            sizes.append(rest)
        return sizes

    def _deliver(self, message: Message) -> None:
        self.stats.delivered(message)
        event = self._pending_events.pop(message.msg_id, None)
        if event is not None and not event.triggered:
            event.succeed(message)

    # -- analytic fast path -------------------------------------------------
    def _try_fast_hold(self, station: _Station, payloads: List[int]) -> Optional[_FastHold]:
        """Serve a whole message analytically if the medium is uncontended.

        Eligibility is strict: fast path enabled, channel idle, nobody
        contending or carrier-sense-parked, and this is the ONLY active
        send (a sender mid-gap or mid-backoff leaves the channel ``idle``
        while still being about to use it — ``_active_sends`` sees it).
        The uncontended walk draws no RNG, so skipping it leaves every
        backoff stream untouched.
        """
        if not self.analytic or not payloads:
            return None
        if self._state != _IDLE or self._active_sends != 1:
            return None
        if self._contenders or self._idle_waiters:
            return None
        spec = self.spec
        gap, slot = spec.interframe_gap, spec.slot_time
        begins: List[float] = []
        starts: List[float] = []
        ends: List[float] = []
        frame_times: List[float] = []
        # Accumulate boundaries in the frame-level float order: each
        # chained timeout wakes at (previous instant + delay), so the
        # association below is exactly what the kernel would compute.
        t = self.sim.now
        for payload in payloads:
            frame_time = spec.frame_time(payload)
            b = t + gap
            s = b + slot
            e = s + frame_time
            begins.append(b)
            starts.append(s)
            ends.append(e)
            frame_times.append(frame_time)
            t = e
        hold = _FastHold(station, begins, starts, ends, frame_times, self.sim.event())
        self._state = _FAST
        self._fast_hold = hold
        self.sim.process(self._complete_fast_hold(hold), name="eth-fast")
        return hold

    def _complete_fast_hold(self, hold: _FastHold):
        """One kernel event at the last frame's end closes the hold."""
        yield self.sim.at(hold.ends[-1])
        if not hold.active:  # devirtualized (or completed) meanwhile
            return
        hold.active = False
        self._fast_hold = None
        hold.outcome.succeed(("done", len(hold.ends)))
        self._flush_hold(hold, self.sim.now)
        self._state = _IDLE

    def _flush_fast_hold(self) -> None:
        """``stats._pre_read`` hook: settle the active hold up to now."""
        hold = self._fast_hold
        if hold is not None:
            self._flush_hold(hold, self.sim.now)

    def _flush_hold(self, hold: _FastHold, now: float) -> None:
        """Apply the wire marks and frame counters the frame-level walk
        would have produced by ``now`` (busy at each begin, idle at each
        end, one ``frames`` count per completed frame), in time order."""
        wire = self.stats.wire
        counters = self.stats.counters
        k = hold.flushed
        ends = hold.ends
        n = len(ends)
        while k < n and ends[k] <= now:
            if not hold.busy_open:
                wire.busy(hold.begins[k])
            wire.idle(ends[k])
            hold.busy_open = False
            counters.add("frames")
            k += 1
        hold.flushed = k
        if k < n and not hold.busy_open and hold.begins[k] <= now:
            wire.busy(hold.begins[k])
            hold.busy_open = True

    def _devirtualize(self) -> None:
        """A second sender arrived mid-hold: reconstruct the exact
        frame-level state at this instant and resume the owner there.

        With boundaries ``b <= s <= e`` per frame, ``now`` falls in one
        of three windows of the first unfinished frame ``k``:

        * ``now >= s_k`` — mid-transmission: channel ``busy``, a resolver
          finishes frame ``k`` at ``e_k`` (case A);
        * ``now >= b_k`` — in the contention slot: channel ``contend``
          with the owner as sole contender so far, resolution at ``s_k``
          (case B) — the newcomer may still join and collide, which is
          precisely why the hold cannot survive;
        * else — in the interframe gap: channel ``idle``; the owner's
          gap expires at ``b_k`` and it begins then, unless the newcomer
          seized the channel first (case C).
        """
        hold = self._fast_hold
        assert hold is not None
        now = self.sim.now
        hold.active = False
        self._fast_hold = None
        self._flush_hold(hold, now)
        k = hold.flushed
        if k >= len(hold.ends):
            # now >= e_last and the completion shim lost the timestep
            # tie: the message is already fully transmitted.
            self._state = _IDLE
            hold.outcome.succeed(("done", k))
            return
        if now >= hold.starts[k]:  # case A
            self._state = _BUSY
            self.sim.process(self._finish_fast_frame(hold, k), name="eth-resolve")
        elif now >= hold.begins[k]:  # case B
            outcome = self.sim.event()
            self._state = _CONTEND
            self._contenders = [(hold.station, hold.frame_times[k], outcome)]
            self.sim.process(self._resolve(until=hold.starts[k]), name="eth-resolve")
            hold.outcome.succeed(("frame", k, outcome))
        else:  # case C
            self._state = _IDLE
            self.sim.process(
                self._begin_fast_frame(hold, k),
                name=f"eth-gap:{hold.station.host}",
            )

    def _finish_fast_frame(self, hold: _FastHold, k: int):
        """Case A resolver: frame ``k`` was mid-air at devirtualization;
        complete it at its precomputed end, exactly as ``_resolve`` would
        (owner first, then channel release, then parked waiters)."""
        yield self.sim.at(hold.ends[k])
        hold.outcome.succeed(("resume", k + 1))
        self.stats.counters.add("frames")
        self._state = _IDLE
        self.stats.wire.idle(self.sim.now)
        waiters, self._idle_waiters = self._idle_waiters, []
        for waiter in waiters:
            waiter.succeed()

    def _begin_fast_frame(self, hold: _FastHold, k: int):
        """Case C shim: stand in for the owner's in-flight gap timeout.
        At the gap's end, re-check the channel exactly as the frame-level
        loop does and either begin frame ``k`` or send the owner back to
        carrier sense."""
        yield self.sim.at(hold.begins[k])
        if self._state in (_IDLE, _CONTEND):
            outcome = self._begin(hold.station, hold.frame_times[k])
            hold.outcome.succeed(("frame", k, outcome))
        else:
            hold.outcome.succeed(("resume", k))

    # -- CSMA/CD state machine ---------------------------------------------
    def _send_frame(self, station: _Station, payload: int, first_outcome: Optional[Event] = None):
        """Generator: contend for the channel and transmit one frame.

        Follows 802.3: carrier sense, interframe gap, transmit; on
        collision, jam and back off ``r`` slots with ``r`` uniform in
        ``[0, 2^min(attempts, 10))``; after ``max_attempts`` the frame is
        counted as dropped and retried from a fresh backoff state (the
        paging layer cannot afford to lose frames; real TCP would
        retransmit with the same net effect).

        ``first_outcome`` resumes a devirtualized fast hold: the frame's
        first attempt is already registered with the channel and this
        generator picks up waiting for its outcome.
        """
        spec = self.spec
        frame_time = spec.frame_time(payload)
        attempts = 0
        while True:
            if first_outcome is not None:
                pending, first_outcome = first_outcome, None
                outcome = yield pending
            else:
                # An analytic hold cannot coexist with a second sender:
                # materialise its exact frame-level state before touching
                # the channel.
                if self._fast_hold is not None:
                    self._devirtualize()
                # Carrier sense: wait for an idle channel.
                while self._state not in (_IDLE, _CONTEND):
                    waiter = self.sim.event()
                    self._idle_waiters.append(waiter)
                    yield waiter
                # Interframe gap, then check the channel is still free.
                yield self.sim.timeout(spec.interframe_gap)
                if self._state not in (_IDLE, _CONTEND):
                    continue
                outcome = yield self._begin(station, frame_time)
            if outcome == "won":
                return
            # Collision: binary exponential backoff.
            attempts += 1
            self.stats.counters.add("station_collisions")
            if attempts >= spec.max_attempts:
                self._drops += 1
                attempts = 0  # excessive collisions: restart backoff state
            exponent = min(attempts, spec.max_backoff_exponent)
            slots = station.rng.randrange(0, 2**exponent)
            yield self.sim.timeout(spec.jam_time + slots * spec.slot_time)

    def _begin(self, station: _Station, frame_time: float) -> Event:
        """Register a transmission attempt in the current contention slot."""
        outcome = self.sim.event()
        if self._state == _IDLE:
            self._state = _CONTEND
            self._contenders = [(station, frame_time, outcome)]
            self.stats.wire.busy(self.sim.now)
            self.sim.process(self._resolve(), name="eth-resolve")
        elif self._state == _CONTEND:
            self._contenders.append((station, frame_time, outcome))
        else:  # pragma: no cover - guarded by the caller's carrier sense
            outcome.succeed("collision")
        return outcome

    def _resolve(self, until: Optional[float] = None):
        """After one contention slot, pick a winner or declare a collision.

        ``until`` replays a devirtualized hold's contention window: the
        slot already began at the hold's precomputed frame begin, so the
        resolver must wake at that exact absolute instant rather than a
        fresh ``now + slot_time``.
        """
        spec = self.spec
        if until is None:
            yield self.sim.timeout(spec.slot_time)
        else:
            yield self.sim.at(until)
        contenders, self._contenders = self._contenders, []
        if len(contenders) == 1:
            _, frame_time, outcome = contenders[0]
            self._state = _BUSY
            yield self.sim.timeout(frame_time)
            outcome.succeed("won")
            self.stats.counters.add("frames")
        else:
            self._state = _JAM
            self.stats.counters.add("collisions")
            yield self.sim.timeout(spec.jam_time)
            for _, _, outcome in contenders:
                outcome.succeed("collision")
        self._state = _IDLE
        self.stats.wire.idle(self.sim.now)
        waiters, self._idle_waiters = self._idle_waiters, []
        for waiter in waiters:
            waiter.succeed()
