"""Shared test configuration.

Two hermeticity guards around :mod:`repro.runner`:

* every test gets a private result-cache directory, so runs never read
  or write the user's real cache (``$REPRO_CACHE_DIR`` /
  ``~/.cache/repro``) and never see entries left by earlier tests;
* the process-wide default runner is reset after each test, so a test
  that drives the CLI (which calls ``configure_default_runner``) cannot
  leak a cache-enabled parallel runner into later tests.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-cache"))


@pytest.fixture(autouse=True)
def _reset_default_runner():
    from repro.runner import runner as runner_module

    yield
    runner_module._default = None
