"""A registry unifying the simulator's ad-hoc measurement objects.

Components measure themselves with :class:`~repro.sim.monitor.Counter`,
:class:`~repro.sim.monitor.Tally` and
:class:`~repro.sim.monitor.UtilizationTracker` instances scattered
through the pager, policies, servers and network.  The registry gives
each one a dotted name in a component namespace (``pager.*``,
``server.<id>.*``, ``net.*``, ``policy.*``) and renders them all into a
single flat, JSON-safe snapshot that rides in
``CompletionReport.meta["metrics"]`` — so cached runner results and
parallel workers carry full telemetry, and :func:`merge_snapshots` can
reassemble exact suite-level statistics from per-run snapshots.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from repro.sim.monitor import Counter, Tally, TimeWeighted, UtilizationTracker

__all__ = ["MetricsRegistry", "merge_snapshots"]


class MetricsRegistry:
    """Named, snapshot-able view over live measurement objects.

    ``attach`` existing instruments (they keep being updated by their
    owners; the registry only reads them at snapshot time) and
    ``gauge`` computed values.  Snapshots are flat ``{name: value}``
    dicts with deterministic key order; tallies expand into a
    ``name.{count,total,mean,m2,stddev,min,max}`` sub-tree so they can
    be rebuilt and merged exactly (see :func:`merge_snapshots`).
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}
        self._gauges: Dict[str, Callable[[], float]] = {}

    def attach(self, name: str, instrument: Any) -> Any:
        """Register a live instrument under ``name``; returns it.

        Accepts ``Counter``, ``Tally``, ``UtilizationTracker``,
        ``TimeWeighted``, or any object with an ``as_dict()`` method.
        """
        if name in self._instruments or name in self._gauges:
            raise ValueError(f"metric name already registered: {name}")
        self._instruments[name] = instrument
        return instrument

    def gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register a computed metric, evaluated at snapshot time."""
        if name in self._instruments or name in self._gauges:
            raise ValueError(f"metric name already registered: {name}")
        self._gauges[name] = fn

    def names(self) -> List[str]:
        """Every registered metric name, sorted."""
        return sorted(list(self._instruments) + list(self._gauges))

    def instruments(self) -> Dict[str, Any]:
        """The live instrument objects by name (no gauges).

        The effect-capsule recorder (``repro.compile.effects``) uses this
        to capture and restore instrument state wholesale.
        """
        return dict(self._instruments)

    def snapshot(self) -> Dict[str, Any]:
        """Flat, JSON-safe, deterministically ordered view of everything."""
        flat: Dict[str, Any] = {}
        for name, instrument in self._instruments.items():
            if isinstance(instrument, Counter):
                for key, value in instrument.as_dict().items():
                    flat[f"{name}.{key}"] = value
            elif isinstance(instrument, Tally):
                for key, value in instrument.as_dict().items():
                    flat[f"{name}.{key}"] = value
                # Mark the sub-tree so merge_snapshots can find tallies.
                flat[f"{name}.__tally__"] = True
            elif isinstance(instrument, (TimeWeighted, UtilizationTracker)):
                # Utilisations need "now"; owners register these as
                # gauges instead, but accept the raw object defensively.
                flat[name] = None
            elif hasattr(instrument, "as_dict"):
                for key, value in instrument.as_dict().items():
                    flat[f"{name}.{key}"] = value
            else:
                flat[name] = instrument
        for name, fn in self._gauges.items():
            flat[name] = fn()
        return {key: flat[key] for key in sorted(flat)}


_TALLY_FIELDS = ("count", "total", "mean", "m2", "stddev", "min", "max")


def _tally_prefixes(snapshot: Dict[str, Any]) -> List[str]:
    return [
        key[: -len(".__tally__")]
        for key in snapshot
        if key.endswith(".__tally__")
    ]


def merge_snapshots(snapshots: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Combine per-run metric snapshots into suite-level statistics.

    Integer metrics (counters) sum; ``*.__tally__`` sub-trees are
    rebuilt as :class:`~repro.sim.monitor.Tally` objects and folded
    together with :meth:`Tally.merge` (Chan's parallel Welford), so the
    merged mean and variance are exactly what one combined stream would
    have produced.  Float gauges (utilisations and other instantaneous
    readings, which do not sum meaningfully across runs) and non-numeric
    values keep the first run's value.
    """
    if not snapshots:
        return {}
    merged: Dict[str, Any] = {}
    tallies: Dict[str, Tally] = {}
    tally_keys: set = set()
    for snapshot in snapshots:
        for prefix in _tally_prefixes(snapshot):
            payload = {field: snapshot.get(f"{prefix}.{field}") for field in _TALLY_FIELDS}
            tally = tallies.get(prefix)
            if tally is None:
                tallies[prefix] = Tally.from_dict(payload)
            else:
                tally.merge(Tally.from_dict(payload))
            tally_keys.update(f"{prefix}.{field}" for field in _TALLY_FIELDS)
            tally_keys.add(f"{prefix}.__tally__")
    for snapshot in snapshots:
        for key, value in snapshot.items():
            if key in tally_keys:
                continue
            if key not in merged:
                merged[key] = value
            elif (
                isinstance(value, int)
                and not isinstance(value, bool)
                and isinstance(merged[key], int)
                and not isinstance(merged[key], bool)
            ):
                merged[key] = merged[key] + value
    for prefix, tally in tallies.items():
        for field, value in tally.as_dict().items():
            merged[f"{prefix}.{field}"] = value
        merged[f"{prefix}.__tally__"] = True
    return {key: merged[key] for key in sorted(merged)}
