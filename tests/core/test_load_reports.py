"""Periodic load-report tests (§3.2)."""

import pytest

from repro.core import build_cluster
from repro.core.load_reports import ClusterView, LoadReporter
from repro.vm import page_bytes

PAGE = 8192


def make_reporting_cluster(interval=2.0):
    cluster = build_cluster(
        policy="no-reliability", n_servers=2, content_mode=True,
        server_capacity_pages=64,
    )
    view = ClusterView(cluster.sim)
    reporters = [
        LoadReporter(server, "client", view, interval=interval)
        for server in cluster.servers
    ]
    return cluster, view, reporters


def test_no_view_before_first_report():
    cluster, view, _ = make_reporting_cluster(interval=5.0)
    assert view.free_pages("server-0") is None
    assert view.age("server-0") == float("inf")


def test_reports_arrive_periodically():
    cluster, view, reporters = make_reporting_cluster(interval=2.0)
    cluster.sim.run(until=11.0)
    assert all(r.reports_sent == 5 for r in reporters)
    assert view.free_pages("server-0") == 64
    assert view.age("server-0") <= 2.0 + 0.01


def test_view_is_stale_between_reports():
    """The client's picture lags reality by up to one interval."""
    cluster, view, _ = make_reporting_cluster(interval=5.0)
    sim, pager = cluster.sim, cluster.pager
    sim.run(until=5.5)  # first report: both servers empty
    before = view.free_pages("server-0")

    def flow():
        for page_id in range(16):
            yield from pager.pageout(page_id, page_bytes(page_id, 1, PAGE))

    sim.run_until_complete(sim.process(flow()))
    # Reality changed; the view hasn't (next report at t=10).
    assert cluster.servers[0].free_pages < 64
    assert view.free_pages("server-0") == before
    sim.run(until=10.5)
    assert view.free_pages("server-0") == cluster.servers[0].free_pages


def test_crashed_server_stops_reporting():
    cluster, view, reporters = make_reporting_cluster(interval=2.0)
    cluster.sim.run(until=3.0)
    sent_before = reporters[0].reports_sent
    cluster.servers[0].crash()
    cluster.sim.run(until=9.0)
    assert reporters[0].reports_sent == sent_before
    # Its information goes stale — how the client *notices* silence.
    assert view.age("server-0") > 2.0


def test_best_server_by_reported_view():
    cluster, view, _ = make_reporting_cluster(interval=1.0)
    sim, pager = cluster.sim, cluster.pager

    def flow():
        for page_id in range(20):  # server-0 gets 10, server-1 gets 10
            yield from pager.pageout(page_id, page_bytes(page_id, 1, PAGE))
        for page_id in range(20, 40):  # fill server-0 further
            cluster.servers[0]._store[("fill", page_id)] = None

    sim.run_until_complete(sim.process(flow()))
    sim.run(until=sim.now + 1.5)
    assert view.best_server_name() == "server-1"


def test_advising_server_excluded_from_best():
    cluster, view, _ = make_reporting_cluster(interval=1.0)
    cluster.servers[0].advising = True
    cluster.sim.run(until=1.5)
    assert view.best_server_name() == "server-1"


def test_reporter_stop():
    cluster, view, reporters = make_reporting_cluster(interval=1.0)
    cluster.sim.run(until=2.5)
    reporters[0].stop()
    sent = reporters[0].reports_sent
    cluster.sim.run(until=6.0)
    assert reporters[0].reports_sent == sent


def test_interval_validation():
    cluster, view, _ = make_reporting_cluster()
    with pytest.raises(ValueError):
        LoadReporter(cluster.servers[0], "client", view, interval=0)
