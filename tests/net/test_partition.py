"""Network-partition behaviour (§2.2): stall, don't crash."""

import pytest

from repro.config import PAGE_SIZE
from repro.net import EthernetCsmaCd, SwitchedNetwork, TokenRing
from repro.sim import RngRegistry, Simulator


def each_network(sim):
    yield EthernetCsmaCd(sim, rngs=RngRegistry(seed=1))
    yield SwitchedNetwork(sim)
    yield TokenRing(sim)


@pytest.mark.parametrize("kind", ["ethernet", "switched", "token-ring"])
def test_transfer_stalls_across_partition_and_resumes_on_heal(kind):
    sim = Simulator()
    net = {
        "ethernet": lambda: EthernetCsmaCd(sim, rngs=RngRegistry(seed=1)),
        "switched": lambda: SwitchedNetwork(sim),
        "token-ring": lambda: TokenRing(sim),
    }[kind]()
    net.attach("client")
    net.attach("server")
    done_at = []

    def sender(sim, net):
        yield net.transfer("client", "server", PAGE_SIZE)
        done_at.append(sim.now)

    net.partition({"client"})  # client cut off from the server
    sim.process(sender(sim, net))
    sim.run(until=5.0)
    assert done_at == [], f"{kind}: transfer crossed a partition"

    def healer(sim, net):
        yield sim.timeout(5.0)  # heal at t=10
        net.heal()

    sim.process(healer(sim, net))
    sim.run(until=60.0)
    assert len(done_at) == 1
    assert done_at[0] >= 10.0


def test_partition_within_segment_unaffected():
    sim = Simulator()
    net = SwitchedNetwork(sim)
    for host in ("a", "b", "c"):
        net.attach(host)
    net.partition({"a", "b"})
    done = []

    def sender(sim, net):
        yield net.transfer("a", "b", 1000)  # same segment: fine
        done.append(sim.now)

    sim.run_until_complete(sim.process(sender(sim, net)))
    assert len(done) == 1


def test_is_partitioned_flag_and_heal():
    sim = Simulator()
    net = SwitchedNetwork(sim)
    assert not net.is_partitioned
    net.partition({"x"})
    assert net.is_partitioned
    net.heal()
    assert not net.is_partitioned


def test_client_blocks_through_partition_then_completes():
    """End to end: the paging client stalls during a partition (it does
    NOT crash or lose data) and finishes after the network recovers."""
    from repro.core import build_cluster
    from repro.vm import page_bytes

    cluster = build_cluster(
        policy="no-reliability", n_servers=2, content_mode=True
    )
    sim, pager, net = cluster.sim, cluster.pager, cluster.network
    progress = []

    def flow():
        yield from pager.pageout(1, page_bytes(1, 1, PAGE_SIZE))
        net.partition({"client"})
        progress.append(("partitioned", sim.now))
        got = yield from pager.pagein(1)  # must stall, then succeed
        progress.append(("pagein", sim.now))
        assert got == page_bytes(1, 1, PAGE_SIZE)

    proc = sim.process(flow())
    sim.run(until=30.0)
    assert progress[-1][0] == "partitioned"  # still blocked
    net.heal()
    sim.run_until_complete(proc)
    assert progress[-1][0] == "pagein"
    assert progress[-1][1] >= 30.0
