"""Configuration for the pipelined paging datapath.

A :class:`PipelineSpec` switches the
:class:`~repro.core.client.RemoteMemoryPager` from the paper's
synchronous one-RPC-per-page datapath to a pipelined one (DESIGN.md
"Pipelined datapath"):

* ``window > 1`` enables the **write-behind pageout queue**: pageouts
  complete at enqueue time, a single drainer transmits them in clustered
  batches of up to ``window`` pages, and a page re-dirtied while queued
  is coalesced in place (one transfer instead of two).
* ``prefetch > 0`` enables the **adaptive prefetcher**: a Leap-style
  majority vote over the recent fault deltas predicts the next pages and
  pulls them into a bounded client-side cache ahead of the faults.

The default spec (``window=1, prefetch=0``) is *disabled*: the pager
keeps the exact synchronous code path, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PipelineSpec"]


@dataclass(frozen=True)
class PipelineSpec:
    """Knobs of the pipelined datapath (all plain data, cache-friendly)."""

    #: Maximum pages per clustered drain batch; 1 = synchronous legacy path.
    window: int = 1
    #: Prefetch depth per detected trend; 0 = prefetcher off.
    prefetch: int = 0
    #: Queued-but-untransmitted pageouts before producers block
    #: (defaults to ``8 * window`` when zero).
    backlog: int = 0
    #: Bounded prefetch-cache capacity, in pages.
    cache_pages: int = 64
    #: Fault-delta history the trend detector votes over.
    history: int = 8

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1: {self.window}")
        if self.prefetch < 0:
            raise ValueError(f"prefetch must be >= 0: {self.prefetch}")
        if self.backlog < 0:
            raise ValueError(f"backlog must be >= 0: {self.backlog}")
        if self.cache_pages < 1:
            raise ValueError(f"cache_pages must be >= 1: {self.cache_pages}")
        if self.history < 2:
            raise ValueError(f"history must be >= 2: {self.history}")

    @property
    def enabled(self) -> bool:
        """Does this spec change anything at all?"""
        return self.window > 1 or self.prefetch > 0

    @property
    def write_behind(self) -> bool:
        """Is the write-behind queue engaged (vs synchronous pageouts)?"""
        return self.window > 1

    @property
    def max_backlog(self) -> int:
        return self.backlog if self.backlog else 8 * self.window
