"""Whole-campaign invariants: the ISSUE 3 acceptance criteria.

Every reliable policy must come through the standard campaign (one
server crash + 1% steady message loss + one at-rest corruption burst)
with zero pages lost or corrupted, while NO RELIABILITY is reported
lossy.  Fault schedules must be identical across serial, parallel and
cached execution.
"""

import json

import pytest

from repro.config import MachineSpec
from repro.core import build_cluster
from repro.errors import ReproError
from repro.experiments import run_resilience
from repro.faults import ChaosController, FaultPlan, check_page_integrity
from repro.runner import ExperimentRunner, RunSpec
from repro.workloads import SequentialScan

RELIABLE = ["mirroring", "parity", "parity-logging", "write-through"]

#: Tiny machine -> the scan pages constantly; the run lasts ~20
#: simulated seconds, so every standard_campaign event lands inside it.
SMALL = MachineSpec(
    name="test-small",
    ram_bytes=2 * 1024 * 1024,
    kernel_resident_bytes=1 * 1024 * 1024,
    page_size=8192,
)

BUILD = dict(
    machine_spec=SMALL,
    n_servers=4,
    content_mode=True,
    seed=3,
    server_capacity_pages=600,
)


def run_campaign(policy, plan):
    cluster = build_cluster(policy=policy, **BUILD)
    controller = ChaosController(cluster, plan)
    error = None
    try:
        cluster.run(SequentialScan(n_pages=400, passes=3, write=True))
    except ReproError as exc:
        error = exc
    return cluster, controller, error


@pytest.mark.parametrize("policy", RELIABLE)
def test_reliable_policy_survives_standard_campaign(policy):
    cluster, controller, error = run_campaign(policy, FaultPlan.standard_campaign())
    assert error is None
    report = check_page_integrity(cluster)
    assert report.clean, f"{policy}: {report.verdict} lost={report.lost}"
    assert cluster.pager.counters["recoveries"] >= 1
    kinds = [kind for _, kind, _ in controller.fault_log]
    assert "crash" in kinds and "corrupt_burst" in kinds


def test_no_reliability_is_lossy_under_standard_campaign():
    cluster, controller, error = run_campaign(
        "no-reliability", FaultPlan.standard_campaign()
    )
    # The crash either killed the workload outright or the checker
    # finds the crashed server's pages unrecoverable — both are loss.
    report = check_page_integrity(cluster)
    assert error is not None or not report.clean
    assert report.lost
    assert report.verdict.startswith("LOSSY")


def test_fault_trace_identical_serial_parallel_cached(tmp_path):
    """The campaign schedule is data, not timing: serial, worker-process
    and cache-replayed runs return the identical fault trace."""
    spec = RunSpec.make(
        "sequential-scan",
        "mirroring",
        workload_kwargs=dict(n_pages=400, passes=3, write=True),
        overrides=BUILD,
        hook="chaos",
        hook_kwargs=FaultPlan.standard_campaign().as_kwargs(),
        extract=("resilience",),
    )
    serial = ExperimentRunner(jobs=1).run([spec])[0]
    parallel = ExperimentRunner(jobs=2).run([spec])[0]
    cache_dir = tmp_path / "cache"
    cold = ExperimentRunner(jobs=1, use_cache=True, cache_dir=cache_dir).run([spec])[0]
    warm = ExperimentRunner(jobs=1, use_cache=True, cache_dir=cache_dir).run([spec])[0]
    assert not cold.cached and warm.cached

    def trace(result):
        return json.dumps(result.extras["fault_trace"], sort_keys=True)

    assert trace(serial) == trace(parallel) == trace(cold) == trace(warm)
    assert serial.extras["verdict"] == "CLEAN"
    assert serial.report.etime == parallel.report.etime == warm.report.etime


def test_run_resilience_acceptance_matrix():
    """The experiment front-end reports the paper's reliability taxonomy."""
    results = run_resilience(
        policies=("no-reliability", "mirroring"),
        levels=("clean", "light"),
        runner=ExperimentRunner(jobs=1),
    )
    for policy in ("no-reliability", "mirroring"):
        assert results["clean"][policy]["extras"]["verdict"] == "CLEAN"
        assert results["clean"][policy]["error"] is None
    assert results["light"]["mirroring"]["extras"]["verdict"] == "CLEAN"
    assert results["light"]["mirroring"]["extras"]["recoveries"] == 1
    lossy = results["light"]["no-reliability"]
    assert lossy["error"] is not None
    assert lossy["extras"]["verdict"].startswith("LOSSY")
    assert lossy["extras"]["integrity"]["lost"]


def test_heavy_flap_rearms_watchdog():
    """A flapping server is declared, recovered, and re-armed — not
    double-recovered and not fatal."""
    plan = FaultPlan(
        drop_rate=0.01,
        watchdog_interval=0.5,
        events=(("flap", 4.0, 2, 2.5),),
    )
    cluster, controller, error = run_campaign("parity", plan)
    assert error is None
    kinds = [kind for _, kind, _ in controller.fault_log]
    assert kinds.count("flap_down") == 1 and kinds.count("flap_up") == 1
    assert check_page_integrity(cluster).clean


@pytest.mark.parametrize("pipelined", [False, True], ids=["sync", "pipelined"])
def test_heavy_campaign_clean_on_both_datapaths(pipelined):
    """The full heavy campaign — steady loss/dup/delay, a loss burst, a
    crash, a watchdog-visible flap, and a final rot burst — leaves every
    redundant policy CLEAN on the synchronous and the write-behind
    datapath alike, while NO RELIABILITY stays lossy.  Pins the two
    composed-fault windows this campaign once exposed: a crash inside a
    first-placement pageout, and a demand read racing the recovery of a
    rebooted (amnesiac) server."""
    results = run_resilience(
        levels=("heavy",),
        runner=ExperimentRunner(jobs=2, use_cache=False),
        pipelined=pipelined,
    )
    for policy in RELIABLE:
        cell = results["heavy"][policy]
        assert cell["error"] is None, f"{policy}: {cell['error']}"
        assert cell["extras"]["verdict"] == "CLEAN"
    lossy = results["heavy"]["no-reliability"]
    assert lossy["extras"]["verdict"].startswith("LOSSY")
