"""A registry unifying the simulator's ad-hoc measurement objects.

Components measure themselves with :class:`~repro.sim.monitor.Counter`,
:class:`~repro.sim.monitor.Tally` and
:class:`~repro.sim.monitor.UtilizationTracker` instances scattered
through the pager, policies, servers and network.  The registry gives
each one a dotted name in a component namespace (``pager.*``,
``server.<id>.*``, ``net.*``, ``policy.*``) and renders them all into a
single flat, JSON-safe snapshot that rides in
``CompletionReport.meta["metrics"]`` — so cached runner results and
parallel workers carry full telemetry, and :func:`merge_snapshots` can
reassemble exact suite-level statistics from per-run snapshots.

Telemetry instruments (:class:`~repro.obs.telemetry.LogHistogram`
latency histograms and :class:`~repro.obs.telemetry.TimeSeries` ring
buffers) snapshot the same way, behind ``*.__hist__`` / ``*.__series__``
markers: histograms merge exactly (bucket counts sum), while series are
per-run timelines — a merged suite keeps the first run's series, the
same first-value rule float gauges follow.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from repro.obs.telemetry import LogHistogram, TimeSeries
from repro.sim.monitor import Counter, Tally, TimeWeighted, UtilizationTracker

__all__ = ["MetricsRegistry", "merge_snapshots"]


class MetricsRegistry:
    """Named, snapshot-able view over live measurement objects.

    ``attach`` existing instruments (they keep being updated by their
    owners; the registry only reads them at snapshot time) and
    ``gauge`` computed values.  Snapshots are flat ``{name: value}``
    dicts with deterministic key order; tallies expand into a
    ``name.{count,total,mean,m2,stddev,min,max}`` sub-tree so they can
    be rebuilt and merged exactly (see :func:`merge_snapshots`).
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}
        self._gauges: Dict[str, Callable[[], float]] = {}

    def attach(self, name: str, instrument: Any) -> Any:
        """Register a live instrument under ``name``; returns it.

        Accepts ``Counter``, ``Tally``, ``LogHistogram``, ``TimeSeries``,
        ``UtilizationTracker``, ``TimeWeighted``, or any object with an
        ``as_dict()`` method.
        """
        if name in self._instruments or name in self._gauges:
            raise ValueError(f"metric name already registered: {name}")
        self._instruments[name] = instrument
        return instrument

    def gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register a computed metric, evaluated at snapshot time."""
        if name in self._instruments or name in self._gauges:
            raise ValueError(f"metric name already registered: {name}")
        self._gauges[name] = fn

    def names(self) -> List[str]:
        """Every registered metric name, sorted."""
        return sorted(list(self._instruments) + list(self._gauges))

    def instruments(self) -> Dict[str, Any]:
        """The live instrument objects by name (no gauges).

        The effect-capsule recorder (``repro.compile.effects``) uses this
        to capture and restore instrument state wholesale.
        """
        return dict(self._instruments)

    def snapshot(self) -> Dict[str, Any]:
        """Flat, JSON-safe, deterministically ordered view of everything."""
        flat: Dict[str, Any] = {}
        for name, instrument in self._instruments.items():
            if isinstance(instrument, Counter):
                for key, value in instrument.as_dict().items():
                    flat[f"{name}.{key}"] = value
            elif isinstance(instrument, Tally):
                for key, value in instrument.as_dict().items():
                    flat[f"{name}.{key}"] = value
                # Mark the sub-tree so merge_snapshots can find tallies.
                flat[f"{name}.__tally__"] = True
            elif isinstance(instrument, LogHistogram):
                for key, value in instrument.as_dict().items():
                    flat[f"{name}.{key}"] = value
                flat[f"{name}.__hist__"] = True
            elif isinstance(instrument, TimeSeries):
                for key, value in instrument.as_dict().items():
                    flat[f"{name}.{key}"] = value
                flat[f"{name}.__series__"] = True
            elif isinstance(instrument, (TimeWeighted, UtilizationTracker)):
                # Utilisations need "now"; owners register these as
                # gauges instead, but accept the raw object defensively.
                flat[name] = None
            elif hasattr(instrument, "as_dict"):
                for key, value in instrument.as_dict().items():
                    flat[f"{name}.{key}"] = value
            else:
                flat[name] = instrument
        for name, fn in self._gauges.items():
            flat[name] = fn()
        return {key: flat[key] for key in sorted(flat)}


_TALLY_FIELDS = ("count", "total", "mean", "m2", "stddev", "min", "max")
_HIST_FIELDS = ("count", "zeros", "growth", "buckets", "p50", "p95", "p99", "p999")

#: Marker suffix -> instrument kind, for structured sub-trees in
#: snapshots.  Anything unmarked is a plain scalar (counter key, float
#: gauge, or string).
_MARKERS: Tuple[Tuple[str, str], ...] = (
    (".__tally__", "tally"),
    (".__hist__", "histogram"),
    (".__series__", "series"),
)

_SERIES_FIELDS = ("capacity", "dropped", "times", "values")

#: The structured sub-keys each instrument kind owns in a snapshot — a
#: plain value under one of these keys in an unmarked snapshot collides
#: with the structured merge and must fail loudly.
_KIND_FIELDS = {
    "tally": _TALLY_FIELDS,
    "histogram": _HIST_FIELDS,
    "series": _SERIES_FIELDS,
}


def _marked_prefixes(snapshot: Dict[str, Any]) -> Dict[str, str]:
    """Map structured-instrument prefix -> kind for one snapshot."""
    kinds: Dict[str, str] = {}
    for key in snapshot:
        for marker, kind in _MARKERS:
            if key.endswith(marker):
                prefix = key[: -len(marker)]
                if prefix in kinds:
                    raise ValueError(
                        f"snapshot marks {prefix!r} as both "
                        f"{kinds[prefix]} and {kind}"
                    )
                kinds[prefix] = kind
    return kinds


def _check_kinds(snapshots: List[Dict[str, Any]]) -> Dict[str, str]:
    """Instrument kinds across all snapshots; fail loudly on conflict.

    Two workers disagreeing on what lives under a dotted name (a tally
    here, a histogram or plain counter there) means their runs were not
    measuring the same thing — silently merging would corrupt the
    suite-level statistics, so this raises instead.
    """
    kinds: Dict[str, str] = {}
    for index, snapshot in enumerate(snapshots):
        for prefix, kind in _marked_prefixes(snapshot).items():
            seen = kinds.get(prefix)
            if seen is not None and seen != kind:
                raise ValueError(
                    f"instrument type conflict for {prefix!r}: "
                    f"{seen} in one snapshot, {kind} in snapshot {index}"
                )
            kinds[prefix] = kind
    for index, snapshot in enumerate(snapshots):
        marked = _marked_prefixes(snapshot)
        for prefix, kind in kinds.items():
            if prefix in marked:
                continue
            clashing = [
                key
                for key in [prefix]
                + [f"{prefix}.{field}" for field in _KIND_FIELDS[kind]]
                if key in snapshot
            ]
            if clashing:
                raise ValueError(
                    f"instrument type conflict for {prefix!r}: "
                    f"{kind} in one snapshot, plain value(s) "
                    f"{clashing} in snapshot {index}"
                )
    return kinds


def merge_snapshots(snapshots: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Combine per-run metric snapshots into suite-level statistics.

    Integer metrics (counters) sum; ``*.__tally__`` sub-trees are
    rebuilt as :class:`~repro.sim.monitor.Tally` objects and folded
    together with :meth:`Tally.merge` (Chan's parallel Welford), so the
    merged mean and variance are exactly what one combined stream would
    have produced.  ``*.__hist__`` sub-trees are rebuilt as
    :class:`~repro.obs.telemetry.LogHistogram` objects and merged by
    summing bucket counts (percentiles recomputed from the merged
    buckets).  ``*.__series__`` timelines keep the first run's samples
    (per-run timelines do not concatenate meaningfully across seeds).
    Float gauges (utilisations and other instantaneous readings, which
    do not sum meaningfully across runs) and non-numeric values keep
    the first run's value.

    Raises :class:`ValueError` when two snapshots disagree on the
    instrument type under the same dotted name — a silent drop here
    would corrupt suite statistics.
    """
    if not snapshots:
        return {}
    kinds = _check_kinds(snapshots)
    merged: Dict[str, Any] = {}
    tallies: Dict[str, Tally] = {}
    hists: Dict[str, LogHistogram] = {}
    structured_keys: set = set()
    for snapshot in snapshots:
        for prefix, kind in _marked_prefixes(snapshot).items():
            if kind == "tally":
                payload = {
                    field: snapshot.get(f"{prefix}.{field}") for field in _TALLY_FIELDS
                }
                tally = tallies.get(prefix)
                if tally is None:
                    tallies[prefix] = Tally.from_dict(payload)
                else:
                    tally.merge(Tally.from_dict(payload))
                structured_keys.update(f"{prefix}.{field}" for field in _TALLY_FIELDS)
                structured_keys.add(f"{prefix}.__tally__")
            elif kind == "histogram":
                payload = {
                    "count": snapshot.get(f"{prefix}.count", 0),
                    "zeros": snapshot.get(f"{prefix}.zeros", 0),
                    "growth": snapshot.get(f"{prefix}.growth"),
                    "buckets": snapshot.get(f"{prefix}.buckets") or {},
                }
                hist = hists.get(prefix)
                if hist is None:
                    hists[prefix] = LogHistogram.from_dict(payload)
                else:
                    hist.merge(LogHistogram.from_dict(payload))
                structured_keys.update(
                    f"{prefix}.{field}" for field in _HIST_FIELDS
                )
                structured_keys.add(f"{prefix}.__hist__")
            else:  # series: first run's timeline wins, like float gauges
                for field in _SERIES_FIELDS:
                    key = f"{prefix}.{field}"
                    structured_keys.add(key)
                    if key in snapshot and key not in merged:
                        merged[key] = snapshot[key]
                structured_keys.add(f"{prefix}.__series__")
                merged[f"{prefix}.__series__"] = True
    for snapshot in snapshots:
        for key, value in snapshot.items():
            if key in structured_keys:
                continue
            if key not in merged:
                merged[key] = value
            elif (
                isinstance(value, int)
                and not isinstance(value, bool)
                and isinstance(merged[key], int)
                and not isinstance(merged[key], bool)
            ):
                merged[key] = merged[key] + value
    for prefix, tally in tallies.items():
        for field, value in tally.as_dict().items():
            merged[f"{prefix}.{field}"] = value
        merged[f"{prefix}.__tally__"] = True
    for prefix, hist in hists.items():
        for field, value in hist.as_dict().items():
            merged[f"{prefix}.{field}"] = value
        merged[f"{prefix}.__hist__"] = True
    return {key: merged[key] for key in sorted(merged)}
