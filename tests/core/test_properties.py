"""Property-based tests of the reliability policies.

The paper's correctness claim is an invariant, so we test it as one:
*after any sequence of pageouts, repageouts, pageins, releases, and at
most one server crash, every live page's latest contents are
retrievable byte-for-byte.*  Hypothesis drives randomised schedules
through all three redundancy schemes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_cluster
from repro.vm import page_bytes

PAGE = 8192
N_PAGES = 12


@st.composite
def schedules(draw):
    """A schedule: ops over a small page set, plus a crash position."""
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["pageout", "pagein", "release"]),
                st.integers(0, N_PAGES - 1),
            ),
            min_size=4,
            max_size=40,
        )
    )
    crash_at = draw(st.integers(0, len(ops)))
    crash_server = draw(st.integers(0, 3))
    return ops, crash_at, crash_server


def run_schedule(policy, ops, crash_at, crash_server):
    kwargs = dict(n_servers=4, content_mode=True, server_capacity_pages=128)
    if policy == "parity-logging":
        kwargs["overflow_fraction"] = 0.50
    cluster = build_cluster(policy=policy, **kwargs)
    sim, pager = cluster.sim, cluster.pager
    versions = {}

    def drive(gen):
        def body(gen):
            result = yield from gen
            return result

        return sim.run_until_complete(sim.process(body(gen)))

    for index, (op, page_id) in enumerate(ops):
        if index == crash_at:
            cluster.servers[crash_server].crash()
        if op == "pageout":
            versions[page_id] = versions.get(page_id, 0) + 1
            drive(pager.pageout(page_id, page_bytes(page_id, versions[page_id], PAGE)))
        elif op == "pagein":
            if page_id in versions:
                got = drive(pager.pagein(page_id))
                assert got == page_bytes(page_id, versions[page_id], PAGE)
        else:  # release
            pager.release(page_id)
            versions.pop(page_id, None)
    if crash_at >= len(ops):
        cluster.servers[crash_server].crash()
    # Final invariant: every live page retrievable at its last version.
    for page_id, version in versions.items():
        got = drive(pager.pagein(page_id))
        assert got == page_bytes(page_id, version, PAGE), (
            f"{policy}: page {page_id} v{version} corrupted after schedule"
        )
    return cluster


@pytest.mark.parametrize("policy", ["mirroring", "parity-logging", "write-through"])
@settings(max_examples=25, deadline=None)
@given(schedule=schedules())
def test_single_crash_never_loses_data(policy, schedule):
    ops, crash_at, crash_server = schedule
    run_schedule(policy, ops, crash_at, crash_server)


@settings(max_examples=25, deadline=None)
@given(schedule=schedules())
def test_parity_logging_group_invariants(schedule):
    """Structural invariants hold after any schedule:

    * every group has at most one member per server;
    * sealed groups smaller than S only arise from recovery cancellation;
    * every active location's key is actually held by its server;
    * the client-side buffer exists exactly for unsealed groups.
    """
    ops, crash_at, crash_server = schedule
    cluster = run_schedule("parity-logging", ops, crash_at, crash_server)
    policy = cluster.policy
    for group in policy._groups.values():
        names = [m.server.name for m in group.members]
        assert len(names) == len(set(names))
        if group.sealed:
            assert group.buffer is None
        else:
            assert group.buffer is not None
    for page_id, member in policy._location.items():
        assert member.active
        assert member.server.holds(member.key), (
            f"location map points at missing key {member.key}"
        )


@settings(max_examples=20, deadline=None)
@given(
    pageouts=st.lists(st.integers(0, 7), min_size=1, max_size=30),
    n_servers=st.integers(2, 5),
)
def test_parity_logging_transfer_arithmetic(pageouts, n_servers):
    """Transfers = pageouts + sealed groups, exactly (no crash)."""
    cluster = build_cluster(
        policy="parity-logging",
        n_servers=n_servers,
        content_mode=True,
        server_capacity_pages=256,
        overflow_fraction=1.0,
    )
    sim, pager = cluster.sim, cluster.pager
    versions = {}

    def drive(gen):
        def body(gen):
            yield from gen

        sim.run_until_complete(sim.process(body(gen)))

    for page_id in pageouts:
        versions[page_id] = versions.get(page_id, 0) + 1
        drive(pager.pageout(page_id, page_bytes(page_id, versions[page_id], PAGE)))
    sealed = len(pageouts) // n_servers
    assert cluster.policy.transfers == len(pageouts) + sealed
