"""A full-duplex switched network (the paper's FDDI/ATM stand-in).

Figure 4 of the paper extrapolates to "a network that provides ten times
more bandwidth than the Ethernet".  This model lets us *simulate* such a
network directly (and validate the paper's analytic extrapolation against
it): every host has a dedicated full-duplex link to a non-blocking switch,
so there are no collisions and concurrent transfers between disjoint host
pairs proceed in parallel.  A transfer is store-and-forward at message
granularity: it serialises on the sender's uplink, pays a per-hop switch
latency, then serialises on the receiver's downlink.
"""

from __future__ import annotations

from typing import Optional

from ..config import SwitchedNetworkSpec
from ..sim import Event, Resource, Simulator
from .base import Message, Network

__all__ = ["SwitchedNetwork"]


class _Port:
    """One host's full-duplex switch port: independent tx and rx sides.

    ``bandwidth`` may differ per host — §5's *heterogeneous networks*,
    where "the time it takes to transfer a page may not be identical for
    each server" and the memory hierarchy grows extra levels.
    """

    def __init__(self, sim: Simulator, bandwidth: Optional[float] = None):
        self.tx = Resource(sim, capacity=1)
        self.rx = Resource(sim, capacity=1)
        self.bandwidth = bandwidth


class SwitchedNetwork(Network):
    """Non-blocking switch with per-host full-duplex links."""

    def __init__(self, sim: Simulator, spec: Optional[SwitchedNetworkSpec] = None):
        super().__init__(sim)
        self.spec = spec or SwitchedNetworkSpec()

    def attach(self, host: str, bandwidth: Optional[float] = None) -> None:
        """Register ``host``; ``bandwidth`` overrides the network default
        for this host's link (heterogeneous clusters, §5)."""
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth}")
        if host not in self._hosts:
            self._hosts[host] = _Port(self.sim, bandwidth)
        elif bandwidth is not None:
            self._hosts[host].bandwidth = bandwidth

    def host_bandwidth(self, host: str) -> float:
        """The effective link rate of ``host`` (bytes/second)."""
        port: _Port = self._require(host)
        return port.bandwidth if port.bandwidth is not None else self.spec.bandwidth

    def transfer(self, src: str, dst: str, nbytes: int) -> Event:
        message = Message(src=src, dst=dst, nbytes=nbytes, enqueued_at=self.sim.now)
        src_port: _Port = self._require(src)
        dst_port: _Port = self._require(dst)
        done = self.sim.event()
        self.sim.process(
            self._move(message, src_port, dst_port, done),
            name=f"xfer:{src}->{dst}",
        )
        return done

    def _make_station(self, host: str) -> _Port:
        return _Port(self.sim)

    def _wire_time(self, nbytes: int, bandwidth: Optional[float] = None) -> float:
        """Serialisation time including per-frame framing overhead."""
        spec = self.spec
        full, rest = divmod(nbytes, spec.mtu)
        frames = full + (1 if rest else 0)
        rate = bandwidth if bandwidth is not None else spec.bandwidth
        return (nbytes + frames * spec.frame_overhead) / rate

    def _move(self, message: Message, src_port: _Port, dst_port: _Port, done: Event):
        """Uplink serialisation, switch hop, downlink drain.

        The switch forwards frame-by-frame, so the downlink overlaps the
        uplink except for the final frame's drain time.  The downlink port
        is held for that drain so concurrent senders to one receiver still
        serialise where it matters.
        """
        yield from self._await_reachable(message.src, message.dst)
        spec = self.spec
        src_rate = src_port.bandwidth if src_port.bandwidth is not None else spec.bandwidth
        dst_rate = dst_port.bandwidth if dst_port.bandwidth is not None else spec.bandwidth
        wire = self._wire_time(message.nbytes, bandwidth=min(src_rate, dst_rate))
        last_frame = message.nbytes % spec.mtu or spec.mtu
        drain = (min(last_frame, message.nbytes) + spec.frame_overhead) / dst_rate
        yield src_port.tx.acquire()
        self.stats.wire.busy(self.sim.now)
        try:
            yield self.sim.timeout(wire)  # uplink serialisation
        finally:
            self.stats.wire.idle(self.sim.now)
            src_port.tx.release()
        yield self.sim.timeout(spec.per_hop_latency)
        yield dst_port.rx.acquire()
        try:
            yield self.sim.timeout(drain)
        finally:
            dst_port.rx.release()
        self._deliver(message, done)

    def _deliver(self, message: Message, done: Event) -> None:
        self.stats.delivered(message)
        if not done.triggered:
            done.succeed(message)
