"""§4.6: remote memory paging over a loaded Ethernet.

The paper repeated its runs on an already-loaded Ethernet and saw
"performance degradation even when the Ethernet was lightly loaded ...
repeated collisions ... lowering the effective bandwidth of the network,
leading to throughput collapse" — a CSMA/CD property, not a remote-paging
one.  This experiment sweeps background offered load and reports
completion time, collision counts, and effective wire utilisation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..analysis.report import format_table
from ..runner import RunSpec, default_runner

__all__ = ["run_loaded_ethernet", "render_loaded_ethernet"]


def run_loaded_ethernet(
    loads: Iterable[float] = (0.0, 0.2, 0.4, 0.6, 0.8),
    workload: str = "gauss",
    policy: str = "no-reliability",
    runner=None,
) -> Dict[float, Dict[str, float]]:
    """Sweep background offered load; returns metrics per load point."""
    loads = list(loads)
    specs = [
        RunSpec.make(
            workload,
            policy,
            hook="background-load",
            hook_kwargs={"total_load": load, "n_sources": 4},
            extract=("network-stats",),
            label=f"{workload}/{policy}/load={load:.0%}",
        )
        for load in loads
    ]
    results: Dict[float, Dict[str, float]] = {}
    for load, result in zip(loads, (runner or default_runner()).run(specs)):
        results[load] = {"etime": result.report.etime, **result.extras}
    return results


def render_loaded_ethernet(results: Dict[float, Dict[str, float]]) -> str:
    """Load-sweep table for §4.6."""
    baseline = results.get(0.0, {}).get("etime")
    rows: List[List[str]] = []
    for load in sorted(results):
        row = results[load]
        slowdown = (
            f"{row['etime'] / baseline:.2f}x" if baseline else "-"
        )
        rows.append(
            [
                f"{load:.0%}",
                f"{row['etime']:.1f}",
                slowdown,
                f"{row['collisions']:.0f}",
                f"{row['mean_message_latency_ms']:.1f}",
                f"{row['wire_utilization']:.0%}",
            ]
        )
    return format_table(
        ["offered load", "etime (s)", "slowdown", "collisions", "msg latency (ms)", "wire busy"],
        rows,
        title="§4.6: GAUSS over a loaded Ethernet (no-reliability pager)",
    )
