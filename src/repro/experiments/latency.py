"""§4.4: the latency of one remote-memory page transfer.

The paper measures 11.24 ms per page transfer — 1.6 ms of protocol
processing plus 9.64 ms on the Ethernet — versus 45 ms/4 KB in prior
work.  This microbenchmark runs pagein round trips on an idle network
and decomposes the average the same way.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.paper_data import LATENCY_MS
from ..analysis.report import format_table
from ..config import PAGE_SIZE
from ..core.builder import build_cluster

__all__ = ["run_latency", "render_latency"]


def run_latency(n_transfers: int = 200) -> Dict[str, float]:
    """Average pagein latency over ``n_transfers`` round trips."""
    cluster = build_cluster(policy="no-reliability", n_servers=1)
    pager = cluster.pager
    sim = cluster.sim

    def flow():
        # Stage the pages remotely first.
        for page_id in range(n_transfers):
            yield from pager.pageout(page_id, None)
        start = sim.now
        for page_id in range(n_transfers):
            yield from pager.pagein(page_id)
        return (sim.now - start) / n_transfers

    per_pagein = sim.run_until_complete(sim.process(flow()))
    protocol = cluster.stack.spec.per_page_cpu
    return {
        "per_transfer_ms": per_pagein * 1e3,
        "protocol_ms": protocol * 1e3,
        "wire_ms": (per_pagein - protocol) * 1e3,
        "page_size": PAGE_SIZE,
    }


def render_latency(results: Dict[str, float]) -> str:
    """Measured-vs-paper table for the §4.4 microbenchmark."""
    rows = [
        [
            "per page transfer (ms)",
            f"{results['per_transfer_ms']:.2f}",
            f"{LATENCY_MS['total_per_transfer']:.2f}",
        ],
        ["protocol processing (ms)", f"{results['protocol_ms']:.2f}", f"{LATENCY_MS['protocol']:.2f}"],
        ["wire + queueing (ms)", f"{results['wire_ms']:.2f}", f"{LATENCY_MS['wire']:.2f}"],
        [
            "prior work (4 KB pagein, ms)",
            "-",
            f"{LATENCY_MS['prior_work_4kb_pagein']:.0f}",
        ],
    ]
    return format_table(
        ["quantity", "ours", "paper"],
        rows,
        title="§4.4: single page-transfer latency (8 KB page, idle Ethernet)",
    )
