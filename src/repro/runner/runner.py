"""The parallel experiment runner.

Every figure in the paper is a matrix of independent, deterministic
simulation runs, so regenerating the evaluation is embarrassingly
parallel: :class:`ExperimentRunner` fans :class:`RunSpec`s out over a
``ProcessPoolExecutor`` and reassembles results *in spec order* —
completion order never leaks into output, so ``--jobs 4`` produces
byte-identical tables to ``--jobs 1``.  A content-addressed result
cache (see :mod:`repro.runner.cache`) short-circuits cells that have
already been computed for identical code and configuration.

The module also owns the process-wide default runner the CLI
configures (``--jobs`` / ``--no-cache`` / ``--cache-dir``); library
callers that pass no explicit runner get a serial, uncached one.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence

from ..log import get_logger
from ..vm.machine import CompletionReport
from .cache import ResultCache
from .execute import execute_spec
from .spec import RunResult, RunSpec

log = get_logger(__name__)

__all__ = [
    "ExperimentRunner",
    "configure_default_runner",
    "default_runner",
]


class ExperimentRunner:
    """Execute :class:`RunSpec`s, in parallel when asked, cached when told.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs every spec inline in
        this process; ``N > 1`` fans out over a process pool.  ``0`` or
        ``None`` means "all cores" (``os.cpu_count()``).
    use_cache:
        Enable the on-disk result cache.  Off by default for library use
        so tests and notebooks stay hermetic; the CLI turns it on.
    cache_dir:
        Cache location; defaults to ``$REPRO_CACHE_DIR`` or the XDG
        cache home (``~/.cache/repro``).
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        use_cache: bool = False,
        cache_dir=None,
    ):
        if jobs is None or jobs == 0:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if use_cache else None
        )

    # ------------------------------------------------------------------ core
    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Run every spec; results ordered by spec, not by completion."""
        specs = list(specs)
        results: List[Optional[RunResult]] = [None] * len(specs)

        pending: List[int] = []
        for index, spec in enumerate(specs):
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                log.debug("cache hit: %s", spec.label or spec.workload)
                report, extras = cached
                results[index] = RunResult(
                    spec=spec, report=report, extras=extras, cached=True
                )
            else:
                pending.append(index)

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                workers = min(self.jobs, len(pending))
                log.info(
                    "running %d spec(s) over %d worker process(es)",
                    len(pending), workers,
                )
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [pool.submit(execute_spec, specs[i]) for i in pending]
                    for index, future in zip(pending, futures):
                        results[index] = future.result()
            else:
                log.debug("running %d spec(s) inline", len(pending))
                for index in pending:
                    results[index] = execute_spec(specs[index])
            if self.cache is not None:
                for index in pending:
                    result = results[index]
                    self.cache.put(result.spec, result.report, result.extras)

        return results  # type: ignore[return-value]

    def run_one(self, spec: RunSpec) -> RunResult:
        """Run a single spec (cache-aware, always inline)."""
        return self.run([spec])[0]

    # ----------------------------------------------------------- conveniences
    def run_matrix(
        self,
        workloads: Iterable[str],
        policies: Iterable[str],
        **common,
    ) -> Dict[str, Dict[str, CompletionReport]]:
        """Run a workloads × policies matrix; returns nested reports.

        ``common`` keywords are forwarded to every :meth:`RunSpec.make`
        call (``overrides``, ``seed``, ``hook``, …).
        """
        workloads = list(workloads)
        policies = list(policies)
        specs = [
            RunSpec.make(workload, policy, label=f"{workload}/{policy}", **common)
            for workload in workloads
            for policy in policies
        ]
        results = self.run(specs)
        reports: Dict[str, Dict[str, CompletionReport]] = {}
        flat = iter(results)
        for workload in workloads:
            reports[workload] = {}
            for policy in policies:
                reports[workload][policy] = next(flat).report
        return reports


# --------------------------------------------------------------------------
# Process-wide default runner (configured by the CLI, serial otherwise).
# --------------------------------------------------------------------------

_default: Optional[ExperimentRunner] = None


def configure_default_runner(
    jobs: Optional[int] = 1,
    use_cache: bool = False,
    cache_dir=None,
) -> ExperimentRunner:
    """Install the runner that experiment modules use by default."""
    global _default
    _default = ExperimentRunner(jobs=jobs, use_cache=use_cache, cache_dir=cache_dir)
    return _default


def default_runner() -> ExperimentRunner:
    """The configured default runner, or a serial uncached one."""
    if _default is not None:
        return _default
    return ExperimentRunner()
