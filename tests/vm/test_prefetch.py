"""Sequential read-ahead (prefetch) tests."""

import pytest

from repro.config import PAGE_SIZE, MachineSpec
from repro.core import build_cluster
from repro.sim import Simulator
from repro.units import megabytes
from repro.vm import Machine, Pager
from repro.workloads import SequentialScan, UniformRandom, zigzag_passes


def small_spec(user_pages):
    kernel = megabytes(1)
    return MachineSpec(
        name="tiny",
        ram_bytes=kernel + user_pages * PAGE_SIZE,
        kernel_resident_bytes=kernel,
    )


class TimedPager(Pager):
    """5 ms pagein / pageout; everything stored in a dict."""

    name = "timed"

    def __init__(self, sim):
        super().__init__()
        self.sim = sim
        self._contents = {}

    def pageout(self, page_id, contents=None):
        yield self.sim.timeout(0.005)
        self._contents[page_id] = contents
        self.counters.add("pageouts")
        self.counters.add("transfers")

    def pagein(self, page_id):
        from repro.errors import PageNotFound

        if page_id not in self._contents:
            raise PageNotFound(page_id)
        yield self.sim.timeout(0.005)
        self.counters.add("pageins")
        self.counters.add("transfers")
        return self._contents[page_id]


def run_scan(prefetch, n_pages=96, user_pages=32, passes=3):
    sim = Simulator()
    pager = TimedPager(sim)
    machine = Machine(
        sim, small_spec(user_pages), pager, init_time=0.0, prefetch=prefetch,
        content_mode=True,
    )
    trace = list(
        zigzag_passes(0, n_pages, passes, cpu_per_page=0.004, write=True)
    )
    report = machine.run_to_completion(trace)
    return report, machine


def test_prefetch_speeds_up_sequential_scan():
    without, _ = run_scan(prefetch=0)
    with_pf, machine = run_scan(prefetch=4)
    assert machine.counters["prefetched"] > 0
    assert with_pf.etime < without.etime
    # Pages that arrive before they're referenced don't fault at all.
    assert with_pf.faults <= without.faults
    # Read-ahead wastes a little bandwidth at direction turns (fetched
    # but superseded), but not much.
    assert without.pageins <= with_pf.pageins <= 1.25 * without.pageins


def test_prefetch_hits_counted():
    _, machine = run_scan(prefetch=4)
    assert machine.counters["prefetch_hits"] > 0


def test_prefetched_pages_verified_in_content_mode():
    # run_scan already verifies every pagein (content_mode=True); a
    # corrupt prefetch would have raised.
    report, machine = run_scan(prefetch=4)
    assert machine.counters["prefetched"] > 0


def test_prefetch_off_by_default():
    sim = Simulator()
    machine = Machine(sim, small_spec(8), TimedPager(sim), init_time=0.0)
    assert machine.prefetch == 0


def test_prefetch_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Machine(sim, small_spec(8), TimedPager(sim), prefetch=-1)


def test_random_access_triggers_no_prefetch():
    sim = Simulator()
    pager = TimedPager(sim)
    machine = Machine(
        sim, small_spec(16), pager, init_time=0.0, prefetch=4
    )
    wl = UniformRandom(n_pages=64, n_refs=600, write_fraction=0.8, seed=11)
    machine.run_to_completion(wl.trace())
    # Random faults never form a sequential run of 2+.
    assert machine.counters["prefetched"] < 10


def test_prefetch_works_through_full_cluster():
    """Read-ahead over the real remote-memory stack."""
    cluster = build_cluster(policy="no-reliability", n_servers=2)
    cluster.machine.prefetch = 4
    report = cluster.run(SequentialScan(n_pages=3000, passes=3, write=True,
                                        cpu_per_page=1e-3))
    baseline = build_cluster(policy="no-reliability", n_servers=2)
    base_report = baseline.run(SequentialScan(n_pages=3000, passes=3, write=True,
                                              cpu_per_page=1e-3))
    assert cluster.machine.counters["prefetched"] > 0
    assert report.etime < base_report.etime
