"""A closed-form analytic performance model (Felten & Zahorjan style).

Related work (§6): Felten and Zahorjan "presented an analytical model to
predict [a remote paging system's] performance".  This module provides
the equivalent for our system: given a workload's fault profile and the
hardware specs, predict completion time *without simulating* — then the
test suite validates the predictions against the simulator.

The model::

    etime ≈ inittime + utime + systime + pagein_cost + pageout_cost
    systime       = faults * fault_service_cpu
    pagein_cost   = pageins  * T_in(device)
    pageout_cost  = pageouts * T_out(device) * overlap_factor

Per-page device times are derived from first principles:

* Ethernet page transfer: per-frame wire time + interframe gap + one
  contention slot, plus the protocol CPU.
* Disk page access: seek + rotational latency + interleaved transfer
  (streamed writes skip seek/rotation, random reads pay both).

``overlap_factor`` accounts for asynchronous write-back: pageouts that
overlap pageins/compute cost less than their full service time on the
shared wire (they still serialise) but nearly vanish on the duplex-free
disk path only when reads are absent.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import (
    DEC_RZ55,
    ETHERNET_10MBPS,
    TCP_IP_1996,
    DiskSpec,
    EthernetSpec,
    MachineSpec,
    ProtocolSpec,
)

__all__ = [
    "ethernet_page_time",
    "disk_page_time",
    "AnalyticModel",
]


def ethernet_page_time(
    page_size: int = 8192,
    ethernet: EthernetSpec = ETHERNET_10MBPS,
    protocol: ProtocolSpec = TCP_IP_1996,
    with_request: bool = False,
) -> float:
    """One page transfer on an idle Ethernet, protocol CPU included."""
    payload = max(1, ethernet.mtu - protocol.header_bytes)
    segments = -(-page_size // payload)
    on_wire = page_size + segments * protocol.header_bytes
    full, rest = divmod(on_wire, ethernet.mtu)
    per_frame_overhead = ethernet.interframe_gap + ethernet.slot_time
    total = 0.0
    for frame_payload in [ethernet.mtu] * full + ([rest] if rest else []):
        total += ethernet.frame_time(frame_payload) + per_frame_overhead
    if with_request:
        request = protocol.request_bytes + protocol.header_bytes
        total += ethernet.frame_time(request) + per_frame_overhead
    return total + protocol.per_page_cpu


def disk_page_time(
    page_size: int = 8192,
    disk: DiskSpec = DEC_RZ55,
    sequential: bool = False,
    swap_area_fraction: float = 0.1,
) -> float:
    """One page to/from the swap disk.

    ``sequential`` models streamed writes (queued back to back: no seek,
    no rotation); otherwise the page pays the average in-swap-area seek
    plus half a rotation.
    """
    transfer = page_size / disk.sustained_bandwidth
    if sequential:
        return transfer
    # Average seek within a compact swap area (see Disk.seek_time):
    # E[sqrt(d)] over the area = (8/15) * sqrt(area fraction).
    min_seek = disk.avg_seek / 8
    full_stroke = min_seek + (disk.avg_seek - min_seek) / (8 / 15)
    mean_sqrt = (8 / 15) * (swap_area_fraction**0.5)
    seek = min_seek + (full_stroke - min_seek) * mean_sqrt
    return seek + disk.avg_rotational_latency + transfer


@dataclass(frozen=True)
class AnalyticModel:
    """Predict a run's completion time from its fault profile."""

    machine: MachineSpec = None  # type: ignore[assignment]
    ethernet: EthernetSpec = ETHERNET_10MBPS
    protocol: ProtocolSpec = TCP_IP_1996
    disk: DiskSpec = DEC_RZ55

    def predict(
        self,
        utime: float,
        pageins: int,
        pageouts: int,
        faults: int,
        policy: str,
        n_servers: int = 2,
        init_time: float = 0.21,
    ) -> float:
        """Completion-time prediction for one policy configuration."""
        machine = self.machine
        fault_cpu = (machine.fault_service_cpu if machine else 5e-4)
        systime = faults * fault_cpu
        page_size = machine.page_size if machine else 8192
        t_net = ethernet_page_time(page_size, self.ethernet, self.protocol)
        t_net_in = ethernet_page_time(
            page_size, self.ethernet, self.protocol, with_request=True
        )
        t_disk_write = disk_page_time(page_size, self.disk, sequential=True)
        t_disk_read = disk_page_time(page_size, self.disk, sequential=False)

        if policy == "disk":
            # Batched write-back streams most writes; the first page of a
            # batch still pays a positioning delay.
            write = pageouts * (t_disk_write + self.disk.avg_rotational_latency / 8)
            read = pageins * t_disk_read
            paging = write + read
        elif policy == "no-reliability":
            paging = pageouts * t_net + pageins * t_net_in
        elif policy == "mirroring":
            paging = 2 * pageouts * t_net + pageins * t_net_in
        elif policy == "parity-logging":
            paging = pageouts * (1 + 1 / n_servers) * t_net + pageins * t_net_in
        elif policy == "write-through":
            # The disk copy runs in parallel with network traffic and the
            # asynchronous write-back window overlaps pageouts with
            # pageins, so paging time is bound by the busier *device*,
            # not by per-page maxima (§4.7's "executed in parallel").
            net_load = pageouts * t_net + pageins * t_net_in
            disk_load = pageouts * (
                t_disk_write + self.disk.avg_rotational_latency / 8
            )
            paging = max(net_load, disk_load)
        else:
            raise ValueError(f"unknown policy {policy!r}")
        return init_time + utime + systime + paging
