"""ASCII line charts for experiment series (no plotting dependencies).

The paper's figures 3 and 4 are line charts; these helpers render the
same series as terminal plots, so ``python -m repro fig3`` can show the
cliff, not just a table.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["ascii_chart"]

_MARKS = "*o+x#@%&"


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series on one shared-axis ASCII grid.

    >>> print(ascii_chart({"line": [(0, 0), (1, 1)]}, width=8, height=4))
    ... # doctest: +SKIP
    """
    if not series or all(not points for points in series.values()):
        raise ValueError("ascii_chart needs at least one non-empty series")
    if width < 8 or height < 4:
        raise ValueError("chart too small to draw")
    xs = [x for points in series.values() for x, _ in points]
    ys = [y for points in series.values() for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        mark = _MARKS[index % len(_MARKS)]
        for x, y in points:
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = height - 1 - int(round((y - y_lo) / y_span * (height - 1)))
            grid[row][col] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.6g}"
    bottom_label = f"{y_lo:.6g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            label = top_label
        elif i == height - 1:
            label = bottom_label
        else:
            label = ""
        lines.append(f"{label.rjust(gutter)}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = f"{x_lo:.6g}".ljust(width - 8) + f"{x_hi:.6g}".rjust(8)
    lines.append(" " * (gutter + 1) + x_axis)
    if x_label or y_label:
        lines.append(" " * (gutter + 1) + f"x: {x_label}   y: {y_label}".strip())
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * (gutter + 1) + legend)
    return "\n".join(lines)
