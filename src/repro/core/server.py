"""The remote memory server (§3.2).

"The server is a user level program listening to a socket ... When the
client requests a pagein, the server transfers the requested page(s) over
the socket.  When the client requests a pageout, the server reads the
incoming pages from the socket, and stores them in its main memory.  The
server is also responsible for swap space allocation and for providing
periodically information to the client concerning the memory load of its
host.  A parity server is by no means different than a memory server."

The server stores opaque *keys* → page payloads; it neither knows nor
cares whether a payload is a data page or a parity page (exactly the
paper's point).  Its memory comes from grants on its host
:class:`~repro.cluster.Workstation`; when the host's native demand
squeezes the grant, the server sheds pages to its local disk and starts
*advising* clients to send no more (§2.1).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..cluster.workstation import Workstation
from ..errors import PageNotFound, ServerCrashed, ServerUnavailable
from ..net.protocol import ProtocolStack
from ..sim import Counter, Simulator
from ..units import milliseconds

__all__ = ["MemoryServer"]

#: CPU the server spends handling one page beyond protocol processing
#: (buffer copy, hash lookup, socket bookkeeping).
SERVER_CPU_PER_PAGE = milliseconds(0.2)


class MemoryServer:
    """One client's server instance on a donor workstation.

    Parameters
    ----------
    host:
        The workstation donating memory and CPU.
    stack:
        Transport used to reach this server (shared with the client).
    capacity_pages:
        Swap space to request from the host up front.
    overflow_fraction:
        Extra memory beyond ``capacity_pages`` (parity logging asks for
        10% overflow to hold superseded page versions, §2.2).
    """

    def __init__(
        self,
        host: Workstation,
        stack: ProtocolStack,
        capacity_pages: int,
        overflow_fraction: float = 0.0,
        name: Optional[str] = None,
    ):
        if capacity_pages < 1:
            raise ValueError(f"capacity must be at least one page: {capacity_pages}")
        if overflow_fraction < 0:
            raise ValueError(f"negative overflow: {overflow_fraction}")
        self.host = host
        self.stack = stack
        self.sim: Simulator = host.sim
        self.name = name or f"server@{host.name}"
        want = int(capacity_pages * (1 + overflow_fraction))
        granted = host.grant(want)
        if granted < capacity_pages:
            host.revoke(granted)
            raise ServerUnavailable(self.name, reason="host has too little free memory")
        self.capacity_pages = granted
        self.overflow_fraction = overflow_fraction
        self._store: Dict[object, Optional[bytes]] = {}
        self._on_disk: Dict[object, Optional[bytes]] = {}
        self._crashed = False
        self.advising = False
        self.counters = Counter()
        #: Called with the new pageout count after every accepted store —
        #: the event-driven seam fault injectors hook instead of polling.
        self._pageout_watchers: list = []
        host.pressure_callback = self._on_pressure
        if not stack.network.is_attached(host.name):
            stack.network.attach(host.name)

    # ----------------------------------------------------------- inspection
    @property
    def is_alive(self) -> bool:
        return not self._crashed

    @property
    def stored_pages(self) -> int:
        """Pages held in memory (excluding any shed to the host disk)."""
        return len(self._store)

    @property
    def free_pages(self) -> int:
        return max(0, self.capacity_pages - len(self._store))

    def holds(self, key: object) -> bool:
        """Whether this server stores ``key`` (in memory or shed to disk)."""
        return key in self._store or key in self._on_disk

    def keys(self):
        """All keys currently stored (memory and shed-to-disk)."""
        return list(self._store) + list(self._on_disk)

    def add_pageout_watcher(self, watcher) -> None:
        """Register ``watcher(count)``, fired after each accepted store."""
        self._pageout_watchers.append(watcher)

    def remove_pageout_watcher(self, watcher) -> None:
        """Unregister a pageout watcher (no-op if absent)."""
        try:
            self._pageout_watchers.remove(watcher)
        except ValueError:
            pass

    def stored_keys(self) -> list:
        """Keys held in memory (fault-injection seam; no simulated cost)."""
        return list(self._store)

    def peek(self, key: object):
        """Stored payload for ``key`` without simulated cost, or None.

        Fault-injection/inspection seam — real requests use :meth:`fetch`.
        """
        if key in self._store:
            return self._store[key]
        return self._on_disk.get(key)

    def overwrite_stored(self, key: object, contents: Optional[bytes]) -> None:
        """Replace ``key``'s stored payload in place (bit-rot seam).

        Bypasses capacity checks and simulated cost: this models the
        bytes already in a frame silently rotting, not a new pageout.
        """
        if key in self._store:
            self._store[key] = contents
        elif key in self._on_disk:
            self._on_disk[key] = contents
        else:
            raise KeyError(f"server {self.name!r} does not hold {key!r}")

    def cpu_utilization(self) -> float:
        """Fraction of elapsed simulated time spent serving (§4.5)."""
        elapsed = self.sim.now
        if elapsed <= 0:
            return 0.0
        return self.counters["cpu_us"] / 1e6 / elapsed

    # ------------------------------------------------------------- serving
    def _check_alive(self) -> None:
        if self._crashed:
            raise ServerCrashed(self.name)

    def _serve_cpu(self):
        """Generator: charge one page's server-side CPU."""
        self.counters.add("cpu_us", int(SERVER_CPU_PER_PAGE * 1e6))
        yield from self.host.cpu_time(SERVER_CPU_PER_PAGE)

    def store(self, key: object, contents: Optional[bytes]):
        """Generator: accept a pageout (data already on the wire's far end).

        Raises :class:`ServerUnavailable` when out of memory — the client
        reacts by finding another server or using its disk (§2.1).
        """
        self._check_alive()
        if key not in self._store and key not in self._on_disk:
            if self.free_pages <= 0:
                self.advising = True
                raise ServerUnavailable(self.name, reason="swap space exhausted")
        yield from self._serve_cpu()
        if key in self._on_disk:
            self._on_disk[key] = contents
        else:
            self._store[key] = contents
        self.counters.add("pageouts")
        if self._pageout_watchers:
            count = self.counters["pageouts"]
            for watcher in list(self._pageout_watchers):
                watcher(count)

    def fetch(self, key: object):
        """Generator: serve a pagein; returns the stored contents."""
        self._check_alive()
        yield from self._serve_cpu()
        if key in self._store:
            self.counters.add("pageins")
            return self._store[key]
        if key in self._on_disk:
            # Shed to the host's disk under memory pressure: serve slower.
            self.counters.add("pageins_from_disk")
            yield self.sim.timeout(milliseconds(20))
            return self._on_disk[key]
        raise PageNotFound(key, where=self.name)

    def xor_update(self, key: object, new_contents: Optional[bytes]):
        """Generator: the basic-parity server step (§2.2).

        Replace the stored page with ``new_contents`` and return the XOR
        of old and new, which the client-side policy then forwards to the
        parity server.
        """
        from ..vm.page import xor_bytes

        self._check_alive()
        if key not in self._store:
            raise PageNotFound(key, where=self.name)
        yield from self._serve_cpu()
        old = self._store[key]
        self._store[key] = new_contents
        self.counters.add("xor_updates")
        if old is None or new_contents is None:
            return None  # metadata mode
        return xor_bytes(old, new_contents)

    def xor_into(self, key: object, delta: Optional[bytes]):
        """Generator: fold ``delta`` into the stored parity page."""
        from ..vm.page import xor_bytes, zero_page

        self._check_alive()
        yield from self._serve_cpu()
        self.counters.add("parity_updates")
        if key not in self._store and key not in self._on_disk:
            if self.free_pages <= 0:
                raise ServerUnavailable(self.name, reason="swap space exhausted")
            self._store[key] = delta
            return
        old = self._store.get(key, None)
        if delta is None or old is None:
            self._store[key] = delta if old is None else old
            return
        self._store[key] = xor_bytes(old, delta)

    def free(self, keys) -> None:
        """Release stored slots (parity-group reuse, client release).

        A no-op on a crashed server: its store is already gone, and
        recovery paths must be able to clean up bookkeeping regardless.
        """
        if self._crashed:
            return
        freed = 0
        for key in keys:
            if self._store.pop(key, "missing") != "missing":
                freed += 1
            self._on_disk.pop(key, None)
        self.counters.add("freed", freed)
        if self.advising and self.free_pages > self.capacity_pages // 10:
            self.advising = False

    def transfer_to(self, other: "MemoryServer", keys):
        """Generator: ship stored pages directly to another server (§2.1
        migration: "migrate the pages that were stored by the loaded
        server to the new one") — one server-to-server transfer per page,
        no bounce through the client."""
        self._check_alive()
        moved = 0
        for key in keys:
            if key in self._store:
                contents = self._store[key]
            elif key in self._on_disk:
                contents = self._on_disk[key]
                yield self.sim.timeout(milliseconds(20))  # read it back up
            else:
                continue
            yield from self._serve_cpu()
            yield from self.stack.send_page(
                self.host.name, other.host.name, self.host.spec.page_size
            )
            yield from other.store(key, contents)
            self._store.pop(key, None)
            self._on_disk.pop(key, None)
            moved += 1
        self.counters.add("migrated_out", moved)
        if self.advising and self.free_pages > self.capacity_pages // 10:
            self.advising = False
        return moved

    # ----------------------------------------------------- load and crash
    def _on_pressure(self, deficit_pages: int) -> None:
        """Host native demand squeezed our grant: shed pages to disk and
        advise clients (§2.1)."""
        shed = 0
        for key in list(self._store):
            if shed >= deficit_pages:
                break
            self._on_disk[key] = self._store.pop(key)
            shed += 1
        self.host.revoke(min(deficit_pages, self.capacity_pages))
        self.capacity_pages -= min(deficit_pages, self.capacity_pages)
        self.advising = True
        self.counters.add("shed_to_disk", shed)
        self.sim.tracer.emit(
            "server", "pressure", name=self.name,
            shed=shed, deficit=deficit_pages,
        )

    def crash(self) -> None:
        """The workstation dies: all stored pages are lost."""
        self.sim.tracer.emit(
            "server", "crash", name=self.name, lost_pages=len(self._store)
        )
        self._crashed = True
        self._store.clear()
        self._on_disk.clear()

    def restart(self, capacity_pages: Optional[int] = None) -> None:
        """Bring the server back empty (a rebooted workstation)."""
        self._crashed = False
        self.advising = False
        if capacity_pages is not None:
            self.capacity_pages = self.host.grant(capacity_pages)
        self.sim.tracer.emit("server", "restart", name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "crashed" if self._crashed else f"{self.stored_pages}/{self.capacity_pages}p"
        return f"<MemoryServer {self.name!r} {state}>"
