"""Trajectory merge + regression gate (benchmarks/trajectory.py).

The module lives in ``benchmarks/`` (not the installable package), so
load it by path.
"""

import importlib.util
import json
import os

import pytest

_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "trajectory.py"
)


@pytest.fixture(scope="module")
def trajectory():
    spec = importlib.util.spec_from_file_location("trajectory", _PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_RECORD = {
    "compile_ab": {"speedup": 3.9, "cold_speedup": 1.8, "warm_seconds": 0.3},
    "kernel": {"relay_path": {"speedup": 1.6, "events_per_sec": {"seed": 1e6}}},
}


def test_extract_ratios_keeps_only_dimensionless_metrics(trajectory):
    assert trajectory.extract_ratios(_RECORD) == {
        "compile_ab.speedup": 3.9,
        "compile_ab.cold_speedup": 1.8,
        "kernel.relay_path.speedup": 1.6,
    }


def test_build_trajectory_tracks_best_per_record(trajectory):
    built = trajectory.build_trajectory({"BENCH_pr5.json": _RECORD})
    assert built["best"]["BENCH_pr5.json"]["compile_ab.speedup"] == 3.9
    assert built["tolerance"] == trajectory.TOLERANCE
    json.dumps(built)  # artifact must serialize


def test_baseline_high_water_mark_survives_regeneration(trajectory):
    baseline = trajectory.build_trajectory({"BENCH_pr5.json": _RECORD})
    slower = {"compile_ab": {"speedup": 3.88}}  # within tolerance
    rebuilt = trajectory.build_trajectory(
        {"BENCH_pr5.json": slower}, baseline=baseline
    )
    # History reflects the fresh run; best keeps the old high-water mark.
    assert rebuilt["history"]["BENCH_pr5.json"]["compile_ab.speedup"] == 3.88
    assert rebuilt["best"]["BENCH_pr5.json"]["compile_ab.speedup"] == 3.9


def test_check_fails_on_more_than_ten_percent_drop(trajectory):
    baseline = trajectory.build_trajectory({"BENCH_pr5.json": _RECORD})
    regressed = {"compile_ab": {"speedup": 3.5}}  # 3.9 * 0.9 = 3.51 floor
    records = {"BENCH_pr5.json": regressed}
    built = trajectory.build_trajectory(records, baseline=baseline)
    failures = trajectory.check(built, records)
    assert len(failures) == 1
    assert "compile_ab.speedup" in failures[0]
    assert "3.9" in failures[0]


def test_check_passes_within_tolerance_and_on_new_best(trajectory):
    baseline = trajectory.build_trajectory({"BENCH_pr5.json": _RECORD})
    for speedup in (3.52, 3.9, 5.0):  # floor is 3.51
        records = {"BENCH_pr5.json": {"compile_ab": {"speedup": speedup}}}
        built = trajectory.build_trajectory(records, baseline=baseline)
        assert trajectory.check(built, records) == []


def test_check_gates_per_record_not_per_metric(trajectory):
    # The same metric name in two records measures two code lineages
    # (the PR-1 kernel pair vs the later optimised pair): a lower value
    # in one record must not be judged against the other's best.
    records = {
        "bench_kernel.json": {"kernel": {"relay_path": {"speedup": 1.3}}},
        "BENCH_pr4.json": {"kernel": {"relay_path": {"speedup": 1.6}}},
    }
    built = trajectory.build_trajectory(records)
    assert trajectory.check(built, records) == []


def test_ungated_metrics_never_fail(trajectory):
    name = "bench_kernel.json"
    baseline = trajectory.build_trajectory(
        {name: {"fig2_suite": {"speedup": 1.8}}}
    )
    records = {name: {"fig2_suite": {"speedup": 1.0}}}  # 44% drop, ungated
    built = trajectory.build_trajectory(records, baseline=baseline)
    assert "fig2_suite.speedup" in trajectory.UNGATED
    assert trajectory.check(built, records) == []


def test_committed_records_pass_the_gate(trajectory):
    bench_dir = os.path.dirname(_PATH)
    records = trajectory.collect(bench_dir)
    assert records, "no committed benchmark records found"
    built = trajectory.build_trajectory(records)
    assert trajectory.check(built, records) == []


def test_committed_artifact_matches_regeneration(trajectory):
    bench_dir = os.path.dirname(_PATH)
    with open(os.path.join(bench_dir, "BENCH_TRAJECTORY.json")) as handle:
        committed = json.load(handle)
    records = trajectory.collect(bench_dir)
    rebuilt = trajectory.build_trajectory(records, baseline=committed)
    assert rebuilt == committed
