"""Tracer and Span semantics, exporters, and the JSONL schema."""

import json

import pytest

from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    Tracer,
    current_tracer,
    install_tracer,
    uninstall_tracer,
    validate_file,
    validate_jsonl,
    validate_record,
)


class Clock:
    """Stand-in simulator: just a settable ``now``."""

    def __init__(self):
        self.now = 0.0


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def tracer(clock):
    tracer = Tracer()
    tracer.bind(clock)
    return tracer


# ---------------------------------------------------------------- spans

def test_span_phases_partition_duration(tracer, clock):
    span = tracer.span("pageout", page_id=7)
    clock.now = 1.0
    span.phase("transfer.protocol")
    clock.now = 1.5
    span.phase("transfer.wire")
    clock.now = 4.0
    span.end("ok")
    assert span.duration == 4.0
    assert span.phases == {
        "service": 1.0,
        "transfer.protocol": 0.5,
        "transfer.wire": 2.5,
    }
    assert sum(span.phases.values()) == span.duration


def test_zero_length_segments_are_dropped(tracer, clock):
    span = tracer.span("pagein")
    span.phase("a")  # no time has passed: "service" segment is dropped
    span.phase("b")  # likewise "a"
    clock.now = 2.0
    span.end()
    assert span.phases == {"b": 2.0}
    assert [name for name, _, _ in span.segments] == ["b"]


def test_same_named_segments_accumulate(tracer, clock):
    span = tracer.span("pageout")
    clock.now = 1.0
    span.phase("wire")
    clock.now = 2.0
    span.phase("cpu")
    clock.now = 2.5
    span.phase("wire")
    clock.now = 4.5
    span.end()
    assert span.phases["wire"] == pytest.approx(1.0 + 2.0)
    assert len(span.segments) == 4


def test_end_is_idempotent(tracer, clock):
    span = tracer.span("pageout")
    clock.now = 1.0
    span.end("ok", reason="done")
    clock.now = 9.0
    span.end("error", reason="late")  # must not clobber the first end
    assert span.status == "ok"
    assert span.end_ts == 1.0
    assert span.attrs == {"reason": "done"}


def test_open_span_record_validates(tracer, clock):
    span = tracer.span("pageout", page_id=3)
    record = span.to_record()
    assert record["end"] is None
    assert record["status"] == "open"
    assert validate_record(record) == "span"


# --------------------------------------------------------------- tracer

def test_events_carry_run_label_after_begin_run(tracer, clock):
    tracer.emit("net", "partition")
    tracer.begin_run("fig2/mvec")
    clock.now = 3.0
    tracer.emit("server", "crash", name="server-0")
    first, marker, second = tracer.events
    assert "run" not in first
    assert marker["component"] == "tracer" and marker["event"] == "run"
    assert second["run"] == "fig2/mvec"
    assert second["ts"] == 3.0
    assert second["attrs"] == {"name": "server-0"}
    span = tracer.span("pageout")
    assert span.attrs["run"] == "fig2/mvec"


def test_span_ids_are_unique_and_ordered(tracer):
    ids = [tracer.span("pageout").span_id for _ in range(5)]
    assert ids == sorted(set(ids))


def test_records_start_with_header(tracer, clock):
    tracer.emit("pager", "migration")
    tracer.span("pageout").end()
    records = list(tracer.records())
    assert records[0] == {
        "type": "header",
        "schema": TRACE_SCHEMA_VERSION,
        "events": 1,
        "spans": 1,
    }
    assert [r["type"] for r in records] == ["header", "event", "span"]


# -------------------------------------------------------------- exports

def _sample_tracer(clock):
    tracer = Tracer()
    tracer.bind(clock)
    tracer.begin_run("test")
    span = tracer.span("pageout", page_id=11)
    clock.now = 0.25
    span.phase("transfer.wire")
    clock.now = 1.0
    span.end("ok")
    tracer.emit("server", "crash", name="server-1")
    tracer.span("pagein", page_id=12)  # left open on purpose
    return tracer


def test_write_jsonl_roundtrips_and_validates(tracer, clock, tmp_path):
    tracer = _sample_tracer(clock)
    path = tmp_path / "trace.jsonl"
    count = tracer.write_jsonl(str(path))
    counts = validate_file(str(path))
    assert count == counts["header"] + counts["event"] + counts["span"]
    assert counts == {"header": 1, "event": 2, "span": 2}


def test_write_chrome_structure(clock, tmp_path):
    tracer = _sample_tracer(clock)
    path = tmp_path / "trace.chrome.json"
    tracer.write_chrome(str(path))
    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    slices = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    threads = [e for e in events if e["ph"] == "M"]
    # One enclosing slice + two phase segments for the completed span;
    # the still-open span is skipped.
    assert len(slices) == 3
    enclosing = next(s for s in slices if s["name"] == "pageout:11")
    assert enclosing["ts"] == 0.0
    assert enclosing["dur"] == pytest.approx(1e6)
    assert enclosing["args"]["status"] == "ok"
    assert len(instants) == 2  # run marker + crash
    assert {t["args"]["name"] for t in threads} >= {"span:pageout", "events:server"}


# ----------------------------------------------------------- validation

def _jsonl(records):
    return [json.dumps(r) for r in records]


def test_validate_rejects_unknown_type():
    with pytest.raises(ValueError, match="unknown record type"):
        validate_record({"type": "bogus"})


def test_validate_rejects_wrong_schema_version():
    with pytest.raises(ValueError, match="schema version"):
        validate_record(
            {"type": "header", "schema": 999, "events": 0, "spans": 0}
        )


def test_validate_rejects_phase_sum_mismatch():
    record = {
        "type": "span",
        "id": 0,
        "kind": "pageout",
        "component": "pager",
        "page_id": None,
        "start": 0.0,
        "end": 2.0,
        "status": "ok",
        "phases": {"service": 0.5},  # should sum to 2.0
        "segments": [["service", 0.0, 0.5]],
        "attrs": {},
    }
    with pytest.raises(ValueError, match="phases sum"):
        validate_record(record)


def test_validate_jsonl_requires_header_first():
    lines = _jsonl([{"type": "event", "ts": 0.0, "component": "x", "event": "y"}])
    with pytest.raises(ValueError, match="header"):
        validate_jsonl(lines)


def test_validate_jsonl_rejects_count_mismatch():
    lines = _jsonl(
        [
            {"type": "header", "schema": TRACE_SCHEMA_VERSION, "events": 3, "spans": 0},
            {"type": "event", "ts": 0.0, "component": "x", "event": "y"},
        ]
    )
    with pytest.raises(ValueError, match="counts do not match"):
        validate_jsonl(lines)


def test_validate_jsonl_rejects_duplicate_header():
    header = {"type": "header", "schema": TRACE_SCHEMA_VERSION, "events": 0, "spans": 0}
    with pytest.raises(ValueError, match="duplicate header"):
        validate_jsonl(_jsonl([header, header]))


# ------------------------------------------------------- process-global

def test_install_uninstall_roundtrip():
    assert current_tracer() is None
    tracer = Tracer()
    try:
        assert install_tracer(tracer) is tracer
        assert current_tracer() is tracer
    finally:
        uninstall_tracer()
    assert current_tracer() is None


def test_installed_tracer_attaches_to_new_clusters():
    from repro.core.builder import build_cluster

    tracer = Tracer()
    try:
        install_tracer(tracer)
        cluster = build_cluster(policy="no-reliability", n_servers=2)
        assert cluster.sim.tracer is tracer
    finally:
        uninstall_tracer()
