"""Two clients sharing one Ethernet and donor pool (§3.2 / §6)."""

from repro.experiments import render_multi_client, run_multi_client


def test_multi_client_contention(benchmark, once):
    results = once(benchmark, run_multi_client)
    print("\n" + render_multi_client(results))
    # Both clients complete, both pay a contention cost on the shared
    # wire, and neither is starved (CSMA/CD backoff is roughly fair).
    assert all(s > 1.0 for s in results["slowdowns"])
    assert max(results["slowdowns"]) < 3.0
    assert results["collisions"] > 0
