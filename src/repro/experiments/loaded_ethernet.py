"""§4.6: remote memory paging over a loaded Ethernet.

The paper repeated its runs on an already-loaded Ethernet and saw
"performance degradation even when the Ethernet was lightly loaded ...
repeated collisions ... lowering the effective bandwidth of the network,
leading to throughput collapse" — a CSMA/CD property, not a remote-paging
one.  This experiment sweeps background offered load and reports
completion time, collision counts, and effective wire utilisation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..analysis.report import format_table
from ..core.builder import Cluster
from ..net.traffic import attach_background_load
from ..workloads import Gauss
from .harness import run_policy

__all__ = ["run_loaded_ethernet", "render_loaded_ethernet"]


def run_loaded_ethernet(
    loads: Iterable[float] = (0.0, 0.2, 0.4, 0.6, 0.8),
    workload_factory=Gauss,
    policy: str = "no-reliability",
) -> Dict[float, Dict[str, float]]:
    """Sweep background offered load; returns metrics per load point."""
    results: Dict[float, Dict[str, float]] = {}
    for load in loads:
        stats = {}

        def hook(cluster: Cluster, load=load, stats=stats) -> None:
            if load > 0:
                attach_background_load(cluster.network, total_load=load, n_sources=4)
            stats["network"] = cluster.network

        report = run_policy(workload_factory, policy, cluster_hook=hook)
        network = stats["network"]
        results[load] = {
            "etime": report.etime,
            "collisions": network.stats.counters["collisions"],
            "frames": network.stats.counters["frames"],
            "wire_utilization": network.stats.utilization(),
            "mean_message_latency_ms": network.stats.message_latency.mean * 1e3,
        }
    return results


def render_loaded_ethernet(results: Dict[float, Dict[str, float]]) -> str:
    """Load-sweep table for §4.6."""
    baseline = results.get(0.0, {}).get("etime")
    rows: List[List[str]] = []
    for load in sorted(results):
        row = results[load]
        slowdown = (
            f"{row['etime'] / baseline:.2f}x" if baseline else "-"
        )
        rows.append(
            [
                f"{load:.0%}",
                f"{row['etime']:.1f}",
                slowdown,
                f"{row['collisions']:.0f}",
                f"{row['mean_message_latency_ms']:.1f}",
                f"{row['wire_utilization']:.0%}",
            ]
        )
    return format_table(
        ["offered load", "etime (s)", "slowdown", "collisions", "msg latency (ms)", "wire busy"],
        rows,
        title="§4.6: GAUSS over a loaded Ethernet (no-reliability pager)",
    )
