"""Workload profiling: fault profiles without any device timing.

``profile_workload`` replays a workload against an
:class:`~repro.vm.InstantPager` on the reference machine, yielding the
machine-dependent-but-device-independent quantities the paper's §4.3
model starts from: fault counts, pagein/pageout volumes, and utime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.report import format_table
from ..config import DEC_ALPHA_3000_300, MachineSpec
from ..sim import Simulator
from ..vm.machine import Machine
from ..vm.pager import InstantPager
from .base import Workload

__all__ = ["WorkloadProfile", "profile_workload", "render_profiles"]


@dataclass(frozen=True)
class WorkloadProfile:
    """A workload's device-independent paging characteristics."""

    name: str
    footprint_mb: float
    references: int
    utime: float
    faults: int
    zero_fills: int
    pageins: int
    pageouts: int

    @property
    def write_back_ratio(self) -> float:
        """Pageouts per fault — how dirty the eviction stream is."""
        return self.pageouts / self.faults if self.faults else 0.0


def profile_workload(
    workload: Workload, machine_spec: Optional[MachineSpec] = None
) -> WorkloadProfile:
    """Replay ``workload`` against a zero-cost backing store."""
    spec = machine_spec or DEC_ALPHA_3000_300
    sim = Simulator()
    machine = Machine(sim, spec, InstantPager(sim), init_time=0.0)
    references = 0

    def counted():
        nonlocal references
        for ref in workload.trace():
            references += 1
            yield ref

    report = machine.run_to_completion(counted(), name=workload.name)
    return WorkloadProfile(
        name=workload.name,
        footprint_mb=workload.footprint_bytes / (1 << 20),
        references=references,
        utime=report.utime,
        faults=report.faults,
        zero_fills=report.zero_fills,
        pageins=report.pageins,
        pageouts=report.pageouts,
    )


def render_profiles(profiles) -> str:
    """A text table of workload profiles."""
    rows = [
        [
            p.name,
            f"{p.footprint_mb:.1f}",
            p.references,
            f"{p.utime:.1f}",
            p.faults,
            p.pageins,
            p.pageouts,
        ]
        for p in profiles
    ]
    return format_table(
        ["workload", "MB", "refs", "utime (s)", "faults", "pageins", "pageouts"],
        rows,
        title="Workload fault profiles (32 MB DEC Alpha, zero-cost backing store)",
    )
