"""PARITY LOGGING — the paper's novel reliability policy (§2.2).

"The key idea is that a given page need not be bound to a particular
server or parity group.  Instead, every time a page is paged out, a new
server and a new parity group may be used to host the page."

Mechanics:

* The client keeps a page-sized parity **buffer** (initially zero).  Each
  paged-out page is XORed into the buffer and shipped to the next server
  *round robin*; after ``S`` pageouts the buffer is shipped to the parity
  server and a fresh group opens — so the steady-state cost is
  ``1 + 1/S`` transfers per pageout, with no server-to-server traffic and
  no waiting for acknowledgements (footnote 2: the client computed the
  parity itself).
* A re-paged-out page's previous incarnation is marked **inactive** in its
  old group, but *not* deleted (footnote 3: deleting would force a parity
  update).  When every member of a sealed group is inactive, the group's
  server slots and parity page are reused.
* Superseded incarnations pile up, so each server devotes **overflow
  memory** (the paper used 10% with 4 servers and "never had to perform
  garbage collection").  If a server does fill, the client **garbage
  collects**: it re-pageouts the active members of fragmented groups into
  the current group, emptying — and thus freeing — the old ones.

Crash recovery XORs each affected group's surviving members with its
parity page; for the still-open group, the client's own buffer *is* the
parity.  Recovered active pages are re-homed on surviving servers; lost
inactive incarnations are cancelled out of their group's parity instead.
"""

from __future__ import annotations

from functools import reduce
from typing import Callable, Dict, List, Optional

from ...errors import PageNotFound, RecoveryError, ServerCrashed, ServerUnavailable
from ...sim import NULL_SPAN, Tally
from ...units import microseconds
from ...vm.page import xor_bytes, zero_page
from ..server import MemoryServer
from .base import ReliabilityPolicy

__all__ = ["ParityLogging", "GroupMember", "ParityGroup"]

#: Client CPU to XOR one 8 KB page into the parity buffer.
CLIENT_XOR_CPU = microseconds(80)


class GroupMember:
    """One logged page version inside a parity group."""

    __slots__ = ("page_id", "incarnation", "server", "key", "active", "group")

    def __init__(self, page_id: int, incarnation: int, server: MemoryServer, group: "ParityGroup"):
        self.page_id = page_id
        self.incarnation = incarnation
        self.server = server
        self.key = (page_id, incarnation)
        self.active = True
        self.group = group


class ParityGroup:
    """Up to S members (one per server, by round robin) plus one parity.

    While the group is open (and while its seal is in flight), ``buffer``
    holds the running XOR of its members — the client-side parity the
    paper's footnote 2 relies on for recovery without server acks.
    """

    __slots__ = ("gid", "members", "sealed", "buffer")

    def __init__(self, gid: int, page_size: int, content_mode: bool):
        self.gid = gid
        self.members: List[GroupMember] = []
        self.sealed = False
        self.buffer: Optional[bytes] = zero_page(page_size) if content_mode else None

    @property
    def parity_key(self):
        return ("parity", self.gid)

    @property
    def all_inactive(self) -> bool:
        return all(not m.active for m in self.members)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "sealed" if self.sealed else "open"
        live = sum(m.active for m in self.members)
        return f"<ParityGroup {self.gid} {state} {live}/{len(self.members)} active>"


class ParityLogging(ReliabilityPolicy):
    """The paper's parity-logging reliability policy."""

    name = "parity-logging"

    def __init__(
        self,
        client_host,
        stack,
        servers,
        parity_server: MemoryServer,
        content_mode: bool = False,
        **kwargs,
    ):
        super().__init__(client_host, stack, servers, **kwargs)
        self.parity_server = parity_server
        self.content_mode = content_mode
        self._rr = 0
        self._next_gid = 0
        self._groups: Dict[int, ParityGroup] = {}
        self._current = self._open_group()
        self._location: Dict[int, GroupMember] = {}
        #: Monotonic per-page incarnation counter.  Never reset — a key
        #: (page_id, incarnation) must be unique forever, or a released
        #: page's group reuse could free a *new* incarnation's storage.
        self._incarnations: Dict[int, int] = {}
        #: Detached, full groups whose parity store failed (e.g. the
        #: parity server crashed mid-seal); retried before new pageouts.
        self._pending_seals: List[ParityGroup] = []
        #: Hook the client installs to supply replacement servers.
        self.replacement_provider: Optional[Callable[[], Optional[MemoryServer]]] = None
        self.gc_runs = 0
        self._in_gc = False

    @property
    def memory_overhead_factor(self) -> float:
        return 1.0 + 1.0 / len(self.servers)

    @property
    def group_count(self) -> int:
        return len(self._groups)

    # ------------------------------------------------------------- pageout
    def _open_group(self) -> ParityGroup:
        group = ParityGroup(self._next_gid, self.page_size, self.content_mode)
        self._next_gid += 1
        self._groups[group.gid] = group
        return group

    def _xor_into_buffer(self, group: ParityGroup, contents: Optional[bytes]):
        """Generator: fold a page into the group's client-side parity.

        ``buffer_xors`` counts every full-page fold.  With the PR 4
        write-behind queue, a page re-dirtied while queued is coalesced
        *before* it reaches this policy, so a superseded version is never
        folded in (and never has to be folded out again) — the counter is
        how tests pin that the wasted XOR actually disappears.
        """
        self.counters.add("buffer_xors")
        yield self.sim.timeout(CLIENT_XOR_CPU)
        if self.content_mode and contents is not None:
            group.buffer = xor_bytes(group.buffer, contents)

    def _retire(self, member: GroupMember) -> None:
        """Mark a superseded incarnation inactive; reuse emptied groups."""
        member.active = False
        group = member.group
        if group.gid not in self._groups:
            return  # group already dissolved by the garbage collector
        if group.sealed and group.all_inactive:
            for m in group.members:
                m.server.free([m.key])
            self.parity_server.free([group.parity_key])
            del self._groups[group.gid]
            self.counters.add("groups_reused")

    def pageout(self, page_id: int, contents: Optional[bytes], span=NULL_SPAN):
        # First, finish any seal that previously failed (a parity-server
        # crash mid-seal leaves the group buffered and recoverable; once
        # the client has installed a replacement, the seal must land).
        while self._pending_seals:
            group = self._pending_seals[0]
            yield from self._seal(group, span=span)  # on failure: stays pending
            self._pending_seals.pop(0)

        previous = self._location.get(page_id)
        incarnation = self._incarnations.get(page_id, 0) + 1
        self._incarnations[page_id] = incarnation
        server = self.servers[self._rr % len(self.servers)]
        self._require_live(server)
        key = (page_id, incarnation)
        try:
            yield from self._send_page(server, key, contents, span=span)
        except ServerUnavailable:
            if self._in_gc:
                raise  # GC itself ran out of room: surface to the client
            # Overflow memory exhausted: reclaim superseded versions, retry.
            yield from self.garbage_collect()
            yield from self._send_page(server, key, contents, span=span)
        # Resolve the target group only now: a crash mid-send aborts the
        # pageout before any parity bookkeeping (the retry must not fold
        # the page into a buffer twice), and garbage collection triggered
        # during the send may have sealed what used to be the open group.
        group = self._current
        if any(m.server.name == server.name for m in group.members):
            # The rotation shrank (crash recovery removed a server), so
            # the open group would take a second member from one server —
            # which would break single-crash recoverability.  Seal it
            # early (groups may be smaller than S) and start fresh.
            self._current = self._open_group()
            yield from self._seal_detached(group, span=span)
            group = self._current
        member = GroupMember(page_id, incarnation, server, group)
        span.phase("parity.xor")
        yield from self._xor_into_buffer(group, contents)
        self._rr += 1
        group.members.append(member)
        if previous is not None:
            self._retire(previous)
        self._location[page_id] = member
        self.counters.add("pageouts")
        if group is self._current and len(group.members) >= len(self.servers):
            # Detach the full group first: GC triggered by the seal (or
            # concurrent recovery) must log into a fresh group.
            self._current = self._open_group()
            yield from self._seal_detached(group, span=span)

    def _seal_detached(self, group: ParityGroup, span=NULL_SPAN):
        """Seal a detached group; on crash it stays pending (and remains
        recoverable through its client-side buffer meanwhile)."""
        self._pending_seals.append(group)
        yield from self._seal(group, span=span)
        if group in self._pending_seals:
            self._pending_seals.remove(group)

    def _seal(self, group: ParityGroup, span=NULL_SPAN):
        """Ship the group's parity buffer to the parity server.

        Idempotent: reentrant callers (GC inside a pending-seal retry)
        may race to seal the same group; only the first transfer runs.
        """
        if group.sealed:
            return
        yield from self.stack.send_page(
            self.client_host, self.parity_server.host.name, self.page_size,
            span=span, label="parity",
        )
        self.counters.add("transfers")
        self.counters.add("parity_transfers")
        span.phase("server")
        try:
            yield from self.parity_server.store(group.parity_key, group.buffer)
        except ServerUnavailable:
            if self._in_gc:
                raise
            # Parity server out of room: compact, then retry the seal.
            yield from self.garbage_collect()
            yield from self.parity_server.store(group.parity_key, group.buffer)
        self.sim.tracer.emit(
            "policy", "group_seal", gid=group.gid, members=len(group.members)
        )
        group.sealed = True
        group.buffer = None  # the parity server holds it now
        if group.all_inactive:
            # Every member was superseded before the seal; reuse at once.
            for m in group.members:
                m.server.free([m.key])
            self.parity_server.free([group.parity_key])
            del self._groups[group.gid]
            self.counters.add("groups_reused")

    # -------------------------------------------------------------- pagein
    def pagein(self, page_id: int, span=NULL_SPAN):
        member = self._location.get(page_id)
        if member is None:
            raise PageNotFound(page_id, where=self.name)
        self._require_live(member.server)
        contents = yield from self._fetch_page(member.server, member.key, span=span)
        self.counters.add("pageins")
        return contents

    def holds(self, page_id: int) -> bool:
        member = self._location.get(page_id)
        return (
            member is not None
            and member.server.is_alive
            and member.server.holds(member.key)
        )

    def release(self, page_id: int) -> None:
        member = self._location.pop(page_id, None)
        if member is not None:
            self._retire(member)

    def scrub_page(self, page_id: int, verify, span=NULL_SPAN):
        """Repair at-rest bit-rot from the page's log group.

        XORs the group's other members with its parity — the parity
        server's page for a sealed group, the client's own buffer for the
        open one (footnote 2) — verifies against the pageout checksum,
        and re-stores the clean bytes over the rotted incarnation.
        """
        member = self._location.get(page_id)
        if member is None or not member.server.is_alive:
            return None
        group = member.group
        pieces = []
        for other in group.members:
            if other is member:
                continue
            if not other.server.is_alive:
                # An undetected crash in the group: surface it so the
                # pager recovers, then retries this scrub.
                raise ServerCrashed(other.server.name)
            piece = yield from self._fetch_page(
                other.server, other.key, span=span, label="scrub"
            )
            pieces.append(piece)
        if group.sealed:
            if not self.parity_server.is_alive:
                return None
            parity = yield from self._fetch_page(
                self.parity_server, group.parity_key, span=span, label="scrub"
            )
            pieces.append(parity)
        else:
            pieces.append(group.buffer)
        contents = self._xor_all(pieces)
        if contents is None or not verify(contents):
            return None
        yield from self._send_page(
            member.server, member.key, contents, span=span, label="scrub"
        )
        self.counters.add("scrub_repairs")
        return contents

    # ---------------------------------------------------- garbage collection
    def garbage_collect(self):
        """Generator: compact fragmented groups (§2.2).

        Re-pageouts the *active* members of the most-fragmented sealed
        groups into the current group; once a victim group is fully
        inactive it is freed.  Each moved page costs one fetch plus one
        normal (logged) pageout.
        """
        self.gc_runs += 1
        self._in_gc = True
        self.sim.tracer.emit("policy", "gc_start", groups=len(self._groups))
        try:
            yield from self._collect()
        finally:
            self._in_gc = False
            self.sim.tracer.emit(
                "policy", "gc_done", moved=self.counters["gc_moved_pages"]
            )

    def _collect(self):
        """Compact the most-fragmented sealed groups.

        For each victim group: fetch its live members into client memory,
        dissolve the whole group (freeing every member slot *and* the
        parity page — safe, because the live data is now client-held),
        then re-log the live pages into the current group.  Fetch-first
        ordering is what lets cleaning make progress on a full server: a
        log cleaner cannot require free space before it frees space.
        """
        fragmented = sorted(
            (
                g
                for g in self._groups.values()
                if g.sealed and not g.all_inactive
                and any(not m.active for m in g.members)
            ),
            key=lambda g: sum(m.active for m in g.members),
        )
        if not fragmented:
            raise ServerUnavailable("any", reason="GC found nothing to reclaim")
        moved = 0
        for group in fragmented[: max(1, len(fragmented) // 2)]:
            live = []
            for member in group.members:
                if member.active and member.server.is_alive:
                    contents = yield from self._fetch_page(member.server, member.key)
                    self.counters.add("gc_transfers")
                    live.append((member.page_id, contents))
            for member in group.members:
                member.server.free([member.key])
            self.parity_server.free([group.parity_key])
            del self._groups[group.gid]
            self.counters.add("groups_reused")
            for page_id, contents in live:
                yield from self.pageout(page_id, contents)
                self.counters.add("gc_transfers")
                moved += 1
        self.counters.add("gc_moved_pages", moved)

    # -------------------------------------------------------------- recovery
    def recover(self, crashed: MemoryServer):
        """Reconstruct everything lost on ``crashed`` (§2.2).

        Each group holds at most one member per server (round-robin
        placement guarantees it), so a single crash costs one XOR
        reconstruction per affected group.  The reconstructed page is
        *cancelled out* of its old group's parity and, if still active,
        **re-logged as a fresh pageout** — the log-structured move, which
        keeps every group one-member-per-server and therefore keeps the
        system single-crash tolerant after recovery.
        """
        if crashed is self.parity_server:
            restored = yield from self._recover_parity_server()
            return restored
        # Drop the dead server from the rotation first so the re-logging
        # pageouts below never aim at it.
        self.servers = [s for s in self.servers if s is not crashed]
        if not self.servers:
            raise RecoveryError("no surviving data servers")
        restored = 0
        for group in list(self._groups.values()):
            lost = [m for m in group.members if m.server is crashed]
            if not lost:
                continue
            if len(lost) > 1:
                raise RecoveryError(
                    f"group {group.gid} lost {len(lost)} members; round-robin "
                    "placement should make this impossible"
                )
            member = lost[0]
            pieces = []
            for other in group.members:
                if other is member:
                    continue
                piece = yield from self._fetch_page(other.server, other.key)
                pieces.append(piece)
            if group.sealed:
                parity = yield from self._fetch_page(
                    self.parity_server, group.parity_key
                )
                pieces.append(parity)
            else:
                # An unsealed group's parity is the client's own buffer.
                pieces.append(group.buffer)
            contents = self._xor_all(pieces)
            # Stale incarnations reconstruct to *old* bytes by design —
            # only the active copy must match the pageout checksum.
            if member.active:
                self._recovery_verify(member.page_id, contents)
            # Cancel the lost member's contribution to its group's parity
            # and drop it from the group.
            group.members.remove(member)
            if group.sealed:
                yield from self.stack.send_page(
                    self.client_host, self.parity_server.host.name, self.page_size
                )
                self.counters.add("transfers")
                yield from self.parity_server.xor_into(group.parity_key, contents)
            else:
                yield from self._xor_into_buffer(group, contents)
            if group.gid in self._groups and group.sealed and group.all_inactive:
                # Removing the member may have emptied the group.
                for m in group.members:
                    m.server.free([m.key])
                self.parity_server.free([group.parity_key])
                del self._groups[group.gid]
                self.counters.add("groups_reused")
            if member.active:
                self._location.pop(member.page_id, None)
                yield from self.pageout(member.page_id, contents)
                restored += 1
        self.counters.add("recovered_pages", restored)
        return restored

    def _recover_parity_server(self):
        """Parity server died: data is intact; rebuild parity pages."""
        replacement = self.replacement_provider() if self.replacement_provider else None
        if replacement is None:
            raise RecoveryError("no replacement available for the parity server")
        rebuilt = 0
        for group in self._groups.values():
            if not group.sealed:
                continue
            pieces = []
            for member in group.members:
                piece = yield from self._fetch_page(member.server, member.key)
                pieces.append(piece)
            parity = self._xor_all(pieces)
            yield from self.stack.send_page(
                self.client_host, replacement.host.name, self.page_size
            )
            self.counters.add("transfers")
            yield from replacement.store(group.parity_key, parity)
            rebuilt += 1
        self.parity_server = replacement
        self.counters.add("recovered_parity_pages", rebuilt)
        return rebuilt

    @staticmethod
    def _xor_all(pieces) -> Optional[bytes]:
        real = [p for p in pieces if p is not None]
        if not real:
            return None  # metadata mode
        return reduce(xor_bytes, real)
