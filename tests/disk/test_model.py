"""Unit tests for the disk service-time model and queue disciplines."""

import pytest

from repro.config import DEC_RZ55, PAGE_SIZE, DiskSpec
from repro.sim import Simulator
from repro.disk import CLook, Disk, DiskRequest, FCFS


def drive(sim, generator):
    return sim.run_until_complete(sim.process(generator))


def test_spec_derived_quantities():
    assert DEC_RZ55.rotation_time == pytest.approx(60.0 / 3600.0)
    assert DEC_RZ55.avg_rotational_latency == pytest.approx(60.0 / 3600.0 / 2)


def test_spec_validation():
    with pytest.raises(ValueError):
        DiskSpec(bandwidth=0)
    with pytest.raises(ValueError):
        DiskSpec(rpm=0)


def test_seek_time_zero_for_same_position():
    sim = Simulator()
    disk = Disk(sim, DEC_RZ55)
    assert disk.seek_time(1000, 1000) == 0.0


def test_seek_time_monotone_in_distance():
    sim = Simulator()
    disk = Disk(sim, DEC_RZ55)
    cap = DEC_RZ55.capacity_bytes
    short = disk.seek_time(0, cap // 100)
    medium = disk.seek_time(0, cap // 10)
    long = disk.seek_time(0, cap - 1)
    assert 0 < short < medium < long


def test_average_random_seek_matches_spec():
    """The seek curve is calibrated so random seeks average avg_seek."""
    import random

    sim = Simulator()
    disk = Disk(sim, DEC_RZ55)
    rng = random.Random(1)
    cap = DEC_RZ55.capacity_bytes
    samples = [
        disk.seek_time(rng.randrange(cap), rng.randrange(cap)) for _ in range(5000)
    ]
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(DEC_RZ55.avg_seek, rel=0.05)


def test_sequential_read_pays_no_seek_or_rotation():
    sim = Simulator()
    disk = Disk(sim, DEC_RZ55)

    def driver(sim, disk):
        yield disk.read(0, PAGE_SIZE)
        t0 = sim.now
        yield disk.read(PAGE_SIZE, PAGE_SIZE)  # head is already there
        return sim.now - t0

    second = drive(sim, driver(sim, disk))
    assert second == pytest.approx(PAGE_SIZE / DEC_RZ55.sustained_bandwidth)


def test_random_page_service_time_near_paper():
    """Random 8 KB page reads in a compact swap area: ~22-30 ms; blended
    with ~13 ms streamed writes this gives the paper's "about 17 ms"."""
    import random

    sim = Simulator()
    disk = Disk(sim, DEC_RZ55)
    rng = random.Random(2)
    area = 64 * 1024 * 1024  # a 64 MB swap region
    base = (DEC_RZ55.capacity_bytes - area) // 2
    n = 200

    def driver(sim, disk):
        for _ in range(n):
            slot = rng.randrange(area // PAGE_SIZE)
            yield disk.read(base + slot * PAGE_SIZE, PAGE_SIZE)
        return sim.now

    elapsed = drive(sim, driver(sim, disk))
    per_page = elapsed / n
    assert 0.018 < per_page < 0.032


def test_disk_request_validation():
    sim = Simulator()
    done = sim.event()
    with pytest.raises(ValueError):
        DiskRequest(-1, 10, False, done, 0.0)
    with pytest.raises(ValueError):
        DiskRequest(0, 0, False, done, 0.0)


def test_request_past_capacity_rejected():
    sim = Simulator()
    disk = Disk(sim, DEC_RZ55)
    with pytest.raises(ValueError):
        disk.read(DEC_RZ55.capacity_bytes - 10, 100)


def test_requests_serialize_through_one_head():
    sim = Simulator()
    disk = Disk(sim, DEC_RZ55)
    done_times = []

    def submit(sim, disk, offset):
        yield disk.read(offset, PAGE_SIZE)
        done_times.append(sim.now)

    sim.process(submit(sim, disk, 0))
    sim.process(submit(sim, disk, 10 * PAGE_SIZE))
    sim.run()
    assert len(done_times) == 2
    assert done_times[0] < done_times[1]


def test_counters_and_tally():
    sim = Simulator()
    disk = Disk(sim, DEC_RZ55)

    def driver(sim, disk):
        yield disk.write(0, PAGE_SIZE)
        yield disk.read(0, PAGE_SIZE)

    drive(sim, driver(sim, disk))
    assert disk.counters["writes"] == 1
    assert disk.counters["reads"] == 1
    assert disk.counters["bytes"] == 2 * PAGE_SIZE
    assert disk.service_times.count == 2


def test_fcfs_order():
    q = FCFS()
    sim = Simulator()
    a = DiskRequest(100, 10, False, sim.event(), 0.0)
    b = DiskRequest(0, 10, False, sim.event(), 0.0)
    q.push(a)
    q.push(b)
    assert q.pop(head_position=0) is a
    assert q.pop(head_position=0) is b


def test_clook_sweeps_upward_then_wraps():
    q = CLook()
    sim = Simulator()
    low = DiskRequest(10, 1, False, sim.event(), 0.0)
    mid = DiskRequest(500, 1, False, sim.event(), 0.0)
    high = DiskRequest(900, 1, False, sim.event(), 0.0)
    for r in (high, low, mid):
        q.push(r)
    assert q.pop(head_position=400) is mid  # nearest ahead
    assert q.pop(head_position=501) is high  # continue sweep
    assert q.pop(head_position=901) is low  # wrap to lowest


def test_clook_reduces_total_seek_vs_fcfs():
    """Elevator scheduling beats FCFS on a batch of scattered requests."""
    import random

    def total_time(scheduler):
        sim = Simulator()
        disk = Disk(sim, DEC_RZ55, scheduler=scheduler)
        rng = random.Random(3)
        offsets = [
            rng.randrange(DEC_RZ55.capacity_bytes // PAGE_SIZE - 1) * PAGE_SIZE
            for _ in range(50)
        ]

        def driver(sim, disk):
            events = [disk.read(off, PAGE_SIZE) for off in offsets]
            yield sim.all_of(events)
            return sim.now

        return sim.run_until_complete(sim.process(driver(sim, disk)))

    assert total_time(CLook()) < total_time(FCFS())
