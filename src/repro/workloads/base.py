"""Workload framework: page-reference-trace generators.

The pager only ever sees the *page-level* fault stream, so each paper
application (§4: GAUSS, QSORT, FFT, MVEC, FILTER, CC) is modelled as a
generator of ``(page_id, is_write, cpu_seconds)`` references that
reproduces the algorithm's page-level structure: how many regions it
touches, in what order, how often it revisits them, and how much of what
it touches it dirties.

Two modelling decisions (see DESIGN.md §2):

* **Blocked/zigzag sweeps.**  A naive cyclic sweep over a region slightly
  larger than memory makes LRU-class replacement evict every page just
  before reuse — a pathology real scientific codes of the era avoided by
  organising arrays for paged memory (Newman 1995, cited by the paper for
  FILTER).  Sweeping alternately forward and backward ("zigzag") gives
  the realistic behaviour: each extra pass faults roughly on the
  *deficit* (working set minus memory), not on the whole region.  This is
  what makes the paper's measured fault counts (§4.3: 2718 pageouts, 2055
  pageins for a 24 MB FFT on a 32 MB machine) reproducible at all.
* **Calibrated CPU per touch.**  Each workload charges a per-page-touch
  CPU cost (``CPU_SECONDS_PER_PAGE_TOUCH``) chosen so the utime :
  paging-time proportions land near the paper's Fig 2 / §4.3 breakdown
  on the reference machine.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from ..config import PAGE_SIZE

__all__ = ["Workload", "sweep", "zigzag_passes", "Region"]

Ref = Tuple[int, bool, float]


def sweep(
    start_page: int,
    n_pages: int,
    cpu_per_page: float,
    write: bool = False,
    reverse: bool = False,
) -> Iterator[Ref]:
    """One pass over ``n_pages`` consecutive pages.

    ``reverse`` sweeps high-to-low; alternating direction across passes
    (see :func:`zigzag_passes`) is what keeps re-pass faults proportional
    to the memory deficit instead of the whole region.
    """
    if n_pages < 0:
        raise ValueError(f"negative page count: {n_pages}")
    pages = range(start_page + n_pages - 1, start_page - 1, -1) if reverse else range(
        start_page, start_page + n_pages
    )
    for page in pages:
        yield (page, write, cpu_per_page)


def zigzag_passes(
    start_page: int,
    n_pages: int,
    n_passes: int,
    cpu_per_page: float,
    write: bool = False,
    first_reverse: bool = False,
) -> Iterator[Ref]:
    """``n_passes`` sweeps over a region, alternating direction."""
    for i in range(n_passes):
        reverse = first_reverse ^ (i % 2 == 1)
        yield from sweep(start_page, n_pages, cpu_per_page, write=write, reverse=reverse)


class Region:
    """A named, contiguous page range inside a workload's address space."""

    def __init__(self, name: str, start_page: int, n_pages: int):
        if n_pages <= 0:
            raise ValueError(f"region {name!r} needs at least one page")
        self.name = name
        self.start_page = start_page
        self.n_pages = n_pages

    @property
    def end_page(self) -> int:
        return self.start_page + self.n_pages

    def page(self, index: int) -> int:
        """The absolute page id of the ``index``-th page in the region."""
        if not 0 <= index < self.n_pages:
            raise IndexError(f"page index {index} outside region {self.name!r}")
        return self.start_page + index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Region({self.name!r}, pages [{self.start_page}, {self.end_page}))"


class Layout:
    """Allocates consecutive regions in one address space."""

    def __init__(self, page_size: int = PAGE_SIZE):
        self.page_size = page_size
        self._next_page = 0
        self.regions = {}

    def add(self, name: str, nbytes: int) -> Region:
        """Allocate a region of at least ``nbytes`` (page-rounded)."""
        n_pages = max(1, -(-nbytes // self.page_size))
        region = Region(name, self._next_page, n_pages)
        self._next_page += n_pages
        self.regions[name] = region
        return region

    @property
    def total_pages(self) -> int:
        return self._next_page


class Workload:
    """Base class: a named trace generator with a known footprint."""

    name = "abstract"

    #: True when every :meth:`trace` call yields the same reference
    #: stream (all built-ins: sweeps are pure functions of the layout and
    #: the synthetics re-seed a private RNG per call).  The trace
    #: compiler only engages for deterministic workloads.
    deterministic = True

    #: Attribute names that, with the class name and page size, pin the
    #: reference stream exactly — the workload part of a fault schedule's
    #: cache key.  ``None`` means "not content-addressable": the schedule
    #: is still compiled, just never cached across processes.
    _schedule_token_fields: Optional[Tuple[str, ...]] = None

    def __init__(self, page_size: int = PAGE_SIZE):
        self.page_size = page_size
        self.layout = Layout(page_size)
        self._materialized: Optional[Tuple[Ref, ...]] = None

    def schedule_token(self) -> Optional[Tuple]:
        """Identity of the reference stream for schedule caching.

        Returns a JSON-serialisable tuple (class name, page size, the
        class's ``_schedule_token_fields`` values) or None when the
        stream has no stable content address.
        """
        fields = self._schedule_token_fields
        if fields is None:
            return None
        return (type(self).__name__, self.page_size) + tuple(
            getattr(self, name) for name in fields
        )

    def materialize(self) -> Tuple[Ref, ...]:
        """The full reference stream as a cached tuple.

        Only meaningful for deterministic workloads; tooling that walks
        the stream repeatedly (the trace compiler's tests, benchmarks)
        uses this to pay generation once.
        """
        if self._materialized is None:
            self._materialized = tuple(self.trace())
        return self._materialized

    @property
    def footprint_pages(self) -> int:
        """Total distinct pages the workload touches."""
        return self.layout.total_pages

    @property
    def footprint_bytes(self) -> int:
        return self.footprint_pages * self.page_size

    def trace(self) -> Iterator[Ref]:
        """Yield ``(page_id, is_write, cpu_seconds)`` references."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"{self.footprint_bytes / (1 << 20):.1f} MB>"
        )
