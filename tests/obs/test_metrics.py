"""MetricsRegistry snapshots and exact snapshot merging."""

import pytest

from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.telemetry import LogHistogram, TimeSeries
from repro.sim.monitor import Counter, Tally, UtilizationTracker


def test_snapshot_expands_counters_and_tallies():
    registry = MetricsRegistry()
    counter = registry.attach("pager", Counter())
    counter.add("pageouts", 3)
    tally = registry.attach("net.latency", Tally())
    tally.observe(2.0)
    tally.observe(4.0)
    registry.gauge("net.utilization", lambda: 0.5)
    snapshot = registry.snapshot()
    assert snapshot["pager.pageouts"] == 3
    assert snapshot["net.latency.count"] == 2
    assert snapshot["net.latency.mean"] == 3.0
    assert snapshot["net.latency.__tally__"] is True
    assert snapshot["net.utilization"] == 0.5
    assert list(snapshot) == sorted(snapshot)


def test_empty_tally_snapshot_is_json_safe():
    registry = MetricsRegistry()
    registry.attach("t", Tally())
    snapshot = registry.snapshot()
    assert snapshot["t.count"] == 0
    assert snapshot["t.mean"] is None  # no NaN in JSON payloads


def test_duplicate_names_rejected():
    registry = MetricsRegistry()
    registry.attach("x", Counter())
    with pytest.raises(ValueError, match="already registered"):
        registry.attach("x", Counter())
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("x", lambda: 0.0)


def test_raw_utilization_tracker_snapshots_as_none():
    registry = MetricsRegistry()
    registry.attach("u", UtilizationTracker())
    assert registry.snapshot() == {"u": None}


def test_merge_sums_integer_counters():
    merged = merge_snapshots([{"pager.pageouts": 2}, {"pager.pageouts": 5}])
    assert merged == {"pager.pageouts": 7}


def test_merge_keeps_first_value_for_floats_and_bools():
    # Utilisations are instantaneous readings: summing them would be
    # meaningless, so the first run's value survives.
    merged = merge_snapshots(
        [
            {"net.utilization": 0.25, "flag": True},
            {"net.utilization": 0.75, "flag": False},
        ]
    )
    assert merged["net.utilization"] == 0.25
    assert merged["flag"] is True


def test_merge_folds_tallies_exactly():
    def snap(values):
        registry = MetricsRegistry()
        tally = registry.attach("lat", Tally())
        for value in values:
            tally.observe(value)
        return registry.snapshot()

    a, b = [1.0, 2.0, 3.0], [10.0, 20.0]
    merged = merge_snapshots([snap(a), snap(b)])

    single = Tally()
    for value in a + b:
        single.observe(value)
    assert merged["lat.count"] == single.count
    assert merged["lat.total"] == pytest.approx(single.total)
    assert merged["lat.mean"] == pytest.approx(single.mean)
    assert merged["lat.stddev"] == pytest.approx(single.stddev)
    assert merged["lat.min"] == single.minimum
    assert merged["lat.max"] == single.maximum
    assert merged["lat.__tally__"] is True


def test_merge_tolerates_empty_tally_shards():
    def snap(values):
        registry = MetricsRegistry()
        tally = registry.attach("lat", Tally())
        for value in values:
            tally.observe(value)
        return registry.snapshot()

    merged = merge_snapshots([snap([]), snap([4.0])])
    assert merged["lat.count"] == 1
    assert merged["lat.mean"] == 4.0


def test_merge_of_nothing_is_empty():
    assert merge_snapshots([]) == {}


def _hist_snap(values):
    registry = MetricsRegistry()
    hist = registry.attach("lat.hist", LogHistogram())
    for value in values:
        hist.observe(value)
    return registry.snapshot()


def test_snapshot_expands_histograms_and_series():
    registry = MetricsRegistry()
    hist = registry.attach("lat", LogHistogram())
    hist.observe(1.0)
    series = registry.attach("util", TimeSeries(capacity=4))
    series.record(0.0, 0.5)
    snapshot = registry.snapshot()
    assert snapshot["lat.__hist__"] is True
    assert snapshot["lat.count"] == 1
    assert snapshot["util.__series__"] is True
    assert snapshot["util.times"] == [0.0]
    assert snapshot["util.values"] == [0.5]


def test_merge_sums_histogram_buckets_and_recomputes_percentiles():
    a, b = [0.001, 0.002, 0.004], [0.1, 0.2]
    merged = merge_snapshots([_hist_snap(a), _hist_snap(b)])

    single = LogHistogram()
    for value in a + b:
        single.observe(value)
    expected = single.as_dict()
    assert merged["lat.hist.count"] == expected["count"]
    assert merged["lat.hist.p50"] == pytest.approx(expected["p50"])
    assert merged["lat.hist.p99"] == pytest.approx(expected["p99"])
    assert merged["lat.hist.__hist__"] is True


def test_merge_keeps_first_series_timeline():
    def snap(times, values):
        registry = MetricsRegistry()
        series = registry.attach("s", TimeSeries(capacity=8))
        for t, v in zip(times, values):
            series.record(t, v)
        return registry.snapshot()

    merged = merge_snapshots(
        [snap([0.0, 1.0], [5.0, 6.0]), snap([0.0, 1.0], [7.0, 8.0])]
    )
    assert merged["s.values"] == [5.0, 6.0]
    assert merged["s.__series__"] is True


def test_merge_fails_loudly_on_instrument_kind_conflict():
    # The same dotted name must not silently mean a tally in one run and
    # a histogram in another — that merge would produce garbage.
    tally_snap = {"lat.count": 1, "lat.mean": 2.0, "lat.__tally__": True}
    hist_snap = {"lat.count": 1, "lat.buckets": {"0": 1}, "lat.__hist__": True}
    with pytest.raises(ValueError, match="lat"):
        merge_snapshots([tally_snap, hist_snap])


def test_merge_fails_loudly_on_marked_vs_plain_conflict():
    plain = {"lat.count": 3}
    hist_snap = {"lat.count": 1, "lat.buckets": {"0": 1}, "lat.__hist__": True}
    with pytest.raises(ValueError, match="lat"):
        merge_snapshots([plain, hist_snap])


def test_merge_fails_loudly_on_double_marked_snapshot():
    bad = {"x.count": 1, "x.__tally__": True, "x.__hist__": True}
    with pytest.raises(ValueError, match="x"):
        merge_snapshots([bad])
