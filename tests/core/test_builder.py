"""build_cluster assembly and validation tests."""

import pytest

from repro.config import SwitchedNetworkSpec
from repro.core import POLICY_NAMES, build_cluster
from repro.errors import ConfigurationError
from repro.net import EthernetCsmaCd, SwitchedNetwork, TokenRing
from repro.net.token_ring import TokenRingSpec


def test_all_policy_names_buildable():
    for policy in POLICY_NAMES:
        kwargs = dict(policy=policy)
        if policy == "mirroring":
            kwargs["n_servers"] = 2
        cluster = build_cluster(**kwargs)
        assert cluster.machine is not None


def test_unknown_policy_rejected():
    with pytest.raises(ConfigurationError):
        build_cluster(policy="raid5")


def test_mirroring_needs_two_servers():
    with pytest.raises(ConfigurationError):
        build_cluster(policy="mirroring", n_servers=1)


def test_zero_servers_rejected():
    with pytest.raises(ConfigurationError):
        build_cluster(policy="no-reliability", n_servers=0)


def test_disk_policy_has_no_servers():
    cluster = build_cluster(policy="disk")
    assert cluster.servers == []
    assert cluster.policy is None
    assert cluster.pager.name == "disk"


def test_parity_policies_get_parity_server():
    for policy in ("parity", "parity-logging"):
        cluster = build_cluster(policy=policy, n_servers=4)
        assert cluster.parity_server is not None
        assert cluster.parity_server not in cluster.servers


def test_network_selection():
    assert isinstance(build_cluster().network, EthernetCsmaCd)
    assert isinstance(
        build_cluster(switched_spec=SwitchedNetworkSpec()).network, SwitchedNetwork
    )
    assert isinstance(
        build_cluster(token_ring_spec=TokenRingSpec()).network, TokenRing
    )


def test_conflicting_network_specs_rejected():
    with pytest.raises(ConfigurationError):
        build_cluster(
            switched_spec=SwitchedNetworkSpec(), token_ring_spec=TokenRingSpec()
        )


def test_all_hosts_attached_to_network():
    cluster = build_cluster(policy="parity-logging", n_servers=4)
    assert cluster.network.is_attached("client")
    for server in cluster.servers + [cluster.parity_server]:
        assert cluster.network.is_attached(server.host.name)


def test_registry_populated_with_policy_servers():
    cluster = build_cluster(policy="no-reliability", n_servers=3)
    assert len(cluster.registry) == 3


def test_overflow_fraction_reaches_servers():
    cluster = build_cluster(
        policy="parity-logging",
        n_servers=4,
        overflow_fraction=0.10,
        server_capacity_pages=100,
    )
    for server in cluster.servers:
        assert server.capacity_pages == 110


def test_seed_controls_ethernet_randomness():
    """Different seeds change collision timing; same seed reproduces."""
    from repro.workloads import Mvec

    def run(seed):
        cluster = build_cluster(policy="mirroring", n_servers=2, seed=seed)
        return cluster.run(Mvec(n=1800)).etime

    assert run(1) == run(1)


def test_spare_server_registration():
    cluster = build_cluster(policy="no-reliability", n_servers=2)
    before = len(cluster.registry)
    spare = cluster.add_spare_server()
    assert len(cluster.registry) == before + 1
    assert cluster.registry.get(spare.name) is spare
