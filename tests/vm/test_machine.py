"""Unit tests for the Machine (VM system) against the local-disk pager."""

import pytest

from repro.config import DEC_RZ55, PAGE_SIZE, MachineSpec
from repro.disk import Disk, PartitionBackend
from repro.errors import PagingError
from repro.sim import Simulator
from repro.units import megabytes
from repro.vm import LocalDiskPager, Machine


def small_spec(user_pages=4, page_size=PAGE_SIZE):
    """A tiny machine: `user_pages` frames for the application."""
    kernel = megabytes(1)
    return MachineSpec(
        name="tiny",
        ram_bytes=kernel + user_pages * page_size,
        kernel_resident_bytes=kernel,
        page_size=page_size,
    )


def make_machine(sim, user_pages=4, content_mode=False, **kwargs):
    spec = small_spec(user_pages)
    disk = Disk(sim, DEC_RZ55)
    backend = PartitionBackend(disk, spec.page_size, n_slots=4096)
    pager = LocalDiskPager(backend)
    return Machine(
        sim, spec, pager, content_mode=content_mode, init_time=0.0, **kwargs
    )


def test_no_faults_when_working_set_fits():
    sim = Simulator()
    machine = make_machine(sim, user_pages=8)
    trace = [(p, False, 0.001) for p in range(4)] * 10
    report = machine.run_to_completion(trace)
    assert report.faults == 4  # first-touch faults only
    assert report.pageins == 0
    assert report.pageouts == 0
    assert report.zero_fills == 4


def test_utime_accumulates_scaled_by_cpu_speed():
    sim = Simulator()
    spec = small_spec(8)
    fast = MachineSpec(
        name="fast",
        ram_bytes=spec.ram_bytes,
        kernel_resident_bytes=spec.kernel_resident_bytes,
        page_size=spec.page_size,
        cpu_speed=2.0,
    )
    disk = Disk(sim, DEC_RZ55)
    pager = LocalDiskPager(PartitionBackend(disk, spec.page_size, n_slots=64))
    machine = Machine(sim, fast, pager, init_time=0.0)
    trace = [(0, False, 0.01) for _ in range(100)]
    report = machine.run_to_completion(trace)
    assert report.utime == pytest.approx(0.5)  # 1.0 s of work at 2x speed


def test_clean_evictions_cause_no_pageouts():
    sim = Simulator()
    machine = make_machine(sim, user_pages=2)
    # Read-only sweep over 6 pages: evictions happen, but nothing dirty.
    trace = [(p, False, 0.0001) for p in range(6)]
    report = machine.run_to_completion(trace)
    assert report.pageouts == 0
    assert report.faults == 6


def test_dirty_eviction_pages_out_and_back_in():
    sim = Simulator()
    machine = make_machine(sim, user_pages=2)
    trace = [
        (0, True, 0.001),  # dirty page 0
        (1, False, 0.001),
        (2, False, 0.001),  # evicts 0 (dirty -> pageout)
        (0, False, 0.001),  # pagein of 0
    ]
    report = machine.run_to_completion(trace)
    assert report.pageouts >= 1
    assert report.pageins >= 1


def test_content_mode_verifies_roundtrip():
    sim = Simulator()
    machine = make_machine(sim, user_pages=2, content_mode=True)
    # Write pages, force them out, read them back: verification must pass.
    trace = [(p, True, 0.0001) for p in range(8)]
    trace += [(p, False, 0.0001) for p in range(8)]
    report = machine.run_to_completion(trace)
    assert report.pageins > 0  # round trips actually happened


def test_content_mode_detects_corruption():
    class LyingPager(LocalDiskPager):
        def pagein(self, page_id):
            yield from super().pagein(page_id)
            return b"\xff" * PAGE_SIZE  # corrupt data

    sim = Simulator()
    spec = small_spec(2)
    disk = Disk(sim, DEC_RZ55)
    pager = LyingPager(PartitionBackend(disk, spec.page_size, n_slots=64))
    machine = Machine(sim, spec, pager, content_mode=True, init_time=0.0)
    trace = [(p, True, 0.0001) for p in range(4)] + [(0, False, 0.0001)]
    with pytest.raises(PagingError, match="corrupt"):
        machine.run_to_completion(trace)


def test_etime_exceeds_utime_when_paging():
    sim = Simulator()
    machine = make_machine(sim, user_pages=2)
    trace = [(p % 6, True, 0.0005) for p in range(60)]
    report = machine.run_to_completion(trace)
    assert report.etime > report.utime
    assert report.ptime > 0


def test_inittime_recorded():
    sim = Simulator()
    spec = small_spec(4)
    disk = Disk(sim, DEC_RZ55)
    pager = LocalDiskPager(PartitionBackend(disk, spec.page_size, n_slots=64))
    machine = Machine(sim, spec, pager, init_time=0.21)
    report = machine.run_to_completion([(0, False, 0.01)])
    assert report.inittime == pytest.approx(0.21)
    assert report.etime >= 0.21


def test_report_summary_mentions_key_fields():
    sim = Simulator()
    machine = make_machine(sim)
    report = machine.run_to_completion([(0, False, 0.01)], name="demo")
    text = report.summary()
    assert "demo" in text and "etime" in text and "faults" in text
    # The paging-traffic counters must all appear (zero_fills and
    # page_transfers were historically dropped from the line).
    assert f"zero={report.zero_fills}" in text
    assert f"transfers={report.page_transfers}" in text
    assert f"in={report.pageins}" in text and f"out={report.pageouts}" in text


def test_lru_beats_fifo_on_looping_with_hot_page():
    """A hot page plus a sweeping loop: LRU keeps the hot page resident."""
    from repro.vm import FifoReplacement, LruReplacement

    def faults(policy):
        sim = Simulator()
        spec = small_spec(3)
        disk = Disk(sim, DEC_RZ55)
        pager = LocalDiskPager(PartitionBackend(disk, spec.page_size, n_slots=256))
        # free_batch=1: batched eviction on a 3-frame machine would evict
        # everything per fault and erase the policy difference under test.
        machine = Machine(
            sim, spec, pager, replacement=policy, init_time=0.0, free_batch=1
        )
        trace = []
        for i in range(60):
            trace.append((0, False, 0.0001))  # hot page
            trace.append((1 + (i % 4), False, 0.0001))  # sweep 4 cold pages
        return machine.run_to_completion(trace).faults

    assert faults(LruReplacement()) < faults(FifoReplacement())


def test_transfers_counted_from_pager():
    sim = Simulator()
    machine = make_machine(sim, user_pages=2)
    trace = [(p, True, 0.0001) for p in range(6)] + [(0, False, 0.0001)]
    report = machine.run_to_completion(trace)
    assert report.page_transfers == report.pageins + report.pageouts


def test_machine_validation():
    sim = Simulator()
    spec = small_spec(4)
    disk = Disk(sim, DEC_RZ55)
    pager = LocalDiskPager(PartitionBackend(disk, spec.page_size, n_slots=64))
    with pytest.raises(ValueError):
        Machine(sim, spec, pager, init_time=-1.0)
    with pytest.raises(ValueError):
        Machine(sim, spec, pager, max_cpu_chunk=0.0)
