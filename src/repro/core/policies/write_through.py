"""WRITE THROUGH: remote memory as a write-through cache of the disk (§4.7).

The alternative reliability approach the paper compares against (citing
Feeley et al.): every paged-out page goes *both* to a remote server and
to the local disk, with the two transfers executed in parallel.  Reads
are served from remote memory at network speed.  A server crash loses
nothing — the disk has everything — so recovery just re-populates remote
memory from disk.

The paper's verdict: on equal disk/network bandwidth, write-through beats
parity logging and trails no-reliability slightly (Fig 5); on faster
networks it becomes disk-bound while parity logging keeps scaling.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...disk.backend import PartitionBackend
from ...errors import PageNotFound, RecoveryError, ServerUnavailable
from ...sim import NULL_SPAN
from ..server import MemoryServer
from .base import ReliabilityPolicy

__all__ = ["WriteThrough"]


class WriteThrough(ReliabilityPolicy):
    """One remote copy plus a disk copy written in parallel."""

    name = "write-through"
    memory_overhead_factor = 1.0  # remote memory holds a single copy

    def __init__(self, client_host, stack, servers, disk_backend: PartitionBackend, **kwargs):
        super().__init__(client_host, stack, servers, **kwargs)
        self.disk_backend = disk_backend
        self._placement: Dict[int, MemoryServer] = {}
        self._disk_contents: Dict[int, Optional[bytes]] = {}
        self._next = 0

    def _place(self, page_id: int) -> MemoryServer:
        server = self._placement.get(page_id)
        if server is not None and server.is_alive:
            return server
        candidates = [s for s in self._live_servers() if s.free_pages > 0]
        if not candidates:
            raise ServerUnavailable("any", reason="all servers full or dead")
        server = candidates[self._next % len(candidates)]
        self._next += 1
        self._placement[page_id] = server
        return server

    def pageout(self, page_id: int, contents: Optional[bytes], span=NULL_SPAN):
        server = self._place(page_id)

        def to_remote():
            yield from self._send_page(server, page_id, contents)

        def to_disk():
            yield from self.disk_backend.write_page(page_id)
            self._disk_contents[page_id] = contents
            self.counters.add("disk_writes")

        # "These two page transfers are executed in parallel" (§4.7):
        # the pageout completes when the slower of the two lands.  Span
        # phases are sequential segments, so the concurrent branches are
        # booked as one enclosing "transfer" phase (the slower branch's
        # duration) rather than threaded into each branch.
        span.phase("transfer")
        remote = self.sim.process(to_remote(), name=f"wt-remote:{page_id}")
        disk = self.sim.process(to_disk(), name=f"wt-disk:{page_id}")
        yield self.sim.all_of([remote, disk])
        self.counters.add("pageouts")

    def pagein(self, page_id: int, span=NULL_SPAN):
        server = self._placement.get(page_id)
        if server is not None and not server.is_alive:
            # Surface the crash so the client re-populates remote memory;
            # until then reads would crawl at disk speed.
            self._require_live(server)
        if server is not None and server.holds(page_id):
            contents = yield from self._fetch_page(server, page_id, span=span)
            self.counters.add("pageins")
            return contents
        # Server gone: the disk always has it (the whole point).
        if not self.disk_backend.holds(page_id):
            raise PageNotFound(page_id, where=self.name)
        span.phase("disk")
        yield from self.disk_backend.read_page(page_id)
        self.counters.add("pageins")
        self.counters.add("disk_reads")
        return self._disk_contents.get(page_id)

    def holds(self, page_id: int) -> bool:
        server = self._placement.get(page_id)
        if server is not None and server.is_alive and server.holds(page_id):
            return True
        return self.disk_backend.holds(page_id)

    def release(self, page_id: int) -> None:
        server = self._placement.pop(page_id, None)
        if server is not None:
            server.free([page_id])
        if self.disk_backend.holds(page_id):
            self.disk_backend.release_page(page_id)
        self._disk_contents.pop(page_id, None)

    def scrub_page(self, page_id: int, verify, span=NULL_SPAN):
        """Repair at-rest bit-rot from the authoritative disk copy."""
        if not self.disk_backend.holds(page_id):
            return None
        span.phase("disk")
        yield from self.disk_backend.read_page(page_id)
        self.counters.add("disk_reads")
        contents = self._disk_contents.get(page_id)
        if contents is None or not verify(contents):
            return None
        server = self._placement.get(page_id)
        if server is not None and server.is_alive and server.holds(page_id):
            # Overwrite the rotted remote copy so reads stay at network
            # speed instead of repeatedly falling back to the disk.
            yield from self._send_page(
                server, page_id, contents, span=span, label="scrub"
            )
        self.counters.add("scrub_repairs")
        return contents

    def recover(self, crashed: MemoryServer):
        """Re-populate remote memory from the disk copies."""
        affected = [p for p, s in self._placement.items() if s is crashed]
        survivors = [s for s in self._live_servers() if s is not crashed]
        restored = 0
        for page_id in affected:
            if not self.disk_backend.holds(page_id):
                raise RecoveryError(f"disk lost page {page_id} (impossible)")
            yield from self.disk_backend.read_page(page_id)
            self.counters.add("disk_reads")
            target = max(
                (s for s in survivors if s.free_pages > 0),
                key=lambda s: s.free_pages,
                default=None,
            )
            if target is None:
                # No remote room: pages stay disk-only until memory frees.
                del self._placement[page_id]
                continue
            yield from self._send_page(target, page_id, self._disk_contents.get(page_id))
            self._placement[page_id] = target
            restored += 1
        self.counters.add("recovered_pages", restored)
        return restored
