"""ExperimentRunner: ordering, parallel equivalence, cache semantics."""

import dataclasses

import pytest

from repro.runner import ExperimentRunner, RunSpec

#: A fast 2x2 matrix: small enough to run in seconds, big enough to page.
SPECS = [
    RunSpec.make(workload, policy, workload_kwargs={"n": 1100})
    for workload in ("mvec", "gauss")
    for policy in ("no-reliability", "disk")
]


def _reports(results):
    return [dataclasses.asdict(r.report) for r in results]


def test_results_come_back_in_spec_order():
    results = ExperimentRunner().run(SPECS)
    assert [r.spec for r in results] == SPECS


def test_parallel_matches_serial_exactly():
    serial = ExperimentRunner(jobs=1).run(SPECS)
    parallel = ExperimentRunner(jobs=2).run(SPECS)
    assert _reports(serial) == _reports(parallel)
    assert [r.extras for r in serial] == [r.extras for r in parallel]


def test_meta_records_provenance():
    result = ExperimentRunner().run_one(
        RunSpec.make("gauss", "no-reliability", workload_kwargs={"n": 900}, seed=3)
    )
    meta = result.report.meta
    assert meta["workload"] == "gauss"
    assert meta["policy"] == "no-reliability"
    assert meta["seed"] == 3


def test_cache_hit_equals_cold_run(tmp_path):
    cold_runner = ExperimentRunner(use_cache=True, cache_dir=tmp_path)
    cold = cold_runner.run(SPECS)
    assert all(not r.cached for r in cold)
    assert cold_runner.cache.misses == len(SPECS)

    warm_runner = ExperimentRunner(use_cache=True, cache_dir=tmp_path)
    warm = warm_runner.run(SPECS)
    assert all(r.cached for r in warm)
    assert warm_runner.cache.hits == len(SPECS)

    # cached=True is display-only: hits compare equal to the cold runs.
    assert warm == cold
    assert _reports(warm) == _reports(cold)


def test_no_cache_runner_never_touches_disk(tmp_path):
    runner = ExperimentRunner(use_cache=False)
    assert runner.cache is None
    runner.run([SPECS[0]])
    assert not list(tmp_path.iterdir())


def test_run_matrix_shapes_by_workload_then_policy():
    reports = ExperimentRunner().run_matrix(
        ["mvec"], ["no-reliability", "disk"], workload_kwargs={"n": 1100}
    )
    assert list(reports) == ["mvec"]
    assert list(reports["mvec"]) == ["no-reliability", "disk"]
    assert reports["mvec"]["disk"].etime > 0


def test_jobs_validation():
    assert ExperimentRunner(jobs=0).jobs >= 1
    assert ExperimentRunner(jobs=None).jobs >= 1
    with pytest.raises(ValueError):
        ExperimentRunner(jobs=-1)
