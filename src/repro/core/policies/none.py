"""NO RELIABILITY: plain remote memory paging (§4.1's fastest policy).

Each page lives on exactly one server (chosen for free space at first
pageout, sticky thereafter).  One transfer per pageout, one per pagein,
no extra memory — and no recovery: a server crash loses its pages.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...errors import PageNotFound, RecoveryError, ServerUnavailable
from ...sim import NULL_SPAN
from ..server import MemoryServer
from .base import ReliabilityPolicy

__all__ = ["NoReliability"]


class NoReliability(ReliabilityPolicy):
    """One copy of each page, on one server."""

    name = "no-reliability"
    memory_overhead_factor = 1.0

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._placement: Dict[int, MemoryServer] = {}
        self._next = 0
        #: Optional cost function for heterogeneous clusters (§5): when
        #: set, new pages go to the *cheapest* server with room instead
        #: of round robin — e.g. rank by link bandwidth so slow-linked
        #: donors form a deeper level of the memory hierarchy.
        self.server_ranker = None

    def _place(self, page_id: int) -> MemoryServer:
        server = self._placement.get(page_id)
        if server is not None:
            return server
        candidates = [s for s in self._live_servers() if s.free_pages > 0]
        if not candidates:
            raise ServerUnavailable("any", reason="all servers full or dead")
        if self.server_ranker is not None:
            server = min(candidates, key=self.server_ranker)
        else:
            # Round-robin over servers that still have room.
            server = candidates[self._next % len(candidates)]
            self._next += 1
        self._placement[page_id] = server
        return server

    def pageout(self, page_id: int, contents: Optional[bytes], span=NULL_SPAN):
        server = self._place(page_id)
        self._require_live(server)
        yield from self._send_page(server, page_id, contents, span=span)
        self.counters.add("pageouts")

    def pagein(self, page_id: int, span=NULL_SPAN):
        server = self._placement.get(page_id)
        if server is None:
            raise PageNotFound(page_id, where=self.name)
        self._require_live(server)
        contents = yield from self._fetch_page(server, page_id, span=span)
        self.counters.add("pageins")
        return contents

    def holds(self, page_id: int) -> bool:
        server = self._placement.get(page_id)
        return server is not None and server.is_alive and server.holds(page_id)

    def release(self, page_id: int) -> None:
        server = self._placement.pop(page_id, None)
        if server is not None:
            server.free([page_id])

    def recover(self, crashed: MemoryServer):
        lost = [p for p, s in self._placement.items() if s is crashed]
        raise RecoveryError(
            f"NO RELIABILITY cannot recover {len(lost)} pages lost with "
            f"{crashed.name!r}"
        )
        yield  # pragma: no cover - unreachable; keeps this a generator
