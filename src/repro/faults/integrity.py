"""At-rest page corruption and the end-to-end integrity invariant.

Two distinct corruption models live in this reproduction (DESIGN.md
"Fault model"):

* **Wire corruption** (:class:`~repro.faults.network.UnreliableNetwork`)
  is caught by the transport checksum and resent — it never reaches a
  server's store.  If it did, a parity policy would fold the damaged
  bytes into its XOR delta and parity would become *consistent with the
  corruption*, making it unrepairable — exactly the failure RAID
  literature calls a write hole.
* **At-rest bit-rot** (:class:`CorruptionInjector`) flips bits in pages a
  server already stores.  Parity/mirror/disk redundancy genuinely can
  repair this, and the pager's pageout-time checksum is what detects it.

:func:`check_page_integrity` is the campaign invariant checker: after a
run it replays a pagein of every page the client ever entrusted to
remote memory and classifies each as verified, lost, or corrupted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..errors import PageCorrupted, ReproError
from ..sim.core import SimulationError
from ..vm.page import corrupt_bytes, page_checksum

__all__ = ["CorruptionInjector", "IntegrityReport", "check_page_integrity"]


class CorruptionInjector:
    """Flips bits in pages at rest in a memory server's store.

    Targets only *data* payloads: parity blocks (keys shaped
    ``("parity", ...)``) are skipped because corrupting redundancy
    exercises nothing on the pagein path, and payload-less entries
    (metadata mode) cannot rot.  Selection is deterministic: candidate
    keys are sorted by ``repr`` before sampling from the dedicated
    ``faults.corruption`` RNG stream.
    """

    def __init__(self, rng, flips: int = 3):
        if flips < 1:
            raise ValueError(f"need at least one bit flip: {flips}")
        self.rng = rng
        self.flips = flips
        #: (server_name, key) pairs corrupted so far, in injection order.
        self.corrupted: List[Tuple[str, str]] = []

    @staticmethod
    def _is_parity_key(key: object) -> bool:
        return isinstance(key, tuple) and bool(key) and key[0] == "parity"

    def candidates(self, server) -> list:
        """Stored data keys on ``server`` eligible for bit-rot."""
        keys = [
            key
            for key in server.stored_keys()
            if not self._is_parity_key(key) and server.peek(key) is not None
        ]
        keys.sort(key=repr)
        return keys

    def corrupt_stored(self, server, n_pages: int = 1) -> int:
        """Rot up to ``n_pages`` stored pages on ``server``; returns count."""
        if n_pages < 1:
            raise ValueError(f"need at least one page: {n_pages}")
        keys = self.candidates(server)
        if not keys:
            return 0
        chosen = self.rng.sample(keys, min(n_pages, len(keys)))
        for key in chosen:
            rotted = corrupt_bytes(server.peek(key), self.rng, flips=self.flips)
            server.overwrite_stored(key, rotted)
            self.corrupted.append((server.name, repr(key)))
        return len(chosen)


@dataclass
class IntegrityReport:
    """Outcome of replaying every remote page after a campaign.

    A page that needed redundancy to come back — a degraded
    erasure-coded read around dead servers, or a scrub that repaired
    at-rest rot mid-replay — is still **verified**: the policy doing
    its job is the CLEAN verdict, not a defect.  ``degraded`` and
    ``scrub_repaired`` make that work visible instead of silent.
    """

    checked: int = 0
    verified: int = 0
    unverified: int = 0  # metadata mode: no bytes to checksum
    lost: List[Tuple[int, str]] = field(default_factory=list)
    corrupted: List[int] = field(default_factory=list)
    #: Pages verified only via redundant-fragment reconstruction
    #: (some fragment holder was dead or timing out at replay).
    degraded: List[int] = field(default_factory=list)
    #: Pages whose replay checksum-failed, then healed via policy scrub.
    scrub_repaired: List[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no page was lost or returned corrupted."""
        return not self.lost and not self.corrupted

    @property
    def verdict(self) -> str:
        if self.clean:
            return "CLEAN"
        return f"LOSSY(lost={len(self.lost)},corrupt={len(self.corrupted)})"

    def as_dict(self) -> dict:
        return {
            "checked": self.checked,
            "verified": self.verified,
            "unverified": self.unverified,
            "lost": [[page_id, reason] for page_id, reason in self.lost],
            "corrupted": list(self.corrupted),
            "degraded": list(self.degraded),
            "scrub_repaired": list(self.scrub_repaired),
            "verdict": self.verdict,
        }


def check_page_integrity(cluster) -> IntegrityReport:
    """Replay a pagein of every page in the pager's checksum ledger.

    Runs *after* the workload (and after the metrics snapshot, when used
    as a runner extractor) so the replay's traffic never pollutes the
    campaign's measurements.  A page counts as:

    * **verified** — bytes came back and match the pageout checksum
      (possibly after a policy scrub repaired at-rest rot);
    * **corrupted** — the policy had no redundancy left to repair it
      (:class:`~repro.errors.PageCorrupted`);
    * **lost** — no copy could be produced at all (crash recovery failed,
      the server set lost it, or the path timed out).

    Per-page deltas of the policy's ``degraded_reads`` counter and the
    pager's ``scrub_recoveries`` counter classify each verified page
    further: fragment reconstruction around a dead server, or an at-rest
    rot repair, each stays CLEAN but lands in ``report.degraded`` /
    ``report.scrub_repaired`` so campaigns can assert the redundancy
    actually worked (and how often) rather than merely that nothing died.
    """
    report = IntegrityReport()
    pager = cluster.pager
    policy_counters = getattr(cluster.policy, "counters", None)
    pager_counters = getattr(pager, "counters", None)

    def _snapshot() -> Tuple[int, int]:
        degraded = policy_counters["degraded_reads"] if policy_counters else 0
        scrubbed = pager_counters["scrub_recoveries"] if pager_counters else 0
        return degraded, scrubbed

    ledger = getattr(pager, "checksums", {})
    for page_id in sorted(ledger):
        expected = ledger[page_id]
        report.checked += 1
        degraded_before, scrubbed_before = _snapshot()

        def replay(pid=page_id):
            contents = yield from pager.pagein(pid)
            return contents

        process = cluster.sim.process(replay(), name=f"integrity:{page_id}")
        try:
            contents = cluster.sim.run_until_complete(process)
        except PageCorrupted:
            report.corrupted.append(page_id)
            continue
        except (ReproError, SimulationError) as exc:
            # SimulationError = the replay deadlocked (e.g. a partition
            # was never healed): the page is unreachable, i.e. lost.
            report.lost.append((page_id, type(exc).__name__))
            continue
        if contents is None:
            report.unverified += 1
        elif page_checksum(contents) != expected:
            report.corrupted.append(page_id)
        else:
            report.verified += 1
            degraded_after, scrubbed_after = _snapshot()
            if degraded_after > degraded_before:
                report.degraded.append(page_id)
            if scrubbed_after > scrubbed_before:
                report.scrub_repaired.append(page_id)
    return report
