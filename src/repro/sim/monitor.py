"""Measurement helpers: counters, tallies, and time-weighted statistics.

The experiment harness needs the same quantities the paper measures:
counts (pageins, pageouts, transfers), durations (per-request latency),
and utilisations (server CPU, network busy fraction).  These helpers
accumulate them with O(1) memory unless sample retention is requested.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

__all__ = ["Counter", "Tally", "TimeWeighted", "UtilizationTracker"]

try:  # numpy accelerates the percentile sort; everything else is exact O(1)
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


def _sort_samples(samples: List[float]) -> List[float]:
    """Sort for nearest-rank percentiles, numpy-backed when possible.

    Sorting is a pure reordering, so ``np.sort`` and ``sorted`` agree
    element-for-element; ``tolist()`` hands back native Python floats so
    nothing downstream ever sees a numpy scalar.  Falls back to
    ``sorted`` for non-float payloads (or without numpy).
    """
    if _np is not None and len(samples) > 32 and all(
        type(s) is float for s in samples
    ):
        return _np.sort(_np.asarray(samples, dtype=_np.float64)).tolist()
    return sorted(samples)


class Counter:
    """A named bag of monotonically increasing integer counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        """Increase counter ``name`` by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counters only increase; got {amount}")
        self._counts[name] = self._counts.get(name, 0) + amount

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of every counter."""
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self._counts!r})"


class Tally:
    """Streaming mean/variance/min/max of observed samples (Welford)."""

    def __init__(self, keep_samples: bool = False):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0
        self._samples: Optional[List[float]] = [] if keep_samples else None
        #: Sorted view of ``_samples``, built lazily by :meth:`percentile`
        #: and invalidated by :meth:`observe`/:meth:`merge`.
        self._sorted: Optional[List[float]] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        if self._samples is not None:
            self._samples.append(value)
            self._sorted = None

    def merge(self, other: "Tally") -> "Tally":
        """Fold ``other``'s observations into this tally, exactly.

        Uses Chan et al.'s parallel Welford update, so merging per-shard
        tallies from parallel runs yields bit-for-bit the same count,
        total, min, max and (numerically stable) mean/variance as one
        stream would — the parallel experiment runner relies on this
        when reassembling multi-run reports.  Returns ``self``.
        """
        if other.count == 0:
            return self
        if self._samples is not None:
            if other._samples is None:
                raise ValueError(
                    "cannot merge a keep_samples tally with one that "
                    "dropped its samples"
                )
            self._samples.extend(other._samples)
            self._sorted = None
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
        else:
            combined = self.count + other.count
            delta = other._mean - self._mean
            self._mean += delta * other.count / combined
            self._m2 += other._m2 + delta * delta * self.count * other.count / combined
            self.count = combined
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Population variance of the observations."""
        return self._m2 / self.count if self.count else math.nan

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance) if self.count else math.nan

    @property
    def samples(self) -> List[float]:
        if self._samples is None:
            raise ValueError("Tally was created with keep_samples=False")
        return list(self._samples)

    def percentile(self, q: float) -> float:
        """q-th percentile (0..100) by nearest-rank over kept samples.

        The sorted order is cached across calls (rendering a latency
        report asks for several percentiles of the same samples) and
        invalidated whenever a new sample arrives.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        if self._samples is None:
            raise ValueError("Tally was created with keep_samples=False")
        if not self._samples:
            return math.nan
        data = self._sorted
        if data is None:
            data = self._sorted = _sort_samples(self._samples)
        rank = max(1, math.ceil(q / 100.0 * len(data)))
        return data[rank - 1]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot (None statistics when empty, no NaN)."""
        empty = self.count == 0
        return {
            "count": self.count,
            "total": self.total,
            "mean": None if empty else self._mean,
            "m2": None if empty else self._m2,
            "stddev": None if empty else self.stddev,
            "min": None if empty else self.minimum,
            "max": None if empty else self.maximum,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Tally":
        """Rebuild a (sample-less) tally from :meth:`as_dict` output."""
        tally = cls()
        tally.count = int(data["count"])
        if tally.count:
            tally.total = float(data["total"])
            tally._mean = float(data["mean"])
            tally._m2 = float(data["m2"])
            tally.minimum = float(data["min"])
            tally.maximum = float(data["max"])
        return tally


class TimeWeighted:
    """Time-weighted average of a piecewise-constant quantity.

    Call :meth:`record` whenever the level changes; the average weights
    each level by how long it was held.
    """

    def __init__(self, now: float = 0.0, level: float = 0.0):
        self._last_time = now
        self._level = level
        self._area = 0.0
        self._start = now

    @property
    def level(self) -> float:
        return self._level

    def record(self, now: float, level: float) -> None:
        """The quantity changed to ``level`` at time ``now``."""
        if now < self._last_time:
            raise ValueError("time went backwards")
        self._area += self._level * (now - self._last_time)
        self._last_time = now
        self._level = level

    def average(self, now: float) -> float:
        """Time-weighted mean over [start, now]."""
        span = now - self._start
        if span <= 0:
            return self._level
        return (self._area + self._level * (now - self._last_time)) / span

    def area(self, now: float) -> float:
        """Integral of the level over [start, now] (level-seconds)."""
        return self._area + self._level * (now - self._last_time)


class UtilizationTracker:
    """Fraction of time a facility is busy (e.g. server CPU, the wire)."""

    def __init__(self, now: float = 0.0):
        self._tw = TimeWeighted(now=now, level=0.0)
        self._depth = 0

    def busy(self, now: float) -> None:
        """Mark the start of a busy interval (nestable)."""
        self._depth += 1
        if self._depth == 1:
            self._tw.record(now, 1.0)

    def idle(self, now: float) -> None:
        """Mark the end of a busy interval."""
        if self._depth <= 0:
            raise ValueError("idle() without matching busy()")
        self._depth -= 1
        if self._depth == 0:
            self._tw.record(now, 0.0)

    def utilization(self, now: float) -> float:
        """Busy fraction over the tracked lifetime."""
        return self._tw.average(now)

    def busy_seconds(self, now: float) -> float:
        """Cumulative busy time up to ``now`` — differentiating this
        between telemetry ticks yields *windowed* utilisation, where
        :meth:`utilization` only gives the lifetime average."""
        return self._tw.area(now)
