"""Fleet-scale multi-client campaigns: N clients × M donors, one kernel.

ROADMAP item 1 asks for the paper's §3.2/§6 multi-client story at
*fleet* scale — hundreds of paging clients, reported the way rack-scale
remote-memory systems (Hydra, Leap in PAPERS.md) report themselves:
cluster-wide throughput, fairness across tenants, and tail latency.
This experiment is the assembly point for the three engines that make
that affordable:

* the **analytic switched fabric** (``net/switched.py``): disjoint
  port pairs hold analytically, so an uncontended page transfer costs
  one kernel event instead of a five-step resource walk;
* **multi-machine compiled replay** (``compile.plan_fleet``): each
  client's reliability-blind fault schedule compiles once (identical
  clients share the object) and replays as interleaved merged-chunk
  segments, reconciling only at the shared donors and fabric ports;
* per-client **server instances** on shared donor workstations — "a
  new instance of the server" per client (§3.2), "clients never share
  their swap spaces" (§6) — which is exactly the isolation that makes
  the independent compilation sound.

Reported metrics: cluster throughput (sum of per-client pagein rates),
Jain's fairness index over those rates, makespan, and — with telemetry
on — p50/p95/p99 pagein latency pooled across every client from the
``telemetry.pager.pagein`` log-histogram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.report import format_table
from ..cluster.workstation import Workstation
from ..config import (
    DEC_ALPHA_3000_300,
    EthernetSpec,
    MachineSpec,
    SwitchedNetworkSpec,
)
from ..core.client import RemoteMemoryPager
from ..core.policies.none import NoReliability
from ..core.server import MemoryServer
from ..net.ethernet import EthernetCsmaCd
from ..net.protocol import ProtocolStack
from ..net.switched import SwitchedNetwork
from ..obs.telemetry import LogHistogram, TelemetrySampler
from ..sim import RngRegistry, Simulator
from ..vm.machine import CompletionReport, Machine

__all__ = [
    "Fleet",
    "build_fleet",
    "run_fleet",
    "render_fleet",
    "jain_fairness",
]

#: Deterministic per-client start stagger (seconds).  Identical clients
#: replaying identical schedules would otherwise hit every shared port
#: at the same instant forever; the stagger is applied identically in
#: interpreted and replay paths (it is part of ``Machine.init_time``),
#: so byte-identity across execution modes is preserved.
_DEFAULT_STAGGER = 0.003


@dataclass
class Fleet:
    """N paging clients × M donor workstations on one simulator."""

    sim: Simulator
    network: object
    stack: ProtocolStack
    donors: List[Workstation]
    machines: List[Machine]
    pagers: List[RemoteMemoryPager]
    telemetry: Optional[TelemetrySampler] = None
    reports: List[CompletionReport] = field(default_factory=list)

    @property
    def n_clients(self) -> int:
        return len(self.machines)


def build_fleet(
    n_clients: int = 8,
    n_donors: int = 4,
    capacity_per_client: int = 2048,
    seed: int = 0,
    network: str = "switched",
    switched_spec: Optional[SwitchedNetworkSpec] = None,
    ethernet_spec: Optional[EthernetSpec] = None,
    machine_spec: MachineSpec = DEC_ALPHA_3000_300,
    telemetry_interval: float = 0.0,
    telemetry_capacity: int = 512,
    init_time: float = 0.21,
    stagger: float = _DEFAULT_STAGGER,
    analytic: Optional[bool] = None,
    compile_schedules: Optional[bool] = None,
) -> Fleet:
    """Assemble the fleet testbed.

    ``network`` selects the fabric: ``"switched"`` (the scalable
    default — per-port full-duplex links, replay- and analytic-eligible)
    or ``"ethernet"`` (the paper's shared 10 Mbit segment, for §6-style
    contention studies; pins interpreted fleet execution).  Each client
    gets its own :class:`MemoryServer` instances on every shared donor —
    separate grants, fully isolated swap spaces — and its own machine,
    started ``stagger`` seconds apart.

    ``telemetry_interval`` > 0 attaches one :class:`TelemetrySampler`
    shared by the whole fleet: every client's pagein latency pools into
    a single ``pager.pagein`` histogram (the fleet's tail is a property
    of the cluster, not of one tenant).  Sampling pins interpreted
    execution exactly as it does for single-client clusters.
    """
    if n_clients < 1 or n_donors < 1:
        raise ValueError("need at least one client and one donor")
    if network not in ("switched", "ethernet"):
        raise ValueError(f"unknown fleet network {network!r}")
    sim = Simulator()
    if network == "switched":
        fabric: object = SwitchedNetwork(
            sim, spec=switched_spec or SwitchedNetworkSpec(), analytic=analytic
        )
    else:
        fabric = EthernetCsmaCd(
            sim, spec=ethernet_spec, rngs=RngRegistry(seed=seed),
            analytic=analytic,
        )
    stack = ProtocolStack(fabric)

    # Size donor hosts to hold every client's grant plus slack.
    donor_spec = MachineSpec(
        name="fleet-donor",
        ram_bytes=(n_clients * capacity_per_client + 2048) * 8192
        + DEC_ALPHA_3000_300.kernel_resident_bytes,
        kernel_resident_bytes=DEC_ALPHA_3000_300.kernel_resident_bytes,
    )
    donors = []
    for d in range(n_donors):
        host = Workstation(sim, f"donor-{d}", donor_spec)
        fabric.attach(host.name)
        donors.append(host)

    machines: List[Machine] = []
    pagers: List[RemoteMemoryPager] = []
    for c in range(n_clients):
        client_name = f"client-{c}"
        fabric.attach(client_name)
        servers = [
            MemoryServer(
                host,
                stack,
                capacity_pages=capacity_per_client,
                name=f"server-{c}-{d}",
            )
            for d, host in enumerate(donors)
        ]
        policy = NoReliability(client_name, stack, servers)
        pager = RemoteMemoryPager(policy)
        pagers.append(pager)
        machines.append(
            Machine(
                sim,
                machine_spec,
                pager,
                init_time=init_time + stagger * c,
                compile_schedules=compile_schedules,
                name=client_name,
            )
        )

    # A process-wide tracer (the CLI's --trace flag) attaches to every
    # new fleet, exactly as it does to single-client clusters.
    from ..obs.trace import current_tracer

    tracer = current_tracer()
    if tracer is not None:
        sim.set_tracer(tracer)

    telemetry: Optional[TelemetrySampler] = None
    if telemetry_interval > 0.0:
        telemetry = TelemetrySampler(
            telemetry_interval, capacity=telemetry_capacity
        )
        sim.set_sampler(telemetry)
        telemetry.add_probe("util.wire", fabric.stats.busy_seconds, mode="rate")
        latency = fabric.stats.message_latency
        telemetry.add_probe(
            "net.latency_ms",
            (lambda t=latency: (t.total, t.count)),
            mode="mean",
            scale=1e3,
        )
        # Pooled per-pagein latency histogram (fed by every client's
        # pager sampler hook; pre-created so it always snapshots).
        if "pager.pagein" not in telemetry.extra:
            telemetry.extra["pager.pagein"] = LogHistogram(
                growth=telemetry.fault_latency.growth
            )
    return Fleet(
        sim=sim,
        network=fabric,
        stack=stack,
        donors=donors,
        machines=machines,
        pagers=pagers,
        telemetry=telemetry,
    )


def jain_fairness(rates: List[float]) -> float:
    """Jain's index ``(Σx)² / (N·Σx²)`` — 1.0 is perfectly fair."""
    if not rates:
        return 0.0
    square_sum = sum(x * x for x in rates)
    if square_sum == 0.0:
        return 1.0
    total = sum(rates)
    return (total * total) / (len(rates) * square_sum)


def run_fleet(
    workload: Tuple[str, dict] = ("gauss", {}),
    n_clients: int = 8,
    n_donors: int = 4,
    capacity_per_client: int = 2048,
    seed: int = 0,
    network: str = "switched",
    switched_spec: Optional[SwitchedNetworkSpec] = None,
    machine_spec: MachineSpec = DEC_ALPHA_3000_300,
    telemetry_interval: float = 0.0,
    stagger: float = _DEFAULT_STAGGER,
    analytic: Optional[bool] = None,
    compile_schedules: Optional[bool] = None,
) -> Dict[str, object]:
    """One fleet campaign: every client runs ``workload`` concurrently.

    ``workload`` is a registry name plus factory kwargs (e.g.
    ``("gauss", {"n": 400})``).  Returns per-client reports plus the
    cluster-wide scoreboard; the run itself goes through
    :func:`repro.compile.plan_fleet`, so eligible clients replay
    compiled schedules and couplings fall back with traced reasons.
    """
    from ..compile import plan_fleet
    from ..runner.registry import make_workload

    name, kwargs = workload
    fleet = build_fleet(
        n_clients=n_clients,
        n_donors=n_donors,
        capacity_per_client=capacity_per_client,
        seed=seed,
        network=network,
        switched_spec=switched_spec,
        machine_spec=machine_spec,
        telemetry_interval=telemetry_interval,
        stagger=stagger,
        analytic=analytic,
        compile_schedules=compile_schedules,
    )
    workloads = [make_workload(name, dict(kwargs)) for _ in fleet.machines]
    schedules = plan_fleet(
        list(zip(fleet.machines, fleet.pagers, workloads)),
        network=fleet.network,
    )
    processes = [
        machine.run_plan(wl, schedule, name=f"{name}@{machine.name}")
        for machine, wl, schedule in zip(fleet.machines, workloads, schedules)
    ]
    reports = [fleet.sim.run_until_complete(p) for p in processes]
    fleet.reports = reports

    rates = [r.pageins / r.etime if r.etime > 0 else 0.0 for r in reports]
    results: Dict[str, object] = {
        "workload": name,
        "n_clients": n_clients,
        "n_donors": n_donors,
        "network": network,
        "compiled_clients": sum(1 for s in schedules if s is not None),
        "clients": [
            {
                "name": machine.name,
                "etime": r.etime,
                "pageins": r.pageins,
                "pageouts": r.pageouts,
                "rate": rate,
            }
            for machine, r, rate in zip(fleet.machines, reports, rates)
        ],
        "cluster_throughput": sum(rates),
        "jain_fairness": jain_fairness(rates),
        "makespan": max((r.etime for r in reports), default=0.0),
        "wire_utilization": fleet.network.stats.utilization(),
    }
    if fleet.telemetry is not None:
        hist = fleet.telemetry.extra["pager.pagein"]
        results["pagein_latency"] = {
            "count": hist.count,
            # Histogram samples are simulated seconds; report ms.
            "p50_ms": round(hist.percentile(50.0) * 1e3, 3),
            "p95_ms": round(hist.percentile(95.0) * 1e3, 3),
            "p99_ms": round(hist.percentile(99.0) * 1e3, 3),
        }
    return results


def render_fleet(results: Dict[str, object]) -> str:
    """Cluster scoreboard plus the per-client breakdown table."""
    clients = results["clients"]
    rows = [
        [
            cell["name"],
            f"{cell['etime']:.2f}",
            str(cell["pageins"]),
            str(cell["pageouts"]),
            f"{cell['rate']:.1f}",
        ]
        for cell in clients
    ]
    table = format_table(
        ["client", "etime (s)", "pageins", "pageouts", "pageins/s"],
        rows,
        title=(
            f"Fleet campaign: {results['n_clients']} clients x "
            f"{results['n_donors']} donors, {results['workload']} on the "
            f"{results['network']} fabric"
        ),
    )
    lines = [
        table,
        (
            f"cluster throughput: {results['cluster_throughput']:.1f} "
            f"pageins/s, Jain fairness: {results['jain_fairness']:.4f}, "
            f"makespan: {results['makespan']:.2f} s"
        ),
        (
            f"wire busy: {results['wire_utilization']:.0%}, compiled "
            f"clients: {results['compiled_clients']}/{results['n_clients']}"
        ),
    ]
    latency = results.get("pagein_latency")
    if latency:
        lines.append(
            f"pagein latency (pooled, {latency['count']} samples): "
            f"p50 {latency['p50_ms']:.2f} ms, p95 {latency['p95_ms']:.2f} "
            f"ms, p99 {latency['p99_ms']:.2f} ms"
        )
    return "\n".join(lines)
