"""Disk paging backends: raw partition and filesystem file.

The paper's driver (§3.1) can push paging requests to the local disk in
two ways: directly into the disk queue against a *dedicated partition*,
or through the VFS layer against a *swap file*.  Both are modelled here.
They share slot allocation (a contiguous swap area keeps seeks short,
which is what makes the measured ~17 ms/page possible on a disk whose
random-access service time is worse) and differ only in per-request CPU
overhead and placement indirection.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import PageNotFound, SwapSpaceExhausted
from ..sim import Event, Simulator
from ..units import milliseconds
from .model import Disk

__all__ = ["SwapMap", "PartitionBackend", "FileBackend"]


class SwapMap:
    """Slot allocator over a contiguous swap area.

    Allocation is first-fit over a free list kept sorted, so freed slots
    are reused nearest the start — keeping the live swap footprint (and
    hence seek distances) compact.
    """

    def __init__(self, n_slots: int):
        if n_slots <= 0:
            raise ValueError(f"swap area needs at least one slot: {n_slots}")
        self.n_slots = n_slots
        self._free = list(range(n_slots - 1, -1, -1))  # pop() yields slot 0 first
        self._slot_of: Dict[int, int] = {}

    @property
    def used(self) -> int:
        return len(self._slot_of)

    @property
    def free(self) -> int:
        return len(self._free)

    def slot_of(self, page_id: int) -> Optional[int]:
        """The slot currently holding ``page_id``, or None."""
        return self._slot_of.get(page_id)

    def assign(self, page_id: int) -> int:
        """Return the slot for ``page_id``, allocating on first write."""
        slot = self._slot_of.get(page_id)
        if slot is None:
            if not self._free:
                raise SwapSpaceExhausted(
                    f"swap area full ({self.n_slots} slots in use)"
                )
            slot = self._free.pop()
            self._slot_of[page_id] = slot
        return slot

    def release(self, page_id: int) -> None:
        """Free the slot held by ``page_id`` (no-op if absent)."""
        slot = self._slot_of.pop(page_id, None)
        if slot is not None:
            self._free.append(slot)
            self._free.sort(reverse=True)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._slot_of


class PartitionBackend:
    """Raw-partition swap: requests go straight into the disk queue.

    ``base_offset`` places the swap area on the platter; the default
    centres it, minimising worst-case seeks to either end.
    """

    #: Driver CPU per request when bypassing the filesystem.
    per_request_cpu = milliseconds(0.1)

    def __init__(
        self,
        disk: Disk,
        page_size: int,
        n_slots: int,
        base_offset: Optional[int] = None,
    ):
        area = n_slots * page_size
        capacity = disk.spec.capacity_bytes
        if area > capacity:
            raise ValueError(
                f"swap area {area} exceeds disk capacity {capacity}"
            )
        self.disk = disk
        self.sim: Simulator = disk.sim
        self.page_size = page_size
        self.swap_map = SwapMap(n_slots)
        self.base_offset = (
            base_offset if base_offset is not None else (capacity - area) // 2
        )
        if self.base_offset + area > capacity:
            raise ValueError("swap area extends past the end of the disk")

    def _offset(self, slot: int) -> int:
        return self.base_offset + slot * self.page_size

    def write_page(self, page_id: int):
        """Generator: write ``page_id`` to its swap slot."""
        slot = self.swap_map.assign(page_id)
        yield self.sim.timeout(self.per_request_cpu)
        yield self.disk.write(self._offset(slot), self.page_size)

    def read_page(self, page_id: int):
        """Generator: read ``page_id`` from its swap slot."""
        slot = self.swap_map.slot_of(page_id)
        if slot is None:
            raise PageNotFound(page_id, where=f"disk {self.disk.spec.name}")
        yield self.sim.timeout(self.per_request_cpu)
        yield self.disk.read(self._offset(slot), self.page_size)

    def holds(self, page_id: int) -> bool:
        """Whether the swap area currently stores ``page_id``."""
        return page_id in self.swap_map

    def release_page(self, page_id: int) -> None:
        """Free the swap slot held by ``page_id`` (no-op if absent)."""
        self.swap_map.release(page_id)


class FileBackend(PartitionBackend):
    """Swap-file backend: requests traverse the VFS layer.

    Adds per-request filesystem CPU (block-map lookup, buffer handling)
    and mild placement scatter from filesystem block allocation.
    """

    #: VFS path cost per request (vs. the raw partition's 0.1 ms).
    per_request_cpu = milliseconds(0.6)

    #: Filesystem allocation interleaves metadata/other files: stretch the
    #: logical-to-physical mapping so slots are slightly scattered.
    _SCATTER_STRIDE = 5

    def _offset(self, slot: int) -> int:
        scattered = (slot * self._SCATTER_STRIDE) % self.swap_map.n_slots
        return self.base_offset + scattered * self.page_size
