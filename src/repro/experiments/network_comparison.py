"""§4.6's counterfactual: token ring vs Ethernet under load.

The paper argues the loaded-network collapse "is not inherent to remote
memory paging but rather to the CSMA/CD protocol employed by the
Ethernet ... it is still beneficial to use remote memory paging over
networks that employ other technologies (e.g. token ring)".  The authors
had no token ring to test on; we do.  Same 10 Mbit/s raw bandwidth, same
workload, same background offered load — only the MAC layer differs.
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..analysis.report import format_table
from ..core.builder import Cluster
from ..net.token_ring import TokenRingSpec
from ..net.traffic import attach_background_load
from ..units import megabits_per_second
from ..workloads import Gauss
from .harness import run_policy

__all__ = ["run_network_comparison", "render_network_comparison"]


def run_network_comparison(
    loads: Iterable[float] = (0.0, 0.4, 0.8),
    workload_factory=Gauss,
) -> Dict[str, Dict[float, float]]:
    """GAUSS completion time per MAC technology and background load."""
    ring_spec = TokenRingSpec(bandwidth=megabits_per_second(10))
    results: Dict[str, Dict[float, float]] = {"ethernet": {}, "token-ring": {}}
    for load in loads:

        def hook(cluster: Cluster, load=load) -> None:
            if load > 0:
                attach_background_load(cluster.network, total_load=load, n_sources=4)

        ethernet = run_policy(workload_factory, "no-reliability", cluster_hook=hook)
        ring = run_policy(
            workload_factory,
            "no-reliability",
            cluster_hook=hook,
            token_ring_spec=ring_spec,
        )
        results["ethernet"][load] = ethernet.etime
        results["token-ring"][load] = ring.etime
    return results


def render_network_comparison(results: Dict[str, Dict[float, float]]) -> str:
    """Side-by-side MAC-technology table."""
    loads = sorted(results["ethernet"])
    rows = []
    for load in loads:
        eth = results["ethernet"][load]
        ring = results["token-ring"][load]
        eth0 = results["ethernet"][loads[0]]
        ring0 = results["token-ring"][loads[0]]
        rows.append(
            [
                f"{load:.0%}",
                f"{eth:.1f} ({eth / eth0:.2f}x)",
                f"{ring:.1f} ({ring / ring0:.2f}x)",
            ]
        )
    return format_table(
        ["offered load", "ethernet etime (slowdown)", "token ring etime (slowdown)"],
        rows,
        title="§4.6 counterfactual: MAC layer under background load (GAUSS, "
        "both at 10 Mbit/s raw)",
    )
