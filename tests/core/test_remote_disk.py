"""Remote-disk pager unit tests (the Comer & Griffioen substrate)."""

import pytest

from repro.cluster import Workstation
from repro.config import DEC_ALPHA_3000_300
from repro.core import RemoteDiskPager, RemoteDiskServer
from repro.errors import PageNotFound, ServerCrashed
from repro.net import EthernetCsmaCd, ProtocolStack
from repro.sim import RngRegistry, Simulator
from repro.vm import page_bytes

PAGE = 8192


def make_setup(n_servers=2):
    sim = Simulator()
    net = EthernetCsmaCd(sim, rngs=RngRegistry(seed=2))
    net.attach("client")
    stack = ProtocolStack(net)
    servers = [
        RemoteDiskServer(
            Workstation(sim, f"dd-{i}", DEC_ALPHA_3000_300), stack, name=f"ds-{i}"
        )
        for i in range(n_servers)
    ]
    pager = RemoteDiskPager("client", stack, servers)
    return sim, pager, servers


def drive(sim, gen):
    def body(gen):
        result = yield from gen
        return result

    return sim.run_until_complete(sim.process(body(gen)))


def test_roundtrip():
    sim, pager, _ = make_setup()
    data = page_bytes(3, 1, PAGE)
    drive(sim, pager.pageout(3, data))
    assert drive(sim, pager.pagein(3)) == data
    assert pager.transfers == 2


def test_pagein_slower_than_remote_memory():
    """The whole point: the far end is a platter, not DRAM."""
    from repro.core import build_cluster

    sim, pager, _ = make_setup()
    drive(sim, pager.pageout(1, None))
    start = sim.now
    drive(sim, pager.pagein(1))
    disk_cost = sim.now - start

    memory = build_cluster(policy="no-reliability", n_servers=2)

    def mem_flow():
        yield from memory.pager.pageout(1, None)
        start = memory.sim.now
        yield from memory.pager.pagein(1)
        return memory.sim.now - start

    memory_cost = memory.sim.run_until_complete(memory.sim.process(mem_flow()))
    assert disk_cost > memory_cost + 0.005  # at least a rotation's worth


def test_round_robin_placement_sticky():
    sim, pager, servers = make_setup(n_servers=2)
    for page_id in range(4):
        drive(sim, pager.pageout(page_id, None))
    assert servers[0].counters["stores"] == 2
    assert servers[1].counters["stores"] == 2
    # Re-pageout goes back to the same server.
    drive(sim, pager.pageout(0, None))
    assert servers[0].counters["stores"] + servers[1].counters["stores"] == 5
    assert pager._placement[0] is pager._placement[2]


def test_unknown_page():
    sim, pager, _ = make_setup()
    with pytest.raises(PageNotFound):
        drive(sim, pager.pagein(77))


def test_crashed_server_raises():
    sim, pager, servers = make_setup()
    drive(sim, pager.pageout(1, None))
    pager._placement[1].crash()
    with pytest.raises(ServerCrashed):
        drive(sim, pager.pagein(1))


def test_release_frees_slot():
    sim, pager, _ = make_setup()
    drive(sim, pager.pageout(1, None))
    server = pager._placement[1]
    assert server.holds(1)
    pager.release(1)
    assert not server.holds(1)


def test_needs_at_least_one_server():
    sim = Simulator()
    net = EthernetCsmaCd(sim, rngs=RngRegistry(seed=2))
    net.attach("client")
    stack = ProtocolStack(net)
    with pytest.raises(ValueError):
        RemoteDiskPager("client", stack, [])
