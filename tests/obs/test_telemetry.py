"""LogHistogram accuracy, TimeSeries bounds, and the sampler's probes."""

import math
import random

import pytest

from repro.obs.telemetry import (
    DEFAULT_GROWTH,
    LogHistogram,
    TelemetrySampler,
    TimeSeries,
)
from repro.sim import Simulator


# ---------------------------------------------------------------- histogram
def _exact_percentile(samples, pct):
    ordered = sorted(samples)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


@pytest.mark.parametrize("pct", [50.0, 95.0, 99.0, 99.9])
def test_histogram_percentile_within_one_log_bucket(pct):
    rng = random.Random(1996)
    samples = [rng.lognormvariate(-6.0, 1.5) for _ in range(5000)]
    hist = LogHistogram()
    for value in samples:
        hist.observe(value)
    exact = _exact_percentile(samples, pct)
    reported = hist.percentile(pct)
    # Upper-edge reporting: exact <= reported <= exact * growth.
    assert exact <= reported * (1 + 1e-12)
    assert reported <= exact * hist.growth * (1 + 1e-12)


def test_histogram_percentile_on_heavy_tail():
    hist = LogHistogram()
    samples = [0.001] * 990 + [1.0] * 10
    for value in samples:
        hist.observe(value)
    assert hist.percentile(50.0) <= 0.001 * hist.growth
    p99 = hist.percentile(99.0)
    exact = _exact_percentile(samples, 99.0)
    assert exact <= p99 <= exact * hist.growth


def test_histogram_zero_bucket_and_empty():
    hist = LogHistogram()
    assert hist.percentile(99.0) == 0.0
    hist.observe(0.0)
    hist.observe(-1.0)
    assert hist.count == 2
    assert hist.zeros == 2
    assert hist.percentile(50.0) == 0.0


def test_histogram_merge_matches_combined_stream():
    rng = random.Random(7)
    a = [rng.expovariate(100.0) for _ in range(400)]
    b = [rng.expovariate(5.0) for _ in range(100)]
    ha, hb, combined = LogHistogram(), LogHistogram(), LogHistogram()
    for value in a:
        ha.observe(value)
        combined.observe(value)
    for value in b:
        hb.observe(value)
        combined.observe(value)
    ha.merge(hb)
    assert ha.count == combined.count
    assert ha.buckets == combined.buckets
    for pct in (50.0, 95.0, 99.0):
        assert ha.percentile(pct) == combined.percentile(pct)


def test_histogram_merge_rejects_growth_mismatch():
    with pytest.raises(ValueError, match="growth"):
        LogHistogram(growth=2.0).merge(LogHistogram())


def test_histogram_round_trips_through_dict():
    hist = LogHistogram()
    for value in (0.0, 0.001, 0.5, 3.0):
        hist.observe(value)
    payload = hist.as_dict()
    assert payload["count"] == 4
    assert payload["zeros"] == 1
    assert set(payload) >= {"p50", "p95", "p99", "p999"}
    rebuilt = LogHistogram.from_dict(payload)
    assert rebuilt.buckets == hist.buckets
    assert rebuilt.as_dict() == payload


def test_histogram_rejects_degenerate_growth():
    with pytest.raises(ValueError, match="growth"):
        LogHistogram(growth=1.0)


def test_default_growth_is_one_eighth_octave():
    assert DEFAULT_GROWTH == pytest.approx(2.0 ** 0.125)


# ---------------------------------------------------------------- series
def test_series_evicts_oldest_and_counts_drops():
    series = TimeSeries(capacity=3)
    for i in range(5):
        series.record(float(i), float(i) * 10)
    assert series.times == [2.0, 3.0, 4.0]
    assert series.values == [20.0, 30.0, 40.0]
    assert series.dropped == 2
    assert series.last == 40.0
    assert len(series) == 3
    assert series.as_dict() == {
        "capacity": 3,
        "dropped": 2,
        "times": [2.0, 3.0, 4.0],
        "values": [20.0, 30.0, 40.0],
    }


def test_series_rejects_nonpositive_capacity():
    with pytest.raises(ValueError, match="capacity"):
        TimeSeries(capacity=0)


# ---------------------------------------------------------------- sampler
def _run_for(sim, seconds):
    def work(sim):
        yield sim.timeout(seconds)

    sim.process(work(sim))
    sim.run()


def test_sampler_gauge_rate_and_mean_probes():
    sim = Simulator()
    sampler = TelemetrySampler(interval=1.0)
    sim.set_sampler(sampler)

    state = {"gauge": 0.0, "cum": 0.0, "total": 0.0, "count": 0.0}
    gauge = sampler.add_probe("depth", lambda: state["gauge"], mode="gauge")
    rate = sampler.add_probe("work", lambda: state["cum"], mode="rate")
    mean = sampler.add_probe(
        "lat", lambda: (state["total"], state["count"]), mode="mean", scale=1e3
    )

    def driver(sim):
        # Window 1: 3 units of work, two latency samples of 2ms mean.
        state["gauge"] = 7.0
        state["cum"] = 3.0
        state["total"], state["count"] = 0.004, 2.0
        yield sim.timeout(1.5)
        # Window 2: no new latency samples, 1 more unit of work.
        state["cum"] = 4.0
        yield sim.timeout(1.0)

    sampler.ensure_running()
    sim.process(driver(sim))
    sim.run()

    assert gauge.values == [7.0, 7.0]
    assert rate.values == pytest.approx([3.0, 1.0])
    # Mean probe: 4ms over 2 samples, then an empty window reports 0.
    assert mean.values == pytest.approx([2.0, 0.0])


def test_sampler_finalize_takes_closing_sample():
    sim = Simulator()
    sampler = TelemetrySampler(interval=10.0)
    sim.set_sampler(sampler)
    series = sampler.add_probe("g", lambda: 1.0)
    sampler.ensure_running()
    # Shorter than one interval: no tick fires.  run(until=...) mirrors
    # the harness path (run_until_complete then finalize at completion
    # time) without draining the pending periodic heap entry.
    sim.run(until=2.5)
    assert series.values == []
    sampler.finalize()
    assert series.times == [2.5]
    assert not sampler.running
    # finalize twice is safe and does not duplicate the sample.
    sampler.finalize()
    assert series.times == [2.5]


def test_sampler_ensure_running_rearms_after_retire():
    sim = Simulator()
    sampler = TelemetrySampler(interval=1.0)
    sim.set_sampler(sampler)
    series = sampler.add_probe("g", lambda: 1.0)
    sampler.ensure_running()
    _run_for(sim, 2.0)
    first = len(series)
    assert not sampler.running  # periodic retired with the drained heap
    sampler.ensure_running()
    _run_for(sim, 2.0)
    assert len(series) > first


def test_sampler_listener_sees_each_sample():
    sim = Simulator()
    sampler = TelemetrySampler(interval=1.0)
    sim.set_sampler(sampler)
    sampler.add_probe("g", lambda: 42.0)
    seen = []
    sampler.listeners.append(lambda now, sample: seen.append((now, dict(sample))))
    sampler.ensure_running()
    _run_for(sim, 2.5)
    assert seen == [(1.0, {"g": 42.0}), (2.0, {"g": 42.0})]


def test_sampler_rejects_bad_configuration():
    with pytest.raises(ValueError, match="interval"):
        TelemetrySampler(interval=0.0)
    sampler = TelemetrySampler(interval=1.0)
    sampler.add_probe("x", lambda: 0.0)
    with pytest.raises(ValueError, match="already registered"):
        sampler.add_probe("x", lambda: 0.0)
    with pytest.raises(ValueError, match="mode"):
        sampler.add_probe("y", lambda: 0.0, mode="median")
    with pytest.raises(RuntimeError, match="not bound"):
        sampler.ensure_running()


def test_sampler_observe_fault_feeds_histogram():
    sampler = TelemetrySampler(interval=1.0)
    sampler.observe_fault(0.002)
    sampler.observe_fault(0.004)
    assert sampler.fault_latency.count == 2
    sampler.observe("pageout", 0.001)
    assert sampler.extra["pageout"].count == 1
