"""The reproducibility contract: parallelism and caching are invisible.

``repro fig2 --jobs 4`` must produce byte-identical output to
``--jobs 1``, and a cache hit must be indistinguishable from the run
that produced it.  These tests sweep the FULL Figure 2 grid (every
workload x policy cell) through the serial harness, a 4-worker pool,
and a warm cache, and require exact report equality everywhere —
completion times compared as floats with ``==``, never with a
tolerance.
"""

import dataclasses

from repro.cli import main
from repro.experiments import run_fig2
from repro.experiments.fig2 import FIG2_POLICIES, WORKLOAD_FACTORIES
from repro.runner import ExperimentRunner


def _flatten(reports):
    return {
        (app, policy): dataclasses.asdict(report)
        for app, by_policy in reports.items()
        for policy, report in by_policy.items()
    }


def test_full_fig2_grid_serial_parallel_and_cache_identical(tmp_path):
    serial = _flatten(run_fig2())  # default runner: serial, uncached

    parallel_runner = ExperimentRunner(jobs=4, use_cache=True, cache_dir=tmp_path)
    cold = _flatten(run_fig2(runner=parallel_runner))
    assert parallel_runner.cache.misses == len(serial)

    warm_runner = ExperimentRunner(jobs=4, use_cache=True, cache_dir=tmp_path)
    warm = _flatten(run_fig2(runner=warm_runner))
    assert warm_runner.cache.hits == len(serial)

    assert set(serial) == {
        (app, policy)
        for app in WORKLOAD_FACTORIES
        for policy in FIG2_POLICIES
    }
    assert serial == cold
    assert cold == warm


def test_cli_output_byte_identical_across_jobs(capsys):
    """`repro fig2 --jobs 2` prints the same bytes as `--jobs 1`."""
    argv = ["fig2", "--apps", "mvec", "gauss", "--policies", "no-reliability", "disk"]
    assert main(argv + ["--jobs", "1", "--no-cache"]) == 0
    serial_out = capsys.readouterr().out
    assert main(argv + ["--jobs", "2", "--no-cache"]) == 0
    parallel_out = capsys.readouterr().out
    assert parallel_out == serial_out
