"""Figure 5: no-reliability vs write-through vs parity logging (§4.7)."""

from repro.analysis import FIG5_SECONDS, shape_check
from repro.experiments import render_fig5, run_fig5


def test_fig5_write_through(benchmark, once):
    reports = once(benchmark, run_fig5)
    print("\n" + render_fig5(reports))
    measured = {
        app: {policy: r.etime for policy, r in by_policy.items()}
        for app, by_policy in reports.items()
    }
    # §4.7 on equal disk/network bandwidth: no policy beats no-reliability.
    for app, by_policy in measured.items():
        assert by_policy["no-reliability"] <= min(by_policy.values()) + 1e-9
    # Write-through beats parity logging on the read-write balanced apps.
    for app in ("gauss", "qsort"):
        assert measured[app]["write-through"] < measured[app]["parity-logging"]
    # MVEC (pure pageouts, disk-bound writes): parity logging wins there.
    assert measured["mvec"]["parity-logging"] < measured["mvec"]["write-through"]
    # FFT: the paper puts write-through slightly ahead; our disk model's
    # interleave penalty flips that by a few percent — the paper itself
    # notes that at comparable bandwidths "it is unclear which method is
    # best", so require the two within 10% rather than a strict order
    # (recorded as a known divergence in EXPERIMENTS.md).
    fft = measured["fft"]
    gap = abs(fft["write-through"] - fft["parity-logging"])
    assert gap / fft["parity-logging"] < 0.10
    for app in ("mvec", "gauss", "qsort"):
        check = shape_check(measured[app], FIG5_SECONDS[app])
        assert check["order_matches"], f"{app}: ranking diverges from Fig 5"
