"""Figure 1: idle DRAM in a workstation cluster during a week.

The paper profiled 16 workstations (800 MB total) for a week and found
more than 700 MB free at night/weekends and never less than ~300 MB.
This experiment generates the synthetic equivalent and reports the same
aggregates.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..analysis.report import format_table
from ..cluster.idle_trace import IdleMemoryTrace
from ..units import days, hours

__all__ = ["run_fig1", "render_fig1"]


def run_fig1(seed: int = 1995) -> Dict[str, object]:
    """Generate the weekly idle-memory trace and its aggregates."""
    trace = IdleMemoryTrace(seed=seed)
    series = trace.series(step=hours(1))
    summary = trace.summary()
    weekday_series: List[Tuple[str, float]] = [
        (trace.weekday_name(t), mb) for t, mb in series
    ]
    business = [
        mb
        for t, mb in series
        if not trace.is_weekend(t) and 9 <= (t % days(1)) / hours(1) <= 17
    ]
    offhours = [
        mb
        for t, mb in series
        if trace.is_weekend(t) or not 8 <= (t % days(1)) / hours(1) <= 20
    ]
    return {
        "series": series,
        "weekday_series": weekday_series,
        "summary": summary,
        "business_hours_mean_mb": sum(business) / len(business),
        "off_hours_mean_mb": sum(offhours) / len(offhours),
    }


def render_fig1(results: Dict[str, object]) -> str:
    """Measured-vs-paper table for Figure 1."""
    summary = results["summary"]
    rows = [
        ["workstations", summary["n_workstations"], "16"],
        ["total memory (MB)", f"{summary['total_mb']:.0f}", "800"],
        ["minimum free (MB)", f"{summary['min_mb']:.0f}", ">= 300"],
        ["peak free (MB)", f"{summary['max_mb']:.0f}", "~750"],
        ["business-hours mean (MB)", f"{results['business_hours_mean_mb']:.0f}", ">= 400"],
        ["nights/weekend mean (MB)", f"{results['off_hours_mean_mb']:.0f}", "~700+"],
    ]
    return format_table(
        ["quantity", "ours", "paper"], rows, title="Figure 1: idle cluster memory"
    )
