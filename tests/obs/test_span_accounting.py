"""The central accounting invariant: spans reproduce the §4.3 terms.

A traced run must decompose without residue: every completed span's
phase durations sum to its duration, the machine's fault + drain spans
partition the run's measured paging time (``ptime``) exactly, and the
``*.protocol`` phases reproduce the paper's modelled pptime
(transfers x the per-page protocol cost).
"""

import json
import math

import pytest

from repro.analysis.extrapolate import decompose
from repro.config import MachineSpec
from repro.core import build_cluster
from repro.obs.trace import Tracer, validate_file
from repro.units import megabytes
from repro.workloads import Gauss

GAUSS_SMALL = dict(n=900)


def _traced_run(policy, **kwargs):
    cluster = build_cluster(
        policy=policy,
        machine_spec=MachineSpec(
            name="small",
            ram_bytes=megabytes(8),
            kernel_resident_bytes=megabytes(2),
        ),
        **kwargs,
    )
    tracer = Tracer()
    cluster.sim.set_tracer(tracer)
    report = cluster.run(Gauss(**GAUSS_SMALL))
    return tracer, report


@pytest.fixture(scope="module")
def traced_parity_logging():
    return _traced_run(
        "parity-logging", n_servers=4, overflow_fraction=0.10
    )


def test_all_spans_end_and_phases_partition_duration(traced_parity_logging):
    tracer, _ = traced_parity_logging
    assert tracer.spans, "traced run produced no spans"
    for span in tracer.spans:
        assert span.end_ts is not None, f"span never ended: {span!r}"
        total = sum(span.phases.values())
        assert math.isclose(total, span.duration, rel_tol=1e-9, abs_tol=1e-12), (
            span.kind,
            span.phases,
            span.duration,
        )


def test_machine_spans_sum_to_ptime(traced_parity_logging):
    tracer, report = traced_parity_logging
    machine_time = sum(
        span.duration for span in tracer.spans if span.component == "machine"
    )
    assert math.isclose(machine_time, report.ptime, rel_tol=1e-9, abs_tol=1e-9)


def test_protocol_phases_reproduce_modelled_pptime(traced_parity_logging):
    tracer, report = traced_parity_logging
    observed_pptime = sum(
        seconds
        for span in tracer.spans
        for phase, seconds in span.phases.items()
        if phase.endswith(".protocol")
    )
    model = decompose(report)
    assert observed_pptime == pytest.approx(model.pptime, rel=1e-9)


def test_request_spans_cover_every_pageout_and_pagein(traced_parity_logging):
    tracer, report = traced_parity_logging
    kinds = {}
    for span in tracer.spans:
        if span.component == "pager":
            kinds[span.kind] = kinds.get(span.kind, 0) + 1
    assert kinds["pageout"] == report.pageouts
    assert kinds["pagein"] == report.pageins


def test_exports_validate_end_to_end(traced_parity_logging, tmp_path):
    tracer, _ = traced_parity_logging
    jsonl = tmp_path / "trace.jsonl"
    chrome = tmp_path / "trace.chrome.json"
    written = tracer.write_jsonl(str(jsonl))
    counts = validate_file(str(jsonl))
    assert written == sum(counts.values())
    assert counts["span"] == len(tracer.spans)
    tracer.write_chrome(str(chrome))
    payload = json.loads(chrome.read_text())
    assert payload["traceEvents"], "chrome export is empty"


def test_disk_baseline_traces_through_local_pager():
    tracer, report = _traced_run("disk")
    disk_spans = [s for s in tracer.spans if s.component == "disk"]
    assert len(disk_spans) == report.pageouts + report.pageins
    assert all(set(s.phases) == {"disk"} for s in disk_spans)


def test_untraced_run_is_unchanged_by_instrumentation():
    """Same cluster, no tracer: identical report (timing untouched)."""
    _, traced = _traced_run(
        "parity-logging", n_servers=4, overflow_fraction=0.10
    )
    cluster = build_cluster(
        policy="parity-logging",
        n_servers=4,
        overflow_fraction=0.10,
        machine_spec=MachineSpec(
            name="small",
            ram_bytes=megabytes(8),
            kernel_resident_bytes=megabytes(2),
        ),
    )
    untraced = cluster.run(Gauss(**GAUSS_SMALL))
    assert untraced.etime == traced.etime
    assert untraced.pageouts == traced.pageouts
    assert untraced.pageins == traced.pageins
