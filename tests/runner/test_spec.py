"""RunSpec: canonical, picklable, label-blind."""

import pickle

from repro.runner import RunSpec


def test_make_canonicalises_kwarg_order():
    a = RunSpec.make("gauss", "disk", overrides={"n_servers": 4, "seed": 7})
    b = RunSpec.make("gauss", "disk", overrides={"seed": 7, "n_servers": 4})
    assert a == b
    assert a.identity() == b.identity()
    assert hash(a) == hash(b)


def test_label_is_display_only():
    plain = RunSpec.make("gauss", "disk")
    labelled = RunSpec.make("gauss", "disk", label="gauss/disk")
    assert plain == labelled
    assert plain.identity() == labelled.identity()


def test_identity_distinguishes_every_fingerprint_field():
    base = RunSpec.make("gauss", "disk")
    variants = [
        RunSpec.make("mvec", "disk"),
        RunSpec.make("gauss", "mirroring"),
        RunSpec.make("gauss", "disk", workload_kwargs={"n": 1000}),
        RunSpec.make("gauss", "disk", overrides={"n_servers": 3}),
        RunSpec.make("gauss", "disk", machine_attrs={"free_batch": 2}),
        RunSpec.make("gauss", "disk", seed=1),
        RunSpec.make("gauss", "disk", hook="background-load"),
        RunSpec.make("gauss", "disk", extract=("network-stats",)),
    ]
    identities = {spec.identity() for spec in variants}
    assert base.identity() not in identities
    assert len(identities) == len(variants)


def test_spec_pickles_roundtrip():
    spec = RunSpec.make(
        "fft",
        "parity-logging",
        workload_kwargs={"size_mb": 24.0},
        overrides={"overflow_fraction": 0.10},
        hook="background-load",
        hook_kwargs={"total_load": 0.3},
        extract=("network-stats",),
        label="fft/parity",
    )
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert clone.identity() == spec.identity()
    assert clone.label == spec.label


def test_describe_is_json_friendly():
    import json

    spec = RunSpec.make(
        "gauss", "disk", overrides={"n_servers": 2}, workload_kwargs={"n": 500}
    )
    description = spec.describe()
    assert json.loads(json.dumps(description)) == description
    assert description["workload"] == "gauss"
    assert description["overrides"] == {"n_servers": "2"}
