"""Reliability policies (§2.2): none, mirroring, parity, parity logging,
write-through."""

from .base import ReliabilityPolicy
from .mirroring import Mirroring
from .none import NoReliability
from .parity import BasicParity
from .parity_logging import ParityLogging
from .write_through import WriteThrough

__all__ = [
    "ReliabilityPolicy",
    "NoReliability",
    "Mirroring",
    "BasicParity",
    "ParityLogging",
    "WriteThrough",
]
