#!/usr/bin/env python3
"""Policy shootout: reproduce the paper's Figure 2 for chosen workloads.

Runs the paper's application suite under every paging configuration and
prints completion times next to the published numbers, plus a custom
user-defined workload to show the Workload API.

Run:  python examples/policy_shootout.py [app ...]
      (apps: mvec gauss qsort fft filter cc; default: mvec gauss)
"""

import sys
from typing import Iterator

from repro import Workload, build_cluster
from repro.experiments import PAPER_CONFIGS, render_fig2, run_fig2
from repro.workloads import sweep, zigzag_passes


class StencilSweep(Workload):
    """A custom workload: iterative 2-D stencil over a 28 MB grid.

    Shows the public Workload API: allocate regions in the layout, then
    yield (page, is_write, cpu_seconds) references from trace().
    """

    name = "stencil"

    def __init__(self, grid_mb: float = 28.0, iterations: int = 3):
        super().__init__()
        self.grid = self.layout.add("grid", int(grid_mb * (1 << 20)))
        self.iterations = iterations

    def trace(self) -> Iterator:
        # Each iteration is a read-modify-write pass; alternate direction
        # so re-passes fault on the memory deficit, not the whole grid.
        yield from sweep(self.grid.start_page, self.grid.n_pages, 2e-3, write=True)
        yield from zigzag_passes(
            self.grid.start_page, self.grid.n_pages, self.iterations, 2e-3,
            write=True, first_reverse=True,
        )


def main() -> None:
    apps = sys.argv[1:] or ["mvec", "gauss"]
    print("Figure 2 configurations:",
          {k: v for k, v in PAPER_CONFIGS.items() if k != "write-through"})
    reports = run_fig2(apps=apps)
    print()
    print(render_fig2(reports))

    print("\ncustom workload (28 MB stencil) under the same configurations:")
    for policy in ("no-reliability", "parity-logging", "disk"):
        cluster = build_cluster(**PAPER_CONFIGS[policy])
        report = cluster.run(StencilSweep())
        print(f"  {policy:16s} {report.summary()}")


if __name__ == "__main__":
    main()
