"""Workload-profiler tests."""

import pytest

from repro.vm import InstantPager
from repro.sim import Simulator
from repro.workloads import (
    Gauss,
    Mvec,
    SequentialScan,
    profile_workload,
    render_profiles,
)


def test_instant_pager_roundtrip():
    from repro.vm import page_bytes

    sim = Simulator()
    pager = InstantPager(sim)
    data = page_bytes(1, 1, 64)

    def flow():
        yield from pager.pageout(1, data)
        got = yield from pager.pagein(1)
        return got

    assert sim.run_until_complete(sim.process(flow())) == data
    assert pager.transfers == 2


def test_instant_pager_missing_page():
    from repro.errors import PageNotFound

    sim = Simulator()
    pager = InstantPager(sim)

    def flow():
        yield from pager.pagein(9)

    with pytest.raises(PageNotFound):
        sim.run_until_complete(sim.process(flow()))


def test_instant_pager_costs_no_simulated_time():
    sim = Simulator()
    pager = InstantPager(sim)

    def flow():
        for page_id in range(50):
            yield from pager.pageout(page_id, None)
            yield from pager.pagein(page_id)

    sim.run_until_complete(sim.process(flow()))
    assert sim.now == 0.0


def test_profile_mvec_shape():
    profile = profile_workload(Mvec())
    assert profile.pageins == 0  # the MVEC signature
    assert profile.pageouts > 1000
    assert profile.write_back_ratio > 0


def test_profile_counts_references():
    wl = SequentialScan(n_pages=10, passes=3)
    profile = profile_workload(wl)
    assert profile.references == 30
    assert profile.faults == 10  # everything fits after first touch


def test_profile_deterministic():
    a = profile_workload(Gauss(n=400))
    b = profile_workload(Gauss(n=400))
    assert a == b


def test_render_profiles():
    text = render_profiles([profile_workload(Mvec(n=500))])
    assert "mvec" in text and "pageouts" in text
