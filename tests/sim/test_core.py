"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(3.5)
        seen.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert seen == [3.5]


def test_timeout_carries_value():
    sim = Simulator()
    got = []

    def proc(sim):
        value = yield sim.timeout(1.0, value="payload")
        got.append(value)

    sim.process(proc(sim))
    sim.run()
    assert got == ["payload"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def proc(sim, delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(proc(sim, 5, "c"))
    sim.process(proc(sim, 1, "a"))
    sim.process(proc(sim, 3, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_instant_fifo_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(2.0)
        order.append(tag)

    for tag in "abcde":
        sim.process(proc(sim, tag))
    sim.run()
    assert order == list("abcde")


def test_run_until_limits_clock():
    sim = Simulator()
    seen = []

    def proc(sim):
        while True:
            yield sim.timeout(1.0)
            seen.append(sim.now)

    sim.process(proc(sim))
    sim.run(until=3.5)
    assert seen == [1.0, 2.0, 3.0]
    assert sim.now == 3.5


def test_run_until_in_past_rejected():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_process_return_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        return 42

    p = sim.process(proc(sim))
    assert sim.run_until_complete(p) == 42


def test_process_waits_on_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(2.0)
        return "child-result"

    def parent(sim):
        result = yield sim.process(child(sim))
        return (sim.now, result)

    p = sim.process(parent(sim))
    assert sim.run_until_complete(p) == (2.0, "child-result")


def test_manual_event_succeed():
    sim = Simulator()
    gate = sim.event()
    got = []

    def waiter(sim, gate):
        got.append((yield gate))

    def opener(sim, gate):
        yield sim.timeout(4.0)
        gate.succeed("open")

    sim.process(waiter(sim, gate))
    sim.process(opener(sim, gate))
    sim.run()
    assert got == ["open"]


def test_event_failure_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter(sim, gate):
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer(sim, gate):
        yield sim.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    sim.process(waiter(sim, gate))
    sim.process(failer(sim, gate))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_event_failure_raises_at_kernel():
    sim = Simulator()
    gate = sim.event()
    gate.fail(RuntimeError("nobody listening"))
    with pytest.raises(RuntimeError, match="nobody listening"):
        sim.run()


def test_double_trigger_rejected():
    sim = Simulator()
    gate = sim.event()
    gate.succeed(1)
    with pytest.raises(SimulationError):
        gate.succeed(2)


def test_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_yield_non_event_is_error():
    sim = Simulator()

    def bad(sim):
        yield 42

    sim.process(bad(sim))
    with pytest.raises(SimulationError, match="must yield events"):
        sim.run()


def test_process_exception_propagates_to_parent():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        raise ValueError("child died")

    def parent(sim):
        try:
            yield sim.process(child(sim))
        except ValueError as exc:
            return f"caught: {exc}"

    p = sim.process(parent(sim))
    assert sim.run_until_complete(p) == "caught: child died"


def test_yield_already_processed_event():
    sim = Simulator()

    def proc(sim):
        t = sim.timeout(1.0, value="early")
        yield sim.timeout(5.0)
        # t fired long ago; yielding it must resume immediately.
        value = yield t
        return (sim.now, value)

    p = sim.process(proc(sim))
    assert sim.run_until_complete(p) == (5.0, "early")


def test_interrupt_delivers_cause():
    sim = Simulator()
    causes = []

    def victim(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            causes.append((sim.now, intr.cause))

    def attacker(sim, victim_proc):
        yield sim.timeout(2.0)
        victim_proc.interrupt(cause="crash")

    v = sim.process(victim(sim))
    sim.process(attacker(sim, v))
    sim.run()
    assert causes == [(2.0, "crash")]


def test_interrupt_dead_process_rejected():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_any_of_fires_on_first():
    sim = Simulator()

    def proc(sim):
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(9.0, value="slow")
        result = yield sim.any_of([fast, slow])
        return (sim.now, fast in result, slow in result)

    p = sim.process(proc(sim))
    assert sim.run_until_complete(p) == (1.0, True, False)


def test_all_of_waits_for_all():
    sim = Simulator()

    def proc(sim):
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(4.0, value="b")
        result = yield sim.all_of([a, b])
        return (sim.now, result[a], result[b])

    p = sim.process(proc(sim))
    assert sim.run_until_complete(p) == (4.0, "a", "b")


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def proc(sim):
        yield sim.all_of([])
        return sim.now

    p = sim.process(proc(sim))
    assert sim.run_until_complete(p) == 0.0


def test_all_of_failure_propagates():
    sim = Simulator()
    gate = sim.event()

    def proc(sim, gate):
        ok = sim.timeout(1.0)
        try:
            yield sim.all_of([ok, gate])
        except RuntimeError:
            return "failed"

    def failer(sim, gate):
        yield sim.timeout(0.5)
        gate.fail(RuntimeError("x"))

    p = sim.process(proc(sim, gate))
    sim.process(failer(sim, gate))
    assert sim.run_until_complete(p) == "failed"


def test_run_until_complete_failure_does_not_poison_next_run():
    """Regression: a process failure raised out of run_until_complete()
    left the completion event queued and undefused, so the *next*
    run_until_complete() re-raised the stale exception as its own."""
    sim = Simulator()

    def dies(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("first failure")

    def lives(sim):
        yield sim.timeout(1.0)
        return "fine"

    with pytest.raises(RuntimeError, match="first failure"):
        sim.run_until_complete(sim.process(dies(sim)))
    assert sim.run_until_complete(sim.process(lives(sim))) == "fine"


def test_run_until_complete_detects_deadlock():
    sim = Simulator()

    def stuck(sim):
        yield sim.event()  # never triggered

    p = sim.process(stuck(sim))
    with pytest.raises(SimulationError, match="stalled"):
        sim.run_until_complete(p)


def test_stop_simulation_from_process():
    sim = Simulator()
    seen = []

    def proc(sim):
        while True:
            yield sim.timeout(1.0)
            seen.append(sim.now)
            if sim.now >= 3.0:
                sim.stop()

    sim.process(proc(sim))
    sim.run()
    assert seen == [1.0, 2.0, 3.0]


def test_peek_empty_heap():
    assert Simulator().peek() == float("inf")


def test_step_empty_heap_rejected():
    with pytest.raises(SimulationError):
        Simulator().step()


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        _ = sim.event().value
