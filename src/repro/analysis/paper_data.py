"""The paper's published measurements, for comparison in every experiment.

All numbers are transcribed from the paper (figures 2-5 and the §4.3/§4.4
text).  EXPERIMENTS.md reports our measurements against these.
"""

from __future__ import annotations

__all__ = [
    "FIG2_SECONDS",
    "FIG5_SECONDS",
    "FIG3_INPUT_SIZES_MB",
    "FFT_24MB_BREAKDOWN",
    "LATENCY_MS",
    "SPEEDUP_CLAIMS",
]

#: Figure 2: completion time (seconds) per application and policy.
FIG2_SECONDS = {
    "mvec": {
        "no-reliability": 19.02,
        "parity-logging": 23.37,
        "mirroring": 34.05,
        "disk": 25.15,
    },
    "gauss": {
        "no-reliability": 40.62,
        "parity-logging": 49.80,
        "mirroring": 67.25,
        "disk": 79.61,
    },
    "qsort": {
        "no-reliability": 74.26,
        "parity-logging": 81.05,
        "mirroring": 100.67,
        "disk": 113.80,
    },
    "fft": {
        "no-reliability": 108.02,
        "parity-logging": 121.67,
        "mirroring": 138.86,
        "disk": 150.00,
    },
    "filter": {
        "no-reliability": 80.18,
        "parity-logging": 94.07,
        "mirroring": 104.98,
        "disk": 126.61,
    },
    "cc": {
        "no-reliability": 101.69,
        "parity-logging": 103.25,
        "mirroring": 117.31,
        "disk": 128.70,
    },
}

#: Figure 5: no-reliability vs write-through vs parity logging (seconds).
FIG5_SECONDS = {
    "mvec": {"no-reliability": 19.02, "write-through": 25.49, "parity-logging": 23.37},
    "gauss": {"no-reliability": 40.62, "write-through": 41.15, "parity-logging": 49.80},
    "qsort": {"no-reliability": 74.26, "write-through": 79.85, "parity-logging": 81.05},
    "fft": {"no-reliability": 108.02, "write-through": 110.78, "parity-logging": 121.67},
}

#: Figure 3/4 x-axis: FFT input sizes in megabytes.
FIG3_INPUT_SIZES_MB = [17.0, 18.5, 20.0, 21.6, 23.2, 24.0]

#: §4.3's measured decomposition of FFT at 24 MB under parity logging.
FFT_24MB_BREAKDOWN = {
    "etime": 130.76,
    "utime": 66.138,
    "systime": 3.133,
    "inittime": 0.21,
    "ptime": 61.279,
    "pageouts": 2718,
    "pageins": 2055,
    "page_transfers": 5452,
    "pptime_per_page": 0.0016,
    "predicted_etime_10x": 83.459,
    "predicted_overhead_fraction_10x": 0.16748,
}

#: §4.4: per-page latency decomposition (milliseconds).
LATENCY_MS = {
    "total_per_transfer": 11.24,
    "protocol": 1.6,
    "wire": 9.64,
    "prior_work_4kb_pagein": 45.0,  # Schilit & Duchamp, for context
}

#: Headline relative claims used as reproduction targets.
SPEEDUP_CLAIMS = {
    # (application, faster_policy, slower_policy): fractional improvement
    ("gauss", "no-reliability", "disk"): 0.96,
    ("mvec", "no-reliability", "disk"): 0.32,
    ("qsort", "parity-logging", "disk"): 0.404,
    ("gauss", "parity-logging", "disk"): 0.5986,
    ("cc", "no-reliability", "disk"): 0.2656,
    ("cc", "parity-logging", "disk"): 0.2465,
    ("cc", "mirroring", "disk"): 0.097,
}
