#!/usr/bin/env python3
"""Crash survival: a memory server dies mid-run; the application finishes.

The paper's core reliability claim (§2.2): with parity logging, a single
workstation crash loses nothing — the client reconstructs every lost
page by XORing parity groups.  This example runs an FFT in *content
mode* (pages carry real bytes, and every pagein is verified against what
was paged out), kills one of the four servers partway through, and shows
the run completing with zero data corruption.

Run:  python examples/crash_survival.py
"""

from repro import CrashInjector, Fft, build_cluster


def main() -> None:
    cluster = build_cluster(
        policy="parity-logging",
        n_servers=4,
        overflow_fraction=0.10,
        content_mode=True,  # real page payloads, verified on every pagein
    )
    workload = Fft.from_megabytes(21.6)
    victim = cluster.servers[1]
    injector = CrashInjector(cluster.sim)
    # Kill the server once it has absorbed 200 pageouts (mid-workload).
    injector.crash_after_pageouts(victim, pageouts=200)

    print(f"running {workload.name} with servers "
          f"{[s.name for s in cluster.servers]} + {cluster.parity_server.name}")
    report = cluster.run(workload)

    crash_time, crashed_name = injector.crashes[0]
    print(f"\n{crashed_name} crashed at t={crash_time:.2f}s "
          f"holding client pages — and the run still completed:")
    print(f"  {report.summary()}")
    print(f"  recoveries: {cluster.pager.counters['recoveries']}, "
          f"recovery time {cluster.pager.recovery_times.mean:.2f}s, "
          f"pages reconstructed "
          f"{cluster.policy.counters['recovered_pages']}")
    print("\nevery pagein after the crash was verified byte-for-byte "
          "against the last paged-out contents (content mode).")


if __name__ == "__main__":
    main()
