"""Page identity and page contents.

Pages are identified by integer ids within one client's address space.
Two content modes exist (see DESIGN.md §5):

* **metadata mode** — pages carry no bytes; timing experiments use this.
* **content mode** — every pageout carries a real byte payload, generated
  deterministically from ``(page_id, version)``.  XOR parity is then
  computed over real data and crash recovery is verified byte-for-byte.

Both modes drive identical control paths in the pager and policies.
"""

from __future__ import annotations

import zlib
from functools import lru_cache
from typing import Optional

__all__ = [
    "page_bytes",
    "xor_bytes",
    "zero_page",
    "page_checksum",
    "corrupt_bytes",
    "set_fastpath",
    "clear_fastpath_caches",
    "fastpath_stats",
    "fragment_memo_get",
    "fragment_memo_put",
    "PageVersioner",
]

_MIX = 0x9E3779B97F4A7C15  # Fibonacci hashing constant: cheap, well mixed

# --------------------------------------------------------------- fast path
# Content-mode runs regenerate, checksum, and compare the same page
# payloads thousands of times (every pageout start, every machine verify,
# every parity XOR).  All three primitives below are pure functions of
# their inputs, so memoising them cannot change any simulated result —
# only wall-clock.  ``set_fastpath(False)`` restores the uncached
# behaviour for A/B benchmarking (benchmarks/bench_pipeline.py).
#
# The caches return *shared immutable* ``bytes`` objects; nothing in the
# codebase mutates page payloads in place (parity goes through
# ``xor_bytes``, corruption through ``corrupt_bytes`` — both allocate).
# A bonus of identity-sharing: equality checks on cache hits
# (``contents == expected`` in the machine's verify loop) short-circuit
# on ``a is b`` inside CPython before comparing a single byte.

_FASTPATH = True
_ZERO_PAGES: dict = {}  # size -> the shared all-zero page (few sizes ever)
#: id(contents) -> (contents, crc).  The strong reference in the value
#: keeps the id stable; the ``hit[0] is contents`` guard below makes a
#: recycled id (after a cache flush) harmless.
_CHECKSUM_MEMO: dict = {}
_CHECKSUM_MEMO_MAX = 8192
#: id(contents) -> (contents, shape_key, fragment_list).  Erasure
#: stripes memoised by payload identity: ``page_bytes`` hands out shared
#: objects per (page, version), so a page written once and paged out
#: repeatedly (or the shared zero page) is split+encoded exactly once.
#: Same identity discipline as ``_CHECKSUM_MEMO``; purely host-side —
#: simulated CPU charges are unaffected.
_FRAGMENT_MEMO: dict = {}
_FRAGMENT_MEMO_MAX = 4096
_FRAGMENT_MEMO_HITS = [0]


def set_fastpath(enabled: bool) -> bool:
    """Toggle the content fast path; returns the previous setting.

    Flushes every cache on each call so A/B benchmark phases never see
    another phase's warm state.
    """
    global _FASTPATH
    previous = _FASTPATH
    _FASTPATH = bool(enabled)
    clear_fastpath_caches()
    return previous


def clear_fastpath_caches() -> None:
    """Drop all memoised pages/checksums (benchmark hygiene)."""
    _ZERO_PAGES.clear()
    _CHECKSUM_MEMO.clear()
    _FRAGMENT_MEMO.clear()
    _FRAGMENT_MEMO_HITS[0] = 0
    _page_bytes_cached.cache_clear()


def fastpath_stats() -> dict:
    """Cache occupancy/hit counters for the obs layer and benchmarks."""
    info = _page_bytes_cached.cache_info()
    return {
        "enabled": _FASTPATH,
        "page_bytes_hits": info.hits,
        "page_bytes_misses": info.misses,
        "page_bytes_entries": info.currsize,
        "zero_page_sizes": len(_ZERO_PAGES),
        "checksum_entries": len(_CHECKSUM_MEMO),
        "fragment_entries": len(_FRAGMENT_MEMO),
        "fragment_hits": _FRAGMENT_MEMO_HITS[0],
    }


def fragment_memo_get(contents: bytes, shape_key: tuple) -> Optional[list]:
    """The memoised erasure stripe for ``contents``, or None.

    Trusted only when the stored object *is* ``contents`` and the codec
    shape matches — identical semantics to the checksum memo.
    """
    if not _FASTPATH:
        return None
    hit = _FRAGMENT_MEMO.get(id(contents))
    if hit is not None and hit[0] is contents and hit[1] == shape_key:
        _FRAGMENT_MEMO_HITS[0] += 1
        return hit[2]
    return None


def fragment_memo_put(
    contents: bytes, shape_key: tuple, fragments: list
) -> None:
    """Memoise an erasure stripe keyed by payload identity + shape."""
    if not _FASTPATH:
        return
    if len(_FRAGMENT_MEMO) >= _FRAGMENT_MEMO_MAX:
        _FRAGMENT_MEMO.clear()  # epoch flush: O(1) amortised, no LRU links
    _FRAGMENT_MEMO[id(contents)] = (contents, shape_key, fragments)


def _generate_page_bytes(page_id: int, version: int, size: int) -> bytes:
    word = ((page_id * _MIX) ^ (version * 0xC2B2AE3D27D4EB4F)) & (2**64 - 1)
    pattern = word.to_bytes(8, "little")
    reps, rest = divmod(size, 8)
    return pattern * reps + pattern[:rest]


_page_bytes_cached = lru_cache(maxsize=4096)(_generate_page_bytes)


def page_bytes(page_id: int, version: int, size: int) -> bytes:
    """Deterministic page contents for ``(page_id, version)``.

    An 8-byte mixed word repeated to ``size`` so generation is O(size)
    with tiny constants; different (page, version) pairs produce different
    payloads with overwhelming probability.
    """
    if size <= 0:
        raise ValueError(f"page size must be positive: {size}")
    if _FASTPATH:
        return _page_bytes_cached(page_id, version, size)
    return _generate_page_bytes(page_id, version, size)


def zero_page(size: int) -> bytes:
    """An all-zero page (the initial state of every parity buffer)."""
    if size <= 0:
        raise ValueError(f"page size must be positive: {size}")
    if not _FASTPATH:
        return bytes(size)
    page = _ZERO_PAGES.get(size)
    if page is None:
        page = _ZERO_PAGES[size] = bytes(size)
    return page


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings (the parity primitive)."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return (int.from_bytes(a, "little") ^ int.from_bytes(b, "little")).to_bytes(
        len(a), "little"
    )


def page_checksum(contents: bytes) -> int:
    """End-to-end integrity checksum of one page's bytes.

    CRC32 is enough here: the threat model is simulated bit-rot and
    transport corruption, not an adversary.  The pager records this at
    pageout and verifies it at pagein (DESIGN.md "Fault model").

    Checksum-once-per-version: because page payloads come out of the
    ``page_bytes`` cache as shared objects, the CRC is memoised by object
    identity.  The stored strong reference pins the id; a hit is only
    trusted when the stored object *is* the argument, so a recycled id
    after a cache flush can never alias a different payload.
    """
    if not _FASTPATH:
        return zlib.crc32(contents) & 0xFFFFFFFF
    hit = _CHECKSUM_MEMO.get(id(contents))
    if hit is not None and hit[0] is contents:
        return hit[1]
    crc = zlib.crc32(contents) & 0xFFFFFFFF
    if len(_CHECKSUM_MEMO) >= _CHECKSUM_MEMO_MAX:
        _CHECKSUM_MEMO.clear()  # epoch flush: O(1) amortised, no LRU links
    _CHECKSUM_MEMO[id(contents)] = (contents, crc)
    return crc


def corrupt_bytes(contents: bytes, rng, flips: int = 3) -> bytes:
    """Flip ``flips`` bits of ``contents`` at RNG-chosen positions.

    Guaranteed to return bytes that differ from the input (a flipped bit
    can never flip back because positions are sampled without
    replacement).
    """
    if not contents:
        raise ValueError("cannot corrupt an empty payload")
    mutated = bytearray(contents)
    positions = rng.sample(range(len(mutated) * 8), min(flips, len(mutated) * 8))
    for bit in positions:
        mutated[bit // 8] ^= 1 << (bit % 8)
    return bytes(mutated)


class PageVersioner:
    """Tracks the write version of every page in one address space.

    The machine bumps a page's version on each dirtying write interval, so
    successive pageouts of the same page carry distinguishable contents —
    exactly what exercises parity logging's multiple-live-versions
    behaviour (§2.2: "many versions of a given page may be present
    simultaneously at the servers' memory").
    """

    def __init__(self, page_size: int, content_mode: bool = False):
        self.page_size = page_size
        self.content_mode = content_mode
        self._versions: dict = {}

    def bump(self, page_id: int) -> int:
        """Advance and return the page's version (first write -> 1)."""
        version = self._versions.get(page_id, 0) + 1
        self._versions[page_id] = version
        return version

    def version_of(self, page_id: int) -> int:
        """The page's current write version (0 = never written)."""
        return self._versions.get(page_id, 0)

    def contents(self, page_id: int) -> Optional[bytes]:
        """Current contents in content mode, else None."""
        if not self.content_mode:
            return None
        return page_bytes(page_id, self._versions.get(page_id, 0), self.page_size)

    def expected(self, page_id: int, version: int) -> bytes:
        """Contents a given version must have (for integrity checks)."""
        return page_bytes(page_id, version, self.page_size)
