"""Multi-client behaviour: isolation and shared-wire contention."""

import pytest

from repro.experiments.multi_client import build_multi_client
from repro.vm import page_bytes
from repro.workloads import Mvec

PAGE = 8192


def test_clients_have_isolated_swap_spaces():
    """§6: clients never share swap spaces — same page id, different data."""
    sim, machines, _ = build_multi_client(n_clients=2, capacity_per_client=64)
    pager_a = machines[0].pager
    pager_b = machines[1].pager
    done = []

    def flow():
        # Both clients page out "page 7" with different contents.
        yield from pager_a.pageout(7, page_bytes(7, 1, PAGE))
        yield from pager_b.pageout(7, page_bytes(7, 2, PAGE))
        got_a = yield from pager_a.pagein(7)
        got_b = yield from pager_b.pagein(7)
        done.append((got_a, got_b))

    sim.run_until_complete(sim.process(flow()))
    got_a, got_b = done[0]
    assert got_a == page_bytes(7, 1, PAGE)
    assert got_b == page_bytes(7, 2, PAGE)


def test_per_client_server_instances_on_shared_donor():
    sim, machines, _ = build_multi_client(n_clients=2, n_donors=1)
    servers_a = machines[0].pager.policy.servers
    servers_b = machines[1].pager.policy.servers
    # Distinct server instances...
    assert not set(id(s) for s in servers_a) & set(id(s) for s in servers_b)
    # ...on the same donor host, each with its own memory grant.
    host = servers_a[0].host
    assert servers_b[0].host is host
    assert host.granted_pages == (
        servers_a[0].capacity_pages + servers_b[0].capacity_pages
    )


def test_one_client_crash_recovery_does_not_disturb_other():
    sim, machines, _ = build_multi_client(n_clients=2, n_donors=2)
    pager_a, pager_b = machines[0].pager, machines[1].pager

    def flow():
        for page_id in range(8):
            yield from pager_a.pageout(page_id, page_bytes(page_id, 1, PAGE))
            yield from pager_b.pageout(page_id, page_bytes(page_id + 100, 1, PAGE))
        # Crash one of client A's server *instances* only.
        pager_a.policy.servers[0].crash()
        # Client B is entirely unaffected.
        for page_id in range(8):
            got = yield from pager_b.pagein(page_id)
            assert got == page_bytes(page_id + 100, 1, PAGE)

    sim.run_until_complete(sim.process(flow()))


def test_concurrent_clients_both_complete():
    sim, machines, network = build_multi_client(n_clients=2)
    procs = [
        machine.run(Mvec(n=1800).trace(), name=f"mvec-{i}")
        for i, machine in enumerate(machines)
    ]
    reports = [sim.run_until_complete(p) for p in procs]
    assert all(r.etime > 0 for r in reports)
    assert network.collisions > 0  # they really did share the wire


def test_contention_slows_both_clients():
    def solo():
        sim, machines, _ = build_multi_client(n_clients=1)
        report = sim.run_until_complete(machines[0].run(Mvec(n=1800).trace()))
        return report.etime

    def together():
        sim, machines, _ = build_multi_client(n_clients=2)
        procs = [m.run(Mvec(n=1800).trace()) for m in machines]
        return [sim.run_until_complete(p).etime for p in procs]

    baseline = solo()
    both = together()
    assert all(t > baseline for t in both)
