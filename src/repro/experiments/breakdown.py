"""§4.3's worked example: the FFT-24MB time decomposition.

The paper dissects one run — FFT with 24 MB of input under parity
logging (4 servers + parity) — into utime/systime/inittime/pptime/btime,
counts its transfers (2718 pageouts, 2055 pageins, 5452 page transfers),
and predicts an 83.459 s completion on a 10x network with paging overhead
under 17%.  This experiment reproduces the whole derivation.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.extrapolate import all_memory_bound, decompose
from ..analysis.paper_data import FFT_24MB_BREAKDOWN
from ..analysis.report import format_table
from ..runner import RunSpec, default_runner

__all__ = ["run_breakdown", "render_breakdown"]


def run_breakdown(
    size_mb: float = 24.0, bandwidth_factor: float = 10.0, runner=None
) -> Dict[str, object]:
    """Run the FFT and derive the paper's full §4.3 decomposition."""
    spec = RunSpec.make(
        "fft", "parity-logging", workload_kwargs={"size_mb": size_mb}
    )
    report = (runner or default_runner()).run_one(spec).report
    decomposition = decompose(report)
    predicted = decomposition.predicted_etime(bandwidth_factor)
    cpu_floor = (
        decomposition.utime + decomposition.systime + decomposition.inittime
    )
    return {
        "report": report,
        "decomposition": decomposition,
        "predicted_etime_10x": predicted,
        "overhead_fraction_10x": 1.0 - cpu_floor / predicted,
        "all_memory": all_memory_bound(decomposition),
    }


def render_breakdown(results: Dict[str, object]) -> str:
    """Measured-vs-paper table for the §4.3 worked example."""
    d = results["decomposition"]
    r = results["report"]
    paper = FFT_24MB_BREAKDOWN
    rows = [
        ["etime (s)", f"{d.etime:.2f}", f"{paper['etime']:.2f}"],
        ["utime (s)", f"{d.utime:.2f}", f"{paper['utime']:.2f}"],
        ["systime (s)", f"{d.systime:.2f}", f"{paper['systime']:.2f}"],
        ["inittime (s)", f"{d.inittime:.2f}", f"{paper['inittime']:.2f}"],
        ["ptime (s)", f"{d.ptime:.2f}", f"{paper['ptime']:.2f}"],
        ["pageouts", r.pageouts, paper["pageouts"]],
        ["pageins", r.pageins, paper["pageins"]],
        ["page transfers", r.page_transfers, paper["page_transfers"]],
        ["pptime (s)", f"{d.pptime:.2f}", f"{paper['page_transfers'] * paper['pptime_per_page']:.2f}"],
        [
            "predicted etime @10x (s)",
            f"{results['predicted_etime_10x']:.2f}",
            f"{paper['predicted_etime_10x']:.2f}",
        ],
        [
            "paging overhead @10x",
            f"{results['overhead_fraction_10x']:.1%}",
            f"{paper['predicted_overhead_fraction_10x']:.1%}",
        ],
    ]
    return format_table(
        ["quantity", "ours", "paper"],
        rows,
        title="§4.3 breakdown: FFT 24 MB under parity logging",
    )
