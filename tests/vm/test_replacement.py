"""Unit and property tests for the replacement policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm import (
    ClockReplacement,
    FifoReplacement,
    LruReplacement,
    make_replacement,
)

ALL = [FifoReplacement, LruReplacement, ClockReplacement]


@pytest.mark.parametrize("cls", ALL)
def test_insert_evict_single(cls):
    policy = cls()
    policy.insert(1)
    assert len(policy) == 1
    assert policy.evict() == 1
    assert len(policy) == 0


@pytest.mark.parametrize("cls", ALL)
def test_double_insert_rejected(cls):
    policy = cls()
    policy.insert(1)
    with pytest.raises(ValueError):
        policy.insert(1)


@pytest.mark.parametrize("cls", ALL)
def test_evict_empty_rejected(cls):
    with pytest.raises(IndexError):
        cls().evict()


@pytest.mark.parametrize("cls", ALL)
def test_touch_nonresident_rejected(cls):
    with pytest.raises(KeyError):
        cls().touch(5)


@pytest.mark.parametrize("cls", ALL)
def test_remove_absent_is_noop(cls):
    policy = cls()
    policy.remove(99)
    assert len(policy) == 0


@pytest.mark.parametrize("cls", ALL)
def test_remove_prevents_eviction(cls):
    policy = cls()
    policy.insert(1)
    policy.insert(2)
    policy.remove(1)
    assert policy.evict() == 2


def test_fifo_ignores_touches():
    policy = FifoReplacement()
    policy.insert(1)
    policy.insert(2)
    policy.touch(1)
    assert policy.evict() == 1  # insertion order, references irrelevant


def test_lru_touch_changes_victim():
    policy = LruReplacement()
    policy.insert(1)
    policy.insert(2)
    policy.touch(1)
    assert policy.evict() == 2


def test_clock_second_chance():
    policy = ClockReplacement()
    policy.insert(1)
    policy.insert(2)
    policy.touch(1)  # 1 gets a second chance
    assert policy.evict() == 2
    # After its reprieve, 1 is evictable next.
    assert policy.evict() == 1


def test_clock_all_referenced_degrades_to_fifo():
    policy = ClockReplacement()
    for pid in (1, 2, 3):
        policy.insert(pid)
        policy.touch(pid)
    assert policy.evict() == 1  # one full lap clears bits, then FIFO


def test_make_replacement():
    assert make_replacement("fifo").name == "fifo"
    assert make_replacement("lru").name == "lru"
    assert make_replacement("clock").name == "clock"
    with pytest.raises(ValueError):
        make_replacement("optimal")


# --------------------------------------------------------- property tests
@st.composite
def policy_operations(draw):
    """A random sequence of insert/touch/evict operations."""
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "touch", "evict"]),
                st.integers(min_value=0, max_value=20),
            ),
            max_size=200,
        )
    )


@pytest.mark.parametrize("cls", ALL)
@settings(max_examples=50, deadline=None)
@given(ops=policy_operations())
def test_policy_invariants(cls, ops):
    """Under arbitrary op sequences: membership is consistent, evictions
    only return resident pages, and sizes never go negative."""
    policy = cls()
    resident = set()
    for op, pid in ops:
        if op == "insert":
            if pid in resident:
                with pytest.raises(ValueError):
                    policy.insert(pid)
            else:
                policy.insert(pid)
                resident.add(pid)
        elif op == "touch":
            if pid in resident:
                policy.touch(pid)
            else:
                with pytest.raises(KeyError):
                    policy.touch(pid)
        else:  # evict
            if resident:
                victim = policy.evict()
                assert victim in resident
                resident.discard(victim)
            else:
                with pytest.raises(IndexError):
                    policy.evict()
        assert len(policy) == len(resident)


@pytest.mark.parametrize("cls", ALL)
@settings(max_examples=30, deadline=None)
@given(pages=st.lists(st.integers(0, 50), min_size=1, max_size=100, unique=True))
def test_eviction_drains_everything(cls, pages):
    policy = cls()
    for pid in pages:
        policy.insert(pid)
    evicted = {policy.evict() for _ in pages}
    assert evicted == set(pages)
    assert len(policy) == 0
