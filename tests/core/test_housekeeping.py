"""Housekeeping and direct server-to-server migration tests (§2.1)."""

import pytest

from repro.core import build_cluster
from repro.vm import page_bytes

PAGE = 8192


def drive(cluster, gen):
    def body(gen):
        result = yield from gen
        return result

    return cluster.sim.run_until_complete(cluster.sim.process(body(gen)))


def make_cluster(**kwargs):
    defaults = dict(
        policy="no-reliability", n_servers=2, content_mode=True,
        server_capacity_pages=128,
    )
    defaults.update(kwargs)
    return build_cluster(**defaults)


def test_migration_uses_direct_server_transfer():
    cluster = make_cluster()
    spare = cluster.add_spare_server()
    # The spare must be in the policy's rotation to receive migrations.
    cluster.policy.servers.append(spare)
    for page_id in range(16):
        drive(cluster, cluster.pager.pageout(page_id, page_bytes(page_id, 1, PAGE)))
    loaded = cluster.servers[0]
    held_before = loaded.stored_pages
    moved = drive(cluster, cluster.pager.migrate_from(loaded))
    assert moved == held_before
    assert loaded.counters["migrated_out"] == held_before
    # Pages went server-to-server, not through the client's disk.
    assert cluster.pager.pages_on_local_disk == 0
    for page_id in range(16):
        assert drive(cluster, cluster.pager.pagein(page_id)) == page_bytes(
            page_id, 1, PAGE
        )


def test_migration_clears_advising_flag():
    cluster = make_cluster(server_capacity_pages=8)
    spare = cluster.add_spare_server(capacity_pages=128)
    cluster.policy.servers.append(spare)
    for page_id in range(16):
        drive(cluster, cluster.pager.pageout(page_id, page_bytes(page_id, 1, PAGE)))
    loaded = cluster.servers[0]
    loaded.advising = True
    drive(cluster, cluster.pager.migrate_from(loaded))
    assert not loaded.advising


def test_housekeeping_migrates_and_replicates_back():
    cluster = make_cluster(server_capacity_pages=8)
    sim, pager = cluster.sim, cluster.pager
    # Overflow both tiny servers: 16 slots total, 24 pages -> 8 on disk.
    for page_id in range(24):
        drive(cluster, pager.pageout(page_id, page_bytes(page_id, 1, PAGE)))
    assert pager.pages_on_local_disk == 8
    # A roomy spare joins; housekeeping should replicate the disk pages
    # back to remote memory on its next tick.
    spare = cluster.add_spare_server(capacity_pages=128)
    cluster.policy.servers.append(spare)
    pager.start_housekeeping(interval=5.0)
    sim.run(until=sim.now + 12.0)
    assert pager.pages_on_local_disk == 0
    assert pager.counters["replicated_back"] == 8
    for page_id in range(24):
        assert drive(cluster, pager.pagein(page_id)) == page_bytes(page_id, 1, PAGE)


def test_housekeeping_handles_advising_servers():
    cluster = make_cluster(server_capacity_pages=64)
    spare = cluster.add_spare_server(capacity_pages=128)
    cluster.policy.servers.append(spare)
    sim, pager = cluster.sim, cluster.pager
    for page_id in range(32):
        drive(cluster, pager.pageout(page_id, page_bytes(page_id, 1, PAGE)))
    loaded = cluster.servers[0]
    loaded.advising = True
    held = loaded.stored_pages
    pager.start_housekeeping(interval=3.0)
    sim.run(until=sim.now + 8.0)
    assert loaded.stored_pages < held
    assert pager.counters["migrated_pages"] >= 1


def test_housekeeping_stop():
    cluster = make_cluster()
    pager = cluster.pager
    pager.start_housekeeping(interval=2.0)
    cluster.sim.run(until=3.0)
    pager.stop_housekeeping()
    cluster.sim.run(until=10.0)  # must not raise or act further


def test_housekeeping_validation():
    cluster = make_cluster()
    with pytest.raises(ValueError):
        cluster.pager.start_housekeeping(interval=0)
