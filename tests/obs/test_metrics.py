"""MetricsRegistry snapshots and exact snapshot merging."""

import pytest

from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.sim.monitor import Counter, Tally, UtilizationTracker


def test_snapshot_expands_counters_and_tallies():
    registry = MetricsRegistry()
    counter = registry.attach("pager", Counter())
    counter.add("pageouts", 3)
    tally = registry.attach("net.latency", Tally())
    tally.observe(2.0)
    tally.observe(4.0)
    registry.gauge("net.utilization", lambda: 0.5)
    snapshot = registry.snapshot()
    assert snapshot["pager.pageouts"] == 3
    assert snapshot["net.latency.count"] == 2
    assert snapshot["net.latency.mean"] == 3.0
    assert snapshot["net.latency.__tally__"] is True
    assert snapshot["net.utilization"] == 0.5
    assert list(snapshot) == sorted(snapshot)


def test_empty_tally_snapshot_is_json_safe():
    registry = MetricsRegistry()
    registry.attach("t", Tally())
    snapshot = registry.snapshot()
    assert snapshot["t.count"] == 0
    assert snapshot["t.mean"] is None  # no NaN in JSON payloads


def test_duplicate_names_rejected():
    registry = MetricsRegistry()
    registry.attach("x", Counter())
    with pytest.raises(ValueError, match="already registered"):
        registry.attach("x", Counter())
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("x", lambda: 0.0)


def test_raw_utilization_tracker_snapshots_as_none():
    registry = MetricsRegistry()
    registry.attach("u", UtilizationTracker())
    assert registry.snapshot() == {"u": None}


def test_merge_sums_integer_counters():
    merged = merge_snapshots([{"pager.pageouts": 2}, {"pager.pageouts": 5}])
    assert merged == {"pager.pageouts": 7}


def test_merge_keeps_first_value_for_floats_and_bools():
    # Utilisations are instantaneous readings: summing them would be
    # meaningless, so the first run's value survives.
    merged = merge_snapshots(
        [
            {"net.utilization": 0.25, "flag": True},
            {"net.utilization": 0.75, "flag": False},
        ]
    )
    assert merged["net.utilization"] == 0.25
    assert merged["flag"] is True


def test_merge_folds_tallies_exactly():
    def snap(values):
        registry = MetricsRegistry()
        tally = registry.attach("lat", Tally())
        for value in values:
            tally.observe(value)
        return registry.snapshot()

    a, b = [1.0, 2.0, 3.0], [10.0, 20.0]
    merged = merge_snapshots([snap(a), snap(b)])

    single = Tally()
    for value in a + b:
        single.observe(value)
    assert merged["lat.count"] == single.count
    assert merged["lat.total"] == pytest.approx(single.total)
    assert merged["lat.mean"] == pytest.approx(single.mean)
    assert merged["lat.stddev"] == pytest.approx(single.stddev)
    assert merged["lat.min"] == single.minimum
    assert merged["lat.max"] == single.maximum
    assert merged["lat.__tally__"] is True


def test_merge_tolerates_empty_tally_shards():
    def snap(values):
        registry = MetricsRegistry()
        tally = registry.attach("lat", Tally())
        for value in values:
            tally.observe(value)
        return registry.snapshot()

    merged = merge_snapshots([snap([]), snap([4.0])])
    assert merged["lat.count"] == 1
    assert merged["lat.mean"] == 4.0


def test_merge_of_nothing_is_empty():
    assert merge_snapshots([]) == {}
