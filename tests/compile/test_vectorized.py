"""Columnar (format 2) schedules and vectorized replay equivalence.

Two layers of pinning for the PR 6 fast paths:

* **structural** — the columnar artifact's invariants: segment counts
  tie out against the concatenated columns, the flat format-1 op view
  reconstructs consistently, the array reductions agree with the
  per-op walk, and the cached numpy views never leak into
  serialisation.
* **behavioural** — hypothesis drives randomized synthetic workloads
  through compiled replay (merged-chunk ``sim.at`` reconciliation) and
  interpreted execution across every reliability policy and every
  batch-capable replacement, requiring the ``CompletionReport`` to
  match float-for-float.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compile import SCHEDULE_FORMAT, FaultSchedule, compile_trace
from repro.config import MachineSpec
from repro.core.builder import build_cluster
from repro.vm.replacement import LruReplacement, make_replacement
from repro.workloads import Gauss, HotCold

_SMALL = MachineSpec(
    name="vectorized-small",
    ram_bytes=2 * 1024 * 1024,
    kernel_resident_bytes=1 * 1024 * 1024,
    page_size=8192,
)

_POLICIES = ("disk", "no-reliability", "mirroring", "parity-logging", "write-through")
_REPLACEMENTS = ("fifo", "lru", "clock")


def _compile_gauss(max_cpu_chunk=0.25):
    return compile_trace(
        Gauss(n=400, passes=2).trace(),
        user_frames=128,
        policy=LruReplacement(),
        cpu_speed=1.0,
        max_cpu_chunk=max_cpu_chunk,
        free_batch=16,
    )


# ------------------------------------------------------------- structural

def test_columnar_counts_tie_out():
    schedule = _compile_gauss()
    assert schedule.n_faults == len(schedule.fault_page)
    assert len(schedule.seg_chunks) == schedule.n_faults + 1
    assert len(schedule.seg_bumps) == schedule.n_faults + 1
    assert sum(schedule.seg_chunks) == len(schedule.chunk_cpu)
    assert sum(schedule.seg_bumps) == len(schedule.bump_pages)
    assert len(schedule.victim_lens) == schedule.n_faults
    assert sum(schedule.victim_lens) == len(schedule.victims)


def test_flat_op_view_reconstructs_consistently():
    schedule = _compile_gauss()
    ops = schedule.ops
    assert schedule.n_ops == len(ops)
    assert sum(1 for op in ops if op[0] == "f") == schedule.n_faults
    assert sum(1 for op in ops if op[0] == "c") == len(schedule.chunk_cpu)
    # The flat view preserves column order exactly.
    assert [op[1] for op in ops if op[0] == "c"] == schedule.chunk_cpu
    assert [op[1] for op in ops if op[0] == "f"] == schedule.fault_page
    assert [page for op in ops if op[0] == "b" for page in op[1]] == (
        schedule.bump_pages
    )
    assert [v for op in ops if op[0] == "f" for v in op[4]] == schedule.victims


def test_array_reductions_agree_with_per_op_walk():
    schedule = _compile_gauss()
    counts = schedule.transfer_counts()
    ops = schedule.ops
    pageins = sum(1 for op in ops if op[0] == "f" and op[3])
    pageouts = sum(len(op[4]) for op in ops if op[0] == "f")
    assert counts["pageins"] == pageins
    assert counts["pageouts"] == pageouts
    assert counts["zero_fills"] == schedule.n_faults - pageins
    assert counts["transfers"] == pageins + pageouts
    assert schedule.total_cpu() == pytest.approx(sum(schedule.chunk_cpu))


def test_array_views_cached_and_invisible_to_serialisation():
    schedule = _compile_gauss()
    arrays = schedule.arrays()
    assert arrays is schedule.arrays()  # cached, not rebuilt
    data = dataclasses.asdict(schedule)
    assert "_arrays" not in data
    json_dict = schedule.to_json_dict()
    assert "_arrays" not in json_dict
    assert json_dict["format"] == SCHEDULE_FORMAT
    clone = FaultSchedule.from_json_dict(json_dict)
    assert dataclasses.asdict(clone) == data


def test_merged_chunk_segments_exist_at_paper_chunking():
    """The multi-chunk merged-``sim.at`` replay path must actually be
    exercised by the equivalence suite: under the default 0.25 s CPU
    chunk, GAUSS segments split into several chunks."""
    schedule = _compile_gauss(max_cpu_chunk=0.05)
    assert max(schedule.seg_chunks) > 1


# ------------------------------------------------------------ behavioural

def _report(policy, replacement, workload, compile_on):
    cluster = build_cluster(
        policy=policy,
        n_servers=2,
        seed=7,
        machine_spec=_SMALL,
        replacement=make_replacement(replacement),
        compile_schedules=compile_on,
    )
    report = cluster.run(workload)
    return dataclasses.asdict(report), cluster.metrics.snapshot()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    policy=st.sampled_from(_POLICIES),
    replacement=st.sampled_from(_REPLACEMENTS),
    hot_pages=st.integers(min_value=8, max_value=160),
    cold_pages=st.integers(min_value=64, max_value=512),
    hot_fraction=st.floats(min_value=0.5, max_value=0.99),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_vectorized_replay_equals_event_kernel(
    monkeypatch, tmp_path, policy, replacement, hot_pages, cold_pages,
    hot_fraction, seed,
):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_SCHEDULE_CACHE", "0")

    def workload():
        return HotCold(
            hot_pages=hot_pages, cold_pages=cold_pages, n_refs=1500,
            hot_fraction=hot_fraction, seed=seed,
        )

    compiled, metrics_c = _report(policy, replacement, workload(), True)
    interpreted, metrics_i = _report(policy, replacement, workload(), False)
    assert compiled == interpreted
    assert metrics_c == metrics_i
