"""The §4.6 early-warning campaign: warn strictly below the knee,
deterministically across --jobs and cache replay."""

import json

import pytest

from repro.experiments.monitor import (
    CAMPAIGN_LOADS,
    collapse_knee,
    extract_series,
    render_monitor,
    render_monitor_campaign,
    run_monitor,
    run_monitor_campaign,
)
from repro.runner import ExperimentRunner

#: A paging-bound GAUSS small enough for test wall-clock but large
#: enough to spill (the default 1700x1700 matrix, half the passes).
_WORKLOAD_KWARGS = {"n": 1700, "passes": 2}
_LOADS = (0.0, 0.3, 0.7)


def _campaign(runner):
    return run_monitor_campaign(
        loads=_LOADS,
        workload_kwargs=_WORKLOAD_KWARGS,
        interval=1.0,
        runner=runner,
    )


@pytest.fixture(scope="module")
def campaign():
    return _campaign(ExperimentRunner(jobs=1, use_cache=False))


def test_campaign_warns_strictly_below_the_knee(campaign):
    # The acceptance criterion: rising background load must trip
    # health.warn at a load strictly below the measured collapse knee.
    assert campaign["knee_load"] is not None, "sweep never collapsed"
    assert campaign["first_warn_load"] is not None, "health never warned"
    assert campaign["first_warn_load"] < campaign["knee_load"]
    assert campaign["warned_before_knee"] is True


def test_campaign_baseline_is_healthy(campaign):
    points = {p["load"]: p for p in campaign["points"]}
    assert points[0.0]["health"]["status"] == "ok"
    assert points[0.7]["health"]["status"] == "critical"


def test_campaign_payload_is_json_safe(campaign):
    json.dumps(campaign)


def test_campaign_is_deterministic_across_jobs(campaign):
    parallel = _campaign(ExperimentRunner(jobs=2, use_cache=False))
    assert parallel == campaign


def test_campaign_is_deterministic_across_cache_replay(campaign, tmp_path):
    runner = ExperimentRunner(jobs=1, use_cache=True, cache_dir=str(tmp_path))
    first = _campaign(runner)
    replay = _campaign(runner)  # second pass: every point cache-served
    assert replay == first
    assert replay == campaign


def test_monitored_run_carries_series_and_health(campaign):
    point = campaign["points"][0]
    series = point["series"]
    assert "util.wire" in series
    assert "net.latency_ms" in series
    assert any(name.startswith("util.server.") for name in series)
    assert series["util.wire"]["values"], "wire series is empty"
    assert point["fault_latency"]["count"] > 0
    assert point["health"]["samples"] > 0


def test_render_monitor_and_campaign(campaign):
    text = render_monitor(campaign["points"][0])
    assert "telemetry timelines" in text
    assert "util.wire" in text
    assert "fault latency" in text
    table = render_monitor_campaign(campaign)
    assert "collapse knee" in table
    assert "early warning HELD" in table


def test_run_monitor_single_point():
    point = run_monitor(
        workload_kwargs=_WORKLOAD_KWARGS,
        interval=1.0,
        runner=ExperimentRunner(jobs=1, use_cache=False),
    )
    assert point["load"] == 0.0
    assert point["etime"] > 0
    assert point["series"]


def test_collapse_knee_on_synthetic_points():
    points = [
        {"load": 0.0, "etime": 10.0},
        {"load": 0.3, "etime": 15.0},
        {"load": 0.6, "etime": 25.0},
        {"load": 0.8, "etime": 80.0},
    ]
    assert collapse_knee(points) == 0.6
    assert collapse_knee(points[:2]) is None
    assert collapse_knee([]) is None


def test_extract_series_strips_telemetry_prefix():
    metrics = {
        "telemetry.util.wire.__series__": True,
        "telemetry.util.wire.times": [1.0],
        "telemetry.util.wire.values": [0.5],
        "telemetry.util.wire.dropped": 0,
        "pager.pageouts": 3,
    }
    series = extract_series(metrics)
    assert list(series) == ["util.wire"]
    assert series["util.wire"]["values"] == [0.5]


def test_default_campaign_loads_cover_the_paper_sweep():
    assert CAMPAIGN_LOADS[0] == 0.0
    assert max(CAMPAIGN_LOADS) <= 1.0
