"""The §4.3 bandwidth-extrapolation model.

The paper separates an application's completion time into::

    etime = utime + systime + inittime + ptime
    ptime = pptime + btime
    pptime = page_transfers * per_page_protocol_cpu     (1.6 ms measured)
    btime  = ptime - pptime                             (bandwidth-bound)

"Assuming that a network with X times higher bandwidth will decrease
btime by a factor of X, we can predict the etime of the application over
this high bandwidth network":

    expected_etime(X) = utime + systime + inittime + pptime + btime / X

``X -> infinity`` with zero protocol cost gives the ALL MEMORY bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..vm.machine import CompletionReport

__all__ = ["Decomposition", "decompose", "extrapolate", "all_memory_bound"]


@dataclass(frozen=True)
class Decomposition:
    """One run's time split into the paper's five components."""

    name: str
    etime: float
    utime: float
    systime: float
    inittime: float
    pptime: float
    btime: float
    page_transfers: int

    @property
    def ptime(self) -> float:
        """Total page-transfer time."""
        return self.pptime + self.btime

    @property
    def paging_overhead_fraction(self) -> float:
        """Share of the run spent paging (the paper's <17% headline)."""
        if self.etime <= 0:
            return 0.0
        return self.ptime / self.etime

    def predicted_etime(self, bandwidth_factor: float) -> float:
        """The §4.3 prediction formula."""
        if bandwidth_factor <= 0:
            raise ValueError(f"bandwidth factor must be positive: {bandwidth_factor}")
        return (
            self.utime
            + self.systime
            + self.inittime
            + self.pptime
            + self.btime / bandwidth_factor
        )

    def summary(self) -> str:
        """One-line rendering of the decomposition."""
        return (
            f"{self.name}: etime={self.etime:.2f}s = utime {self.utime:.2f} "
            f"+ systime {self.systime:.2f} + init {self.inittime:.2f} "
            f"+ pptime {self.pptime:.2f} + btime {self.btime:.2f} "
            f"({self.page_transfers} transfers)"
        )


def decompose(
    report: CompletionReport, per_page_protocol_cpu: float = 0.0016
) -> Decomposition:
    """Split a run's report into the paper's components.

    ``pptime = page_transfers * per_page_protocol_cpu`` and ``btime`` is
    whatever page-transfer time remains — exactly the paper's method
    (they measured pptime with the ``time`` command and subtraction).
    """
    if per_page_protocol_cpu < 0:
        raise ValueError("protocol cost must be non-negative")
    pptime = report.page_transfers * per_page_protocol_cpu
    btime = max(0.0, report.ptime - pptime)
    return Decomposition(
        name=report.name,
        etime=report.etime,
        utime=report.utime,
        systime=report.systime,
        inittime=report.inittime,
        pptime=min(pptime, report.ptime),
        btime=btime,
        page_transfers=report.page_transfers,
    )


def extrapolate(decomposition: Decomposition, bandwidth_factor: float) -> float:
    """Predicted completion time on an ``X``-times-faster network."""
    return decomposition.predicted_etime(bandwidth_factor)


def all_memory_bound(decomposition: Decomposition) -> float:
    """Predicted completion with the whole working set in memory:
    utime + systime + inittime (the paper's ALL MEMORY curve)."""
    return decomposition.utime + decomposition.systime + decomposition.inittime
