"""Merge per-PR benchmark records into one performance trajectory.

Each optimisation PR commits a ``BENCH_pr*.json`` record (plus PR 1's
``bench_kernel.json``).  This tool folds them — and any freshly
regenerated copies — into a single ``BENCH_TRAJECTORY.json`` artifact
and, with ``--check``, fails if a gated metric fell more than
``TOLERANCE`` below the best value ever recorded.

Why the gate is ratio-only
--------------------------
CI runners vary far too much for absolute timings to be thresholds: the
same commit can post 2x different events/sec on two consecutive shared
runners.  Every gated metric is therefore a *dimensionless same-run
ratio* — two measurements taken back-to-back inside one process on one
host, divided::

    kernel.<path>.speedup   live kernel events/sec over the frozen seed
                            kernel, interleaved rounds (an events/sec
                            gate in ratio form)
    content_ab.speedup      content fast path on vs off, same run
    compile_ab.speedup      warm compiled sweep vs the identical
                            interpreted sweep
    paper_sweep.speedup     warm capsule sweep vs the identical
                            interpreted sweep

Host drift hits both sides of each ratio alike, so "dropped >10% vs
best recorded" means the *code* got slower, not the machine.  Absolute
rates (``events_per_sec.*``) ride along in the artifact as history but
are never enforced.

Best-ever is tracked per ``(record, metric)``, not per metric alone:
different records measure different code lineages (``bench_kernel.json``
pairs the PR-1 kernel against the seed; ``BENCH_pr4.json`` pairs the
later optimised kernel), so a regenerated record is gated against the
best *that record* ever posted.

Some recorded ratios are deliberately ungated (``UNGATED``): wall-clock
parallel scaling depends on runner core count, and the paper-scale
compiled cell is documented as unthresholded (wire simulation, not
per-reference work, dominates it — see benchmarks/README.md).

Usage::

    python benchmarks/trajectory.py --out benchmarks/BENCH_TRAJECTORY.json
    python benchmarks/trajectory.py --check            # gate, CI style
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

#: Relative drop from the best recorded value that fails the gate.
TOLERANCE = 0.10

#: Metric paths that are recorded but never enforced, and why.
UNGATED = {
    "fig2_suite.speedup": "parallel scaling tracks runner core count",
    "paper_scale_ab.speedup": (
        "documented unthresholded: wire simulation dominates the cell"
    ),
    "compile_ab.cold_speedup": "includes one-off compile cost",
    "paper_sweep.cold_speedup": "includes one-off capsule-record cost",
}

#: Files folded into the trajectory, in PR order.
RECORD_GLOBS = ("bench_kernel.json", "BENCH_pr*.json")


def _flatten(record, prefix=""):
    """Yield ``(dotted.path, value)`` for every numeric leaf."""
    for key in sorted(record):
        value = record[key]
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            yield from _flatten(value, f"{path}.")
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            yield path, float(value)


def extract_ratios(record):
    """The dimensionless ratio metrics of one benchmark record."""
    return {
        path: value
        for path, value in _flatten(record)
        if path.rsplit(".", 1)[-1] in ("speedup", "cold_speedup")
    }


def collect(bench_dir):
    """Load every benchmark record under ``bench_dir``, in PR order."""
    records = {}
    for pattern in RECORD_GLOBS:
        for path in sorted(glob.glob(os.path.join(bench_dir, pattern))):
            name = os.path.basename(path)
            if name == "BENCH_TRAJECTORY.json":
                continue
            with open(path) as handle:
                records[name] = json.load(handle)
    return records


def build_trajectory(records, baseline=None):
    """Fold ``records`` (name -> record dict) into a trajectory.

    ``baseline`` is a previously written trajectory whose history is
    carried forward, so best-ever survives regeneration on a machine
    that never saw the old records.
    """
    history = dict((baseline or {}).get("history") or {})
    for name, record in records.items():
        history[name] = extract_ratios(record)
    # Best-ever per (record, metric): seed from the baseline's best so a
    # regenerated record cannot erase a high-water mark, then fold in
    # the merged history.
    best = {
        name: dict(metrics)
        for name, metrics in ((baseline or {}).get("best") or {}).items()
    }
    for name in sorted(history):
        marks = best.setdefault(name, {})
        for path, value in history[name].items():
            if path not in marks or value > marks[path]:
                marks[path] = value
    return {
        "schema": 1,
        "tolerance": TOLERANCE,
        "ungated": dict(UNGATED),
        "history": history,
        "best": best,
    }


def check(trajectory, records):
    """Gate ``records`` against the trajectory's best-ever values.

    Returns a list of failure strings (empty = pass).  A record that
    *sets* a new best can never fail itself: fold it into the
    trajectory first, then gate.
    """
    failures = []
    best = trajectory["best"]
    for name in sorted(records):
        marks = best.get(name) or {}
        for path, value in extract_ratios(records[name]).items():
            if path in UNGATED or path not in marks:
                continue
            floor = marks[path] * (1.0 - TOLERANCE)
            if value < floor:
                failures.append(
                    f"{name}: {path} = {value:.4g} is more than "
                    f"{TOLERANCE:.0%} below best recorded "
                    f"{marks[path]:.4g} (floor {floor:.4g})"
                )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench-dir",
        default=os.path.dirname(os.path.abspath(__file__)),
        help="directory holding BENCH_pr*.json records",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "prior BENCH_TRAJECTORY.json to carry history forward from "
            "(default: <bench-dir>/BENCH_TRAJECTORY.json if present)"
        ),
    )
    parser.add_argument(
        "--out", default=None, help="write the merged trajectory here"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if any gated ratio dropped >10%% vs best recorded",
    )
    args = parser.parse_args(argv)

    baseline_path = args.baseline or os.path.join(
        args.bench_dir, "BENCH_TRAJECTORY.json"
    )
    baseline = None
    if os.path.exists(baseline_path):
        with open(baseline_path) as handle:
            baseline = json.load(handle)

    records = collect(args.bench_dir)
    if not records:
        print(f"no benchmark records under {args.bench_dir}", file=sys.stderr)
        return 2

    trajectory = build_trajectory(records, baseline=baseline)
    for name in sorted(trajectory["best"]):
        for path in sorted(trajectory["best"][name]):
            tag = "        " if path in UNGATED else "[gated] "
            value = trajectory["best"][name][path]
            print(f"{tag}{name:<22} {path:<28} best {value:>8.4g}")

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(trajectory, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")

    if args.check:
        failures = check(trajectory, records)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"trajectory gate passed ({len(records)} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
