"""Figure-experiment edge cases not covered by the full benchmarks."""

import pytest

from repro.experiments import render_fig4, render_fig5, run_fig4, run_fig5


def test_fig4_prediction_only_mode():
    """--no-simulate: the analytic curves still render without the
    direct 10x-network simulation."""
    results = run_fig4(sizes_mb=[17.0, 21.6], simulate_fast_network=False)
    for row in results.values():
        assert "ethernet_x10_simulated" not in row
        assert row["ethernet_x10_predicted"] > 0
    text = render_fig4(results)
    assert "ethernet_x10_predicted" in text
    assert "ethernet_x10_simulated" not in text


def test_fig4_no_paging_point_all_curves_equal():
    results = run_fig4(sizes_mb=[17.0], simulate_fast_network=False)
    row = results[17.0]
    # Below the cliff there is nothing for the network to speed up.
    assert row["ethernet"] == pytest.approx(row["ethernet_x10_predicted"], rel=1e-6)
    assert row["overhead_fraction_x10"] == pytest.approx(0.0, abs=1e-6)


def test_fig5_single_app_subset():
    reports = run_fig5(apps=["mvec"], policies=["no-reliability", "write-through"])
    assert set(reports) == {"mvec"}
    text = render_fig5(reports)
    assert "mvec" in text
