"""Ablations and §5 future-work extensions, as benchmarks.

These go beyond the paper's figures: they test claims the paper makes in
prose ("the difference becomes lower as servers increase", "beneficial
over token ring", the §5 threshold and heterogeneous-network designs).
"""

from repro.experiments import (
    render_adaptive,
    render_heterogeneous,
    render_network_comparison,
    render_server_scaling,
    run_adaptive,
    run_heterogeneous,
    run_network_comparison,
    run_server_scaling,
)


def test_server_scaling(benchmark, once):
    """§4.1: parity logging's gap to no-reliability shrinks as 1/S."""
    results = once(benchmark, run_server_scaling)
    print("\n" + render_server_scaling(results))
    gaps = [results[s]["gap_fraction"] for s in sorted(results)]
    assert gaps == sorted(gaps, reverse=True), "gap must shrink with S"
    for s, r in results.items():
        extra = r["parity_logging_transfers"] - r["no_reliability_transfers"]
        per_pageout = extra / r["pageouts"]
        # Exactly one parity transfer per S pageouts (±rounding of the
        # final unsealed group).
        assert abs(per_pageout - 1.0 / s) < 0.01


def test_token_ring_vs_ethernet_under_load(benchmark, once):
    """§4.6: the collapse is CSMA/CD's fault, not remote paging's."""
    results = once(benchmark, run_network_comparison, loads=(0.0, 0.4, 0.8))
    print("\n" + render_network_comparison(results))
    eth = results["ethernet"]
    ring = results["token-ring"]
    eth_slowdown = eth[0.8] / eth[0.0]
    ring_slowdown = ring[0.8] / ring[0.0]
    # The Ethernet collapses; the token ring degrades gracefully.
    assert eth_slowdown > 3.0
    assert ring_slowdown < 2.5
    assert ring_slowdown < eth_slowdown / 2


def test_heterogeneous_hierarchy(benchmark, once):
    """§5: bandwidth-aware placement exploits fast links first."""
    results = once(benchmark, run_heterogeneous)
    print("\n" + render_heterogeneous(results))
    assert results["bandwidth-aware"]["fast_share"] > results["round-robin"]["fast_share"]
    assert results["speedup"] > 1.1


def test_adaptive_threshold_on_congested_network(benchmark, once):
    """§5: the request-time threshold reroutes pageouts to the disk."""
    results = once(benchmark, run_adaptive)
    print("\n" + render_adaptive(results))
    assert results["adaptive"]["disk_routed"] > 0
    assert results["improvement"] > 0.15
