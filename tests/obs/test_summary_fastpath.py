"""trace-summary must digest runs from every execution tier.

A traced run bypasses the capsule tier (replay cannot fake per-event
spans) but still exercises the compiled batch-replay path; the
vectorized/capsule decision trail is covered through the planner's
``compile.*`` events.  Whatever tier served the run, ``summarize`` +
``render_summary`` must produce a valid, non-empty report.
"""

import pytest

from repro.config import MachineSpec
from repro.core.builder import build_cluster
from repro.obs.summary import load_trace, render_summary, summarize
from repro.obs.trace import Tracer, install_tracer, uninstall_tracer
from repro.workloads import Gauss

_SMALL = MachineSpec(
    name="summary-small",
    ram_bytes=2 * 1024 * 1024,
    kernel_resident_bytes=1 * 1024 * 1024,
    page_size=8192,
)


def _traced_run(tmp_path, runs=1, n=300, **overrides):
    tracer = Tracer()
    install_tracer(tracer)
    try:
        for _ in range(runs):
            cluster = build_cluster(
                policy="mirroring", n_servers=2, seed=5,
                machine_spec=_SMALL, **overrides,
            )
            cluster.run(Gauss(n=n, passes=2))
    finally:
        uninstall_tracer()
    path = tmp_path / "trace.jsonl"
    tracer.write_jsonl(str(path))
    return load_trace(str(path), validate=True)


def _assert_valid_nonempty(summary, text):
    assert summary.header is not None
    assert summary.header["spans"] >= 0
    assert summary.event_counts, "summary saw no events"
    assert text.strip(), "rendered summary is empty"


def test_summary_of_traced_compiled_run(tmp_path):
    records = _traced_run(tmp_path)
    summary = summarize(records)
    text = render_summary(summary)
    _assert_valid_nonempty(summary, text)
    # The run went through the compiled schedule tier and said so.
    kinds = {event["event"] for event in summary.compile_events}
    assert kinds & {"compiled", "cache-hit"}
    assert "compile fast path" in text
    # Per-fault spans survive batch replay: the latency section exists.
    assert summary.latency, "no span latencies collected"
    assert summary.spans


def test_summary_with_capsules_configured(tmp_path, monkeypatch):
    # With the effect cache on, a traced run must fall back (replay
    # cannot fake spans) — and the summary shows that decision.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_EFFECT_CACHE", "1")
    records = _traced_run(tmp_path, runs=2)
    summary = summarize(records)
    text = render_summary(summary)
    _assert_valid_nonempty(summary, text)
    reasons = [
        (event.get("attrs") or {}).get("reason")
        for event in summary.compile_events
        if event["event"] == "fallback"
    ]
    assert "tracing" in reasons
    assert "fallback" in text


def test_summary_of_telemetry_run_shows_bypass_and_health(tmp_path):
    # A Gauss big enough to spill (n=300 fits in the 1 MB of pageable
    # RAM and never touches the wire), thresholds floored so the tiny
    # run trips the load rule at the first sampled window.
    records = _traced_run(
        tmp_path,
        n=450,
        telemetry_interval=0.1,
        health_warn_load=0.01,
        health_crit_load=0.02,
    )
    summary = summarize(records)
    text = render_summary(summary)
    _assert_valid_nonempty(summary, text)
    reasons = [
        (event.get("attrs") or {}).get("reason")
        for event in summary.compile_events
        if event["event"] == "bypass"
    ]
    assert "telemetry" in reasons
    # The tiny machine thrashes: the health monitor has things to say,
    # and the summary renders them as a timeline.
    assert summary.health_events
    assert "health timeline" in text


def test_summary_of_vectorized_decision_trail():
    # The vectorized/capsule tier cannot run under a live tracer, so its
    # decision trail reaches trace-summary as planner events; a
    # hand-assembled trace in that shape must summarize cleanly.
    records = [
        {"type": "header", "schema": 1, "events": 2, "spans": 0},
        {
            "type": "event", "ts": 0.0, "component": "compile",
            "event": "cache-hit", "attrs": {},
        },
        {
            "type": "event", "ts": 0.0, "component": "compile",
            "event": "vectorized",
            "attrs": {"ptime_fault_wait": 1.0, "ptime_p50": 0.5, "ptime_p95": 0.9},
        },
    ]
    summary = summarize(records)
    text = render_summary(summary)
    assert [e["event"] for e in summary.compile_events] == [
        "cache-hit", "vectorized",
    ]
    assert "vectorized" in text
    assert "cache-hit" in text
