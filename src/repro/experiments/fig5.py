"""Figure 5: parity logging vs write through (§4.7).

On the paper's testbed the disk and network offer equal bandwidth, so
write-through (remote copy + parallel disk copy) lands between
no-reliability and parity logging; on faster networks it becomes
disk-bound.  Four applications: MVEC, GAUSS, QSORT, FFT.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..analysis.paper_data import FIG5_SECONDS
from ..analysis.report import comparison_table, shape_check
from ..workloads import Fft, Gauss, Mvec, Qsort
from .harness import run_suite

__all__ = ["FIG5_POLICIES", "run_fig5", "render_fig5"]

FIG5_POLICIES = ["no-reliability", "write-through", "parity-logging"]

_FACTORIES = {"mvec": Mvec, "gauss": Gauss, "qsort": Qsort, "fft": Fft}


def run_fig5(
    apps: Optional[Iterable[str]] = None,
    policies: Optional[Iterable[str]] = None,
    runner=None,
) -> Dict[str, Dict[str, object]]:
    """Run the Figure 5 matrix; returns reports keyed [app][policy]."""
    apps = list(apps) if apps else list(_FACTORIES)
    policies = list(policies) if policies else list(FIG5_POLICIES)
    for name in apps:
        if name not in _FACTORIES:
            raise KeyError(name)
    return run_suite({name: name for name in apps}, policies, runner=runner)


def render_fig5(reports: Dict[str, Dict[str, object]]) -> str:
    """Measured-vs-paper table for Figure 5."""
    measured = {
        app: {policy: report.etime for policy, report in by_policy.items()}
        for app, by_policy in reports.items()
    }
    policies = list(next(iter(reports.values())).keys())
    table = comparison_table(
        measured,
        FIG5_SECONDS,
        policies,
        title="Figure 5: write through vs parity logging (seconds)",
    )
    lines = [table, ""]
    for app, by_policy in measured.items():
        check = shape_check(by_policy, FIG5_SECONDS.get(app, {}))
        lines.append(
            f"{app}: ranking {'matches' if check['order_matches'] else 'DIFFERS'}"
        )
    return "\n".join(lines)
