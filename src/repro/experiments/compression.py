"""Page compression — a modern far-memory postscript (beyond the paper).

Thirty years after the paper, remote-memory systems (Infiniswap and its
successors, zswap-style compressed tiers) routinely compress pages
before shipping them.  This experiment asks what compression would have
done for the 1996 system: on the 10 Mbit/s Ethernet the wire dominates,
so halving the bytes nearly halves paging time; on a 10x network the
fixed CPU costs dominate and the same compression barely moves the
needle.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable

from ..analysis.report import format_table
from ..config import TCP_IP_1996, fast_network
from ..runner import RunSpec, default_runner
from ..units import milliseconds

__all__ = ["run_compression", "render_compression"]

#: CPU to (de)compress one 8 KB page on the 1996 Alpha — LZ-class.
COMPRESSION_CPU = milliseconds(0.8)


def run_compression(
    ratios: Iterable[float] = (1.0, 2.0, 4.0),
    workload: str = "gauss",
    runner=None,
) -> Dict[str, Dict[float, float]]:
    """GAUSS completion per compression ratio, on slow and fast networks."""
    ratios = list(ratios)
    specs = []
    for ratio in ratios:
        protocol = replace(
            TCP_IP_1996,
            compression_ratio=ratio,
            compression_cpu=COMPRESSION_CPU if ratio > 1.0 else 0.0,
        )
        for net, extra in (("ethernet", {}), ("ethernet_x10", {"switched_spec": fast_network(10)})):
            specs.append(
                RunSpec.make(
                    workload,
                    "no-reliability",
                    overrides={"protocol_spec": protocol, **extra},
                    label=f"{workload}/{net}/ratio={ratio:g}",
                )
            )
    flat = iter((runner or default_runner()).run(specs))
    results: Dict[str, Dict[float, float]] = {"ethernet": {}, "ethernet_x10": {}}
    for ratio in ratios:
        results["ethernet"][ratio] = next(flat).report.etime
        results["ethernet_x10"][ratio] = next(flat).report.etime
    return results


def render_compression(results: Dict[str, Dict[float, float]]) -> str:
    """Ratio sweep on both networks, with per-network gains."""
    ratios = sorted(results["ethernet"])
    rows = []
    for ratio in ratios:
        slow = results["ethernet"][ratio]
        fast = results["ethernet_x10"][ratio]
        slow0 = results["ethernet"][ratios[0]]
        fast0 = results["ethernet_x10"][ratios[0]]
        rows.append(
            [
                f"{ratio:.0f}:1" if ratio > 1 else "off",
                f"{slow:.1f} ({1 - slow / slow0:+.0%})",
                f"{fast:.1f} ({1 - fast / fast0:+.0%})",
            ]
        )
    return format_table(
        ["compression", "10 Mbit/s Ethernet (gain)", "100 Mbit/s switched (gain)"],
        rows,
        title="Beyond the paper: page compression (GAUSS, no-reliability)",
    )
