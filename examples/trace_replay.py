#!/usr/bin/env python3
"""Trace record/replay: capture a workload once, compare devices forever.

The pager sees only the page-fault stream, so a recorded trace is a
complete, portable workload description.  This example records GAUSS's
trace to a file, then replays the identical reference stream against
three paging configurations — a controlled experiment where the device
is the *only* variable.

Run:  python examples/trace_replay.py [trace-file]
"""

import sys
import tempfile
from pathlib import Path

from repro import Gauss, build_cluster
from repro.workloads import load_trace, profile_workload, render_profiles, save_trace


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
    else:
        path = Path(tempfile.gettempdir()) / "gauss.trace"

    workload = Gauss()
    written = save_trace(workload, path)
    print(f"recorded {written} page references from {workload.name!r} "
          f"to {path} ({path.stat().st_size // 1024} KB)\n")

    replayed = load_trace(path)
    print(render_profiles([profile_workload(replayed)]))
    print()

    for policy, kwargs in (
        ("disk", {}),
        ("no-reliability", {"n_servers": 2}),
        ("parity-logging", {"n_servers": 4, "overflow_fraction": 0.10}),
    ):
        cluster = build_cluster(policy=policy, **kwargs)
        report = cluster.run(load_trace(path))
        print(f"{policy:16s} {report.summary()}")
    print("\nidentical reference streams; only the paging device differed.")


if __name__ == "__main__":
    main()
