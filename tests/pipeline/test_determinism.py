"""Determinism with the pipeline engaged (PR 4 satellite).

The reproducibility contract must survive the new asynchrony: with the
write-behind queue (window > 1) AND the prefetcher on, serial execution,
a worker pool, and a cache replay must produce byte-identical
CompletionReports and identical injected-fault traces — including under
the chaos hook, where fault draws interleave with pipelined transfers.
"""

import dataclasses
import json

from repro.cli import main
from repro.config import MachineSpec
from repro.faults import FaultPlan
from repro.runner import ExperimentRunner, RunSpec

_SMALL = MachineSpec(
    name="det-small",
    ram_bytes=2 * 1024 * 1024,
    kernel_resident_bytes=1 * 1024 * 1024,
    page_size=8192,
)

_BUILD = dict(
    machine_spec=_SMALL,
    content_mode=True,
    seed=3,
    n_servers=4,
    server_capacity_pages=600,
    pipeline_window=4,
    pipeline_prefetch=4,
)

_SCAN = dict(n_pages=400, passes=3, write=True)


def _specs():
    plan = FaultPlan.standard_campaign()
    specs = []
    for policy, faulted in (
        ("parity-logging", True),
        ("mirroring", True),
        ("parity-logging", False),
    ):
        specs.append(
            RunSpec.make(
                "sequential-scan",
                policy,
                workload_kwargs=_SCAN,
                overrides=_BUILD,
                hook="chaos" if faulted else None,
                hook_kwargs=plan.as_kwargs() if faulted else None,
                extract=("resilience",),
                label=f"{policy}/{'chaos' if faulted else 'clean'}",
            )
        )
    return specs


def _digest(results):
    # Byte-identity via the canonical JSON form: the result cache round-
    # trips through JSON, which maps tuples to lists without changing a
    # single serialised byte.
    return [
        json.dumps(
            {
                "report": dataclasses.asdict(r.report),
                "fault_trace": r.extras["fault_trace"],
                "verdict": r.extras["verdict"],
                "integrity": r.extras["integrity"],
            },
            sort_keys=True,
            default=list,
        )
        for r in results
    ]


def test_serial_parallel_and_cache_replay_identical(tmp_path):
    serial = _digest(ExperimentRunner(jobs=1, use_cache=False).run(_specs()))

    pool = ExperimentRunner(jobs=3, use_cache=True, cache_dir=tmp_path)
    cold = _digest(pool.run(_specs()))
    assert pool.cache.misses == 3

    replay = ExperimentRunner(jobs=3, use_cache=True, cache_dir=tmp_path)
    warm = _digest(replay.run(_specs()))
    assert replay.cache.hits == 3

    assert serial == cold
    assert cold == warm
    # All faulted cells still end CLEAN with the pipeline on.
    assert all(json.loads(cell)["verdict"] == "CLEAN" for cell in serial)


def test_cli_pipelining_output_byte_identical_across_jobs(capsys):
    argv = ["pipelining", "--windows", "1", "2", "--app", "mvec", "--no-cache"]
    assert main(argv + ["--jobs", "1"]) == 0
    serial_out = capsys.readouterr().out
    assert main(argv + ["--jobs", "2"]) == 0
    parallel_out = capsys.readouterr().out
    assert parallel_out == serial_out
    assert "Write-behind window sweep" in serial_out
