"""ERASURE CODING (k, m): Reed–Solomon fragments across placement groups.

The Hydra/Carbink-style generalisation of the paper's §2.2 spectrum:
each 8 KB pageout splits into ``k`` data fragments plus ``m`` parity
fragments (GF(256) Reed–Solomon, :mod:`.gf256`), placed on ``k + m``
distinct servers.  A pagein needs any ``k`` fragments, so up to ``m``
servers can be crashed, amnesiac, or timing out and the page is still
served — *degraded* but correct — while recovery re-protects lost
fragments onto replacement servers in the background.

Cost shape, between parity logging and mirroring:

* transfer overhead per pageout is ``(k + m) / k`` page-equivalents
  (EC(4,2) = 1.5x vs. mirroring's 2.0x) while tolerating ``m`` crashes
  to mirroring's one;
* memory overhead is the same ``(k + m) / k`` factor (mirroring: 2.0);
* the price is client CPU for the GF(256) algebra and fragment-level
  bookkeeping on ``k + m`` servers per page.

**Placement groups** (Carbink's CodingSets): servers are partitioned
into groups of ``k + m``; each page's fragments stay inside one group,
so a correlated failure (a rack, a power domain) taking out servers in
*different* groups costs every group at most one fragment — blast
radius is bounded by construction instead of averaged away.  Groups
erode as crashed servers retire; placement borrows live servers from
other groups before giving up (disk fallback via
:class:`~repro.errors.ServerUnavailable`).

Counters (auto-attached as ``policy.*`` in the MetricsRegistry):
``degraded_reads``, ``fragments_rebuilt``, ``reconstruct_cpu_us``,
``fragment_transfers``, ``unrecoverable_pages``, plus the family-wide
``pageouts`` / ``pageins`` / ``recovered_pages`` / ``scrub_repairs``.
Reconstruction activity is mirrored to the tracer under component
``recovery`` so the trace-summary fault timeline shows degraded reads
and rebuilds next to the faults that caused them.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Dict, List, Optional, Sequence

from ...errors import (
    PageNotFound,
    RequestTimeout,
    ServerCrashed,
    ServerUnavailable,
)
from ...sim import NULL_SPAN
from ...units import microseconds
from ...vm.page import fragment_memo_get, fragment_memo_put
from ..server import MemoryServer
from .base import ReliabilityPolicy
from .gf256 import ReedSolomon, join_fragments, split_page

__all__ = ["ErasureCoding", "PlacementGroupManager", "parse_ec_policy"]

#: One GF(256) multiply-accumulate pass over a full 8 KB page of data
#: (two table lookups per byte vs. the plain XOR's one word op — about
#: twice parity logging's CLIENT_XOR_CPU).  Encode touches each data
#: fragment once per parity fragment; degraded decode touches each
#: surviving fragment once per missing one.  Charged pro rata by bytes.
GF_PASS_CPU_PER_PAGE = microseconds(160)

#: Bound the scrub's consistent-subset search: with rot in at most a
#: couple of fragments the clean subset is found in the first few
#: combinations; an adversarial pattern beyond this cap is reported as
#: unrepairable rather than searched exhaustively.
_MAX_SCRUB_SUBSETS = 64


def parse_ec_policy(name: str) -> Optional[tuple]:
    """``"ec-K-M"`` -> ``(k, m)``; None when the name is not EC-shaped."""
    parts = name.split("-")
    if len(parts) != 3 or parts[0] != "ec":
        return None
    try:
        k, m = int(parts[1]), int(parts[2])
    except ValueError:
        return None
    return (k, m)


class PlacementGroupManager:
    """CodingSets-style partition of the server pool into coding groups.

    Groups are contiguous ``width``-sized slices of the initial server
    order (the rack model: adjacency is the correlation domain).  Pages
    hash onto groups by ``page_id % n_groups`` — deterministic, stateless
    and uniform for sequential page ids.  Retired servers leave their
    group; replacement servers join the most-depleted group, keeping the
    partition meaningful as the pool churns.
    """

    def __init__(self, servers: Sequence[MemoryServer], width: int):
        if width < 1:
            raise ValueError(f"group width must be positive: {width}")
        self.width = width
        pool = list(servers)
        # As many groups as ``width`` allows, with the whole pool spread
        # evenly across them (contiguous near-equal chunks, the rack
        # model).  Groups therefore carry ``len(pool) // n_groups - width``
        # servers of *slack*: a crashed member's fragments can be rebuilt
        # inside the group, which is what keeps a page's blast radius in
        # one group instead of leaking across groups on every repair.
        n_groups = max(1, len(pool) // width)
        base, extra = divmod(len(pool), n_groups)
        self.groups = []
        cursor = 0
        for index in range(n_groups):
            size = base + (1 if index < extra else 0)
            self.groups.append(pool[cursor : cursor + size])
            cursor += size

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    def group_of(self, page_id: int) -> int:
        return page_id % len(self.groups)

    def group_index(self, server: MemoryServer) -> Optional[int]:
        for index, members in enumerate(self.groups):
            if server in members:
                return index
        return None

    def members(self, group: int) -> List[MemoryServer]:
        return list(self.groups[group])

    def retire(self, server: MemoryServer) -> None:
        for members in self.groups:
            if server in members:
                members.remove(server)
                return

    def adopt(self, server: MemoryServer, prefer: Optional[int] = None) -> None:
        """Add a replacement server, preferring ``prefer`` then the most
        depleted group (keeps groups near ``width`` as the pool churns)."""
        if any(server in members for members in self.groups):
            return
        if prefer is not None and len(self.groups[prefer]) < self.width:
            self.groups[prefer].append(server)
            return
        target = min(self.groups, key=len)
        target.append(server)


class ErasureCoding(ReliabilityPolicy):
    """RS(k, m) fragments on ``k + m`` distinct servers per page."""

    def __init__(
        self,
        client_host: str,
        stack,
        servers: Sequence[MemoryServer],
        k: int = 4,
        m: int = 2,
        page_size: int = 8192,
    ):
        super().__init__(client_host, stack, servers, page_size=page_size)
        self.rs = ReedSolomon(k, m)
        # Surface the codec's deterministic per-instance reconstruction
        # row hit/miss stream as policy.codec_row_{hits,misses} metrics.
        self.rs.stats = self.counters
        self.k = k
        self.m = m
        self.width = k + m
        if len(self.servers) < self.width:
            raise ValueError(
                f"ec-{k}-{m} needs at least {self.width} servers, "
                f"got {len(self.servers)}"
            )
        self.name = f"ec-{k}-{m}"
        self.memory_overhead_factor = self.width / k
        #: ceil so k fragments always cover the page; the tail fragment
        #: is zero-padded (gf256.split_page / join_fragments).
        self.fragment_size = -(-page_size // k)
        self.groups = PlacementGroupManager(self.servers, self.width)
        #: page_id -> list of k+m servers; list index == fragment index.
        #: (Deliberately NOT named ``_placement``: the pager's migration
        #: path assumes that name maps pages to single whole-page homes.)
        self._fragments: Dict[int, List[MemoryServer]] = {}
        #: Filled by the pager when a ServerRegistry is present — lets
        #: recovery recruit spare donors once a group runs dry.
        self.replacement_provider: Optional[
            Callable[[], Optional[MemoryServer]]
        ] = None

    # ------------------------------------------------------------ helpers
    def _key(self, page_id: int, index: int) -> tuple:
        return (page_id, index)

    def _gf_cpu(self, passes: int, counter: str = "reconstruct_cpu_us"):
        """Charge ``passes`` fragment-sized GF(256) passes of client CPU."""
        cost = passes * GF_PASS_CPU_PER_PAGE * self.fragment_size / self.page_size
        self.counters.add(counter, int(cost * 1e6))
        return self.sim.timeout(cost)

    def _send_fragment(
        self, server: MemoryServer, key: tuple, payload, span=NULL_SPAN,
        label: str = "transfer",
    ):
        """Generator: one fragment-sized client->server transfer + store."""
        yield from self.stack.send_page(
            self.client_host, server.host.name, self.fragment_size,
            span=span, label=label,
        )
        self.counters.add("fragment_transfers")
        span.phase("server")
        yield from server.store(key, payload)

    def _fetch_fragment(
        self, server: MemoryServer, key: tuple, span=NULL_SPAN,
        label: str = "transfer",
    ):
        """Generator: one fragment-sized server->client transfer."""
        span.phase("server")
        try:
            payload = yield from server.fetch(key)
        except PageNotFound:
            # Post-reboot amnesia: alive but empty (see base._fetch_page).
            raise ServerCrashed(server.name) from None
        yield from self.stack.fetch_page(
            self.client_host, server.host.name, self.fragment_size,
            span=span, label=label,
        )
        self.counters.add("fragment_transfers")
        return payload

    @property
    def transfers(self) -> float:
        """Page-equivalent network movements (the §4.3 model input).

        Fragment transfers are booked pro rata — an EC(4,2) pageout
        moves 6 fragments of 1/4 page = 1.5 page-equivalents, which is
        exactly the overhead the redundancy-spectrum figure compares
        against mirroring's 2.0.
        """
        whole = self.counters["transfers"]
        fractional = (
            self.counters["fragment_transfers"] * self.fragment_size
            / self.page_size
        )
        return round(whole + fractional, 6)

    def _encode(self, contents: Optional[bytes]) -> List[Optional[bytes]]:
        if contents is None:  # metadata mode: no bytes, no parity algebra
            return [None] * self.width
        # Encode-once by payload identity: the PR 4 content cache hands
        # out shared bytes per (page, version) — including the shared
        # zero page — so a page written once and paged out N times pays
        # the split+GF algebra once.  Host-side only: the simulated
        # encode CPU charge in pageout() is identical hit or miss.
        shape = (self.k, self.m, self.fragment_size)
        memo = fragment_memo_get(contents, shape)
        if memo is not None:
            return memo
        data = split_page(contents, self.k, self.fragment_size)
        fragments = data + self.rs.encode(data)
        fragment_memo_put(contents, shape, fragments)
        return fragments

    # ---------------------------------------------------------- placement
    def _usable(self, server: MemoryServer) -> bool:
        return server.is_alive and server.free_pages > 0

    def _place(self, page_id: int) -> List[MemoryServer]:
        placed = self._fragments.get(page_id)
        if placed is not None:
            return placed
        group = self.groups.group_of(page_id)
        chosen = [s for s in self.groups.members(group) if self._usable(s)]
        if len(chosen) > self.width:
            # Rotate the surplus group deterministically so fragment
            # roles (data vs. parity load) spread across its members.
            start = page_id % len(chosen)
            chosen = (chosen + chosen)[start : start + self.width]
        elif len(chosen) < self.width:
            # The group eroded (crashes, flaps): borrow live servers
            # from other groups in pool order before giving up.
            have = set(id(s) for s in chosen)
            for server in self.servers:
                if len(chosen) == self.width:
                    break
                if id(server) not in have and self._usable(server):
                    chosen.append(server)
                    have.add(id(server))
        if len(chosen) < self.width:
            # Fewer than k+m usable servers anywhere: the pager's disk
            # fallback absorbs the page (§2.1) rather than storing it
            # under-protected.
            raise ServerUnavailable(
                "any", reason=f"fewer than {self.width} usable servers"
            )
        self._fragments[page_id] = chosen
        return chosen

    # ------------------------------------------------------ the interface
    def pageout(self, page_id: int, contents: Optional[bytes], span=NULL_SPAN):
        placement = self._place(page_id)
        stale = [s for s in placement if not s.is_alive]
        if stale:
            for server in stale:
                if any(server is s for s in self.servers):
                    # A fresh, undeclared crash: surface it *before*
                    # transmitting anything so recovery re-protects the
                    # whole cohort, then the pager retries this pageout.
                    raise ServerCrashed(server.name)
            # Every dead member was already retired and recovery could
            # not re-home it (pool exhausted at the time).  The client
            # holds the definitive bytes: re-place from scratch.
            self.release(page_id)
            placement = self._place(page_id)
        span.phase("ec.encode")
        yield self._gf_cpu(self.k * self.m, counter="encode_cpu_us")
        fragments = self._encode(contents)
        # Scatter: all k+m fragment sends issued concurrently, framed as
        # one protocol cluster (the head pays the full per-page protocol
        # CPU, the rest the batched fraction — OSF/1-style, and nested
        # safely inside a pipeline drain cluster when one is open).  On
        # the switched full-duplex network the fragment wire times
        # overlap; on shared Ethernet the frames serialise on the medium
        # but the per-fragment protocol/server work still interleaves.
        # Workers trap their own failures: every send runs to completion
        # (or failure) before the first failure — lowest fragment index,
        # for determinism — is re-raised for the pager's crash handling.
        failures: Dict[int, BaseException] = {}

        def send_worker(index: int, server: MemoryServer, payload):
            label = "transfer" if index < self.k else "ec-parity"
            try:
                yield from self._send_fragment(
                    server, self._key(page_id, index), payload,
                    span=span, label=label,
                )
            except (ServerCrashed, ServerUnavailable, RequestTimeout) as exc:
                failures[index] = exc

        self.stack.begin_cluster(self.client_host)
        try:
            yield self.sim.all_of(
                [
                    self.sim.process(send_worker(index, server, payload))
                    for index, (server, payload) in enumerate(
                        zip(placement, fragments)
                    )
                ]
            )
        finally:
            self.stack.end_cluster()
        if failures:
            raise failures[min(failures)]
        self.counters.add("pageouts")

    def pagein(self, page_id: int, span=NULL_SPAN):
        placement = self._fragments.get(page_id)
        if placement is None:
            raise PageNotFound(page_id, where=self.name)
        collected: Dict[int, Optional[bytes]] = {}
        failed: List[str] = []
        # Data fragments first (no algebra on the clean path), parity as
        # substitutes when a data server is crashed, amnesiac, or timing
        # out behind a bad path — Hydra's degraded read.  Servers the
        # pager has already declared dead or retired from the pool are
        # skipped up front: no RPC round is wasted re-discovering a
        # known crash on every degraded read.
        pool_ids = {id(server) for server in self.servers}
        order = sorted(range(self.width), key=lambda i: (i >= self.k, i))
        candidates: List[int] = []
        for index in order:
            server = placement[index]
            if not server.is_alive or id(server) not in pool_ids:
                failed.append(server.name)
                self.counters.add("fetches_skipped")
            else:
                candidates.append(index)
        # Gather: fetch the first k candidates concurrently; a degraded
        # read tops up with exactly as many extra parity fetches as
        # fragments just failed (minimal waves, Hydra-style), never the
        # whole stripe.
        cursor = 0
        while len(collected) < self.k and cursor < len(candidates):
            wave = candidates[cursor : cursor + self.k - len(collected)]
            cursor += len(wave)
            results: Dict[int, object] = {}

            def fetch_worker(index: int):
                server = placement[index]
                try:
                    payload = yield from self._fetch_fragment(
                        server, self._key(page_id, index), span=span
                    )
                except (ServerCrashed, RequestTimeout) as exc:
                    results[index] = (
                        None, getattr(exc, "server_name", server.name)
                    )
                else:
                    results[index] = (True, payload)

            yield self.sim.all_of(
                [self.sim.process(fetch_worker(index)) for index in wave]
            )
            for index in wave:
                ok, value = results[index]
                if ok:
                    collected[index] = value
                else:
                    failed.append(value)
        if len(collected) < self.k:
            # Beyond tolerance *right now*: surface crash semantics so
            # the pager runs (or waits out) recovery and retries.
            raise ServerCrashed(failed[0] if failed else placement[0].name)
        self.counters.add("pageins")
        if any(payload is None for payload in collected.values()):
            return None  # metadata mode
        if sorted(collected) == list(range(self.k)):
            return join_fragments(
                [collected[i] for i in range(self.k)], self.page_size
            )
        # Degraded read: reconstruct the missing data fragments.
        missing = self.k - sum(1 for i in collected if i < self.k)
        span.phase("ec.decode")
        yield self._gf_cpu(missing * self.k)
        data = self.rs.data_from(collected)
        self.counters.add("degraded_reads")
        self.sim.tracer.emit(
            "recovery", "degraded_read",
            page_id=page_id, policy=self.name,
            missing_fragments=missing, failed=sorted(set(failed)),
        )
        return join_fragments(data, self.page_size)

    def holds(self, page_id: int) -> bool:
        placement = self._fragments.get(page_id)
        if placement is None:
            return False
        live = sum(
            1
            for index, server in enumerate(placement)
            if server.is_alive and server.holds(self._key(page_id, index))
        )
        return live >= self.k

    def release(self, page_id: int) -> None:
        placement = self._fragments.pop(page_id, None)
        if placement is None:
            return
        for index, server in enumerate(placement):
            if server.is_alive:
                server.free([self._key(page_id, index)])

    # --------------------------------------------------------------- scrub
    def scrub_page(self, page_id: int, verify, span=NULL_SPAN):
        """Repair at-rest rot by finding a consistent fragment subset.

        Fetches every reachable fragment, then searches k-subsets
        (data-first, deterministic order) for one whose decoded page
        passes ``verify``.  The winning bytes are re-encoded and any
        fragment that disagrees with the clean encoding is overwritten
        in place — rot in data *and* parity fragments both heal.
        """
        placement = self._fragments.get(page_id)
        if placement is None:
            return None
        available: Dict[int, bytes] = {}
        for index, server in enumerate(placement):
            key = self._key(page_id, index)
            if not (server.is_alive and server.holds(key)):
                if not server.is_alive:
                    # An undetected crash in the page's group: let the
                    # pager recover it, then scrub again.
                    raise ServerCrashed(server.name)
                continue
            payload = yield from self._fetch_fragment(
                server, key, span=span, label="scrub"
            )
            if payload is not None:
                available[index] = payload
        if len(available) < self.k:
            return None
        clean: Optional[bytes] = None
        indices = sorted(available, key=lambda i: (i >= self.k, i))
        for subset in _bounded_combinations(indices, self.k):
            yield self._gf_cpu(self.k)
            candidate = join_fragments(
                self.rs.data_from({i: available[i] for i in subset}),
                self.page_size,
            )
            if verify(candidate):
                clean = candidate
                break
        if clean is None:
            return None
        expected = self._encode(clean)
        repaired = 0
        for index, payload in available.items():
            if payload == expected[index]:
                continue
            yield from self._send_fragment(
                placement[index], self._key(page_id, index), expected[index],
                span=span, label="scrub",
            )
            repaired += 1
        if repaired:
            self.counters.add("scrub_repairs", repaired)
            self.sim.tracer.emit(
                "recovery", "fragments_scrubbed",
                page_id=page_id, policy=self.name, repaired=repaired,
            )
        return clean

    # ------------------------------------------------------------ recovery
    def _replacement_for(
        self, page_id: int, exclude: set
    ) -> Optional[MemoryServer]:
        """A live server for a rebuilt fragment: same group first (keeps
        the blast-radius invariant), then any live server, then a spare
        from the registry."""
        group = self.groups.group_of(page_id)
        candidates = [
            s
            for s in self.groups.members(group)
            if self._usable(s) and id(s) not in exclude
        ]
        if not candidates:
            candidates = [
                s for s in self.servers if self._usable(s) and id(s) not in exclude
            ]
        if candidates:
            return max(candidates, key=lambda s: s.free_pages)
        if self.replacement_provider is not None:
            spare = self.replacement_provider()
            if spare is not None and self._usable(spare) and id(spare) not in exclude:
                self.servers.append(spare)
                self.groups.adopt(spare, prefer=group)
                return spare
        return None

    def recover(self, crashed: MemoryServer):
        """Re-protect every page that lost a fragment with ``crashed``.

        For each affected page, *all* dead or amnesiac members are
        rebuilt in one pass (so cascaded recoveries converge instead of
        ping-ponging), from any ``k`` surviving fragments, onto
        replacement servers chosen group-first.  A page with fewer than
        ``k`` survivors and another not-yet-retired dead server raises
        :class:`ServerCrashed` for the pager's cascade handler; with no
        such server left the page is genuinely beyond tolerance — it is
        dropped loudly (``unrecoverable_pages``) so the rest of the
        recovery still completes and the integrity checker reports the
        loss per page instead of the whole run dying.

        ``crashed`` stays in ``self.servers`` until the pager retires it
        (``_usable`` already refuses dead servers): recovery may abort
        mid-pass and the pager's crash bookkeeping must still be able to
        find the name.
        """
        self.groups.retire(crashed)
        restored = 0
        rebuilt_total = 0
        for page_id in sorted(self._fragments):
            placement = self._fragments[page_id]
            if all(s is not crashed for s in placement):
                continue
            alive: Dict[int, MemoryServer] = {}
            dead_indices: List[int] = []
            for index, server in enumerate(placement):
                if server.is_alive and server.holds(self._key(page_id, index)):
                    alive[index] = server
                else:
                    dead_indices.append(index)
            if len(alive) < self.k:
                cascade = next(
                    (
                        s
                        for s in placement
                        if not s.is_alive and s is not crashed
                        and any(s is live for live in self.servers)
                    ),
                    None,
                )
                if cascade is not None:
                    # A second undetected crash holds this page hostage:
                    # hand it to the pager's cascade handler; the next
                    # recovery pass finishes this page.
                    raise ServerCrashed(cascade.name)
                self._fragments.pop(page_id, None)
                self.counters.add("unrecoverable_pages")
                self.sim.tracer.emit(
                    "recovery", "page_beyond_tolerance",
                    page_id=page_id, policy=self.name,
                    survivors=len(alive), needed=self.k,
                    members=[
                        f"{s.name}:{'up' if s.is_alive else 'down'}"
                        for s in placement
                    ],
                )
                continue
            # Fetch k survivors (data-first), decode, verify, re-encode.
            src = sorted(alive, key=lambda i: (i >= self.k, i))[: self.k]
            collected: Dict[int, Optional[bytes]] = {}
            for index in src:
                payload = yield from self._fetch_fragment(
                    alive[index], self._key(page_id, index), label="recovery"
                )
                collected[index] = payload
            if any(payload is None for payload in collected.values()):
                contents = None
                fragments: List[Optional[bytes]] = [None] * self.width
            else:
                # Each rebuilt fragment is one k-term GF combination of
                # the survivors (decode and re-encode alike).
                yield self._gf_cpu(len(dead_indices) * self.k)
                contents = join_fragments(
                    self.rs.data_from(collected), self.page_size
                )
                self._recovery_verify(page_id, contents)
                fragments = self._encode(contents)
            exclude = {id(server) for server in alive.values()}
            for index in dead_indices:
                target = self._replacement_for(page_id, exclude)
                if target is None:
                    # Every usable server already holds a fragment of
                    # this page: it stays *degraded* (>= k survivors, so
                    # pageins still reconstruct) rather than aborting the
                    # whole recovery — loud, and repairable once the
                    # pool regains a server.
                    self.counters.add("underprotected_fragments")
                    self.sim.tracer.emit(
                        "recovery", "fragment_unplaced",
                        page_id=page_id, policy=self.name, fragment=index,
                    )
                    continue
                yield from self._send_fragment(
                    target, self._key(page_id, index), fragments[index],
                    label="recovery",
                )
                placement[index] = target
                exclude.add(id(target))
                rebuilt_total += 1
            restored += 1
        self.counters.add("recovered_pages", restored)
        self.counters.add("fragments_rebuilt", rebuilt_total)
        if restored:
            self.sim.tracer.emit(
                "recovery", "fragments_rebuilt",
                policy=self.name, server=crashed.name,
                pages=restored, fragments=rebuilt_total,
            )
        return restored


def _bounded_combinations(indices: Sequence[int], k: int):
    """First ``_MAX_SCRUB_SUBSETS`` k-subsets in deterministic order."""
    for count, subset in enumerate(combinations(indices, k)):
        if count >= _MAX_SCRUB_SUBSETS:
            return
        yield subset
