"""Unit tests for page contents, XOR, and versioning."""

import pytest

from repro.vm import PageVersioner, page_bytes, xor_bytes, zero_page


def test_page_bytes_deterministic():
    assert page_bytes(5, 1, 64) == page_bytes(5, 1, 64)


def test_page_bytes_distinct_by_page_and_version():
    a = page_bytes(1, 1, 64)
    b = page_bytes(2, 1, 64)
    c = page_bytes(1, 2, 64)
    assert a != b and a != c and b != c


def test_page_bytes_length():
    for size in (8, 13, 64, 8192):
        assert len(page_bytes(3, 4, size)) == size


def test_page_bytes_bad_size():
    with pytest.raises(ValueError):
        page_bytes(1, 1, 0)


def test_zero_page():
    assert zero_page(16) == b"\x00" * 16
    with pytest.raises(ValueError):
        zero_page(0)


def test_xor_roundtrip():
    a = page_bytes(1, 1, 64)
    b = page_bytes(2, 3, 64)
    assert xor_bytes(xor_bytes(a, b), b) == a


def test_xor_identity_and_self():
    a = page_bytes(7, 7, 32)
    assert xor_bytes(a, zero_page(32)) == a
    assert xor_bytes(a, a) == zero_page(32)


def test_xor_length_mismatch():
    with pytest.raises(ValueError):
        xor_bytes(b"ab", b"abc")


def test_versioner_bump_and_contents():
    v = PageVersioner(page_size=64, content_mode=True)
    assert v.version_of(9) == 0
    assert v.bump(9) == 1
    assert v.bump(9) == 2
    assert v.contents(9) == page_bytes(9, 2, 64)
    assert v.expected(9, 1) == page_bytes(9, 1, 64)


def test_versioner_metadata_mode_contents_none():
    v = PageVersioner(page_size=64, content_mode=False)
    v.bump(1)
    assert v.contents(1) is None
