"""Trace record/replay tests."""

import pytest

from repro.workloads import (
    Gauss,
    RecordedWorkload,
    SequentialScan,
    load_trace,
    save_trace,
)


def test_roundtrip_preserves_references(tmp_path):
    original = SequentialScan(n_pages=20, passes=2, write=True, cpu_per_page=0.0015)
    path = tmp_path / "scan.trace"
    written = save_trace(original, path)
    replayed = load_trace(path)
    original_refs = list(original.trace())
    replay_refs = list(replayed.trace())
    assert written == len(original_refs) == len(replay_refs)
    for (p1, w1, c1), (p2, w2, c2) in zip(original_refs, replay_refs):
        assert p1 == p2 and w1 == w2
        assert c1 == pytest.approx(c2, abs=1e-9)


def test_metadata_preserved(tmp_path):
    path = tmp_path / "g.trace"
    save_trace(Gauss(n=200), path, limit=100)
    replayed = load_trace(path)
    assert replayed.name == "gauss"
    assert replayed.page_size == 8192


def test_limit_truncates(tmp_path):
    path = tmp_path / "t.trace"
    written = save_trace(SequentialScan(n_pages=50, passes=4), path, limit=25)
    assert written == 25
    assert len(load_trace(path)) == 25


def test_footprint_from_max_page(tmp_path):
    path = tmp_path / "t.trace"
    save_trace(SequentialScan(n_pages=30), path)
    replayed = load_trace(path)
    assert replayed.footprint_pages == 30


def test_replay_runs_on_machine(tmp_path):
    from repro.core import build_cluster

    path = tmp_path / "t.trace"
    save_trace(SequentialScan(n_pages=64, passes=2, write=True), path)
    cluster = build_cluster(policy="no-reliability", n_servers=2)
    report = cluster.run(load_trace(path))
    assert report.faults >= 64


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_text("not a trace\n1 R 10\n")
    with pytest.raises(ValueError, match="not a repro trace"):
        load_trace(path)


def test_malformed_line_rejected(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_text("# repro-trace v1\n1 Q 10\n")
    with pytest.raises(ValueError, match="malformed"):
        load_trace(path)


def test_blank_lines_and_comments_skipped(tmp_path):
    path = tmp_path / "ok.trace"
    path.write_text("# repro-trace v1\n# name: x\n\n# a comment\n3 W 100.0\n")
    replayed = load_trace(path)
    assert list(replayed.trace()) == [(3, True, pytest.approx(1e-4))]
