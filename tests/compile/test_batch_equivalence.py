"""Batch-step replacement API == per-reference stepping, exactly.

The trace compiler's correctness rests on one claim: applying the
touches between two eviction decisions as a single ``touch_batch`` call
produces the *same policy state* — and therefore the same victim
sequence forever after — as touching per reference.  These property
tests drive randomized reference streams through paired policy
instances (one touched per-reference, one batched at arbitrary flush
boundaries) and require identical victims at every eviction and
identical exported state at the end.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.replacement import (
    ClockReplacement,
    FifoReplacement,
    LruReplacement,
    make_replacement,
)

POLICIES = [FifoReplacement, LruReplacement, ClockReplacement]


def _drive(policy_cls, stream, frames, flush_every):
    """Run ``stream`` against per-ref and batched twins; compare victims.

    ``stream`` is a list of page ids over a small universe; a reference
    to a non-resident page faults (evicting one victim when full), a
    resident one touches.  The batched twin buffers touches and flushes
    every ``flush_every`` references and before every eviction — the
    machine's actual discipline (flush before every yield and fault).
    """
    per_ref = policy_cls()
    batched = policy_cls()
    resident = set()
    buffer = []
    victims_a = []
    victims_b = []
    since_flush = 0
    for page in stream:
        if page in resident:
            per_ref.touch(page)
            buffer.append(page)
            since_flush += 1
            if since_flush >= flush_every:
                batched.touch_batch(buffer)
                buffer.clear()
                since_flush = 0
            continue
        if buffer:
            batched.touch_batch(buffer)
            buffer.clear()
            since_flush = 0
        if len(resident) >= frames:
            victim_a = per_ref.evict()
            victim_b = batched.evict()
            victims_a.append(victim_a)
            victims_b.append(victim_b)
            resident.discard(victim_a)
        per_ref.insert(page)
        batched.insert(page)
        resident.add(page)
    if buffer:
        batched.touch_batch(buffer)
    return per_ref, batched, victims_a, victims_b


@pytest.mark.parametrize("policy_cls", POLICIES)
@settings(max_examples=60, deadline=None)
@given(
    stream=st.lists(st.integers(min_value=0, max_value=23), min_size=1, max_size=300),
    frames=st.integers(min_value=1, max_value=12),
    flush_every=st.integers(min_value=1, max_value=40),
)
def test_batch_touch_matches_per_reference_stepping(
    policy_cls, stream, frames, flush_every
):
    per_ref, batched, victims_a, victims_b = _drive(
        policy_cls, stream, frames, flush_every
    )
    assert victims_a == victims_b
    assert per_ref.export_state() == batched.export_state()
    assert len(per_ref) == len(batched)


@pytest.mark.parametrize("policy_cls", POLICIES)
def test_batch_touch_long_randomized_stream(policy_cls):
    """A deeper soak than hypothesis' defaults: 20k refs, hot/cold mix."""
    rng = random.Random(20260806)
    universe = list(range(64))
    stream = [
        rng.choice(universe[:8]) if rng.random() < 0.8 else rng.choice(universe)
        for _ in range(20_000)
    ]
    per_ref, batched, victims_a, victims_b = _drive(policy_cls, stream, 24, 17)
    assert victims_a == victims_b
    assert per_ref.export_state() == batched.export_state()


@pytest.mark.parametrize("policy_cls", POLICIES)
def test_export_restore_roundtrip_preserves_future_victims(policy_cls):
    rng = random.Random(99)
    policy = policy_cls()
    resident = set()
    for page in (rng.randrange(40) for _ in range(2_000)):
        if page in resident:
            policy.touch(page)
        else:
            if len(resident) >= 15:
                resident.discard(policy.evict())
            policy.insert(page)
            resident.add(page)
    clone = policy_cls()
    clone.restore_state(policy.export_state())
    assert len(clone) == len(policy)
    assert [policy.evict() for _ in range(len(policy))] == [
        clone.evict() for _ in range(len(clone))
    ]


def test_lru_plain_dict_semantics():
    """The plain-dict LRU keeps exact-stack order (the OrderedDict
    contract it replaced): first-inserted evicts first, touch moves to
    the MRU end."""
    lru = make_replacement("lru")
    for page in (1, 2, 3):
        lru.insert(page)
    lru.touch(1)
    assert lru.evict() == 2
    assert lru.evict() == 3
    assert lru.evict() == 1


def test_batch_touch_raises_on_nonresident():
    for name in ("fifo", "lru", "clock"):
        policy = make_replacement(name)
        policy.insert(1)
        with pytest.raises(KeyError):
            policy.touch_batch([1, 7])
