"""A token-ring network model (IEEE 802.5-style).

§4.6 of the paper attributes the loaded-network collapse to CSMA/CD
itself, not to remote paging: "it is still beneficial to use remote
memory paging over networks that employ other technologies (e.g. token
ring), as long as they are able to provide ... an effective bandwidth of
10 or more Mbps."  This model lets the reproduction *test* that claim
(see ``benchmarks/bench_token_ring.py``): under the same offered load, a
token ring degrades gracefully (round-robin token passing, no
collisions) where the Ethernet collapses.

Model: a single token circulates; a station holding the token transmits
one queued frame (token-holding limit of one frame, early token
release), then passes the token on.  Passing costs the ring-latency
share per hop.  An idle ring still circulates the token, but idle hops
cost nothing to waiting stations beyond their arrival position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim import Event, Simulator, Store
from ..units import megabits_per_second, microseconds
from .base import Message, Network

__all__ = ["TokenRingSpec", "TokenRing"]


@dataclass(frozen=True)
class TokenRingSpec:
    """Ring parameters (16 Mbit/s IEEE 802.5 by default)."""

    bandwidth: float = megabits_per_second(16)
    mtu: int = 4096  # token ring allowed much larger frames than Ethernet
    frame_overhead: int = 21  # SD/AC/FC/addresses/FCS/ED/FS
    token_pass_time: float = microseconds(15)  # per-hop token latency

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.mtu <= 0:
            raise ValueError("bandwidth and mtu must be positive")
        if self.token_pass_time < 0:
            raise ValueError("token_pass_time must be non-negative")

    def frame_time(self, payload: int) -> float:
        """Wire time of one frame carrying ``payload`` bytes."""
        return (payload + self.frame_overhead) / self.bandwidth


class _RingStation:
    """Per-host frame queue."""

    def __init__(self, sim: Simulator):
        self.queue: List[tuple] = []  # (payload_size, message, is_last)


class TokenRing(Network):
    """Deterministic round-robin medium access: no collisions, ever."""

    def __init__(self, sim: Simulator, spec: Optional[TokenRingSpec] = None):
        super().__init__(sim)
        self.spec = spec or TokenRingSpec()
        self._pending_events: Dict[int, Event] = {}
        self._work = Store(sim)  # wakeups for the token process
        self._token_process = sim.process(self._circulate(), name="token-ring")

    # ------------------------------------------------------------- interface
    def transfer(self, src: str, dst: str, nbytes: int) -> Event:
        message = Message(src=src, dst=dst, nbytes=nbytes, enqueued_at=self.sim.now)
        self._require(dst)
        station: _RingStation = self._require(src)
        done = self.sim.event()
        self._pending_events[message.msg_id] = done
        sizes = self._fragments(nbytes)
        for i, size in enumerate(sizes):
            station.queue.append((size, message, i == len(sizes) - 1))
        self._work.put(None)
        return done

    # -------------------------------------------------------------- internals
    def _make_station(self, host: str) -> _RingStation:
        return _RingStation(self.sim)

    def _fragments(self, nbytes: int) -> List[int]:
        mtu = self.spec.mtu
        full, rest = divmod(nbytes, mtu)
        sizes = [mtu] * full
        if rest:
            sizes.append(rest)
        return sizes

    def _deliver(self, message: Message) -> None:
        self.stats.delivered(message)
        event = self._pending_events.pop(message.msg_id, None)
        if event is not None and not event.triggered:
            event.succeed(message)

    def _circulate(self):
        """The token: visit stations round robin, one frame per holding."""
        spec = self.spec
        while True:
            # Sleep until there is any queued frame anywhere.
            yield self._work.get()
            while True:
                stations = [s for s in self._hosts.values() if s.queue]
                if not stations:
                    break
                # One rotation: every backlogged station sends one frame.
                progressed = False
                for station in list(self._hosts.values()):
                    if not station.queue:
                        continue
                    _, head, _ = station.queue[0]
                    if self._crosses_partition(head.src, head.dst):
                        continue  # §2.2: stalled, not dropped
                    yield self.sim.timeout(spec.token_pass_time)
                    payload, message, is_last = station.queue.pop(0)
                    self.stats.wire.busy(self.sim.now)
                    yield self.sim.timeout(spec.frame_time(payload))
                    self.stats.wire.idle(self.sim.now)
                    self.stats.counters.add("frames")
                    progressed = True
                    if is_last:
                        self._deliver(message)
                if not progressed:
                    # Everything left is cut off: sleep until the heal.
                    yield from self._await_reachable(
                        *next(
                            (s.queue[0][1].src, s.queue[0][1].dst)
                            for s in stations
                            if s.queue
                        )
                    )
            # Drain stale wakeups so the store does not grow unboundedly.
            while self._work.try_get() is not None:
                pass
