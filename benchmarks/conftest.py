"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's figures/tables and prints
the measured-vs-paper comparison (run with ``-s`` to see the tables).
The simulations are deterministic, so a single round is meaningful; the
benchmark timing itself measures the simulator's wall-clock cost.
"""

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
