"""§5's heterogeneous networks: a multi-level remote-memory hierarchy.

"On a wider area network the time it takes to transfer a page may not be
identical for each server.  In this case there may be more than three
levels in the memory hierarchy (local memory, remote memory, disk)."

Setup: a switched network where half the servers sit on fast links and
half on slow links.  We measure per-server pagein latency (exposing the
extra hierarchy level) and compare round-robin placement against a
bandwidth-aware ranker that fills fast-linked servers first.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.report import format_table
from ..config import SwitchedNetworkSpec
from ..core.builder import build_cluster
from ..units import megabits_per_second
from ..workloads import Gauss

__all__ = ["run_heterogeneous", "render_heterogeneous"]


def _build(fast_mbps: float, slow_mbps: float, ranked: bool):
    cluster = build_cluster(
        policy="no-reliability",
        n_servers=4,
        switched_spec=SwitchedNetworkSpec(bandwidth=megabits_per_second(fast_mbps)),
    )
    network = cluster.network
    slow = megabits_per_second(slow_mbps)
    for server in cluster.servers[2:]:
        network.attach(server.host.name, bandwidth=slow)
    if ranked:
        # Prefer fast links; the slow-linked donors become the deeper
        # hierarchy level, used only when the fast ones fill.
        cluster.policy.server_ranker = lambda s: -network.host_bandwidth(s.host.name)
    return cluster


def run_heterogeneous(
    fast_mbps: float = 100.0,
    slow_mbps: float = 10.0,
    workload_factory=Gauss,
) -> Dict[str, object]:
    """Compare round-robin vs bandwidth-aware placement."""
    results: Dict[str, object] = {}
    for label, ranked in (("round-robin", False), ("bandwidth-aware", True)):
        cluster = _build(fast_mbps, slow_mbps, ranked)
        report = cluster.run(workload_factory())
        placement = {}
        for server in cluster.servers:
            pages = sum(
                1 for s in cluster.policy._placement.values() if s is server
            )
            placement[server.name] = pages
        results[label] = {
            "etime": report.etime,
            "placement": placement,
            "fast_share": sum(
                placement[s.name] for s in cluster.servers[:2]
            )
            / max(1, sum(placement.values())),
        }
    results["speedup"] = (
        results["round-robin"]["etime"] / results["bandwidth-aware"]["etime"]
    )
    return results


def render_heterogeneous(results: Dict[str, object]) -> str:
    """Placement-strategy comparison table."""
    rows = []
    for label in ("round-robin", "bandwidth-aware"):
        r = results[label]
        rows.append(
            [
                label,
                f"{r['etime']:.1f}",
                f"{r['fast_share']:.0%}",
            ]
        )
    table = format_table(
        ["placement", "etime (s)", "pages on fast links"],
        rows,
        title="§5: heterogeneous cluster (2 fast + 2 slow server links)",
    )
    return table + f"\nbandwidth-aware placement speedup: {results['speedup']:.2f}x"
