"""Runner fan-out mechanics: persistent pool, chunking, batched cache.

The campaign-scale overhead cuts must be invisible in results: chunked
submission over a reused pool produces byte-identical reports to serial
inline execution, batched cache probes agree with individual ``get``
calls, and the cache key covers every axis a fleet cell can vary on —
network model, client count, codec backend — so fleet and single-client
cells can never collide.
"""

import dataclasses

import pytest

from repro.config import SwitchedNetworkSpec
from repro.runner import ExperimentRunner, ResultCache, RunSpec, fingerprint
from repro.runner.execute import execute_spec
from repro.runner.runner import ExperimentRunner as _Runner

SPEC = RunSpec.make("gauss", "disk", workload_kwargs={"n": 700})

#: More cells than workers * chunks-per-worker exercises multi-spec chunks.
MANY = [
    RunSpec.make("mvec", "no-reliability", workload_kwargs={"n": 600 + 20 * i})
    for i in range(9)
]


# ------------------------------------------------------------------ pool
def test_pool_persists_across_run_calls():
    runner = ExperimentRunner(jobs=2)
    assert runner._pool is None
    runner.run(MANY[:3])
    pool = runner._pool
    assert pool is not None
    runner.run(MANY[3:6])
    assert runner._pool is pool
    runner.close()
    assert runner._pool is None


def test_serial_runner_never_forks():
    runner = ExperimentRunner(jobs=1)
    runner.run(MANY[:2])
    assert runner._pool is None


def test_chunked_parallel_matches_serial_byte_identically():
    serial = ExperimentRunner(jobs=1).run(MANY)
    runner = ExperimentRunner(jobs=2)
    try:
        parallel = runner.run(MANY)
    finally:
        runner.close()
    assert [dataclasses.asdict(r.report) for r in serial] == [
        dataclasses.asdict(r.report) for r in parallel
    ]
    assert [r.extras for r in serial] == [r.extras for r in parallel]


def test_chunking_partitions_in_order():
    chunked = _Runner._chunked
    assert chunked(list(range(9)), 4) == [[0, 1, 2], [3, 4], [5, 6], [7, 8]]
    assert chunked([5], 4) == [[5]]
    flat = [i for chunk in chunked(list(range(17)), 8) for i in chunk]
    assert flat == list(range(17))


def test_broken_pool_is_discarded():
    runner = ExperimentRunner(jobs=2)
    with pytest.raises(Exception):
        runner.run(
            [RunSpec.make("no-such-workload", "disk"), MANY[0], MANY[1]]
        )
    assert runner._pool is None
    # The next run forks a fresh pool and succeeds.
    results = runner.run(MANY[:3])
    runner.close()
    assert all(r.report.etime > 0 for r in results)


# ----------------------------------------------------------------- cache
def test_get_many_matches_individual_gets(tmp_path):
    cache = ResultCache(tmp_path)
    result = execute_spec(SPEC)
    cache.put(SPEC, result.report, result.extras)
    other = RunSpec.make("gauss", "disk", workload_kwargs={"n": 701})

    batched = ResultCache(tmp_path)
    hit, miss = batched.get_many([SPEC, other])
    assert miss is None
    report, extras = hit
    assert dataclasses.asdict(report) == dataclasses.asdict(result.report)
    assert extras == result.extras
    assert (batched.hits, batched.misses) == (1, 1)


def test_get_many_on_missing_directory_is_all_misses(tmp_path):
    cache = ResultCache(tmp_path / "never-created")
    assert cache.get_many([SPEC, SPEC]) == [None, None]
    assert cache.misses == 2


# ------------------------------------------------------- key disjointness
def test_network_model_and_client_count_key_disjointly():
    """Fleet cells vary on axes single-client cells never set; every one
    must land in its own cache slot."""
    base = RunSpec.make("gauss", "disk")
    variants = [
        RunSpec.make(
            "gauss", "disk", overrides={"switched_spec": SwitchedNetworkSpec()}
        ),
        RunSpec.make(
            "gauss",
            "disk",
            overrides={
                "switched_spec": SwitchedNetworkSpec(),
                "analytic_switched": False,
            },
        ),
        RunSpec.make("gauss", "disk", overrides={"n_servers": 4}),
        RunSpec.make("gauss", "disk", overrides={"n_clients": 8}),
        RunSpec.make("gauss", "disk", overrides={"n_clients": 16}),
        RunSpec.make("gauss", "disk", seed=1),
    ]
    prints = [fingerprint(spec) for spec in [base] + variants]
    assert len(set(prints)) == len(prints)


def test_codec_backend_is_part_of_the_fingerprint():
    pytest.importorskip("numpy")
    from repro.core.policies.gf256 import set_codec_backend

    previous = set_codec_backend("numpy")
    try:
        with_numpy = fingerprint(SPEC)
        set_codec_backend("python")
        with_python = fingerprint(SPEC)
    finally:
        set_codec_backend(previous)
    assert with_numpy != with_python
