"""Multiple paging clients sharing the cluster.

§3.2: "Each client is served by a new instance of the server which uses
portion of the local workstation's main memory to store the client's
pages" — and §6 stresses that, unlike file systems, "clients never share
their swap spaces".  This experiment runs two clients concurrently:

* each client gets its *own* server instances on the shared donor
  workstations (separate memory grants, fully isolated swap spaces);
* both compete for the one shared Ethernet segment.

The interesting measurement is the contention cost: how much slower two
simultaneous paging applications run than each would alone.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.report import format_table
from ..cluster.workstation import Workstation
from ..config import DEC_ALPHA_3000_300
from ..core.client import RemoteMemoryPager
from ..core.policies.none import NoReliability
from ..core.server import MemoryServer
from ..net.ethernet import EthernetCsmaCd
from ..net.protocol import ProtocolStack
from ..sim import RngRegistry, Simulator
from ..vm.machine import Machine
from ..workloads import Gauss, Qsort

__all__ = ["build_multi_client", "run_multi_client", "render_multi_client"]


def build_multi_client(
    n_clients: int = 2,
    n_donors: int = 2,
    capacity_per_client: int = 2048,
    seed: int = 0,
):
    """A shared-Ethernet cluster with per-client server instances."""
    sim = Simulator()
    network = EthernetCsmaCd(sim, rngs=RngRegistry(seed=seed))
    stack = ProtocolStack(network)
    donor_spec = DEC_ALPHA_3000_300
    # Size donor hosts to hold every client's grant.
    from ..config import MachineSpec

    donor_spec = MachineSpec(
        name="donor",
        ram_bytes=(n_clients * capacity_per_client + 2048) * 8192
        + donor_spec.kernel_resident_bytes,
        kernel_resident_bytes=donor_spec.kernel_resident_bytes,
    )
    donors = []
    for d in range(n_donors):
        host = Workstation(sim, f"donor-{d}", donor_spec)
        network.attach(host.name)
        donors.append(host)

    machines: List[Machine] = []
    for c in range(n_clients):
        client_name = f"client-{c}"
        network.attach(client_name)
        # "A new instance of the server" per client, on every donor.
        servers = [
            MemoryServer(
                host,
                stack,
                capacity_pages=capacity_per_client,
                name=f"server-{c}-{d}",
            )
            for d, host in enumerate(donors)
        ]
        policy = NoReliability(client_name, stack, servers)
        pager = RemoteMemoryPager(policy)
        machines.append(
            Machine(sim, DEC_ALPHA_3000_300, pager, name=client_name)
        )
    return sim, machines, network


def run_multi_client(workload_factories=(Gauss, Qsort)) -> Dict[str, object]:
    """Solo vs concurrent completion times for two clients."""
    solo_times = []
    for factory in workload_factories:
        sim, machines, _ = build_multi_client(n_clients=1)
        report = sim.run_until_complete(
            machines[0].run(factory().trace(), name=factory().name)
        )
        solo_times.append(report.etime)

    sim, machines, network = build_multi_client(n_clients=len(workload_factories))
    processes = [
        machine.run(factory().trace(), name=factory().name)
        for machine, factory in zip(machines, workload_factories)
    ]
    reports = [sim.run_until_complete(p) for p in processes]
    return {
        "names": [factory().name for factory in workload_factories],
        "solo": solo_times,
        "concurrent": [r.etime for r in reports],
        "slowdowns": [
            c / s for c, s in zip((r.etime for r in reports), solo_times)
        ],
        "collisions": network.collisions,
        "wire_utilization": network.stats.utilization(),
    }


def render_multi_client(results: Dict[str, object]) -> str:
    """Solo-vs-concurrent table with wire statistics."""
    rows = [
        [name, f"{solo:.1f}", f"{concurrent:.1f}", f"{slowdown:.2f}x"]
        for name, solo, concurrent, slowdown in zip(
            results["names"],
            results["solo"],
            results["concurrent"],
            results["slowdowns"],
        )
    ]
    table = format_table(
        ["client workload", "solo (s)", "concurrent (s)", "slowdown"],
        rows,
        title="Two clients sharing one Ethernet and donor pool",
    )
    return (
        table
        + f"\ncollisions: {results['collisions']}, "
        f"wire busy: {results['wire_utilization']:.0%}"
    )
