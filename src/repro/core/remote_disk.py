"""Remote *disk* paging — the Comer & Griffioen comparison point.

Related work (§6): "Comer and Griffioen have implemented and compared
remote memory paging vs. remote disk paging, over NFS, on an environment
with diskless workstations.  Their results suggest that remote memory
paging can be 20% to 100% faster than remote disk paging, depending on
the disk access pattern."

:class:`RemoteDiskPager` reproduces the remote-disk side: pages travel
the same network to a server, but the server stores them on *its* disk
instead of in DRAM — so every pagein pays wire time *plus* a disk
access, and every pageout lands on a device with seek/rotation physics.
Comparing it against :class:`~repro.core.NoReliability` regenerates the
20-100% claim (``benchmarks/bench_remote_disk.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cluster.workstation import Workstation
from ..config import DEC_RZ55, DiskSpec
from ..disk.backend import PartitionBackend
from ..disk.model import Disk
from ..errors import PageNotFound, ServerCrashed
from ..net.protocol import ProtocolStack
from ..sim import Counter, Simulator
from ..units import milliseconds
from ..vm.pager import Pager

__all__ = ["RemoteDiskServer", "RemoteDiskPager"]


class RemoteDiskServer:
    """A diskful server: requests served from its local disk, not DRAM."""

    #: Server CPU per request (socket handling + block layer entry).
    CPU_PER_REQUEST = milliseconds(0.3)

    def __init__(
        self,
        host: Workstation,
        stack: ProtocolStack,
        n_slots: int = 8192,
        disk_spec: DiskSpec = DEC_RZ55,
        name: Optional[str] = None,
    ):
        self.host = host
        self.stack = stack
        self.sim: Simulator = host.sim
        self.name = name or f"disk-server@{host.name}"
        self.disk = Disk(self.sim, disk_spec)
        self.backend = PartitionBackend(self.disk, host.spec.page_size, n_slots)
        self._contents: Dict[int, Optional[bytes]] = {}
        self._crashed = False
        self.counters = Counter()
        if not stack.network.is_attached(host.name):
            stack.network.attach(host.name)

    @property
    def is_alive(self) -> bool:
        return not self._crashed

    def holds(self, page_id: int) -> bool:
        """Whether this server stores ``page_id`` on its disk."""
        return self.backend.holds(page_id)

    def store(self, page_id: int, contents: Optional[bytes]):
        """Generator: write the page to the server's disk."""
        if self._crashed:
            raise ServerCrashed(self.name)
        yield from self.host.cpu_time(self.CPU_PER_REQUEST)
        yield from self.backend.write_page(page_id)
        self._contents[page_id] = contents
        self.counters.add("stores")

    def fetch(self, page_id: int):
        """Generator: read the page back off the server's disk."""
        if self._crashed:
            raise ServerCrashed(self.name)
        yield from self.host.cpu_time(self.CPU_PER_REQUEST)
        yield from self.backend.read_page(page_id)
        self.counters.add("fetches")
        return self._contents.get(page_id)

    def crash(self) -> None:
        """The server workstation dies (its disk contents go with it)."""
        self._crashed = True


class RemoteDiskPager(Pager):
    """Page to remote servers' *disks* over the network.

    Placement is round robin across servers, sticky per page — the same
    layout the remote-memory pager uses, so the only difference in any
    comparison is DRAM vs platter at the far end.
    """

    name = "remote-disk"

    def __init__(self, client_host: str, stack: ProtocolStack, servers: List[RemoteDiskServer]):
        super().__init__()
        if not servers:
            raise ValueError("remote disk paging needs at least one server")
        self.client_host = client_host
        self.stack = stack
        self.sim: Simulator = stack.sim
        self.servers = list(servers)
        self._placement: Dict[int, RemoteDiskServer] = {}
        self._next = 0

    def _place(self, page_id: int) -> RemoteDiskServer:
        server = self._placement.get(page_id)
        if server is None:
            server = self.servers[self._next % len(self.servers)]
            self._next += 1
            self._placement[page_id] = server
        return server

    def pageout(self, page_id: int, contents: Optional[bytes] = None):
        server = self._place(page_id)
        page_size = server.host.spec.page_size
        yield from self.stack.send_page(self.client_host, server.host.name, page_size)
        self.counters.add("transfers")
        yield from server.store(page_id, contents)
        self.counters.add("pageouts")

    def pagein(self, page_id: int):
        server = self._placement.get(page_id)
        if server is None:
            raise PageNotFound(page_id, where=self.name)
        contents = yield from server.fetch(page_id)
        page_size = server.host.spec.page_size
        yield from self.stack.fetch_page(self.client_host, server.host.name, page_size)
        self.counters.add("transfers")
        self.counters.add("pageins")
        return contents

    def release(self, page_id: int) -> None:
        server = self._placement.pop(page_id, None)
        if server is not None and server.backend.holds(page_id):
            server.backend.release_page(page_id)
