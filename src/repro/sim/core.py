"""Discrete-event simulation kernel.

Every model in this package (network, disk, virtual memory, the remote
memory pager itself) runs on top of this kernel.  It is a small,
deterministic, generator-based engine in the style of SimPy:

* A :class:`Simulator` owns the virtual clock and the event heap.
* An :class:`Event` is a one-shot occurrence that other processes may wait
  on; it either *succeeds* with a value or *fails* with an exception.
* A :class:`Process` wraps a generator.  The generator yields events; the
  process resumes when the yielded event fires, receiving the event's
  value (or having its exception raised at the ``yield``).

Determinism matters for reproducible experiments: events scheduled for the
same instant fire in FIFO scheduling order (a monotonically increasing
sequence number breaks ties), and nothing in the kernel reads the wall
clock or an unseeded RNG.

Example
-------
>>> sim = Simulator()
>>> def worker(sim, results):
...     yield sim.timeout(5.0)
...     results.append(sim.now)
>>> results = []
>>> _ = sim.process(worker(sim, results))
>>> sim.run()
>>> results
[5.0]
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Periodic",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "StopSimulation",
    "NullSpan",
    "NullTracer",
    "NullSampler",
    "NULL_SPAN",
    "NULL_TRACER",
    "NULL_SAMPLER",
]


class NullSpan:
    """The do-nothing request span: every model's default.

    Instrumented components call ``span.phase(...)``/``span.end()``
    unconditionally; when tracing is off those calls land here and cost
    one attribute lookup plus an empty method body.  The real span type
    lives in :mod:`repro.obs.trace` — the kernel only defines the no-op
    so that instrumentation needs no conditionals and no imports from
    the observability layer (which would cycle back into the kernel).
    """

    __slots__ = ()

    def phase(self, name: str) -> "NullSpan":
        """Record nothing; returns self so calls chain."""
        return self

    def end(self, status: str = "ok", **attrs: Any) -> None:
        """Record nothing."""
        return None


class NullTracer:
    """The zero-cost default tracer installed on every :class:`Simulator`.

    ``enabled`` is False so rare-path components may skip building event
    attributes entirely; hot-path components just call straight through
    — every method is a no-op returning a shared singleton.
    """

    __slots__ = ()

    enabled = False

    def bind(self, sim: "Simulator") -> None:
        """Nothing to bind; the no-op tracer keeps no clock."""
        return None

    def emit(self, component: str, event: str, page_id: Any = None, **attrs: Any) -> None:
        """Drop the event."""
        return None

    def span(self, kind: str, page_id: Any = None, component: str = "pager") -> NullSpan:
        """Return the shared no-op span."""
        return NULL_SPAN


class NullSampler:
    """The zero-cost default telemetry sampler on every :class:`Simulator`.

    Mirrors :class:`NullTracer`: hot paths (the fault-service loop) call
    ``sim.sampler.observe_fault(...)`` unconditionally; with telemetry
    off those calls land here and cost one attribute lookup plus an
    empty method body.  The real sampler lives in
    :mod:`repro.obs.telemetry` — the kernel only defines the no-op so
    instrumentation needs no conditionals and no imports from the
    observability layer.

    ``enabled`` is False so rare paths (and the compile planner, which
    must force interpreted execution while sampling is live) can test
    for real telemetry with one attribute read.
    """

    __slots__ = ()

    enabled = False

    def bind(self, sim: "Simulator") -> None:
        """Nothing to bind; the no-op sampler keeps no clock."""
        return None

    def observe_fault(self, elapsed: float) -> None:
        """Drop the fault-latency observation."""
        return None

    def observe(self, name: str, value: float) -> None:
        """Drop the ad-hoc observation."""
        return None


NULL_SPAN = NullSpan()
NULL_TRACER = NullTracer()
NULL_SAMPLER = NullSampler()


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Simulator.run` early."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupting party supplies an arbitrary ``cause`` object which the
    interrupted process can inspect (e.g. a crash notification).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt(cause={self.cause!r})"


#: Event state constants.
PENDING = 0  # created, not yet triggered
TRIGGERED = 1  # scheduled on the event heap, value/exception fixed
PROCESSED = 2  # callbacks have run


class Event:
    """A one-shot occurrence processes can wait for.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it: its outcome becomes immutable and it is scheduled to be
    *processed* (callbacks run) at the current simulation instant.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_state", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._state = PENDING
        self._defused = False

    # -- outcome inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has an outcome (success or failure)."""
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The success value, or raise the failure exception."""
        if self._state == PENDING:
            raise SimulationError("event value accessed before it triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, if any (None for success or pending)."""
        return self._exception

    # -- outcome assignment -------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self._state = TRIGGERED
        sim = self.sim
        heappush(sim._heap, (sim._now, next(sim._seq), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure ``exception``."""
        if self._state != PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._state = TRIGGERED
        sim = self.sim
        heappush(sim._heap, (sim._now, next(sim._seq), self))
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise."""
        self._defused = True

    # -- kernel internals ---------------------------------------------------
    def _process(self) -> None:
        """Run callbacks; called exactly once by the simulator."""
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)
        if self._exception is not None and not self._defused:
            # A failure nobody observed is a programming error; surface it
            # instead of silently dropping it.
            raise self._exception

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation.

    Timeouts dominate the kernel's allocation profile (the VM layer
    yields one per compute chunk and per fault-service step), so the
    constructor writes every slot directly and pushes its heap entry
    inline instead of chaining through ``Event.__init__``/``_schedule``.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._exception = None
        self._defused = False
        self.delay = delay
        self._state = TRIGGERED
        heappush(sim._heap, (sim._now + delay, next(sim._seq), self))


class Periodic(Event):
    """A self-rescheduling kernel event invoking ``fn(now)`` every
    ``interval`` simulated seconds.

    This is the periodic-callback primitive the telemetry sampler runs
    on: one reusable heap entry, no generator, no Process bookkeeping.
    Nothing can wait on a Periodic (it never reaches PROCESSED while
    running); it simply re-pushes itself after each tick.

    Liveness rule: a tick only reschedules itself while *other* work
    remains on the heap.  A periodic must never be the thing keeping a
    drained simulation alive — ``run()`` would spin forever and
    ``run_until_complete()`` would mask a genuine stall — so when a
    tick pops with nothing else scheduled, it retires silently (no
    callback: that window holds no work to observe).  ``ensure``-style
    owners (see ``repro.obs.telemetry.TelemetrySampler``) re-arm it
    before the next run phase.
    """

    __slots__ = ("interval", "fn", "_running")

    def __init__(
        self,
        sim: "Simulator",
        interval: float,
        fn: Callable[[float], None],
        start: Optional[float] = None,
    ):
        if interval <= 0:
            raise ValueError(f"periodic interval must be positive: {interval!r}")
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._exception = None
        self._defused = True
        self.interval = interval
        self.fn = fn
        self._running = True
        self._state = TRIGGERED
        first = sim._now + interval if start is None else start
        if first < sim._now:
            raise ValueError(f"periodic start {first} is in the past (now={sim._now})")
        heappush(sim._heap, (first, next(sim._seq), self))

    @property
    def running(self) -> bool:
        """True while the periodic will keep firing."""
        return self._running

    def stop(self) -> None:
        """Cancel future ticks.  The already-queued heap entry becomes a
        no-op when it pops (removing from the middle of a heap is not
        worth the bookkeeping)."""
        self._running = False

    def _process(self) -> None:
        if not self._running:
            return
        sim = self.sim
        if not sim._heap:
            # This tick was the only thing left on the heap: it is
            # keeping a finished simulation alive, not observing work.
            # Retire without firing — a sample window past the last
            # real event would be pure silence.
            self._running = False
            return
        self.fn(sim._now)
        if self._running:
            heappush(sim._heap, (sim._now + self.interval, next(sim._seq), self))


class _ConditionValue:
    """Mapping from constituent events to their values for AnyOf/AllOf."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(event)
        return event.value

    def __len__(self) -> int:
        return len(self.events)

    def todict(self) -> dict:
        return {event: event.value for event in self.events}


class _Condition(Event):
    """Base for composite events over a fixed set of sub-events."""

    __slots__ = ("_events", "_unfired")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("cannot mix events from different simulators")
        self._unfired = len(self._events)
        if not self._events:
            self.succeed(_ConditionValue())
            return
        for event in self._events:
            # A Timeout is "triggered" from birth (its outcome is fixed) but
            # only *processed* when the clock reaches it — conditions must
            # wait for processing, not triggering.
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            if event._exception is not None:
                # The condition already fired; swallow late failures of
                # other constituents so they do not crash the kernel.
                event.defuse()
            return
        self._unfired -= 1
        if event._exception is not None:
            event.defuse()
            self.fail(event._exception)
        elif self._satisfied():
            value = _ConditionValue()
            value.events = [e for e in self._events if e.processed and e.ok]
            self.succeed(value)


class AnyOf(_Condition):
    """Fires when any constituent event fires (or any fails)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._unfired < len(self._events)


class AllOf(_Condition):
    """Fires when all constituent events have fired (or any fails)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._unfired == 0


class Process(Event):
    """A running generator; also an event that fires when it terminates.

    The wrapped generator yields :class:`Event` objects.  When a yielded
    event succeeds, the generator is resumed with the event's value; when
    it fails, the exception is raised at the ``yield`` site.  A ``return``
    from the generator succeeds the process event with the returned value.
    """

    __slots__ = ("generator", "name", "_target", "_send", "_throw", "_relay", "_resume_cb")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        super().__init__(sim)
        self.generator = generator
        # Bound-method caches: _step runs once per event the process waits
        # on, so shaving the per-step attribute lookups is measurable.
        self._send = generator.send
        self._throw = generator.throw
        self._resume_cb = self._resume
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # Reused relay event for resuming after already-processed targets
        # (see _step); allocated lazily on first use.
        self._relay: Optional[Event] = None
        # Kick off on the next kernel iteration at the current instant.
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at the current time.

        Interrupting a dead process is an error.  The process stops waiting
        on its current target (the target event itself is unaffected and
        may fire later without consequence).
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        interrupt_event = Event(self.sim)
        interrupt_event._exception = Interrupt(cause)
        interrupt_event._defused = True  # delivery into the process handles it
        interrupt_event._state = TRIGGERED
        interrupt_event.callbacks.append(self._resume_interrupt)
        self.sim._schedule(interrupt_event, 0.0, urgent=True)

    # -- kernel internals ---------------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        if self.triggered:
            return  # terminated between scheduling and delivery
        if self._target is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None
        relay = self._relay
        if relay is not None and relay._state == TRIGGERED:
            # The process was waiting on its relay (an already-processed
            # target) when interrupted; detach so the still-queued relay
            # cannot resume it a second time.
            try:
                relay.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._step(event)

    def _resume(self, event: Event) -> None:
        self._target = None
        self._step(event)

    def _step(self, event: Event) -> None:
        sim = self.sim
        sim._active_process = self
        try:
            if event._exception is not None:
                event._defused = True
                target = self._throw(event._exception)
            else:
                target = self._send(event._value)
        except StopIteration as stop:
            sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim._active_process = None
            self.fail(exc)
            return
        sim._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield events"
            )
        if target._state == PROCESSED:
            # Already done: resume on the next kernel iteration.  A process
            # waits on at most one event, so one relay per process can be
            # recycled instead of allocating a fresh Event every time; the
            # TRIGGERED guard covers the rare case where the previous relay
            # is still queued (an interrupt cut in before it fired).
            relay = self._relay
            if relay is None or relay._state != PROCESSED:
                relay = self._relay = Event(sim)
                relay._defused = True
            relay._value = target._value
            exception = target._exception
            relay._exception = exception
            if exception is not None:
                target._defused = True
            relay._state = TRIGGERED
            relay.callbacks.append(self._resume_cb)
            heappush(sim._heap, (sim._now, next(sim._seq), relay))
        else:
            self._target = target
            target.callbacks.append(self._resume_cb)


class Simulator:
    """The event loop: virtual clock plus a time-ordered event heap."""

    def __init__(self) -> None:
        self._now = 0.0
        # Heap entries are (time, seq, event).  Urgent events use negative
        # sequence numbers, which sort before every normal entry at the
        # same instant (and LIFO among themselves) without a separate
        # priority field — one tuple slot and one comparison fewer on
        # every push/pop than the classic 4-tuple layout.
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None
        #: Processes ever started via :meth:`process`.  The effect-capsule
        #: planner compares this against the cluster builder's baseline to
        #: detect background activity (traffic generators, watchdogs,
        #: chaos injectors) that per-fault replay could not reproduce.
        self.process_count = 0
        # Observability hook: components read ``sim.tracer`` to open
        # request spans and emit structured events.  The no-op default
        # keeps the event loop itself untouched — tracing costs nothing
        # unless a real repro.obs.trace.Tracer is installed.
        self.tracer: Any = NULL_TRACER
        # Telemetry hook: the fault-service path feeds per-fault
        # latencies to ``sim.sampler``; the no-op default keeps that a
        # single empty method call unless a real
        # repro.obs.telemetry.TelemetrySampler is installed.
        self.sampler: Any = NULL_SAMPLER

    def set_tracer(self, tracer: Any) -> Any:
        """Install ``tracer`` (a :class:`repro.obs.trace.Tracer` or the
        no-op default) and bind its clock to this simulator."""
        self.tracer = tracer
        tracer.bind(self)
        return tracer

    def set_sampler(self, sampler: Any) -> Any:
        """Install ``sampler`` (a
        :class:`repro.obs.telemetry.TelemetrySampler` or the no-op
        default) and bind it to this simulator's clock."""
        self.sampler = sampler
        sampler.bind(self)
        return sampler

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # -- event construction ---------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now with ``value``."""
        return Timeout(self, delay, value)

    def at(self, when: float, value: Any = None, seq: Optional[int] = None) -> Event:
        """An event firing at the absolute instant ``when`` with ``value``.

        The batch-replay fast paths use this to reconcile with the event
        kernel at precomputed boundaries: scheduling one event at an
        exact absolute time avoids re-deriving it from a chain of
        relative delays (whose float rounding the caller has already
        accumulated in the reference order).

        ``seq`` pins the heap tie-break rank instead of drawing a fresh
        one (see :meth:`claim_seq`): a fast path that parked a whole
        event chain on one far-future entry can re-enter the heap at the
        rank that chain claimed when it was created, so same-instant
        ties keep firing in the order the unbatched walk would produce.
        Two entries may share a rank only if their times differ.
        """
        if when < self._now:
            raise ValueError(f"at(when={when}) is in the past (now={self._now})")
        event = Event(self)
        event._state = TRIGGERED
        event._value = value
        heappush(self._heap, (when, next(self._seq) if seq is None else seq, event))
        return event

    def claim_seq(self) -> int:
        """Draw the next heap sequence number without scheduling anything.

        Paired with ``at(..., seq=...)``: callers that may later need to
        reschedule work at its original tie-break rank claim the rank up
        front, at the instant the event-driven equivalent would have
        entered the heap.
        """
        return next(self._seq)

    def every(
        self,
        interval: float,
        fn: Callable[[float], None],
        start: Optional[float] = None,
    ) -> Periodic:
        """Invoke ``fn(now)`` every ``interval`` seconds (first tick at
        ``start``, default ``now + interval``) until ``.stop()`` is
        called or the heap would otherwise drain.  Returns the
        :class:`Periodic` handle."""
        return Periodic(self, interval, fn, start=start)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start a new process running ``generator``."""
        self.process_count += 1
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event that fires when all of ``events`` fire."""
        return AllOf(self, events)

    # -- scheduling -------------------------------------------------------------
    def _schedule(self, event: Event, delay: float, urgent: bool = False) -> None:
        seq = -next(self._seq) if urgent else next(self._seq)
        heappush(self._heap, (self._now + delay, seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty event heap")
        when, _, event = heappop(self._heap)
        self._now = when
        event._process()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or the clock would pass ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if no event falls on that instant.
        """
        if until is not None and until < self._now:
            raise ValueError(f"run(until={until}) is in the past (now={self._now})")
        heap = self._heap
        pop = heappop
        try:
            if until is None:
                while heap:
                    when, _, event = pop(heap)
                    self._now = when
                    event._process()
            else:
                while heap and heap[0][0] <= until:
                    when, _, event = pop(heap)
                    self._now = when
                    event._process()
        except StopSimulation:
            return
        if until is not None:
            self._now = until

    def run_until_complete(self, process: Process, limit: float = float("inf")) -> Any:
        """Run until ``process`` terminates; return its value.

        Raises :class:`SimulationError` if the heap drains (or ``limit`` is
        reached) with the process still alive — a deadlock indicator.
        """
        heap = self._heap
        pop = heappop
        while process._state == PENDING:
            if not heap or heap[0][0] > limit:
                raise SimulationError(
                    f"simulation stalled at t={self._now} with process "
                    f"{process.name!r} still alive"
                )
            when, _, event = pop(heap)
            self._now = when
            event._process()
        if process._exception is not None:
            # Raising to the caller IS the observation: the completion
            # event is still queued, and without this it would re-raise
            # the stale failure out of the next run_until_complete().
            process._defused = True
        return process.value

    def stop(self) -> None:
        """Stop :meth:`run` from inside a callback or process."""
        raise StopSimulation()
