"""The pipelined datapath facade the pager and builder wire against.

One :class:`PagingPipeline` per :class:`~repro.core.client.RemoteMemoryPager`
bundles the write-behind queue and the adaptive prefetcher behind a
single object with shared observability: every pipeline counter
(coalesces, drain batches, prefetch hits, ...) lives in one
:class:`~repro.sim.Counter` registered as ``pipeline.*`` in the metrics
registry, and the queue-depth distribution as ``pipeline.queue_depth``.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Counter, Tally
from .prefetch import AdaptivePrefetcher
from .queue import PageoutQueue
from .spec import PipelineSpec

__all__ = ["PagingPipeline"]


class PagingPipeline:
    """Write-behind queue + prefetcher for one pager, per its spec."""

    def __init__(self, pager, spec: PipelineSpec):
        if not spec.enabled:
            raise ValueError(
                "PagingPipeline requires an enabled spec (window > 1 or "
                "prefetch > 0); the disabled spec means the synchronous path"
            )
        self.spec = spec
        self.counters = Counter()
        self.queue_depth = Tally()
        #: Seconds each entry sat queued before its transmission began —
        #: the queueing-delay distribution the health monitor's
        #: WARN_DELAY-style rule watches.
        self.queue_delay = Tally()
        self.queue: Optional[PageoutQueue] = (
            PageoutQueue(
                pager, spec, self.counters, self.queue_depth,
                queue_delay=self.queue_delay,
            )
            if spec.write_behind
            else None
        )
        self.prefetcher: Optional[AdaptivePrefetcher] = (
            AdaptivePrefetcher(pager, spec, self.counters)
            if spec.prefetch > 0
            else None
        )

    @property
    def pending(self) -> int:
        """Pageouts admitted but not yet settled (0 when queue is off)."""
        return self.queue.pending if self.queue is not None else 0

    def drain(self):
        """Generator: settle the queue and quiesce the prefetcher.

        The machine's end-of-run barrier: after this, every admitted
        pageout is durably placed (server or disk) and the prefetch cache
        is empty, so post-run integrity replay exercises the real remote
        paths.
        """
        if self.queue is not None:
            yield from self.queue.wait_idle()
        if self.prefetcher is not None:
            yield from self.prefetcher.quiesce()
