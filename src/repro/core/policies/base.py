"""The reliability-policy interface (§2.2).

A policy decides where each paged-out page goes, what redundant
information is kept, and how to reconstruct pages after a single server
crash.  The client pager (:class:`~repro.core.client.RemoteMemoryPager`)
is policy-agnostic: it hands pageouts/pageins to whatever policy it was
given, mirroring the paper's design where the same driver supports
no-reliability, mirroring, and parity logging.

All data movement goes through the shared
:class:`~repro.net.ProtocolStack`; every page-sized movement increments
the policy's ``transfers`` counter — the quantity the paper's
extrapolation model (§4.3) multiplies by the per-page protocol cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ...errors import PageNotFound, RecoveryError, ServerCrashed
from ...net.protocol import ProtocolStack
from ...sim import NULL_SPAN, Counter, Simulator
from ..server import MemoryServer

__all__ = ["ReliabilityPolicy"]


class ReliabilityPolicy:
    """Base class for pageout placement + redundancy schemes."""

    name = "abstract"
    #: Pages of remote memory consumed per page stored (1.0 = none extra).
    memory_overhead_factor = 1.0

    def __init__(
        self,
        client_host: str,
        stack: ProtocolStack,
        servers: Sequence[MemoryServer],
        page_size: int = 8192,
    ):
        if not servers:
            raise ValueError(f"{type(self).__name__} needs at least one server")
        self.client_host = client_host
        self.stack = stack
        self.sim: Simulator = stack.sim
        self.servers: List[MemoryServer] = list(servers)
        self.page_size = page_size
        self.counters = Counter()
        #: Optional ``(page_id, contents) -> bool`` installed by the pager
        #: (its end-to-end checksum ledger).  Recovery paths verify the
        #: bytes they are about to re-protect so at-rest rot elsewhere in
        #: a redundancy group fails *loudly* instead of being silently
        #: folded into the rebuilt copies and parity.
        self.page_verifier = None

    # -------------------------------------------------------- the interface
    def pageout(self, page_id: int, contents: Optional[bytes], span=NULL_SPAN):
        """Generator: persist one page with this policy's redundancy.

        ``span`` is the request's trace span; policies mark phase
        transitions on it (transfer, server, parity traffic) so each
        completed request carries its latency decomposition.
        """
        raise NotImplementedError

    def pagein(self, page_id: int, span=NULL_SPAN):
        """Generator: retrieve one page; returns its contents."""
        raise NotImplementedError

    def holds(self, page_id: int) -> bool:
        """Does the policy currently have a copy of ``page_id``?"""
        raise NotImplementedError

    def release(self, page_id: int) -> None:
        """The page is dead; its backing copies may be freed."""

    def recover(self, crashed: MemoryServer):
        """Generator: reconstruct every page lost with ``crashed``.

        Runs after a crash has been detected; on return, every page the
        policy held must again be retrievable (and, for redundant
        policies, re-protected).  Raises :class:`RecoveryError` when the
        policy cannot reconstruct (e.g. NO RELIABILITY).
        """
        raise NotImplementedError

    def scrub_page(self, page_id: int, verify, span=NULL_SPAN):
        """Generator: rebuild a clean copy of a page that failed its
        end-to-end checksum (at-rest bit-rot on a server).

        ``verify(candidate_bytes)`` returns True when a candidate matches
        the checksum the pager recorded at pageout.  A policy with
        redundancy reconstructs the page from it, re-stores the clean
        bytes over the rotted copy, and returns them; the base returns
        None — no redundancy, nothing to repair from — and the pager
        raises :class:`~repro.errors.PageCorrupted`.
        """
        return None
        yield  # pragma: no cover - makes this a generator

    def _recovery_verify(self, page_id: int, contents: Optional[bytes]) -> None:
        """Refuse to re-protect bytes that fail the pager's checksum.

        Without this, recovering a crash whose redundancy group also
        contains an undetected rotted page would XOR (or copy) the rot
        into the rebuilt page *and* the refreshed parity — after which
        the group is self-consistently wrong and no scrub can repair it.
        """
        if self.page_verifier is None or contents is None:
            return
        if not self.page_verifier(page_id, contents):
            raise RecoveryError(
                f"reconstructed page {page_id} failed its end-to-end "
                "checksum: a second fault (at-rest rot) is hiding in its "
                "redundancy group"
            )

    @property
    def transfers(self) -> int:
        """Page-sized network movements so far (pageins + pageouts +
        redundancy traffic + recovery traffic)."""
        return self.counters["transfers"]

    # ---------------------------------------------------------- primitives
    def _send_page(self, server: MemoryServer, key: object, contents,
                   span=NULL_SPAN, label: str = "transfer"):
        """Generator: one client->server page transfer plus server store."""
        yield from self.stack.send_page(
            self.client_host, server.host.name, self.page_size,
            span=span, label=label,
        )
        self.counters.add("transfers")
        span.phase("server")
        yield from server.store(key, contents)

    def _fetch_page(self, server: MemoryServer, key: object,
                    span=NULL_SPAN, label: str = "transfer"):
        """Generator: one server->client page transfer; returns contents."""
        span.phase("server")
        try:
            contents = yield from server.fetch(key)
        except PageNotFound:
            # The server is alive but denies a page our placement says it
            # holds: post-reboot amnesia (a flap that evaded the watchdog,
            # or a demand read racing the recovery that is re-homing this
            # server's pages).  The copy is gone exactly as if the server
            # were down — surface crash semantics so the pager runs (or
            # waits out) recovery and retries.
            raise ServerCrashed(server.name) from None
        yield from self.stack.fetch_page(
            self.client_host, server.host.name, self.page_size,
            span=span, label=label,
        )
        self.counters.add("transfers")
        return contents

    def _live_servers(self) -> List[MemoryServer]:
        return [s for s in self.servers if s.is_alive]

    def _require_live(self, server: MemoryServer) -> None:
        if not server.is_alive:
            raise ServerCrashed(server.name)
