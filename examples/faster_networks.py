#!/usr/bin/env python3
"""Faster networks: the paper's Figure 4 extrapolation, plus validation.

Decomposes an FFT run into utime / systime / inittime / pptime / btime
(§4.3), predicts completion on 2x/5x/10x/100x networks with the paper's
formula, and — something the 1996 authors could not do — checks the 10x
prediction against a directly simulated 100 Mbit/s switched network.

Run:  python examples/faster_networks.py
"""

from repro import Fft, build_cluster, fast_network
from repro.analysis import all_memory_bound, decompose
from repro.experiments import PAPER_CONFIGS


def main() -> None:
    workload_mb = 24.0

    cluster = build_cluster(**PAPER_CONFIGS["parity-logging"])
    report = cluster.run(Fft.from_megabytes(workload_mb))
    d = decompose(report)
    print(d.summary())
    print(f"paging overhead on the 10 Mbit/s Ethernet: "
          f"{d.paging_overhead_fraction:.1%}\n")

    print("predicted completion time on faster networks (§4.3 formula):")
    for factor in (2, 5, 10, 100):
        predicted = d.predicted_etime(factor)
        cpu_floor = all_memory_bound(d)
        overhead = 1 - cpu_floor / predicted
        print(f"  {factor:4d}x bandwidth: {predicted:7.2f}s "
              f"(paging overhead {overhead:.1%})")
    print(f"  all-memory bound: {all_memory_bound(d):7.2f}s\n")

    # Validate the 10x prediction by actually simulating the network.
    fast = build_cluster(
        **{**PAPER_CONFIGS["parity-logging"], "switched_spec": fast_network(10)}
    )
    fast_report = fast.run(Fft.from_megabytes(workload_mb))
    predicted = d.predicted_etime(10)
    error = abs(fast_report.etime - predicted) / fast_report.etime
    print(f"simulated 100 Mbit/s switched network: {fast_report.etime:.2f}s")
    print(f"paper-style prediction:                {predicted:.2f}s "
          f"({error:.1%} off the simulation)")


if __name__ == "__main__":
    main()
