"""Unreliable-network decorator: loss, corruption, duplication, delay.

:class:`UnreliableNetwork` wraps any :class:`~repro.net.base.Network` and
injects the failure modes a real shared Ethernet produces (and the paper's
TCP transport masks): silent message drops, frames damaged on the wire,
duplicated deliveries, and extra queueing delay.  Transient link
partitions reuse the base network's §2.2 partition machinery via
:meth:`partition_for`.

Design rules:

* Fault decisions draw from a **dedicated RNG stream** (``faults.network``
  in the cluster's :class:`~repro.sim.rng.RngRegistry`), never from the
  workload's streams — enabling faults cannot perturb workload
  determinism, and the same plan + seed always yields the same schedule.
* Every transfer draws the same number of variates regardless of which
  faults are enabled, so changing one rate mid-run (a loss burst) does not
  shift the schedule of the other fault kinds.
* A *dropped* message still occupies the wire (the frames were sent; the
  receiver just never saw a good ACK) — only the caller's completion
  event is withheld.  That is why this decorator must only be installed
  together with a :class:`~repro.net.protocol.RetrySpec`: without a
  retry timer a drop would block the sender forever.
* A *corrupted* message is delivered but flagged, modelling a frame the
  transport checksum will reject; the protocol stack counts it and
  resends.  Corruption that redundancy must repair (at-rest bit-rot) is
  injected by :class:`~repro.faults.integrity.CorruptionInjector` instead
  — see DESIGN.md "Fault model" for why the two are kept distinct.
"""

from __future__ import annotations

from typing import Optional

from ..net.base import Network
from ..sim import Counter, Event

__all__ = ["UnreliableNetwork", "CorruptedDelivery"]

_RATE_FIELDS = ("drop_rate", "corrupt_rate", "duplicate_rate", "delay_rate")


class CorruptedDelivery:
    """Wraps a delivered message that was damaged on the wire."""

    __slots__ = ("message",)
    corrupted = True

    def __init__(self, message: object):
        self.message = message


class UnreliableNetwork:
    """Fault-injecting decorator over a concrete network.

    Not a :class:`Network` subclass: it owns no stations and delegates
    everything except :meth:`transfer` (attach, partition, stats, spec,
    ...) to the wrapped instance, so installing it is a pure swap of the
    protocol stack's ``network`` reference.
    """

    def __init__(
        self,
        inner: Network,
        rng,
        drop_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_rate: float = 0.0,
        max_extra_delay: float = 2e-3,
    ):
        for name, value in zip(
            _RATE_FIELDS, (drop_rate, corrupt_rate, duplicate_rate, delay_rate)
        ):
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1): {value}")
        if max_extra_delay < 0:
            raise ValueError(f"negative max_extra_delay: {max_extra_delay}")
        self.inner = inner
        self.sim = inner.sim
        self.rng = rng
        self.drop_rate = drop_rate
        self.corrupt_rate = corrupt_rate
        self.duplicate_rate = duplicate_rate
        self.delay_rate = delay_rate
        self.max_extra_delay = max_extra_delay
        self.counters = Counter()
        if any((drop_rate, corrupt_rate, duplicate_rate, delay_rate)):
            # Chaos campaigns pin frame-level digests; keep the wrapped
            # network off its analytic fast path so fault timing lands on
            # the exact event sequence those digests were recorded from.
            if getattr(inner, "analytic", None):
                inner.analytic = False

    def __getattr__(self, name: str):
        # Everything not overridden here (attach, partition, heal, stats,
        # spec, hosts, ...) behaves exactly as on the wrapped network.
        return getattr(self.inner, name)

    # ------------------------------------------------------------- faults
    def transfer(self, src: str, dst: str, nbytes: int) -> Event:
        """Send with faults applied; the returned event may never fire."""
        rng = self.rng
        # One fixed-shape block of draws per transfer (see module docstring).
        u_drop = rng.random()
        u_corrupt = rng.random()
        u_dup = rng.random()
        u_delay = rng.random()
        # The delay magnitude is drawn unconditionally: a conditional
        # draw would shift every later decision whenever delay_rate (or
        # a drop's early return) changed, breaking fault-kind isolation.
        u_magnitude = rng.random()
        inner_done = self.inner.transfer(src, dst, nbytes)
        if u_dup < self.duplicate_rate:
            # The duplicate burns wire time and stats; nobody waits on it.
            self.counters.add("duplicates")
            self.sim.tracer.emit("faults", "duplicate", src=src, dst=dst)
            self.inner.transfer(src, dst, nbytes)
        if u_drop < self.drop_rate:
            # The frames still cross the wire (inner transfer proceeds),
            # but the caller's completion event is withheld forever: only
            # an RPC timer can notice this.
            self.counters.add("drops")
            self.sim.tracer.emit(
                "faults", "drop", src=src, dst=dst, nbytes=nbytes
            )
            return self.sim.event()
        corrupted = u_corrupt < self.corrupt_rate
        extra = u_magnitude * self.max_extra_delay if u_delay < self.delay_rate else 0.0
        if not corrupted and extra == 0.0:
            return inner_done
        if corrupted:
            self.counters.add("wire_corruptions")
            self.sim.tracer.emit("faults", "corrupt", src=src, dst=dst)
        if extra > 0.0:
            self.counters.add("delays")
            self.sim.tracer.emit(
                "faults", "delay", src=src, dst=dst, extra=extra
            )
        outer = self.sim.event()

        def relay(event: Event) -> None:
            value = CorruptedDelivery(event.value) if corrupted else event.value
            if extra > 0.0:
                late = self.sim.timeout(extra)
                late.callbacks.append(lambda _late: outer.succeed(value))
            else:
                outer.succeed(value)

        if inner_done.processed:  # pragma: no cover - networks deliver async
            relay(inner_done)
        else:
            inner_done.callbacks.append(relay)
        return outer

    # --------------------------------------------------------- partitions
    def partition_for(self, segment, duration: float):
        """Generator: cut ``segment`` off for ``duration``, then heal.

        Reuses the base network's §2.2 stall-don't-fail semantics; with a
        retry spec installed, sends that out-wait their budget surface
        :class:`~repro.errors.RequestTimeout` instead of blocking forever.
        """
        if duration <= 0:
            raise ValueError(f"partition duration must be positive: {duration}")
        self.counters.add("link_partitions")
        self.inner.partition(segment)
        yield self.sim.timeout(duration)
        self.inner.heal()
