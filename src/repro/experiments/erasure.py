"""Redundancy spectrum: what each reliability policy pays per crash
tolerated (beyond the paper).

The paper's §2.2 trade-off matrix weighs runtime, memory, and recovery
overhead across its five policies — all of which tolerate at most one
server crash.  The erasure-coded ``ec-K-M`` family (PR 8) breaks that
ceiling: a Reed-Solomon ``(k, m)`` stripe survives any ``m`` concurrent
failures while shipping only ``(k + m) / k`` page-equivalents per
pageout.  This experiment runs the whole family over one workload and
plots the spectrum — transfer overhead vs crashes tolerated — that the
resilience campaigns then validate under real fault schedules:
mirroring pays 2.0x to tolerate one crash, ec-4-2 pays 1.5x to
tolerate two.

``write-through`` is the odd point: its backing disk copy survives any
number of *server* crashes, so its tolerance is bounded by the client's
disk, not the pool — the table reports it as ``disk`` and the chart
pins it at the pool size.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..analysis.charts import ascii_chart
from ..analysis.report import format_table
from ..config import MachineSpec, SwitchedNetworkSpec
from ..runner import RunSpec, default_runner

__all__ = ["SPECTRUM_POLICIES", "run_spectrum", "render_spectrum"]

SPECTRUM_POLICIES = (
    "no-reliability",
    "write-through",
    "mirroring",
    "parity",
    "parity-logging",
    "ec-2-1",
    "ec-4-2",
    "ec-6-3",
)

#: Same small machine as the resilience campaigns: every policy pages
#: the identical reference stream, so transfer counts are comparable.
_SMALL = MachineSpec(
    name="spectrum-small",
    ram_bytes=2 * 1024 * 1024,
    kernel_resident_bytes=1 * 1024 * 1024,
    page_size=8192,
)

_WORKLOAD = ("sequential-scan", dict(n_pages=400, passes=3, write=True))

#: Paper-scale configuration: the default 32 MB DEC Alpha running GAUSS
#: (the paper's most paging-dominated benchmark) over the switched
#: full-duplex network, with telemetry on so every pagein's latency
#: lands in the ``telemetry.pager.pagein`` log-histogram.
_PAPER_WORKLOAD = ("gauss", {})
_PAPER_TELEMETRY_INTERVAL = 1.0


def _n_servers(policy: str) -> int:
    """Mirror the resilience experiment's pool sizing (rebuild slack)."""
    from ..core.policies import parse_ec_policy

    shape = parse_ec_policy(policy)
    if shape is not None:
        return max(2 * (shape[0] + shape[1]), 8)
    return 4


def crashes_tolerated(policy: str, n_servers: int) -> Optional[int]:
    """Concurrent server crashes the policy survives without data loss.

    ``None`` encodes write-through's disk-backed "all of them" — its
    tolerance is not a property of the remote pool.
    """
    from ..core.policies import parse_ec_policy

    shape = parse_ec_policy(policy)
    if shape is not None:
        return shape[1]
    return {
        "no-reliability": 0,
        "mirroring": 1,
        "parity": 1,
        "parity-logging": 1,
        "write-through": None,
    }[policy]


def _hist_mean(metrics: Dict[str, object], prefix: str) -> float:
    """Estimated mean of a snapshotted LogHistogram, in its own units.

    The histogram keeps bucket counts, not a sum, so the mean is
    estimated at each bucket's geometric midpoint — within a factor of
    ``sqrt(growth)`` of the true mean by construction, far tighter in
    practice because pagein latencies cluster in a few buckets.
    """
    count = metrics.get(f"{prefix}.count", 0)
    if not count:
        return 0.0
    growth = float(metrics.get(f"{prefix}.growth", 0.0) or 0.0)
    buckets = metrics.get(f"{prefix}.buckets") or {}
    if growth <= 1.0:
        return 0.0
    total = sum(
        growth ** (int(index) + 0.5) * n for index, n in buckets.items()
    )
    return total / count


def run_spectrum(
    policies: Iterable[str] = SPECTRUM_POLICIES,
    runner=None,
    paper_scale: bool = False,
) -> Dict[str, Dict[str, object]]:
    """Fault-free sweep; returns per-policy overhead/tolerance numbers.

    Transfers are *page-equivalents*: an erasure-coded fragment counts
    as ``fragment_size / page_size`` of a page, so the overhead column
    is directly the ``(k + m) / k`` expansion (plus pagein traffic,
    which every policy ships at 1.0x).

    ``paper_scale`` swaps the small reference machine for the paper's
    default configuration — the 32 MB DEC Alpha running GAUSS over the
    switched network — with telemetry enabled, and adds per-policy
    pagein latency percentiles (``pagein_latency``, milliseconds, from
    the ``telemetry.pager.pagein`` histogram) to each cell.  This is
    the view where fragment fan-out earns its keep: the overhead column
    says what each policy *ships*, the latency columns say what the
    client *waits*.
    """
    from ..core.policies import parse_ec_policy

    policies = list(policies)
    if paper_scale:
        workload, workload_kwargs = _PAPER_WORKLOAD
        page_size = 8192
        overrides = dict(
            content_mode=True,
            seed=3,
            switched_spec=SwitchedNetworkSpec(),
            telemetry_interval=_PAPER_TELEMETRY_INTERVAL,
            server_capacity_pages=4000,
        )
    else:
        workload, workload_kwargs = _WORKLOAD
        page_size = _SMALL.page_size
        overrides = dict(
            machine_spec=_SMALL,
            content_mode=True,
            seed=3,
            server_capacity_pages=600,
        )
    specs = [
        RunSpec.make(
            workload,
            policy,
            workload_kwargs=workload_kwargs,
            overrides=dict(overrides, n_servers=_n_servers(policy)),
            label=f"spectrum/{'paper' if paper_scale else 'small'}/{policy}",
        )
        for policy in policies
    ]
    results: Dict[str, Dict[str, object]] = {}
    for policy, result in zip(policies, (runner or default_runner()).run(specs)):
        metrics = result.report.meta.get("metrics", {})
        transfers = float(metrics.get("policy.transfers", 0))
        shape = parse_ec_policy(policy)
        if shape is not None:
            fragment_size = -(-page_size // shape[0])
            transfers += (
                metrics.get("policy.fragment_transfers", 0)
                * fragment_size
                / page_size
            )
        paging_ops = metrics.get("policy.pageouts", 0) + metrics.get(
            "policy.pageins", 0
        )
        n_servers = _n_servers(policy)
        results[policy] = {
            "etime": result.report.etime,
            "transfers": round(transfers, 2),
            "paging_ops": paging_ops,
            "transfer_overhead": round(transfers / paging_ops, 3)
            if paging_ops
            else 0.0,
            "crashes_tolerated": crashes_tolerated(policy, n_servers),
            "n_servers": n_servers,
        }
        prefix = "telemetry.pager.pagein"
        if f"{prefix}.__hist__" in metrics:
            results[policy]["pagein_latency"] = {
                "count": metrics.get(f"{prefix}.count", 0),
                # Histogram samples are simulated seconds; report ms.
                "p50_ms": round(metrics.get(f"{prefix}.p50", 0.0) * 1e3, 3),
                "p95_ms": round(metrics.get(f"{prefix}.p95", 0.0) * 1e3, 3),
                "p99_ms": round(metrics.get(f"{prefix}.p99", 0.0) * 1e3, 3),
                "mean_ms": round(_hist_mean(metrics, prefix) * 1e3, 3),
            }
    return results


def render_spectrum(results: Dict[str, Dict[str, object]]) -> str:
    """Table + ASCII figure: transfer overhead vs crashes tolerated.

    Paper-scale results (built with ``run_spectrum(paper_scale=True)``)
    carry pagein latency percentiles; the table grows p50/p95/p99
    columns so the redundancy-vs-latency trade reads off one view.
    """
    with_latency = any("pagein_latency" in cell for cell in results.values())
    rows = []
    for policy, cell in results.items():
        tolerated = cell["crashes_tolerated"]
        row = [
            policy,
            "disk" if tolerated is None else str(tolerated),
            f"{cell['transfer_overhead']:.2f}x",
            f"{cell['transfers']:.0f}",
            str(cell["n_servers"]),
            f"{cell['etime']:.2f}",
        ]
        if with_latency:
            latency = cell.get("pagein_latency")
            if latency:
                row += [
                    f"{latency['p50_ms']:.2f}",
                    f"{latency['p95_ms']:.2f}",
                    f"{latency['p99_ms']:.2f}",
                ]
            else:
                row += ["-", "-", "-"]
        rows.append(row)
    headers = [
        "policy",
        "crashes tolerated",
        "wire overhead",
        "page-equiv transfers",
        "servers",
        "etime (s)",
    ]
    if with_latency:
        headers += ["pagein p50 (ms)", "p95 (ms)", "p99 (ms)"]
        title = (
            "Redundancy spectrum at paper scale: transfer cost and pagein "
            "latency per crash tolerated (GAUSS, 32 MB Alpha, switched net)"
        )
    else:
        title = (
            "Redundancy spectrum: transfer cost per crash tolerated "
            "(sequential scan, 400 pages x 3 passes, fault-free)"
        )
    table = format_table(headers, rows, title=title)
    series = {}
    for policy, cell in results.items():
        tolerated = cell["crashes_tolerated"]
        x = float(cell["n_servers"] if tolerated is None else tolerated)
        series[policy] = [(x, float(cell["transfer_overhead"]))]
    chart = ascii_chart(
        series,
        width=56,
        height=14,
        title="wire overhead (x, per paging op) vs crashes tolerated",
        x_label="crashes tolerated (write-through pinned at pool size)",
        y_label="overhead",
    )
    return f"{table}\n\n{chart}"
