"""Reliability policies (§2.2): none, mirroring, parity, parity logging,
write-through, plus the erasure-coded family (``ec-K-M``)."""

from .base import ReliabilityPolicy
from .erasure import ErasureCoding, PlacementGroupManager, parse_ec_policy
from .mirroring import Mirroring
from .none import NoReliability
from .parity import BasicParity
from .parity_logging import ParityLogging
from .write_through import WriteThrough

__all__ = [
    "ReliabilityPolicy",
    "NoReliability",
    "Mirroring",
    "BasicParity",
    "ParityLogging",
    "WriteThrough",
    "ErasureCoding",
    "PlacementGroupManager",
    "parse_ec_policy",
]
