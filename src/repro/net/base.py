"""Network abstractions shared by the Ethernet and switched models.

A network moves *messages* (byte blobs with a source and destination host
name) and exposes one operation to the rest of the system::

    done_event = network.transfer(src, dst, nbytes)

The event fires when the last byte arrives.  Both concrete networks
(:class:`~repro.net.ethernet.EthernetCsmaCd` and
:class:`~repro.net.switched.SwitchedNetwork`) fragment messages into
MTU-sized frames internally and account per-host statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..sim import Counter, Event, Simulator, Tally, UtilizationTracker

__all__ = ["Message", "NetworkStats", "Network"]

_MESSAGE_IDS = iter(range(1, 1 << 62))


@dataclass
class Message:
    """One network message: a block of bytes from ``src`` to ``dst``."""

    src: str
    dst: str
    nbytes: int
    msg_id: int = field(default_factory=lambda: next(_MESSAGE_IDS))
    enqueued_at: float = 0.0

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError(f"message must carry at least one byte: {self.nbytes}")
        if self.src == self.dst:
            raise ValueError(f"message to self: {self.src!r}")


class NetworkStats:
    """Per-network counters: frames, collisions, latency, busy fraction."""

    def __init__(self, sim: Simulator):
        self._sim = sim
        self.counters = Counter()
        self.message_latency = Tally()
        self.wire = UtilizationTracker(now=sim.now)
        #: Optional hook a network installs to settle lazily-deferred
        #: wire accounting before anyone reads utilisation (the analytic
        #: Ethernet fast path defers its busy/idle marks — see
        #: ``repro.net.ethernet``).
        self._pre_read = None

    def delivered(self, message: Message) -> None:
        """Account one delivered message (counters + latency tally)."""
        self.counters.add("messages")
        self.counters.add("bytes", message.nbytes)
        self.message_latency.observe(self._sim.now - message.enqueued_at)

    def utilization(self) -> float:
        """Fraction of elapsed time the wire carried bits."""
        if self._pre_read is not None:
            self._pre_read()
        return self.wire.utilization(self._sim.now)

    def busy_seconds(self) -> float:
        """Cumulative seconds the wire carried bits (settles lazy
        accounting first) — telemetry differentiates this into windowed
        wire utilisation."""
        if self._pre_read is not None:
            self._pre_read()
        return self.wire.busy_seconds(self._sim.now)


class Network:
    """Base class: host registry plus the transfer interface.

    Partitions (§2.2): "Another cause of failure may be a network problem
    (e.g. network partitioning due to a bridge failure).  In this case,
    the client can not retrieve its pages from the servers.  As a result
    it remains blocked waiting for the network to recover."  A network
    can be :meth:`partition`-ed into segments; transfers that would cross
    the cut stall (without failing) until :meth:`heal` is called.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.stats = NetworkStats(sim)
        self._hosts: Dict[str, object] = {}
        self._partition: Optional[frozenset] = None
        self._heal_waiters: list = []

    @property
    def hosts(self) -> tuple:
        """Names of attached hosts."""
        return tuple(self._hosts)

    def attach(self, host: str) -> None:
        """Register ``host`` on the network.  Idempotent."""
        if host not in self._hosts:
            self._hosts[host] = self._make_station(host)

    def detach(self, host: str) -> None:
        """Remove ``host`` (e.g. a crashed workstation)."""
        self._hosts.pop(host, None)

    def is_attached(self, host: str) -> bool:
        """Whether ``host`` is registered on this network."""
        return host in self._hosts

    def transfer(self, src: str, dst: str, nbytes: int) -> Event:
        """Send ``nbytes`` from ``src`` to ``dst``; event fires on delivery."""
        raise NotImplementedError

    def _make_station(self, host: str) -> object:
        raise NotImplementedError

    def _require(self, host: str) -> object:
        try:
            return self._hosts[host]
        except KeyError:
            raise KeyError(f"host {host!r} is not attached to this network") from None

    # ---------------------------------------------------------- partitions
    @property
    def is_partitioned(self) -> bool:
        return self._partition is not None

    def partition(self, segment) -> None:
        """Split the network: hosts in ``segment`` can only reach each
        other; everyone else can only reach everyone else."""
        self._partition = frozenset(segment)
        self.stats.counters.add("partitions")
        self.sim.tracer.emit("net", "partition", segment=sorted(self._partition))

    def heal(self) -> None:
        """Repair the partition; stalled transfers resume immediately."""
        self._partition = None
        waiters, self._heal_waiters = self._heal_waiters, []
        self.sim.tracer.emit("net", "heal", stalled=len(waiters))
        for waiter in waiters:
            waiter.succeed()

    def _crosses_partition(self, src: str, dst: str) -> bool:
        if self._partition is None:
            return False
        return (src in self._partition) != (dst in self._partition)

    def _await_reachable(self, src: str, dst: str):
        """Generator: block while ``src``/``dst`` are on opposite sides.

        This is the §2.2 behaviour: a partition does not crash anything;
        the client just waits for the network to recover.
        """
        while self._crosses_partition(src, dst):
            waiter = Event(self.sim)
            self._heal_waiters.append(waiter)
            yield waiter
