"""At-rest bit-rot, scrub repair, and the end-to-end integrity checker."""

import pytest

from repro.core import build_cluster
from repro.errors import PageCorrupted
from repro.faults import CorruptionInjector, check_page_integrity
from repro.vm import page_bytes
from repro.vm.page import corrupt_bytes, page_checksum

PAGE = 8192

RELIABLE = ["mirroring", "parity", "parity-logging", "write-through"]


def cluster_for(policy, **kwargs):
    defaults = dict(n_servers=4, content_mode=True, server_capacity_pages=256)
    if policy == "parity-logging":
        defaults["overflow_fraction"] = 0.25
    defaults.update(kwargs)
    return build_cluster(policy=policy, **defaults)


def drive(cluster, gen):
    def body(gen):
        result = yield from gen
        return result

    return cluster.sim.run_until_complete(cluster.sim.process(body(gen)))


def pageout_all(cluster, pages):
    for page_id, version in pages.items():
        drive(
            cluster,
            cluster.pager.pageout(page_id, page_bytes(page_id, version, PAGE)),
        )


def rot_some(cluster, n_pages):
    injector = CorruptionInjector(cluster.rngs.stream("faults.corruption"))
    rotted = 0
    for server in cluster.servers:
        if rotted >= n_pages:
            break
        rotted += injector.corrupt_stored(server, n_pages - rotted)
    return injector, rotted


def test_corrupt_bytes_changes_payload_deterministically():
    import random

    original = page_bytes(1, 1, PAGE)
    rotted = corrupt_bytes(original, random.Random(5))
    again = corrupt_bytes(original, random.Random(5))
    assert rotted != original
    assert len(rotted) == len(original)
    assert rotted == again
    assert page_checksum(rotted) != page_checksum(original)


def test_injector_skips_parity_keys():
    cluster = cluster_for("parity")
    pageout_all(cluster, {p: 1 for p in range(12)})
    injector = CorruptionInjector(cluster.rngs.stream("faults.corruption"))
    for server in [*cluster.servers, cluster.parity_server]:
        for key in injector.candidates(server):
            assert not (isinstance(key, tuple) and key and key[0] == "parity")


def test_injector_validation():
    import random

    with pytest.raises(ValueError, match="bit flip"):
        CorruptionInjector(random.Random(0), flips=0)
    cluster = cluster_for("mirroring")
    with pytest.raises(ValueError, match="at least one page"):
        CorruptionInjector(random.Random(0)).corrupt_stored(
            cluster.servers[0], 0
        )


@pytest.mark.parametrize("policy", RELIABLE)
def test_scrub_repairs_rot_through_redundancy(policy):
    """A rotted page fails its pageout checksum at pagein; the policy
    rebuilds the clean bytes from redundancy and re-stores them."""
    cluster = cluster_for(policy)
    pages = {p: 1 for p in range(24)}
    pageout_all(cluster, pages)
    _, rotted = rot_some(cluster, 3)
    assert rotted == 3
    for page_id, version in pages.items():
        got = drive(cluster, cluster.pager.pagein(page_id))
        assert got == page_bytes(page_id, version, PAGE), f"page {page_id}"
    # Mirroring may rot a *non-preferred* replica, which pagein never
    # reads — so scrubs can be fewer than rots, but never zero here.
    assert 1 <= cluster.pager.counters["scrub_recoveries"] <= 3
    assert cluster.pager.counters["corrupt_unrepaired"] == 0


def test_no_reliability_rot_raises_page_corrupted():
    cluster = cluster_for("no-reliability")
    pages = {p: 1 for p in range(24)}
    pageout_all(cluster, pages)
    injector, rotted = rot_some(cluster, 1)
    assert rotted == 1
    victims = 0
    for page_id in pages:
        try:
            got = drive(cluster, cluster.pager.pagein(page_id))
        except PageCorrupted:
            victims += 1
            continue
        assert got == page_bytes(page_id, 1, PAGE)
    assert victims == 1


@pytest.mark.parametrize("policy", RELIABLE)
def test_check_page_integrity_clean_after_scrub(policy):
    cluster = cluster_for(policy)
    pageout_all(cluster, {p: 1 for p in range(24)})
    rot_some(cluster, 2)
    report = check_page_integrity(cluster)
    assert report.clean
    assert report.verdict == "CLEAN"
    assert report.verified == report.checked > 0


def test_check_page_integrity_reports_corruption():
    cluster = cluster_for("no-reliability")
    pageout_all(cluster, {p: 1 for p in range(24)})
    rot_some(cluster, 2)
    report = check_page_integrity(cluster)
    assert not report.clean
    assert len(report.corrupted) == 2
    assert report.verdict == "LOSSY(lost=0,corrupt=2)"
    payload = report.as_dict()
    assert payload["corrupted"] == report.corrupted


def test_check_page_integrity_reports_loss():
    cluster = cluster_for("no-reliability")
    pageout_all(cluster, {p: 1 for p in range(24)})
    cluster.servers[0].crash()
    report = check_page_integrity(cluster)
    assert not report.clean
    assert report.lost and all(reason for _, reason in report.lost)
    assert report.verdict.startswith("LOSSY(lost=")
