"""Figure 1: idle cluster memory over a week."""

from repro.experiments import render_fig1, run_fig1


def test_fig1_idle_memory(benchmark, once):
    results = once(benchmark, run_fig1)
    print("\n" + render_fig1(results))
    summary = results["summary"]
    # The paper's Figure 1 envelope.
    assert summary["min_mb"] >= 300
    assert summary["max_mb"] > 700
    assert results["off_hours_mean_mb"] > results["business_hours_mean_mb"]
    assert results["business_hours_mean_mb"] >= 400
