"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's figures/tables and prints
the measured-vs-paper comparison (run with ``-s`` to see the tables).
The simulations are deterministic, so a single round is meaningful; the
benchmark timing itself measures the simulator's wall-clock cost.

pytest-benchmark is optional: when its plugin is not active (package
missing, ``-p no:benchmark``, or plugin autoload disabled) a stand-in
``benchmark`` fixture skips every benchmark instead of erroring the
whole directory out of collection.
"""

import pytest


class _BenchmarkUnavailable:
    """Fallback plugin: a ``benchmark`` fixture that skips its test."""

    @pytest.fixture
    def benchmark(self):
        pytest.skip("pytest-benchmark is not installed")


def pytest_configure(config):
    if not config.pluginmanager.hasplugin("benchmark"):
        config.pluginmanager.register(_BenchmarkUnavailable(), "benchmark-fallback")


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
