"""Watchdog tests: proactive crash detection from report silence."""

import pytest

from repro.core import build_cluster
from repro.core.load_reports import ClusterView, LoadReporter
from repro.core.watchdog import Watchdog
from repro.vm import page_bytes

PAGE = 8192
INTERVAL = 2.0


def make_watched_cluster(policy="parity-logging"):
    kwargs = dict(n_servers=4, content_mode=True, server_capacity_pages=128)
    if policy == "parity-logging":
        kwargs["overflow_fraction"] = 0.25
    cluster = build_cluster(policy=policy, **kwargs)
    view = ClusterView(cluster.sim)
    reporters = [
        LoadReporter(s, "client", view, interval=INTERVAL) for s in cluster.servers
    ]
    watchdog = Watchdog(cluster.pager, view, report_interval=INTERVAL)
    return cluster, view, watchdog


def drive(cluster, gen):
    def body(gen):
        result = yield from gen
        return result

    return cluster.sim.run_until_complete(cluster.sim.process(body(gen)))


def test_silence_triggers_proactive_recovery():
    cluster, view, watchdog = make_watched_cluster()
    for page_id in range(16):
        drive(cluster, cluster.pager.pageout(page_id, page_bytes(page_id, 1, PAGE)))
    cluster.sim.run(until=cluster.sim.now + 3 * INTERVAL)  # reports flowing
    victim = cluster.servers[0]
    victim.crash()
    # Without any client request, the watchdog notices the silence.
    cluster.sim.run(until=cluster.sim.now + 6 * INTERVAL)
    assert watchdog.detections and watchdog.detections[0][1] == victim.name
    assert cluster.pager.counters["recoveries"] == 1
    # Redundancy already restored: every page retrievable.
    for page_id in range(16):
        got = drive(cluster, cluster.pager.pagein(page_id))
        assert got == page_bytes(page_id, 1, PAGE)


def test_healthy_servers_never_declared():
    cluster, view, watchdog = make_watched_cluster()
    cluster.sim.run(until=20 * INTERVAL)
    assert watchdog.detections == []
    assert cluster.pager.counters["recoveries"] == 0


def test_detection_latency_bounded():
    cluster, view, watchdog = make_watched_cluster()
    cluster.sim.run(until=3 * INTERVAL)
    crash_time = cluster.sim.now
    cluster.servers[1].crash()
    cluster.sim.run(until=crash_time + 10 * INTERVAL)
    assert len(watchdog.detections) == 1
    detected_at = watchdog.detections[0][0]
    # Silence threshold (3 intervals) plus one polling interval of slack.
    assert detected_at - crash_time <= (watchdog.suspect_after + 1.5) * INTERVAL


def test_watchdog_stop():
    cluster, view, watchdog = make_watched_cluster()
    cluster.sim.run(until=2 * INTERVAL)
    watchdog.stop()
    cluster.servers[0].crash()
    cluster.sim.run(until=cluster.sim.now + 8 * INTERVAL)
    assert watchdog.detections == []


def test_unrecoverable_policy_is_noted_not_fatal():
    cluster = build_cluster(policy="no-reliability", n_servers=2)
    view = ClusterView(cluster.sim)
    reporters = [
        LoadReporter(s, "client", view, interval=INTERVAL) for s in cluster.servers
    ]
    watchdog = Watchdog(cluster.pager, view, report_interval=INTERVAL)
    cluster.sim.run(until=3 * INTERVAL)
    cluster.servers[0].crash()
    cluster.sim.run(until=cluster.sim.now + 8 * INTERVAL)  # must not raise
    assert watchdog.detections


def test_watchdog_validation():
    cluster, view, _ = make_watched_cluster()
    with pytest.raises(ValueError):
        Watchdog(cluster.pager, view, report_interval=0)
    with pytest.raises(ValueError):
        Watchdog(cluster.pager, view, report_interval=1.0, suspect_after=1.0)


def test_flapping_server_rearms_and_is_redetected():
    """Regression (ISSUE 3 satellite): a server that reboots and reports
    again re-arms its latch, so a *second* crash is detected — the old
    latch-forever behaviour went blind after the first failed recovery."""
    cluster = build_cluster(policy="no-reliability", n_servers=2)
    view = ClusterView(cluster.sim)
    reporters = [
        LoadReporter(s, "client", view, interval=INTERVAL) for s in cluster.servers
    ]
    watchdog = Watchdog(cluster.pager, view, report_interval=INTERVAL)
    cluster.sim.run(until=3 * INTERVAL)
    victim = cluster.servers[0]
    victim.crash()
    cluster.sim.run(until=cluster.sim.now + 8 * INTERVAL)
    # Declared once; NonePolicy recovery fails, so the latch holds and
    # continued silence is not re-declared every interval.
    assert len(watchdog.detections) == 1
    victim.restart()
    cluster.sim.run(until=cluster.sim.now + 4 * INTERVAL)
    assert watchdog.rearms and watchdog.rearms[0][1] == victim.name
    victim.crash()
    cluster.sim.run(until=cluster.sim.now + 8 * INTERVAL)
    assert len(watchdog.detections) == 2
    assert [name for _, name in watchdog.detections] == [victim.name] * 2


def test_lost_reports_from_live_server_probe_as_false_alarm():
    """Silence alone must not retire a live server: the watchdog probes
    first, and an answered probe books a false alarm, not a recovery."""
    cluster = build_cluster(
        policy="parity-logging",
        n_servers=4,
        content_mode=True,
        server_capacity_pages=128,
        overflow_fraction=0.25,
    )
    view = ClusterView(cluster.sim)
    reporters = [
        LoadReporter(s, "client", view, interval=INTERVAL) for s in cluster.servers
    ]
    watchdog = Watchdog(cluster.pager, view, report_interval=INTERVAL)
    for page_id in range(8):
        drive(cluster, cluster.pager.pageout(page_id, page_bytes(page_id, 1, PAGE)))
    cluster.sim.run(until=cluster.sim.now + 3 * INTERVAL)
    # Simulate report loss: the server is alive but its reports stop.
    quiet = cluster.pager.policy.servers[0]
    reporters[0].stop()
    assert reporters[0].server is quiet
    cluster.sim.run(until=cluster.sim.now + 10 * INTERVAL)
    assert quiet.is_alive
    assert watchdog.detections == []
    assert watchdog.false_alarms
    assert all(name == quiet.name for _, name in watchdog.false_alarms)
    assert cluster.pager.counters["recoveries"] == 0
