"""The paper's six evaluation applications as page-trace models.

Each class reproduces the *page-level* structure of the real program the
paper ran (§4.1): address-space regions, sweep order, revisit count, and
read/write mix.  Input-size defaults are the paper's ("for QSORT 3000k
records, for GAUSS a 1700x1700 matrix, for MVEC a 2100x2100 matrix, for
FFT an array with 700 K elements, for FILTER a 12 MB image, and the whole
DEC OSF/1 V3.2 kernel for CC").

The ``CPU_SECONDS_PER_PAGE_TOUCH`` constants calibrate compute density so
that on the reference DEC Alpha machine the utime : paging proportions
land near the paper's Fig 2 breakdown (see DESIGN.md §7); they are *per
workload* because the applications do very different amounts of
arithmetic per byte.
"""

from __future__ import annotations

from typing import Iterator

from .base import Ref, Workload, sweep, zigzag_passes

__all__ = [
    "Mvec",
    "Gauss",
    "Qsort",
    "Fft",
    "ImageFilter",
    "KernelBuild",
    "PAPER_WORKLOADS",
]

_DOUBLE = 8  # bytes per double-precision element


class Mvec(Workload):
    """MVEC: matrix-vector multiply, y = A x.

    The matrix is *generated and consumed in one pass*: each row is
    written, multiplied against the resident vector, and never revisited.
    This produces the paper's distinctive MVEC profile — "many pageouts
    and almost no pageins" — which is what makes MVEC the one application
    where mirroring loses to the disk (every pageout costs two transfers,
    and there are no pageins for remote memory to win back).
    """

    name = "mvec"
    CPU_SECONDS_PER_PAGE_TOUCH = 1.2e-3
    _schedule_token_fields = ("n",)

    def __init__(self, n: int = 2100, page_size: int = 8192):
        if n < 1:
            raise ValueError(f"matrix dimension must be positive: {n}")
        super().__init__(page_size)
        self.n = n
        self.matrix = self.layout.add("matrix", n * n * _DOUBLE)
        self.vectors = self.layout.add("vectors", 2 * n * _DOUBLE)

    def trace(self) -> Iterator[Ref]:
        cpu = self.CPU_SECONDS_PER_PAGE_TOUCH
        vec_pages = self.vectors.n_pages
        # Keep the x/y vectors hot while streaming the matrix through.
        for i, ref in enumerate(
            sweep(self.matrix.start_page, self.matrix.n_pages, cpu, write=True)
        ):
            yield ref
            yield (self.vectors.page(i % vec_pages), True, 0.0)


class Gauss(Workload):
    """GAUSS: blocked Gaussian elimination on an n x n matrix.

    Structure: one generating write pass, then ``passes`` panel-update
    sweeps over the matrix (read-modify-write), alternating direction as a
    blocked right-looking factorisation does when it reuses the hottest
    panels.  The paper's GAUSS is its most paging-dominated benchmark
    (remote memory is 96% faster than disk), so its compute density is
    the lowest of the six.
    """

    name = "gauss"
    CPU_SECONDS_PER_PAGE_TOUCH = 0.8e-3
    _schedule_token_fields = ("n", "passes")

    def __init__(self, n: int = 1700, passes: int = 4, page_size: int = 8192):
        if n < 1 or passes < 1:
            raise ValueError("n and passes must be positive")
        super().__init__(page_size)
        self.n = n
        self.passes = passes
        self.matrix = self.layout.add("matrix", n * n * _DOUBLE)

    def trace(self) -> Iterator[Ref]:
        cpu = self.CPU_SECONDS_PER_PAGE_TOUCH
        m = self.matrix
        yield from sweep(m.start_page, m.n_pages, cpu, write=True)
        yield from zigzag_passes(
            m.start_page, m.n_pages, self.passes, cpu, write=True, first_reverse=True
        )


class Qsort(Workload):
    """QSORT: quicksort of ``records`` 8-byte records.

    Depth-first recursion with Hoare-style two-pointer partitioning: a
    partition touches its region's pages from both ends converging to the
    middle, then the left half is sorted completely before the right —
    real quicksort's order.  Only the top one or two recursion levels
    exceed memory; deeper subproblems stay resident, which is why
    quicksort's paging share is moderate.  Leaf regions get
    ``LEAF_PASSES`` extra in-memory passes (the comparison-dominated
    small-sort work), where most of its utime comes from.
    """

    name = "qsort"
    CPU_SECONDS_PER_PAGE_TOUCH = 1.7e-3
    _schedule_token_fields = ("records",)
    LEAF_PAGES = 64
    LEAF_PASSES = 3

    def __init__(self, records: int = 2_800_000, page_size: int = 8192):
        if records < 1:
            raise ValueError(f"record count must be positive: {records}")
        super().__init__(page_size)
        self.records = records
        self.array = self.layout.add("array", records * _DOUBLE)

    def _partition(self, start: int, n_pages: int, cpu: float) -> Iterator[Ref]:
        """Two-pointer converge: low, high, low+1, high-1, ..."""
        lo, hi = 0, n_pages - 1
        while lo <= hi:
            yield (start + lo, True, cpu)
            if hi != lo:
                yield (start + hi, True, cpu)
            lo += 1
            hi -= 1

    def _sort(self, start: int, n_pages: int, cpu: float) -> Iterator[Ref]:
        if n_pages <= self.LEAF_PAGES:
            yield from zigzag_passes(start, n_pages, self.LEAF_PASSES, cpu, write=True)
            return
        yield from self._partition(start, n_pages, cpu)
        half = n_pages // 2
        yield from self._sort(start, half, cpu)
        yield from self._sort(start + half, n_pages - half, cpu)

    def trace(self) -> Iterator[Ref]:
        cpu = self.CPU_SECONDS_PER_PAGE_TOUCH
        region = self.array
        # Load/generate the input.
        yield from sweep(region.start_page, region.n_pages, cpu, write=True)
        yield from self._sort(region.start_page, region.n_pages, cpu)


class Fft(Workload):
    """FFT: out-of-place blocked Fast Fourier Transform.

    Two arrays (input and output) of ``elements`` complex doubles
    (16 bytes each, 32 bytes per element across both arrays).  A blocked
    radix-32-style factorisation makes ``passes`` full sweeps, each
    reading one array and writing the other — so every pass re-touches
    the whole footprint, and the memory deficit pages in and out each
    pass.  This is the paper's input-scaling workload (Figs 3 and 4):
    ``from_megabytes`` builds the sweep sizes of Fig 3.
    """

    name = "fft"
    CPU_SECONDS_PER_PAGE_TOUCH = 7.8e-3
    _schedule_token_fields = ("elements", "passes")

    #: Twiddle-factor table as a fraction of one data array (a partial
    #: table re-read each pass; brings the paper's "700 K element" FFT to
    #: its measured ~24 MB working set).
    TWIDDLE_FRACTION = 0.143

    def __init__(self, elements: int = 700_000, passes: int = 4, page_size: int = 8192):
        if elements < 1 or passes < 1:
            raise ValueError("elements and passes must be positive")
        super().__init__(page_size)
        self.elements = elements
        self.passes = passes
        bytes_per_array = elements * 16
        self.src = self.layout.add("src", bytes_per_array)
        self.dst = self.layout.add("dst", bytes_per_array)
        self.twiddle = self.layout.add(
            "twiddle", max(1, int(bytes_per_array * self.TWIDDLE_FRACTION))
        )

    @classmethod
    def from_megabytes(cls, megabytes: float, **kwargs) -> "Fft":
        """An FFT whose *total* footprint is ``megabytes`` (Fig 3 x-axis)."""
        elements = int(megabytes * (1 << 20) / (32 * (1 + cls.TWIDDLE_FRACTION / 2)))
        return cls(elements=elements, **kwargs)

    def trace(self) -> Iterator[Ref]:
        cpu = self.CPU_SECONDS_PER_PAGE_TOUCH
        # Generate the input signal.
        yield from sweep(self.src.start_page, self.src.n_pages, cpu, write=True)
        src, dst = self.src, self.dst
        for i in range(self.passes):
            reverse = i % 2 == 1
            # Re-read the twiddle table at the start of the pass.
            yield from sweep(
                self.twiddle.start_page, self.twiddle.n_pages, cpu, reverse=reverse
            )
            # Butterfly pass: stream src, write dst, block by block.
            n = min(src.n_pages, dst.n_pages)
            indices = range(n - 1, -1, -1) if reverse else range(n)
            for j in indices:
                yield (src.page(j), False, cpu / 2)
                yield (dst.page(j), True, cpu / 2)
            src, dst = dst, src


class ImageFilter(Workload):
    """FILTER: two-pass separable image sharpening (paper cites Newman 95).

    Pass 1 reads the input image row-wise and writes an intermediate;
    pass 2 reads the intermediate in blocked-column order (organised for
    paged memory, per Newman) and writes the output.  Three image-sized
    regions make its footprint 3x the image.
    """

    name = "filter"
    CPU_SECONDS_PER_PAGE_TOUCH = 7.5e-3
    _schedule_token_fields = ("image_bytes",)

    def __init__(self, image_bytes: int = 12 * (1 << 20), page_size: int = 8192):
        if image_bytes < 1:
            raise ValueError(f"image size must be positive: {image_bytes}")
        super().__init__(page_size)
        self.image_bytes = image_bytes
        self.image = self.layout.add("image", image_bytes)
        self.temp = self.layout.add("temp", image_bytes)
        self.output = self.layout.add("output", image_bytes)

    def trace(self) -> Iterator[Ref]:
        cpu = self.CPU_SECONDS_PER_PAGE_TOUCH
        n = self.image.n_pages
        # Load the image.
        yield from sweep(self.image.start_page, n, cpu, write=True)
        # Horizontal pass: read image, write temp.
        for j in range(n):
            yield (self.image.page(j), False, cpu / 2)
            yield (self.temp.page(min(j, self.temp.n_pages - 1)), True, cpu / 2)
        # Vertical pass (blocked columns): read temp backward, write output.
        for j in range(n - 1, -1, -1):
            yield (self.temp.page(min(j, self.temp.n_pages - 1)), False, cpu / 2)
            yield (self.output.page(min(j, self.output.n_pages - 1)), True, cpu / 2)


class KernelBuild(Workload):
    """CC: building the DEC OSF/1 kernel.

    ``units`` compilation units are compiled in sequence: each reuses the
    hot compiler region, works in a private scratch region, and emits an
    object region that is then untouched until the final link pass reads
    every object back (paging most of them in) and writes the kernel
    image.  This gives the build's characteristic profile: high utime,
    moderate paging concentrated at link time — the paper's most
    "realistic application" (§4.1), where remote memory still wins ~27%.
    """

    name = "cc"
    CPU_SECONDS_PER_PAGE_TOUCH = 1.55e-3
    COMPILE_PASSES = 2
    _schedule_token_fields = ("units", "object_pages", "scratch_pages", "compiler_pages")

    def __init__(
        self,
        units: int = 170,
        object_pages: int = 12,
        scratch_pages: int = 96,
        compiler_pages: int = 256,
        page_size: int = 8192,
    ):
        if min(units, object_pages, scratch_pages, compiler_pages) < 1:
            raise ValueError("all sizing parameters must be positive")
        super().__init__(page_size)
        self.units = units
        self.object_pages = object_pages
        self.scratch_pages = scratch_pages
        self.compiler_pages = compiler_pages
        self.link_passes = 2  # symbol resolution, then relocation/emit
        self.compiler = self.layout.add("compiler", compiler_pages * page_size)
        self.scratch = self.layout.add("scratch", scratch_pages * page_size)
        self.objects = [
            self.layout.add(f"object-{i}", object_pages * page_size)
            for i in range(units)
        ]
        self.image = self.layout.add("image", units * object_pages * page_size // 2)

    def trace(self) -> Iterator[Ref]:
        cpu = self.CPU_SECONDS_PER_PAGE_TOUCH
        # Warm the compiler text.
        yield from sweep(self.compiler.start_page, self.compiler.n_pages, cpu)
        for obj in self.objects:
            # Touch some compiler pages (hot, stays resident).
            yield from sweep(self.compiler.start_page, self.compiler.n_pages // 4, cpu)
            # Per-unit scratch work.
            yield from zigzag_passes(
                self.scratch.start_page,
                self.scratch.n_pages,
                self.COMPILE_PASSES,
                cpu,
                write=True,
            )
            # Emit the object file.
            yield from sweep(obj.start_page, obj.n_pages, cpu, write=True)
        # Link: two passes over the objects (symbol resolution, then
        # relocation), emitting the kernel image interleaved with the
        # second read — the pattern that makes the build page at all.
        for obj in self.objects:
            yield from sweep(obj.start_page, obj.n_pages, cpu / 2)
        image_cursor = 0
        for obj in self.objects:
            yield from sweep(obj.start_page, obj.n_pages, cpu / 2)
            emit = self.image.n_pages // self.units
            for k in range(emit):
                yield (self.image.page(min(image_cursor + k, self.image.n_pages - 1)), True, cpu / 2)
            image_cursor += emit


#: The Fig 2 application suite with the paper's input sizes.
def PAPER_WORKLOADS():
    """Fresh instances of the six Fig 2 applications (paper inputs)."""
    return [Mvec(), Gauss(), Qsort(), Fft(), ImageFilter(), KernelBuild()]
