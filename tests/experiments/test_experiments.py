"""Experiment-harness tests (scaled-down runs; full runs live in
benchmarks/)."""

import pytest

from repro.experiments import (
    PAPER_CONFIGS,
    render_fig1,
    render_fig2,
    render_fig3,
    render_latency,
    run_fig1,
    run_fig2,
    run_fig3,
    run_latency,
    run_policy,
)
from repro.workloads import Gauss, Mvec


def test_paper_configs_match_section_4_1():
    assert PAPER_CONFIGS["no-reliability"]["n_servers"] == 2
    assert PAPER_CONFIGS["parity-logging"]["n_servers"] == 4
    assert PAPER_CONFIGS["parity-logging"]["overflow_fraction"] == 0.10
    assert PAPER_CONFIGS["mirroring"]["n_servers"] == 2
    assert PAPER_CONFIGS["disk"]["policy"] == "disk"


def test_run_policy_returns_report():
    report = run_policy(lambda: Mvec(n=600), "no-reliability")
    assert report.etime > 0
    assert report.name == "mvec"


def test_run_policy_cluster_hook_runs():
    seen = {}

    def hook(cluster):
        seen["servers"] = len(cluster.servers)

    run_policy(lambda: Mvec(n=400), "mirroring", cluster_hook=hook)
    assert seen["servers"] == 2


def test_fig1_structure():
    results = run_fig1()
    assert results["summary"]["min_mb"] >= 300
    assert "Figure 1" in render_fig1(results)


def test_fig2_subset_runs_and_renders():
    reports = run_fig2(apps=["mvec"], policies=["no-reliability", "disk"])
    assert set(reports) == {"mvec"}
    assert set(reports["mvec"]) == {"no-reliability", "disk"}
    text = render_fig2(reports)
    assert "mvec" in text and "ranking" in text


def test_fig3_subset():
    results = run_fig3(sizes_mb=[17.0, 21.6], policies=["parity-logging"])
    below, above = results["parity-logging"][17.0], results["parity-logging"][21.6]
    assert below.pageins == 0  # fits in memory
    assert above.pageins > 0  # past the cliff
    assert "Figure 3" in render_fig3(results)


def test_latency_microbenchmark_small():
    results = run_latency(n_transfers=20)
    assert 8.0 < results["per_transfer_ms"] < 14.0
    assert "ours" in render_latency(results)
