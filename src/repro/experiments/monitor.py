"""Live saturation monitoring: per-server timelines and the §4.6 knee.

``repro monitor`` runs one workload with the telemetry sampler on and
renders the sampled series (per-server CPU, wire utilisation, queue
depth/delay, idle pool, fault rate) as ASCII timelines alongside the
health monitor's warn/critical transitions.  ``--campaign`` repeats the
§4.6 loaded-Ethernet sweep with telemetry enabled at every load point
and compares where the health monitor first warned against the measured
throughput-collapse knee — the acceptance check for the early-warning
contract: warnings must land *strictly below* the knee.

Everything routes through the experiment runner, so the sampled series
and health verdicts are byte-deterministic across ``--jobs`` and cache
replay (sampling pins runs to interpreted execution; see
``repro.compile.plan``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from ..analysis.report import format_table
from ..runner import RunSpec, default_runner

__all__ = [
    "run_monitor",
    "monitor_spec",
    "render_monitor",
    "run_monitor_campaign",
    "render_monitor_campaign",
    "collapse_knee",
    "extract_series",
    "DEFAULT_INTERVAL",
    "CAMPAIGN_LOADS",
]

#: Default sampling interval (simulated seconds).  Paging traffic is
#: bursty: sub-second windows see the wire pinned near 100% during any
#: page transfer and report saturation on a perfectly healthy run.
#: One-second windows average over fault bursts, so sustained elevation
#: means sustained contention — the §4.6 signal.
DEFAULT_INTERVAL = 1.0

#: The default rising-load campaign (§4.6 sweep, densified near the
#: collapse region).
CAMPAIGN_LOADS = (0.0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8)

#: Threshold defining the measured collapse knee: the first load level
#: whose completion time is at least this multiple of the unloaded run.
KNEE_SLOWDOWN = 2.0

#: Campaign load-rule calibration.  A paging client's one-second
#: windowed wire utilisation sits near 0.80 during normal operation
#: (page transfers are wire-bound), so the stock 0.70 warn threshold
#: would cry wolf on the unloaded baseline.  The campaign warns on
#: sustained utilisation *above* the paging-burst floor; queueing
#: delay (warn at 20ms windowed mean) is the discriminating
#: approach-to-collapse signal either way.
CAMPAIGN_WARN_LOAD = 0.85
CAMPAIGN_CRIT_LOAD = 0.95

_SPARK = " .:-=+*#%@"


def extract_series(metrics: Dict[str, Any]) -> Dict[str, Dict[str, List[float]]]:
    """Pull ``telemetry.*`` ring buffers out of a metrics snapshot."""
    series: Dict[str, Dict[str, List[float]]] = {}
    for key in metrics:
        if key.endswith(".__series__"):
            prefix = key[: -len(".__series__")]
            name = prefix[len("telemetry."):] if prefix.startswith("telemetry.") else prefix
            series[name] = {
                "times": list(metrics.get(f"{prefix}.times") or []),
                "values": list(metrics.get(f"{prefix}.values") or []),
                "dropped": metrics.get(f"{prefix}.dropped", 0),
            }
    return series


def _extract_histogram(metrics: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    prefix = "telemetry.fault_latency"
    if f"{prefix}.__hist__" not in metrics:
        return None
    return {
        "count": metrics.get(f"{prefix}.count", 0),
        "p50": metrics.get(f"{prefix}.p50", 0.0),
        "p95": metrics.get(f"{prefix}.p95", 0.0),
        "p99": metrics.get(f"{prefix}.p99", 0.0),
        "p999": metrics.get(f"{prefix}.p999", 0.0),
    }


def run_monitor(
    workload: str = "gauss",
    policy: str = "no-reliability",
    load: float = 0.0,
    interval: float = DEFAULT_INTERVAL,
    capacity: int = 512,
    seed: int = 0,
    runner=None,
    workload_kwargs: Optional[Dict[str, Any]] = None,
    **overrides,
) -> Dict[str, Any]:
    """One telemetry-enabled run; returns series + health + etime.

    ``load`` > 0 attaches §4.6 background Ethernet traffic.  Extra
    ``overrides`` pass straight to :func:`~repro.core.builder.build_cluster`
    (e.g. ``health_warn_load=0.6``, ``pipeline_window=16``).
    """
    spec = monitor_spec(
        workload,
        policy,
        load=load,
        interval=interval,
        capacity=capacity,
        seed=seed,
        workload_kwargs=workload_kwargs,
        **overrides,
    )
    result = (runner or default_runner()).run_one(spec)
    return _point(result, load)


def monitor_spec(
    workload: str,
    policy: str,
    load: float = 0.0,
    interval: float = DEFAULT_INTERVAL,
    capacity: int = 512,
    seed: int = 0,
    workload_kwargs: Optional[Dict[str, Any]] = None,
    **overrides,
) -> RunSpec:
    """The picklable spec for one telemetry-enabled run."""
    merged = {
        "telemetry_interval": interval,
        "telemetry_capacity": capacity,
        **overrides,
    }
    return RunSpec.make(
        workload,
        policy,
        workload_kwargs=workload_kwargs,
        overrides=merged,
        seed=seed,
        hook="background-load" if load > 0 else None,
        hook_kwargs={"total_load": load, "n_sources": 4} if load > 0 else None,
        extract=("network-stats",),
        label=f"monitor/{workload}/{policy}/load={load:.0%}",
    )


def _point(result, load: float) -> Dict[str, Any]:
    report = result.report
    metrics = report.meta.get("metrics", {})
    return {
        "load": load,
        "etime": report.etime,
        "health": report.meta.get("health"),
        "series": extract_series(metrics),
        "fault_latency": _extract_histogram(metrics),
        "extras": dict(result.extras),
    }


# ---------------------------------------------------------------- campaign
def run_monitor_campaign(
    loads: Iterable[float] = CAMPAIGN_LOADS,
    workload: str = "gauss",
    policy: str = "no-reliability",
    interval: float = DEFAULT_INTERVAL,
    capacity: int = 512,
    seed: int = 0,
    runner=None,
    workload_kwargs: Optional[Dict[str, Any]] = None,
    **overrides,
) -> Dict[str, Any]:
    """§4.6 rising-load sweep with telemetry at every point.

    Returns the per-load points plus the measured collapse knee and the
    lowest load at which the health monitor warned — the early-warning
    contract holds when ``first_warn_load`` is strictly below
    ``knee_load``.
    """
    overrides.setdefault("health_warn_load", CAMPAIGN_WARN_LOAD)
    overrides.setdefault("health_crit_load", CAMPAIGN_CRIT_LOAD)
    loads = sorted(set(float(load) for load in loads))
    specs = [
        monitor_spec(
            workload,
            policy,
            load=load,
            interval=interval,
            capacity=capacity,
            seed=seed,
            workload_kwargs=workload_kwargs,
            **overrides,
        )
        for load in loads
    ]
    points = [
        _point(result, load)
        for load, result in zip(loads, (runner or default_runner()).run(specs))
    ]
    knee = collapse_knee(points)
    first_warn = next(
        (
            point["load"]
            for point in points
            if point["health"] and point["health"]["status"] != "ok"
        ),
        None,
    )
    return {
        "workload": workload,
        "policy": policy,
        "points": points,
        "knee_load": knee,
        "first_warn_load": first_warn,
        "warned_before_knee": (
            first_warn is not None and (knee is None or first_warn < knee)
        ),
    }


def collapse_knee(points: List[Dict[str, Any]]) -> Optional[float]:
    """The measured §4.6 collapse knee: lowest load whose completion
    time reaches ``KNEE_SLOWDOWN``× the lowest-load run (None if the
    sweep never collapses)."""
    if not points:
        return None
    ordered = sorted(points, key=lambda p: p["load"])
    baseline = ordered[0]["etime"]
    if baseline <= 0:
        return None
    for point in ordered[1:]:
        if point["etime"] >= KNEE_SLOWDOWN * baseline:
            return point["load"]
    return None


# --------------------------------------------------------------- rendering
def _sparkline(values: List[float], width: int, lo: float, hi: float) -> str:
    """Resample ``values`` to ``width`` columns of density glyphs."""
    if not values:
        return ""
    span = hi - lo
    columns = []
    n = len(values)
    for col in range(min(width, n) if n < width else width):
        if n <= width:
            bucket = [values[col]] if col < n else []
        else:
            start = col * n // width
            stop = max(start + 1, (col + 1) * n // width)
            bucket = values[start:stop]
        if not bucket:
            break
        peak = max(bucket)
        frac = (peak - lo) / span if span > 0 else 0.0
        frac = min(1.0, max(0.0, frac))
        columns.append(_SPARK[round(frac * (len(_SPARK) - 1))])
    return "".join(columns)


def render_monitor(point: Dict[str, Any], width: int = 60) -> str:
    """ASCII timelines + health transitions for one monitored run."""
    lines: List[str] = []
    label = f"load={point['load']:.0%}, etime={point['etime']:.2f}s"
    lines.append(f"telemetry timelines ({label})")
    series = point.get("series") or {}
    if not series:
        lines.append("  (no telemetry series; was telemetry_interval set?)")
    name_width = max((len(name) for name in series), default=0)
    for name in sorted(series):
        values = series[name]["values"]
        if not values:
            continue
        lo = min(0.0, min(values))
        hi = max(values)
        spark = _sparkline(values, width, lo, hi if hi > lo else lo + 1.0)
        lines.append(
            f"  {name:<{name_width}} |{spark:<{width}}| "
            f"last={values[-1]:.3g} max={hi:.3g}"
        )
        if series[name].get("dropped"):
            lines.append(
                f"  {'':<{name_width}}  ({series[name]['dropped']} oldest "
                "samples evicted from ring)"
            )
    hist = point.get("fault_latency")
    if hist and hist["count"]:
        lines.append(
            f"  fault latency: n={hist['count']} "
            f"p50={hist['p50'] * 1e3:.2f}ms p95={hist['p95'] * 1e3:.2f}ms "
            f"p99={hist['p99'] * 1e3:.2f}ms p999={hist['p999'] * 1e3:.2f}ms"
        )
    health = point.get("health")
    if health:
        lines.append(f"health: {health['status']}")
        for event in health["events"]:
            lines.append(
                f"  t={event['t']:8.2f}s {event['severity']:<8} "
                f"{event['series']} ({event['rule']}): "
                f"{event['value']:.3g} vs {event['threshold']:.3g}"
            )
    return "\n".join(lines)


def render_monitor_campaign(campaign: Dict[str, Any]) -> str:
    """Load-sweep table: etime, slowdown, health verdict per point."""
    points = sorted(campaign["points"], key=lambda p: p["load"])
    baseline = points[0]["etime"] if points else 0.0
    rows: List[List[str]] = []
    for point in points:
        health = point["health"] or {}
        first_warn = health.get("first_warn_time")
        wire = point["extras"].get("wire_utilization")
        rows.append(
            [
                f"{point['load']:.0%}",
                f"{point['etime']:.1f}",
                f"{point['etime'] / baseline:.2f}x" if baseline else "-",
                health.get("status", "-"),
                f"{first_warn:.1f}s" if first_warn is not None else "-",
                f"{wire:.0%}" if wire is not None else "-",
            ]
        )
    knee = campaign["knee_load"]
    warn = campaign["first_warn_load"]
    table = format_table(
        ["offered load", "etime (s)", "slowdown", "health", "first warn", "wire busy"],
        rows,
        title=(
            f"Saturation early-warning vs §4.6 collapse "
            f"({campaign['workload']}/{campaign['policy']})"
        ),
    )
    footer = [
        f"collapse knee (>= {KNEE_SLOWDOWN:.0f}x etime): "
        + (f"{knee:.0%}" if knee is not None else "not reached"),
        "first health warning: " + (f"{warn:.0%}" if warn is not None else "never"),
        "early warning "
        + ("HELD (warned strictly below the knee)" if campaign["warned_before_knee"]
           else "FAILED"),
    ]
    return table + "\n" + "\n".join(footer)
