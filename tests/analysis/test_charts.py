"""ASCII chart tests."""

import pytest

from repro.analysis import ascii_chart


def test_marks_appear_for_each_series():
    text = ascii_chart(
        {"a": [(0, 0), (10, 10)], "b": [(0, 10), (10, 0)]}, width=20, height=8
    )
    assert "*" in text and "o" in text
    assert "* a" in text and "o b" in text


def test_title_and_labels():
    text = ascii_chart(
        {"s": [(1, 2), (3, 4)]}, width=16, height=6, title="T", x_label="x", y_label="y"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "x: x   y: y" in text


def test_extremes_on_axes():
    text = ascii_chart({"s": [(0, 5), (100, 50)]}, width=20, height=8)
    assert "50" in text and "5" in text  # y-axis labels
    assert "0" in text and "100" in text  # x-axis labels


def test_single_point_does_not_divide_by_zero():
    text = ascii_chart({"s": [(5, 7)]}, width=10, height=5)
    assert "*" in text


def test_monotone_series_renders_monotone():
    """Higher y values must land on earlier (upper) rows."""
    text = ascii_chart({"s": [(0, 0), (1, 1), (2, 2)]}, width=12, height=6)
    rows = [i for i, line in enumerate(text.splitlines()) if "*" in line]
    cols = []
    for i in rows:
        line = text.splitlines()[i]
        cols.append(line.index("*"))
    # Upper rows (smaller index) correspond to larger x here.
    assert cols == sorted(cols, reverse=True)


def test_validation():
    with pytest.raises(ValueError):
        ascii_chart({})
    with pytest.raises(ValueError):
        ascii_chart({"s": []})
    with pytest.raises(ValueError):
        ascii_chart({"s": [(0, 0)]}, width=2, height=2)
