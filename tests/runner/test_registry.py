"""Registries: name resolution, size_mb routing, unknown-name errors."""

import pytest

from repro.errors import ConfigurationError
from repro.runner.registry import (
    WORKLOADS,
    make_hook,
    make_workload,
    register_workload,
    run_extractors,
)
from repro.workloads import Fft, Gauss


def test_builtin_workloads_registered():
    for name in ("mvec", "gauss", "qsort", "fft", "filter", "cc"):
        assert name in WORKLOADS


def test_make_workload_default_and_kwargs():
    assert isinstance(make_workload("gauss", {}), Gauss)
    small = make_workload("gauss", {"n": 900})
    assert small.n == 900


def test_size_mb_routes_through_from_megabytes():
    via_registry = make_workload("fft", {"size_mb": 17.0})
    direct = Fft.from_megabytes(17.0)
    assert isinstance(via_registry, Fft)
    assert via_registry.elements == direct.elements


def test_unknown_names_raise_configuration_error():
    with pytest.raises(ConfigurationError):
        make_workload("no-such-workload", {})
    with pytest.raises(ConfigurationError):
        make_hook("no-such-hook", {})
    with pytest.raises(ConfigurationError):
        run_extractors(["no-such-extractor"], None, None, None)


def test_register_workload_extends_registry():
    register_workload("tiny-gauss-for-test", lambda: Gauss(n=700))
    try:
        assert isinstance(make_workload("tiny-gauss-for-test", {}), Gauss)
    finally:
        WORKLOADS.pop("tiny-gauss-for-test", None)
