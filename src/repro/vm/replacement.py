"""Page-replacement policies.

DEC OSF/1's VM used a global FIFO-with-second-chance scheme; we provide
FIFO, LRU, and Clock (second chance) behind one interface so experiments
can ablate the choice.  The policy only tracks *resident* pages and picks
victims; residency bookkeeping lives in the machine.

All three built-ins additionally support the *batch-step* API the trace
compiler rides on (``touch_batch`` + ``export_state``/``restore_state``,
advertised via ``supports_batch_touch``): touches between two eviction
decisions may be applied as one batch, because for these policies the
state after a touch sequence depends only on membership (FIFO), the
referenced-bit set (Clock), or the order of *last* touches (LRU) — never
on the interleaving of touches with anything else.  The VM's hot loop
buffers touches and flushes the batch before every simulation yield, and
the compiler replays the same batches off-line, so both paths make
identical eviction decisions (pinned by ``tests/compile``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterable, List

__all__ = ["ReplacementPolicy", "FifoReplacement", "LruReplacement", "ClockReplacement", "make_replacement"]


class ReplacementPolicy:
    """Interface: track resident pages, surrender a victim on demand."""

    __slots__ = ()

    name = "abstract"

    #: True when ``touch_batch`` is exactly equivalent to per-reference
    #: ``touch`` calls (and the policy ignores ``is_write``).  Required
    #: for the trace compiler; custom subclasses must opt in explicitly.
    supports_batch_touch = False

    def insert(self, page_id: int) -> None:
        """A page became resident."""
        raise NotImplementedError

    def touch(self, page_id: int, is_write: bool = False) -> None:
        """A resident page was referenced."""
        raise NotImplementedError

    def touch_batch(self, page_ids: Iterable[int]) -> None:
        """Apply a run of touches at once (same net effect as the loop)."""
        touch = self.touch
        for page_id in page_ids:
            touch(page_id)

    def evict(self) -> int:
        """Choose and remove a victim; returns its page id."""
        raise NotImplementedError

    def remove(self, page_id: int) -> None:
        """A page left residency by other means (e.g. process exit)."""
        raise NotImplementedError

    def export_state(self) -> Any:
        """JSON-serialisable snapshot for schedule replay (optional)."""
        raise NotImplementedError

    def restore_state(self, state: Any) -> None:
        """Inverse of :meth:`export_state` (optional)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class FifoReplacement(ReplacementPolicy):
    """Evict the page resident longest, regardless of references."""

    __slots__ = ("_queue", "_members")

    name = "fifo"
    supports_batch_touch = True

    def __init__(self) -> None:
        self._queue: Deque[int] = deque()
        self._members: set = set()

    def insert(self, page_id: int) -> None:
        if page_id in self._members:
            raise ValueError(f"page {page_id} already resident")
        self._queue.append(page_id)
        self._members.add(page_id)

    def touch(self, page_id: int, is_write: bool = False) -> None:
        if page_id not in self._members:
            raise KeyError(f"page {page_id} is not resident")

    def touch_batch(self, page_ids: Iterable[int]) -> None:
        members = self._members
        for page_id in page_ids:
            if page_id not in members:
                raise KeyError(f"page {page_id} is not resident")

    def evict(self) -> int:
        if not self._queue:
            raise IndexError("no resident pages to evict")
        victim = self._queue.popleft()
        self._members.discard(victim)
        return victim

    def remove(self, page_id: int) -> None:
        if page_id in self._members:
            self._members.discard(page_id)
            self._queue.remove(page_id)

    def export_state(self) -> List[int]:
        return list(self._queue)

    def restore_state(self, state: Iterable[int]) -> None:
        self._queue = deque(state)
        self._members = set(self._queue)

    def __len__(self) -> int:
        return len(self._members)


class LruReplacement(ReplacementPolicy):
    """Evict the least recently used page (exact LRU stack).

    The stack is a plain ``dict`` (insertion-ordered since 3.7): the
    first key is the LRU page, a touch is ``pop`` + reinsert, and an
    eviction pops the first key — measurably cheaper on the VM's hot
    loop than the former ``OrderedDict`` (``bench_kernel.py``).
    """

    __slots__ = ("_order",)

    name = "lru"
    supports_batch_touch = True

    def __init__(self) -> None:
        self._order: Dict[int, None] = {}

    def insert(self, page_id: int) -> None:
        if page_id in self._order:
            raise ValueError(f"page {page_id} already resident")
        self._order[page_id] = None

    def touch(self, page_id: int, is_write: bool = False) -> None:
        order = self._order
        try:
            order.pop(page_id)
        except KeyError:
            raise KeyError(f"page {page_id} is not resident") from None
        order[page_id] = None

    def touch_batch(self, page_ids: Iterable[int]) -> None:
        # Per-reference touching leaves the touched pages at the MRU end
        # ordered by *last* touch; everything untouched keeps its relative
        # order below them.  Deduplicate keeping each page's last touch
        # (reversed + fromkeys), then replay in ascending last-touch order.
        order = self._order
        for page_id in reversed(dict.fromkeys(reversed(list(page_ids)))):
            try:
                order.pop(page_id)
            except KeyError:
                raise KeyError(f"page {page_id} is not resident") from None
            order[page_id] = None

    def evict(self) -> int:
        if not self._order:
            raise IndexError("no resident pages to evict")
        victim = next(iter(self._order))
        del self._order[victim]
        return victim

    def remove(self, page_id: int) -> None:
        self._order.pop(page_id, None)

    def export_state(self) -> List[int]:
        return list(self._order)

    def restore_state(self, state: Iterable[int]) -> None:
        self._order = dict.fromkeys(state)

    def __len__(self) -> int:
        return len(self._order)


class ClockReplacement(ReplacementPolicy):
    """Second-chance FIFO: referenced pages get one reprieve per lap.

    Closest to what DEC OSF/1 actually ran, and the default for the
    reproduction experiments.
    """

    __slots__ = ("_ring", "_referenced")

    name = "clock"
    supports_batch_touch = True

    def __init__(self) -> None:
        self._ring: Deque[int] = deque()
        self._referenced: Dict[int, bool] = {}

    def insert(self, page_id: int) -> None:
        if page_id in self._referenced:
            raise ValueError(f"page {page_id} already resident")
        self._ring.append(page_id)
        self._referenced[page_id] = False

    def touch(self, page_id: int, is_write: bool = False) -> None:
        if page_id not in self._referenced:
            raise KeyError(f"page {page_id} is not resident")
        self._referenced[page_id] = True

    def touch_batch(self, page_ids: Iterable[int]) -> None:
        referenced = self._referenced
        for page_id in set(page_ids):
            if page_id not in referenced:
                raise KeyError(f"page {page_id} is not resident")
            referenced[page_id] = True

    def evict(self) -> int:
        if not self._ring:
            raise IndexError("no resident pages to evict")
        while True:
            candidate = self._ring.popleft()
            if self._referenced[candidate]:
                self._referenced[candidate] = False
                self._ring.append(candidate)
            else:
                del self._referenced[candidate]
                return candidate

    def remove(self, page_id: int) -> None:
        if page_id in self._referenced:
            del self._referenced[page_id]
            self._ring.remove(page_id)

    def export_state(self) -> List[List[Any]]:
        return [[page_id, self._referenced[page_id]] for page_id in self._ring]

    def restore_state(self, state: Iterable[Iterable[Any]]) -> None:
        self._ring = deque()
        self._referenced = {}
        for page_id, referenced in state:
            self._ring.append(page_id)
            self._referenced[page_id] = bool(referenced)

    def __len__(self) -> int:
        return len(self._referenced)


_POLICIES = {
    "fifo": FifoReplacement,
    "lru": LruReplacement,
    "clock": ClockReplacement,
}


def make_replacement(name: str) -> ReplacementPolicy:
    """Construct a replacement policy by name ('fifo', 'lru', 'clock')."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
