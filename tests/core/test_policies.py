"""Policy behaviour tests: transfer accounting, placement, memory overhead.

Content-mode crash-recovery correctness has its own module
(test_recovery.py); here we exercise the normal paths.
"""

import pytest

from repro.core import build_cluster
from repro.errors import PageNotFound, RecoveryError
from repro.vm import page_bytes

PAGE = 8192


def cluster_for(policy, **kwargs):
    defaults = dict(n_servers=4, content_mode=True, server_capacity_pages=256)
    if policy == "parity-logging":
        defaults["overflow_fraction"] = 0.25
    defaults.update(kwargs)
    return build_cluster(policy=policy, **defaults)


def drive(cluster, gen):
    def body(gen):
        result = yield from gen
        return result

    return cluster.sim.run_until_complete(cluster.sim.process(body(gen)))


def pageout(cluster, page_id, version=1):
    contents = page_bytes(page_id, version, PAGE)
    drive(cluster, cluster.pager.pageout(page_id, contents))
    return contents


def pagein(cluster, page_id):
    return drive(cluster, cluster.pager.pagein(page_id))


POLICIES = ["no-reliability", "mirroring", "parity", "parity-logging", "write-through"]


@pytest.mark.parametrize("policy", POLICIES)
def test_roundtrip_returns_exact_contents(policy):
    cluster = cluster_for(policy)
    expected = pageout(cluster, 7)
    assert pagein(cluster, 7) == expected


@pytest.mark.parametrize("policy", POLICIES)
def test_repageout_supersedes(policy):
    cluster = cluster_for(policy)
    pageout(cluster, 7, version=1)
    newer = pageout(cluster, 7, version=2)
    assert pagein(cluster, 7) == newer


@pytest.mark.parametrize("policy", POLICIES)
def test_pagein_unknown_page(policy):
    cluster = cluster_for(policy)
    with pytest.raises(PageNotFound):
        pagein(cluster, 999)


@pytest.mark.parametrize("policy", POLICIES)
def test_release_frees_backing_copies(policy):
    cluster = cluster_for(policy)
    pageout(cluster, 7)
    cluster.pager.release(7)
    assert not cluster.policy.holds(7)


def test_no_reliability_one_transfer_per_op():
    cluster = cluster_for("no-reliability")
    pageout(cluster, 1)
    assert cluster.policy.transfers == 1
    pagein(cluster, 1)
    assert cluster.policy.transfers == 2


def test_mirroring_two_transfers_per_pageout():
    cluster = cluster_for("mirroring")
    pageout(cluster, 1)
    assert cluster.policy.transfers == 2
    pagein(cluster, 1)
    assert cluster.policy.transfers == 3  # pageins read one copy


def test_mirroring_copies_on_distinct_servers():
    cluster = cluster_for("mirroring")
    for page_id in range(8):
        pageout(cluster, page_id)
    for page_id in range(8):
        primary, mirror = cluster.policy._placement[page_id]
        assert primary is not mirror
        assert primary.holds(page_id) and mirror.holds(page_id)


def test_basic_parity_two_transfers_per_pageout():
    cluster = cluster_for("parity")
    pageout(cluster, 1)
    assert cluster.policy.transfers == 2  # data + parity delta


def test_basic_parity_overhead_factor():
    cluster = cluster_for("parity", n_servers=4)
    assert cluster.policy.memory_overhead_factor == pytest.approx(1.25)


def test_parity_logging_amortized_transfers():
    """S pageouts cost S+1 transfers: 1 + 1/S per page (§2.2)."""
    cluster = cluster_for("parity-logging", n_servers=4)
    for page_id in range(4):
        pageout(cluster, page_id)
    assert cluster.policy.transfers == 5
    for page_id in range(4, 8):
        pageout(cluster, page_id)
    assert cluster.policy.transfers == 10


def test_parity_logging_round_robin_one_member_per_server():
    cluster = cluster_for("parity-logging", n_servers=4)
    for page_id in range(12):
        pageout(cluster, page_id)
    for group in cluster.policy._groups.values():
        names = [m.server.name for m in group.members]
        assert len(names) == len(set(names)), "round robin must spread a group"


def test_parity_logging_group_seals_at_s_members():
    cluster = cluster_for("parity-logging", n_servers=4)
    for page_id in range(4):
        pageout(cluster, page_id)
    sealed = [g for g in cluster.policy._groups.values() if g.sealed]
    assert len(sealed) == 1
    assert cluster.parity_server.holds(sealed[0].parity_key)


def test_parity_logging_old_versions_marked_inactive_not_deleted():
    """Footnote 3: superseded versions stay on the server."""
    cluster = cluster_for("parity-logging", n_servers=4)
    pageout(cluster, 7, version=1)
    for page_id in range(1, 4):
        pageout(cluster, page_id)  # seal the first group
    pageout(cluster, 7, version=2)
    policy = cluster.policy
    old_members = [
        m
        for g in policy._groups.values()
        for m in g.members
        if m.page_id == 7 and not m.active
    ]
    assert len(old_members) == 1
    assert old_members[0].server.holds(old_members[0].key)  # not deleted


def test_parity_logging_group_reuse_when_all_inactive():
    """§2.2: fully inactive sealed groups are reclaimed."""
    cluster = cluster_for("parity-logging", n_servers=2)
    pageout(cluster, 0, version=1)
    pageout(cluster, 1, version=1)  # group 0 sealed
    before = cluster.policy.group_count
    pageout(cluster, 0, version=2)
    pageout(cluster, 1, version=2)  # group 1 sealed; group 0 all inactive
    assert cluster.policy.counters["groups_reused"] == 1
    assert cluster.policy.group_count <= before


def test_parity_logging_gc_reclaims_under_pressure():
    """With tiny overflow, superseded versions force garbage collection."""
    cluster = cluster_for(
        "parity-logging", n_servers=2, server_capacity_pages=5, overflow_fraction=0.0
    )
    # Interleave cold pages (written once, active forever) with a hot
    # page (superseded every round): every group mixes one active cold
    # member with a soon-stale hot member, so no group ever empties —
    # the fragmentation that §2.2's garbage collection exists for.
    HOT = 100
    versions = {}
    for round_no in range(1, 9):
        cold = round_no  # a fresh cold page each round
        pageout(cluster, cold, version=1)
        versions[cold] = 1
        pageout(cluster, HOT, version=round_no)
        versions[HOT] = round_no
    assert cluster.policy.gc_runs >= 1
    assert cluster.policy.counters["gc_moved_pages"] >= 1
    # Every page is still retrievable, at its latest version.
    for page_id, version in versions.items():
        assert pagein(cluster, page_id) == page_bytes(page_id, version, PAGE)


def test_parity_logging_ten_percent_overflow_never_gcs():
    """The paper's configuration: 4 servers, 10% overflow, no GC (§2.2)."""
    cluster = cluster_for(
        "parity-logging",
        n_servers=4,
        server_capacity_pages=200,
        overflow_fraction=0.10,
    )
    # A paging-heavy pattern: 600 pages cycling through 2 versions.
    for version in (1, 2):
        for page_id in range(600):
            pageout(cluster, page_id, version=version)
    assert cluster.policy.gc_runs == 0


def test_write_through_disk_and_remote_copies():
    cluster = cluster_for("write-through")
    pageout(cluster, 3)
    policy = cluster.policy
    assert policy.disk_backend.holds(3)
    assert policy._placement[3].holds(3)
    assert policy.counters["disk_writes"] == 1
    assert policy.transfers == 1  # network transfers exclude the disk copy


def test_write_through_parallel_not_additive():
    """§4.7: the two copies are written in parallel, so a pageout costs
    max(disk, network), not their sum."""

    def steady_pageout_cost(policy):
        cluster = cluster_for(policy)
        for page_id in range(8):  # warm up: position the disk head
            pageout(cluster, page_id)
        start = cluster.sim.now
        pageout(cluster, 8)
        return cluster.sim.now - start

    wt_cost = steady_pageout_cost("write-through")
    nr_cost = steady_pageout_cost("no-reliability")
    # Streaming disk writes take ~13 ms, the network ~9 ms; parallel
    # write-through pays ~max of the two, nowhere near their ~22 ms sum.
    assert nr_cost < wt_cost < 0.9 * (nr_cost + 0.0131)


def test_no_reliability_recover_raises():
    cluster = cluster_for("no-reliability")
    pageout(cluster, 1)
    victim = cluster.policy._placement[1]
    victim.crash()
    with pytest.raises(RecoveryError):
        drive(cluster, cluster.policy.recover(victim))
