"""The paper's contribution: the reliable remote memory pager."""

from .builder import POLICY_NAMES, Cluster, build_cluster
from .client import RemoteMemoryPager
from .policies.base import ReliabilityPolicy
from .policies.mirroring import Mirroring
from .policies.none import NoReliability
from .policies.parity import BasicParity
from .policies.parity_logging import GroupMember, ParityGroup, ParityLogging
from .policies.write_through import WriteThrough
from .recovery import CrashInjector
from .load_reports import ClusterView, LoadReport, LoadReporter
from .remote_disk import RemoteDiskPager, RemoteDiskServer
from .server import MemoryServer
from .watchdog import Watchdog

__all__ = [
    "MemoryServer",
    "RemoteMemoryPager",
    "ReliabilityPolicy",
    "NoReliability",
    "Mirroring",
    "BasicParity",
    "ParityLogging",
    "ParityGroup",
    "GroupMember",
    "WriteThrough",
    "CrashInjector",
    "RemoteDiskPager",
    "RemoteDiskServer",
    "LoadReport",
    "LoadReporter",
    "ClusterView",
    "Watchdog",
    "Cluster",
    "build_cluster",
    "POLICY_NAMES",
]
