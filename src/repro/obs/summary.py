"""Trace-file analysis: span-latency histograms and slowest requests.

Backs the ``repro trace-summary`` CLI command.  Loads a JSONL trace
written by :meth:`repro.obs.trace.Tracer.write_jsonl`, groups completed
spans by kind, folds per-kind latencies into
:class:`~repro.sim.monitor.Tally` objects (merged across runs with
:meth:`Tally.merge` when one trace file holds a whole suite), and
renders an ASCII latency histogram plus the top-N slowest requests with
their phase decompositions.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.monitor import Tally

from .trace import validate_record

__all__ = ["load_trace", "summarize", "render_summary", "TraceSummary"]


def load_trace(path: str, validate: bool = True) -> List[Dict[str, Any]]:
    """Parse (and by default validate) every record in a JSONL trace."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if validate:
                try:
                    validate_record(record)
                except ValueError as exc:
                    raise ValueError(f"{path}:{lineno}: {exc}") from None
            records.append(record)
    return records


class TraceSummary:
    """Aggregated view of one trace file."""

    def __init__(self) -> None:
        self.header: Optional[Dict[str, Any]] = None
        self.event_counts: Dict[str, int] = {}
        #: kind -> latency tally (keep_samples, for percentiles/histogram)
        self.latency: Dict[str, Tally] = {}
        #: kind -> phase name -> accumulated seconds across all spans
        self.phase_totals: Dict[str, Dict[str, float]] = {}
        #: Completed span records, for the slowest-request table.
        self.spans: List[Dict[str, Any]] = []
        self.open_spans = 0
        self.runs: List[str] = []


def summarize(records: List[Dict[str, Any]]) -> TraceSummary:
    """Aggregate parsed trace records into a :class:`TraceSummary`."""
    summary = TraceSummary()
    for record in records:
        kind = record.get("type")
        if kind == "header":
            summary.header = record
        elif kind == "event":
            key = f"{record['component']}.{record['event']}"
            summary.event_counts[key] = summary.event_counts.get(key, 0) + 1
            if record["event"] == "run" and record["component"] == "tracer":
                label = (record.get("attrs") or {}).get("label")
                if label:
                    summary.runs.append(label)
        elif kind == "span":
            if record["end"] is None:
                summary.open_spans += 1
                continue
            span_kind = record["kind"]
            tally = summary.latency.get(span_kind)
            if tally is None:
                tally = summary.latency[span_kind] = Tally(keep_samples=True)
            tally.observe(record["end"] - record["start"])
            totals = summary.phase_totals.setdefault(span_kind, {})
            for phase, seconds in record["phases"].items():
                totals[phase] = totals.get(phase, 0.0) + seconds
            summary.spans.append(record)
    return summary


def merge_latency(summaries: List[TraceSummary]) -> Dict[str, Tally]:
    """Fold per-file latency tallies together (exact, via Tally.merge)."""
    merged: Dict[str, Tally] = {}
    for summary in summaries:
        for kind, tally in summary.latency.items():
            if kind in merged:
                merged[kind].merge(tally)
            else:
                merged[kind] = Tally(keep_samples=True).merge(tally)
    return merged


_HIST_WIDTH = 40
_HIST_BINS = 12


def _histogram(samples: List[float], bins: int = _HIST_BINS) -> List[str]:
    """Fixed-width ASCII histogram of latencies (milliseconds)."""
    if not samples:
        return []
    low = min(samples)
    high = max(samples)
    if high <= low:
        return [f"  {low * 1e3:10.3f} ms  | {'#' * _HIST_WIDTH} {len(samples)}"]
    width = (high - low) / bins
    counts = [0] * bins
    for value in samples:
        index = min(int((value - low) / width), bins - 1)
        counts[index] += 1
    peak = max(counts)
    lines = []
    for index, count in enumerate(counts):
        lo = (low + index * width) * 1e3
        hi = (low + (index + 1) * width) * 1e3
        bar = "#" * max(1 if count else 0, round(count / peak * _HIST_WIDTH))
        lines.append(f"  {lo:10.3f}-{hi:10.3f} ms | {bar:<{_HIST_WIDTH}} {count}")
    return lines


def render_summary(summary: TraceSummary, top: int = 10) -> str:
    """Human-readable report: per-kind stats, histograms, slowest spans."""
    lines: List[str] = []
    if summary.header is not None:
        lines.append(
            f"trace: {summary.header['events']} events, "
            f"{summary.header['spans']} spans "
            f"(schema v{summary.header['schema']})"
        )
    if summary.runs:
        lines.append(f"runs: {', '.join(summary.runs)}")
    if summary.open_spans:
        lines.append(f"warning: {summary.open_spans} span(s) never ended")
    for kind in sorted(summary.latency):
        tally = summary.latency[kind]
        lines.append("")
        lines.append(
            f"== {kind} ==  n={tally.count}  "
            f"mean={tally.mean * 1e3:.3f}ms  "
            f"p50={tally.percentile(50) * 1e3:.3f}ms  "
            f"p95={tally.percentile(95) * 1e3:.3f}ms  "
            f"max={tally.maximum * 1e3:.3f}ms"
        )
        totals = summary.phase_totals.get(kind, {})
        grand = sum(totals.values())
        if grand > 0:
            decomposition = "  ".join(
                f"{phase}={seconds / grand * 100:.1f}%"
                for phase, seconds in sorted(
                    totals.items(), key=lambda item: -item[1]
                )
            )
            lines.append(f"  phases: {decomposition}")
        lines.extend(_histogram(tally.samples))
    slowest = sorted(
        summary.spans, key=lambda s: s["end"] - s["start"], reverse=True
    )[:top]
    if slowest:
        lines.append("")
        lines.append(f"slowest {len(slowest)} request(s):")
        for span in slowest:
            duration = (span["end"] - span["start"]) * 1e3
            phases = "  ".join(
                f"{phase}={seconds * 1e3:.3f}ms"
                for phase, seconds in sorted(
                    span["phases"].items(), key=lambda item: -item[1]
                )
            )
            page = "" if span["page_id"] is None else f" page={span['page_id']}"
            lines.append(
                f"  {span['kind']}#{span['id']}{page} "
                f"@{span['start']:.6f}s {duration:.3f}ms [{span['status']}]"
            )
            if phases:
                lines.append(f"      {phases}")
    if summary.event_counts:
        lines.append("")
        lines.append("events:")
        for key in sorted(summary.event_counts):
            lines.append(f"  {key}: {summary.event_counts[key]}")
    return "\n".join(lines)
